"""Tests for periodic (wraparound) access modeling."""

import pytest

from repro.polyhedra import AffExpr, Space
from repro.workloads.periodic_util import periodic_reads, plain_access


@pytest.fixture
def sp():
    return Space(("t", "i", "j"), ("T", "N"))


class TestPeriodicReads:
    def test_zero_shift_single_unguarded(self, sp):
        t = AffExpr.var(sp, "t")
        accs = periodic_reads(sp, "A", t, {"i": 0, "j": 0}, {"i": "N", "j": "N"})
        assert len(accs) == 1
        assert accs[0].guard is None

    def test_single_shift_two_cases(self, sp):
        t = AffExpr.var(sp, "t")
        accs = periodic_reads(sp, "A", t, {"i": 1, "j": 0}, {"i": "N", "j": "N"})
        assert len(accs) == 2
        interior = next(a for a in accs if a.guard.contains(
            {"t": 0, "i": 0, "j": 0, "T": 4, "N": 4}
        ))
        wrap = next(a for a in accs if a is not interior)
        # interior at i=0 reads i+1
        assert interior.map.apply({"t": 2, "i": 0, "j": 3, "T": 4, "N": 4}) == (2, 1, 3)
        # wrap applies only at i = N-1 and reads index 0
        assert wrap.guard.contains({"t": 0, "i": 3, "j": 0, "T": 4, "N": 4})
        assert not wrap.guard.contains({"t": 0, "i": 2, "j": 0, "T": 4, "N": 4})
        assert wrap.map.apply({"t": 2, "i": 3, "j": 1, "T": 4, "N": 4}) == (2, 0, 1)

    def test_negative_shift_wraps_to_top(self, sp):
        t = AffExpr.var(sp, "t")
        accs = periodic_reads(sp, "A", t, {"i": -1, "j": 0}, {"i": "N", "j": "N"})
        wrap = next(
            a for a in accs
            if a.guard.contains({"t": 0, "i": 0, "j": 0, "T": 4, "N": 4})
            and not a.guard.contains({"t": 0, "i": 1, "j": 0, "T": 4, "N": 4})
        )
        assert wrap.map.apply({"t": 1, "i": 0, "j": 2, "T": 4, "N": 4}) == (1, 3, 2)

    def test_diagonal_shift_four_cases(self, sp):
        t = AffExpr.var(sp, "t")
        accs = periodic_reads(sp, "A", t, {"i": 1, "j": -1}, {"i": "N", "j": "N"})
        assert len(accs) == 4

    def test_guards_partition_domain(self, sp):
        """At every domain point exactly one guarded case applies."""
        t = AffExpr.var(sp, "t")
        accs = periodic_reads(sp, "A", t, {"i": 1, "j": 1}, {"i": "N", "j": "N"})
        n = 4
        for i in range(n):
            for j in range(n):
                point = {"t": 0, "i": i, "j": j, "T": 3, "N": n}
                hits = [a for a in accs if a.guard is None or a.guard.contains(point)]
                assert len(hits) == 1, (i, j)

    def test_reads_stay_in_bounds(self, sp):
        t = AffExpr.var(sp, "t")
        accs = periodic_reads(sp, "A", t, {"i": 1, "j": 0}, {"i": "N", "j": "N"})
        n = 5
        for i in range(n):
            point = {"t": 0, "i": i, "j": 2, "T": 3, "N": n}
            acc = next(a for a in accs if a.guard is None or a.guard.contains(point))
            idx = acc.map.apply(point)
            assert 0 <= idx[1] < n


class TestPlainAccess:
    def test_from_exprs(self, sp):
        t = AffExpr.var(sp, "t")
        i = AffExpr.var(sp, "i")
        acc = plain_access(sp, "B", [t + 1, i])
        assert acc.array == "B"
        assert acc.map.apply({"t": 1, "i": 2, "j": 0, "T": 4, "N": 4}) == (2, 2)
