"""Tests for the workload registry and model structure."""

import pytest

from repro.workloads import all_workloads, get_workload

PAPER_POLYBENCH = {
    "correlation", "covariance", "2mm", "3mm", "atax", "bicg", "cholesky",
    "doitgen", "gemm", "gemver", "gesummv", "mvt", "symm", "syr2k", "syrk",
    "trisolv", "durbin", "dynprog", "gramschmidt", "lu", "ludcmp",
    "floyd-warshall", "fdtd-2d", "fdtd-apml", "jacobi-1d-imper",
    "jacobi-2d-imper", "seidel-2d",
}

PAPER_PERIODIC = {
    "heat-1dp", "heat-2dp", "heat-3dp",
    "lbm-ldc-d2q9", "lbm-ldc-d2q9-mrt", "lbm-fpc-d2q9", "lbm-poi-d2q9",
    "lbm-ldc-d3q27", "swim",
}


class TestRegistry:
    def test_all_27_polybench_present(self):
        names = {w.name for w in all_workloads("polybench")}
        assert names == PAPER_POLYBENCH
        assert len(names) == 27

    def test_excluded_kernels_absent(self):
        names = {w.name for w in all_workloads()}
        for excluded in ("trmm", "adi", "reg-detect"):
            assert excluded not in names

    def test_all_periodic_present(self):
        names = {w.name for w in all_workloads("periodic")}
        assert names == PAPER_PERIODIC

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_workload("nosuch")

    def test_periodic_flags(self):
        for w in all_workloads("periodic"):
            assert w.iss and w.diamond, w.name
            assert w.perf is not None

    def test_polybench_has_no_iss(self):
        for w in all_workloads("polybench"):
            assert not w.iss and not w.diamond

    def test_table2_sizes(self):
        assert get_workload("heat-1dp").sizes == {"N": 1_600_000, "T": 1000}
        assert get_workload("heat-2dp").sizes == {"N": 16000, "T": 500}
        assert get_workload("heat-3dp").sizes == {"N": 300, "T": 200}
        assert get_workload("swim").sizes == {"N": 1335, "T": 800}
        assert get_workload("lbm-ldc-d2q9").sizes["T"] == 50000

    def test_pipeline_options_carry_flags(self):
        w = get_workload("heat-1dp")
        opts = w.pipeline_options("plutoplus")
        assert opts.iss and opts.diamond and opts.algorithm == "plutoplus"
        opts2 = w.pipeline_options("pluto", diamond=False)
        assert not opts2.diamond


class TestModelStructure:
    def test_programs_build_and_have_accesses(self):
        for w in all_workloads():
            p = w.program()
            assert len(p) >= 1, w.name
            for s in p.statements:
                assert s.writes, f"{w.name}/{s.name} has no writes"

    def test_small_sizes_cover_params(self):
        for w in all_workloads():
            p = w.program()
            missing = set(p.params) - set(w.small_sizes)
            assert not missing, f"{w.name} missing small sizes {missing}"

    def test_swim_statement_count(self):
        assert len(get_workload("swim").program()) == 13

    def test_lbm_models_are_periodic(self):
        from repro.core import needs_iss
        from repro.deps import compute_dependences

        w = get_workload("lbm-ldc-d2q9")
        assert needs_iss(compute_dependences(w.program()))

    def test_heat_models_run_against_reference(self):
        """The polyhedral heat model (original order) matches the numpy app."""
        import numpy as np

        from repro.apps import run_heat
        from repro.codegen import generate_python, original_schedule
        from repro.runtime import random_arrays

        w = get_workload("heat-1dp")
        p = w.program()
        params = {"N": 10, "T": 4}
        arrays = random_arrays(p, params, seed=5)
        init = arrays["A"][0].copy()
        generate_python(original_schedule(p)).run(arrays, params)
        expected = run_heat(init, 4)
        assert np.allclose(arrays["A"][4], expected)

    def test_heat2d_model_matches_reference(self):
        import numpy as np

        from repro.apps import run_heat
        from repro.codegen import generate_python, original_schedule
        from repro.runtime import random_arrays

        w = get_workload("heat-2dp")
        p = w.program()
        params = {"N": 6, "T": 3}
        arrays = random_arrays(p, params, seed=5)
        init = arrays["A"][0].copy()
        generate_python(original_schedule(p)).run(arrays, params)
        assert np.allclose(arrays["A"][3], run_heat(init, 3))
