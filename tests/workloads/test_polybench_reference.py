"""Validate the Polybench polyhedral models against numpy references.

Running each model in *original program order* (identity codegen) must agree
with the direct numpy implementation of the same kernel — this checks the
model transcriptions themselves (domains, access functions, bodies), which
the transformation-validation tests take as ground truth.
"""

import numpy as np
import pytest

from repro.codegen import generate_python, original_schedule
from repro.runtime import random_arrays
from repro.workloads import get_workload
from repro.workloads.polybench.reference import REFERENCE_KERNELS


# Some kernels need structured inputs (e.g. cholesky wants a positive
# definite matrix so the sqrt stays real).
_INPUT_PREP = {
    "cholesky": lambda arrays, params: arrays["A"].__iadd__(
        params["N"] * np.eye(params["N"])
    ),
    "trisolv": lambda arrays, params: arrays["A"].__iadd__(
        params["N"] * np.eye(params["N"])
    ),
    "lu": lambda arrays, params: arrays["A"].__iadd__(
        params["N"] * np.eye(params["N"])
    ),
}


@pytest.mark.parametrize("name", sorted(REFERENCE_KERNELS))
def test_model_matches_reference(name):
    w = get_workload(name)
    program = w.program()
    params = dict(w.small_sizes)
    arrays_model = random_arrays(program, params, seed=11)
    if name in _INPUT_PREP:
        _INPUT_PREP[name](arrays_model, params)
    arrays_ref = {k: v.copy() for k, v in arrays_model.items()}

    code = generate_python(original_schedule(program))
    code.run(arrays_model, params)
    REFERENCE_KERNELS[name](arrays_ref, params)

    for key in sorted(arrays_ref):
        assert np.allclose(
            arrays_model[key], arrays_ref[key], rtol=1e-9, atol=1e-11
        ), f"{name}: array {key} diverges"


def test_reference_coverage():
    """The reference set covers a substantial share of the suite."""
    assert len(REFERENCE_KERNELS) >= 18
