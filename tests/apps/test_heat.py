"""Tests for the reference heat solvers."""

import numpy as np
import pytest

from repro.apps import run_heat, step_1d, step_2d, step_3d


class TestHeatSolvers:
    @pytest.mark.parametrize("shape", [(32,), (12, 12), (6, 6, 6)])
    def test_mean_conserved(self, shape):
        rng = np.random.default_rng(1)
        u = rng.random(shape)
        out = run_heat(u, 25)
        assert np.isclose(out.mean(), u.mean())

    @pytest.mark.parametrize("shape", [(32,), (12, 12), (6, 6, 6)])
    def test_smooths_toward_uniform(self, shape):
        rng = np.random.default_rng(2)
        u = rng.random(shape)
        out = run_heat(u, 200)
        assert out.std() < 0.25 * u.std()

    def test_constant_field_fixed_point(self):
        u = np.full(50, 3.5)
        assert np.allclose(run_heat(u, 10), u)

    def test_periodic_wraparound_1d(self):
        u = np.zeros(16)
        u[0] = 1.0
        out = np.empty_like(u)
        step_1d(u, out)
        # mass leaks across the periodic boundary
        assert out[-1] == pytest.approx(0.125)
        assert out[1] == pytest.approx(0.125)

    def test_translation_equivariance(self):
        """Periodic stencils commute with cyclic shifts."""
        rng = np.random.default_rng(3)
        u = rng.random(40)
        a = run_heat(np.roll(u, 7), 15)
        b = np.roll(run_heat(u, 15), 7)
        assert np.allclose(a, b)

    def test_2d_matches_manual_point(self):
        rng = np.random.default_rng(4)
        u = rng.random((5, 5))
        out = np.empty_like(u)
        step_2d(u, out)
        i, j = 2, 3
        manual = 0.5 * u[i, j] + 0.125 * (
            u[i - 1, j] + u[i + 1, j] + u[i, j - 1] + u[i, (j + 1) % 5]
        )
        assert out[i, j] == pytest.approx(manual)

    def test_3d_shape_preserved(self):
        u = np.random.default_rng(5).random((4, 5, 6))
        out = np.empty_like(u)
        step_3d(u, out)
        assert out.shape == u.shape

    def test_unsupported_rank(self):
        with pytest.raises(ValueError):
            run_heat(np.zeros((2, 2, 2, 2)), 1)
