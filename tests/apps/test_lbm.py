"""Tests for the D2Q9/D3Q27 LBM solvers."""

import numpy as np
import pytest

from repro.apps import (
    D2Q9,
    D3Q27,
    FlowPastCylinder,
    LidDrivenCavity,
    LidDrivenCavity3D,
    Poiseuille,
)


class TestD2Q9Constants:
    def test_weights_sum_to_one(self):
        assert D2Q9.W.sum() == pytest.approx(1.0)

    def test_opposites(self):
        for q in range(9):
            o = D2Q9.OPPOSITE[q]
            assert D2Q9.CX[o] == -D2Q9.CX[q]
            assert D2Q9.CY[o] == -D2Q9.CY[q]

    def test_equilibrium_moments(self):
        rho = np.full((4, 4), 1.2)
        ux = np.full((4, 4), 0.05)
        uy = np.full((4, 4), -0.02)
        feq = D2Q9.equilibrium(rho, ux, uy)
        assert np.allclose(feq.sum(axis=0), rho)
        assert np.allclose((D2Q9.CX[:, None, None] * feq).sum(axis=0), rho * ux)
        assert np.allclose((D2Q9.CY[:, None, None] * feq).sum(axis=0), rho * uy)


class TestLidDrivenCavity:
    def test_stable_and_finite(self):
        sim = LidDrivenCavity(nx=20, ny=20)
        sim.run(150)
        assert np.isfinite(sim.f).all()

    def test_lid_drags_fluid(self):
        sim = LidDrivenCavity(nx=24, ny=24, u_lid=0.1)
        sim.run(300)
        ux, _ = sim.velocity_field()
        assert ux[-2].mean() > 0.01         # near the moving lid: along +x
        assert abs(ux[1].mean()) < ux[-2].mean()  # bottom nearly still

    def test_mrt_collision_stable(self):
        sim = LidDrivenCavity(nx=16, ny=16)
        sim.run(100, collision="mrt")
        assert np.isfinite(sim.f).all()

    def test_mrt_conserves_mass_in_collision(self):
        sim = LidDrivenCavity(nx=12, ny=12)
        sim.run(10)
        before = sim.f.sum()
        sim.collide_mrt()
        assert sim.f.sum() == pytest.approx(before, rel=1e-9)

    def test_unknown_collision_rejected(self):
        sim = LidDrivenCavity(nx=8, ny=8)
        with pytest.raises(ValueError):
            sim.step(collision="trt")


class TestPoiseuille:
    def test_parabolic_profile(self):
        sim = Poiseuille(nx=8, ny=11, tau=1.0, force=1e-6)
        sim.run(3000)
        ux, _ = sim.velocity_field()
        prof = ux[:, 4]
        ana = sim.analytic_profile()
        err = np.abs(prof[1:-1] - ana[1:-1]).max() / ana.max()
        assert err < 0.02

    def test_flow_is_unidirectional(self):
        sim = Poiseuille(nx=8, ny=11, tau=1.0, force=1e-6)
        sim.run(500)
        ux, uy = sim.velocity_field()
        assert np.abs(uy).max() < 1e-5  # cross-flow is numerical noise only
        assert ux[5, 4] > 0


class TestFlowPastCylinder:
    def test_obstacle_blocks_flow(self):
        sim = FlowPastCylinder(nx=40, ny=20)
        sim.run(120)
        ux, _ = sim.velocity_field()
        assert np.isfinite(ux).all()
        inside = np.abs(ux[sim.mask]).mean()
        outside = np.abs(ux[~sim.mask]).mean()
        assert inside < outside

    def test_wake_forms_downstream(self):
        sim = FlowPastCylinder(nx=48, ny=20, u_in=0.08)
        sim.run(200)
        ux, _ = sim.velocity_field()
        cy, cx = sim.ny // 2, sim.nx // 4
        behind = ux[cy, cx + 6]
        free = ux[2, cx]
        assert behind < free  # velocity deficit in the wake


class TestD3Q27:
    def test_weights_sum_to_one(self):
        assert D3Q27.W.sum() == pytest.approx(1.0)

    def test_opposites(self):
        for q in range(27):
            assert (D3Q27.C[D3Q27.OPPOSITE[q]] == -D3Q27.C[q]).all()

    def test_cavity_stable(self):
        sim = LidDrivenCavity3D(n=8)
        sim.run(40)
        assert np.isfinite(sim.f).all()

    def test_lid_drives_top_layer(self):
        sim = LidDrivenCavity3D(n=10, u_lid=0.08)
        sim.run(80)
        _, ux, _, _ = sim.macroscopic()
        assert ux[-2].mean() > ux[1].mean()
