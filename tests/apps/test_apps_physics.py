"""Additional physics sanity checks on the application solvers."""

import numpy as np
import pytest

from repro.apps import LidDrivenCavity, LidDrivenCavity3D, ShallowWater, run_heat


class TestConservation:
    def test_d2q9_cavity_mass_bounded(self):
        sim = LidDrivenCavity(nx=20, ny=20)
        m0 = sim.f.sum()
        sim.run(200)
        # bounce-back walls conserve mass; the moving-lid correction
        # exchanges momentum, so mass stays within a small band
        assert sim.f.sum() == pytest.approx(m0, rel=0.05)

    def test_d3q27_collision_conserves_mass_and_momentum(self):
        sim = LidDrivenCavity3D(n=6)
        sim.run(5)
        rho0 = sim.f.sum()
        before = sim.macroscopic()
        sim.collide()
        after = sim.macroscopic()
        assert sim.f.sum() == pytest.approx(rho0, rel=1e-10)
        for b, a in zip(before[1:], after[1:]):
            assert np.allclose(b, a, atol=1e-10)  # collision preserves momentum

    def test_heat_total_energy_monotone_spread(self):
        rng = np.random.default_rng(9)
        u = rng.random(128)
        variances = []
        cur = u
        for _ in range(4):
            cur = run_heat(cur, 25)
            variances.append(cur.var())
        assert all(a > b for a, b in zip(variances, variances[1:]))

    def test_swim_energy_stays_bounded(self):
        sw = ShallowWater(n=20)
        ke0 = sw.diagnostics()["ke"]
        sw.run(40)
        ke = sw.diagnostics()["ke"]
        assert 0.2 * ke0 < ke < 5.0 * ke0


class TestCavityFlowStructure:
    def test_primary_vortex_rotates_with_lid(self):
        sim = LidDrivenCavity(nx=32, ny=32, u_lid=0.1, tau=0.56)
        sim.run(800)
        ux, uy = sim.velocity_field()
        # lid drives +x at the top; continuity returns flow along the bottom
        assert ux[-2, 5:-5].mean() > 0
        assert ux[2, 5:-5].mean() < 0

    def test_higher_lid_speed_more_kinetic_energy(self):
        energies = []
        for u_lid in (0.05, 0.1):
            sim = LidDrivenCavity(nx=20, ny=20, u_lid=u_lid)
            sim.run(300)
            ux, uy = sim.velocity_field()
            energies.append(float((ux**2 + uy**2).mean()))
        assert energies[1] > energies[0]
