"""Tests for the shallow-water (swim) solver."""

import numpy as np
import pytest

from repro.apps import ShallowWater


class TestShallowWater:
    def test_stable(self):
        sw = ShallowWater(n=24)
        sw.run(50)
        assert np.isfinite(sw.p).all()
        assert np.isfinite(sw.u).all()

    def test_mass_conserved(self):
        sw = ShallowWater(n=24)
        m0 = sw.p.mean()
        sw.run(60)
        assert sw.p.mean() == pytest.approx(m0, rel=1e-6)

    def test_periodicity_no_boundary_artifacts(self):
        """A cyclic shift of the initial state shifts the solution."""
        sw1 = ShallowWater(n=16)
        sw2 = ShallowWater(n=16)
        shift = 5
        sw2.u = np.roll(sw1.u, shift, axis=0).copy()
        sw2.v = np.roll(sw1.v, shift, axis=0).copy()
        sw2.p = np.roll(sw1.p, shift, axis=0).copy()
        sw2._uold = np.roll(sw1._uold, shift, axis=0).copy()
        sw2._vold = np.roll(sw1._vold, shift, axis=0).copy()
        sw2._pold = np.roll(sw1._pold, shift, axis=0).copy()
        sw1.run(10)
        sw2.run(10)
        assert np.allclose(np.roll(sw1.p, shift, axis=0), sw2.p, rtol=1e-9)

    def test_diagnostics_keys(self):
        sw = ShallowWater(n=8)
        d = sw.diagnostics()
        assert set(d) == {"mass", "ke", "umax"}

    def test_first_step_uses_half_tdt(self):
        sw1 = ShallowWater(n=12)
        p_before = sw1.p.copy()
        sw1.step(first=True)
        delta_first = np.abs(sw1.p - p_before).max()
        sw2 = ShallowWater(n=12)
        sw2.step(first=False)
        delta_full = np.abs(sw2.p - p_before).max()
        assert delta_first < delta_full
