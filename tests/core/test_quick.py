"""Tests for the quick-permutation scheduler: matching, arbitration, legality.

The contract under test (see ``docs/INTERNALS.md`` §11):

* quick-won schedules are permutations validated exactly against the
  dependence relations — they always pass the independent verifier and
  never touch the ILP stack;
* ``auto`` falls back to the exact search with a recorded reason, and a
  fallen-back run is bit-compatible with ``scheduler="exact"``;
* the default stays ``"exact"`` so existing behavior is unchanged.
"""

import pytest

from repro import api
from repro.core.quick import (
    DimensionMatching,
    QuickScheduler,
    attempt_quick_schedule,
    fusion_groups_of,
    quick_bound_shortfall,
)
from repro.core.scheduler import SchedulerStats
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program
from repro.pipeline import (
    PipelineOptions,
    QUICK_SCHEDULER_VERSION,
    optimize,
    pipeline_fingerprint,
)
from repro.workloads import get_workload


def _parse(src, name="p", params=("N",)):
    return parse_program(src, name, params=params, param_min=4)


PRODUCER_CONSUMER = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i][j] = i + j;
for (k = 0; k < N; k++)
    for (l = 0; l < N; l++)
        B[k][l] = A[k][l] * 2.0;
"""

TRANSPOSED_CONSUMER = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i][j] = i + j;
for (k = 0; k < N; k++)
    for (l = 0; l < N; l++)
        B[k][l] = A[l][k] * 2.0;
"""


class TestDimensionMatching:
    def test_identity_access_matches_positionally(self):
        p = _parse(PRODUCER_CONSUMER)
        m = DimensionMatching.build(p, compute_dependences(p))
        s0, s1 = (s.name for s in p.statements)
        # i~k and j~l, each its own class, outermost first
        joint = [c for c in m.classes if len(c) == 2]
        assert joint[0] == {s0: [0], s1: [0]}
        assert joint[1] == {s0: [1], s1: [1]}

    def test_transposed_access_matches_crosswise(self):
        p = _parse(TRANSPOSED_CONSUMER)
        m = DimensionMatching.build(p, compute_dependences(p))
        s0, s1 = (s.name for s in p.statements)
        joint = [c for c in m.classes if len(c) == 2]
        # A[i][j] written, A[l][k] read: i~l and j~k
        assert {s0: [0], s1: [1]} in joint
        assert {s0: [1], s1: [0]} in joint

    def test_uncoupled_dims_form_singletons(self):
        p = _parse("for (i = 0; i < N; i++) A[i] = i;")
        m = DimensionMatching.build(p, compute_dependences(p))
        assert m.classes == [{p.statements[0].name: [0]}]

    def test_classes_for_filters_by_statement(self):
        p = _parse(PRODUCER_CONSUMER)
        m = DimensionMatching.build(p, compute_dependences(p))
        name = p.statements[0].name
        assert all(name in c for c in m.classes_for(name))


class TestQuickScheduler:
    def test_gemm_wins_without_ilp(self):
        result = optimize("gemm", PipelineOptions(scheduler="quick"))
        st = result.scheduler_stats
        assert st.scheduler_path == "quick"
        assert st.fallback_reason is None
        assert st.solve.lp_solves == 0  # zero ILP/LP solver invocations
        assert st.quick_candidates > 0 and st.quick_validations > 0
        assert api.verify(result).legal
        assert max(b.width for b in result.schedule.bands) >= 2

    def test_fusion_groups_recorded(self):
        result = optimize("gemm", PipelineOptions(scheduler="quick"))
        groups = result.scheduler_stats.fusion_groups
        assert sorted(n for g in groups for n in g) == sorted(
            s.name for s in result.program.statements
        )

    def test_forced_quick_on_skew_stencil_is_legal(self):
        # seidel-2d needs skewing for tilability; forced quick keeps the
        # legal (but untilable) permutation instead of falling back
        result = optimize("seidel-2d", PipelineOptions(scheduler="quick"))
        assert result.scheduler_stats.scheduler_path == "quick"
        assert api.verify(result).legal

    def test_quick_rows_cover_every_statement(self):
        p = _parse(PRODUCER_CONSUMER)
        ddg = DependenceGraph(p, compute_dependences(p))
        sched = QuickScheduler(p, ddg).schedule()
        for row in sched.rows:
            for s in p.statements:
                assert row.expr_for(s) is not None


class TestAutoArbitration:
    def test_auto_takes_quick_on_permutation_kernel(self):
        result = optimize("gemm", PipelineOptions(scheduler="auto"))
        assert result.scheduler_stats.scheduler_path == "quick"

    def test_auto_fallback_is_bit_compatible_with_exact(self):
        auto = optimize("seidel-2d", PipelineOptions(scheduler="auto"))
        exact = optimize("seidel-2d", PipelineOptions(scheduler="exact"))
        st = auto.scheduler_stats
        assert st.scheduler_path == "fallback"
        assert st.fallback_reason == "untilable-band"
        assert auto.schedule.to_dict() == exact.schedule.to_dict()
        assert auto.code.python_source == exact.code.python_source

    def test_auto_never_shadows_diamond(self):
        w = get_workload("heat-1dp")
        auto = optimize(w.program(), w.pipeline_options("plutoplus", scheduler="auto"))
        exact = optimize(w.program(), w.pipeline_options("plutoplus", scheduler="exact"))
        assert auto.scheduler_stats.fallback_reason == "diamond-requested"
        assert auto.used_diamond
        assert auto.schedule.to_dict() == exact.schedule.to_dict()

    def test_quick_validation_work_is_counted_on_fallback(self):
        result = optimize("seidel-2d", PipelineOptions(scheduler="auto"))
        st = result.scheduler_stats
        assert st.quick_candidates > 0
        assert st.quick_seconds >= 0.0

    def test_default_mode_never_runs_the_heuristic(self):
        result = optimize("gemm", PipelineOptions())
        st = result.scheduler_stats
        assert st.scheduler_mode == "exact"
        assert st.scheduler_path == "exact"
        assert st.quick_candidates == 0


class TestDriverUnits:
    def test_diamond_requested_short_circuits(self):
        p = _parse(PRODUCER_CONSUMER)
        ddg = DependenceGraph(p, compute_dependences(p))
        stats = SchedulerStats()
        out = attempt_quick_schedule(
            p, ddg, None, mode="auto", diamond=True, stats=stats
        )
        assert out is None
        assert stats.fallback_reason == "diamond-requested"
        assert stats.quick_candidates == 0

    def test_forced_quick_ignores_diamond(self):
        p = _parse(PRODUCER_CONSUMER)
        ddg = DependenceGraph(p, compute_dependences(p))
        out = attempt_quick_schedule(
            p, ddg, None, mode="quick", diamond=True, stats=SchedulerStats()
        )
        assert out is not None

    def test_bound_shortfall_on_width_one_bands(self):
        result = optimize("seidel-2d", PipelineOptions(scheduler="quick"))
        assert (
            quick_bound_shortfall(result.program, result.schedule)
            == "untilable-band"
        )

    def test_bound_accepts_wide_bands(self):
        result = optimize("gemm", PipelineOptions(scheduler="quick"))
        assert quick_bound_shortfall(result.program, result.schedule) is None

    def test_fusion_groups_split_distributed_statements(self):
        exact = optimize("gemm", PipelineOptions())
        groups = fusion_groups_of(exact.schedule)
        assert len(groups) >= 1


class TestOptionsPlumbing:
    def test_bogus_scheduler_rejected_up_front(self):
        with pytest.raises(ValueError, match="scheduler"):
            PipelineOptions(scheduler="bogus")

    def test_scheduler_survives_roundtrip(self):
        opts = PipelineOptions(scheduler="auto")
        assert PipelineOptions.from_dict(opts.as_dict()).scheduler == "auto"

    def test_fingerprint_distinguishes_modes(self):
        fps = {
            pipeline_fingerprint(mode) for mode in ("exact", "quick", "auto")
        }
        assert len(fps) == 3
        assert pipeline_fingerprint("quick").endswith(
            f"-v{QUICK_SCHEDULER_VERSION}"
        )

    def test_stats_dict_roundtrip_carries_path(self):
        result = optimize("gemm", PipelineOptions(scheduler="auto"))
        data = result.scheduler_stats.as_dict()
        back = SchedulerStats.from_dict(data)
        assert back.scheduler_path == "quick"
        assert back.fusion_groups == result.scheduler_stats.fusion_groups

    def test_old_stats_dicts_still_parse(self):
        # manifests written before the quick scheduler lack the new keys
        data = SchedulerStats().as_dict()
        for key in (
            "scheduler_mode", "scheduler_path", "fallback_reason",
            "quick_candidates", "quick_validations", "quick_seconds",
            "fusion_groups",
        ):
            data.pop(key)
        st = SchedulerStats.from_dict(data)
        assert st.scheduler_path == "exact"


#: Kernels with known-permutation schedules plus hostile (skewing) cases.
SWEEP = [
    "gemm", "2mm", "mvt", "atax", "bicg", "gemver", "gesummv",
    "doitgen", "trisolv", "jacobi-2d-imper", "seidel-2d",
]


class TestWorkloadSweep:
    @pytest.mark.parametrize("name", SWEEP)
    def test_every_quick_schedule_verifies(self, name):
        result = optimize(name, PipelineOptions(scheduler="auto"))
        st = result.scheduler_stats
        assert st.scheduler_path in ("quick", "fallback")
        if st.scheduler_path == "quick":
            assert st.solve.lp_solves == 0
        else:
            assert st.fallback_reason is not None
        assert api.verify(result).legal
