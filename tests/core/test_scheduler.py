"""Tests for the iterative Pluto / Pluto+ scheduler."""

import pytest

from repro.core import (
    PlutoScheduler,
    SchedulerOptions,
    mark_parallelism,
)
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program


def schedule_src(src, algo="plutoplus", params=("N",), param_min=3, **kw):
    p = parse_program(src, "p", params=params, param_min=param_min)
    ddg = DependenceGraph(p, compute_dependences(p))
    sch = PlutoScheduler(p, ddg, SchedulerOptions(algorithm=algo, **kw))
    s = sch.schedule()
    mark_parallelism(s, ddg)
    return p, ddg, s


FIG1 = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i+1][j+1] = 2.0 * A[i][j];
"""

FIG2 = """
for (i = 0; i < N; i++)
    b[i] = 2.0 * a[i];
for (i = 0; i < N; i++)
    c[i] = 3.0 * b[N-1-i];
"""

JACOBI = """
for (t = 0; t < T; t++) {
    for (i = 1; i < N - 1; i++)
        B[i] = 0.33 * (A[i-1] + A[i] + A[i+1]);
    for (i = 1; i < N - 1; i++)
        A[i] = B[i];
}
"""


class TestBasicProperties:
    def test_full_rank_reached(self):
        for algo in ("pluto", "plutoplus"):
            _, _, s = schedule_src(FIG1, algo)
            assert s.rank["S0"] == 2

    def test_all_deps_satisfied(self):
        for algo in ("pluto", "plutoplus"):
            _, ddg, s = schedule_src(FIG1, algo)
            assert not ddg.unsatisfied()

    def test_band_is_permutable(self):
        _, _, s = schedule_src(FIG1, "plutoplus")
        assert s.bands and s.bands[0].width == 2

    def test_legality_of_all_rows(self):
        """Every loop row must have non-negative distance on every dep not
        yet strictly satisfied — verified exactly, post hoc."""
        p, ddg, s = schedule_src(JACOBI, "plutoplus", params=("T", "N"), param_min=4)
        for d in ddg.deps:
            remaining = d.polyhedron
            for row in s.rows:
                if row.kind != "loop":
                    continue
                expr = d.distance_expr(
                    row.expr_for(d.source), row.expr_for(d.target)
                )
                mn = remaining.min_of(expr)
                if mn is None:
                    break
                assert mn >= 0 or d.satisfied_by_cut


class TestPlutoPlusFindsNegativeCoefficients:
    def test_fig1_outer_parallel(self):
        """Section 2.2: Pluto+ exposes a communication-free outer loop."""
        _, _, s = schedule_src(FIG1, "plutoplus")
        first = s.rows[0]
        coeffs = first.coeff_rows(s.program.statement("S0"))
        assert sorted(coeffs) == [-1, 1]  # +-(i - j)
        assert first.parallel

    def test_fig1_pluto_outer_not_parallel(self):
        """Without negative coefficients the outer loop carries the (1,1)
        dependence; only inner parallelism remains."""
        _, _, s = schedule_src(FIG1, "pluto")
        assert not s.rows[0].parallel

    def test_fig2_fused_with_reversal(self):
        """Section 2.1/Fig. 2: fuse + reverse -> outer parallel loop."""
        p, _, s = schedule_src(FIG2, "plutoplus")
        first = s.rows[0]
        c0 = first.coeff_rows(p.statement("S0"))[0]
        c1 = first.coeff_rows(p.statement("S1"))[0]
        assert c0 == -c1  # one of the two is reversed
        assert first.parallel

    def test_fig2_pluto_no_reversal(self):
        p, _, s = schedule_src(FIG2, "pluto")
        for row in s.rows:
            if row.kind != "loop":
                continue
            assert all(
                c >= 0
                for st_ in p.statements
                for c in row.coeff_rows(st_)
            )


class TestPlutoCoefficientSign:
    def test_pluto_never_negative(self):
        for src in (FIG1, FIG2, JACOBI):
            params = ("T", "N") if "t" in src.split("(")[1] else ("N",)
            p, _, s = schedule_src(src, "pluto", params=params, param_min=4)
            for row in s.rows:
                if row.kind != "loop":
                    continue
                for st_ in p.statements:
                    assert all(c >= 0 for c in row.coeff_rows(st_))

    def test_plutoplus_respects_bound(self):
        p, _, s = schedule_src(JACOBI, "plutoplus", params=("T", "N"), param_min=4, coeff_bound=4)
        for row in s.rows:
            if row.kind != "loop":
                continue
            for st_ in p.statements:
                assert all(abs(c) <= 4 for c in row.coeff_rows(st_))


class TestJacobiStructure:
    def test_time_skewed_band(self):
        p, _, s = schedule_src(JACOBI, "plutoplus", params=("T", "N"), param_min=4)
        assert s.bands[0].width == 2  # (t, 2t +- i) band: time-tilable
        row1 = s.rows[1]
        for st_ in p.statements:
            c = row1.coeff_rows(st_)
            assert abs(c[1]) == 1 and c[0] == 2  # skew factor 2 on t

    def test_beta_orders_statements(self):
        p, _, s = schedule_src(JACOBI, "plutoplus", params=("T", "N"), param_min=4)
        last = s.rows[-1]
        assert last.kind == "scalar"
        assert last.expr_for("S0").const_term < last.expr_for("S1").const_term


class TestFusionAndCuts:
    def test_independent_statements_get_distinct_positions(self):
        src = """
        for (i = 0; i < N; i++) A[i] = 1;
        for (i = 0; i < N; i++) B[i] = 2;
        """
        p, _, s = schedule_src(src)
        maps = {st_.name: s.map_for(st_) for st_ in p.statements}
        # they must not collide: at least one level differs structurally
        assert maps["S0"].exprs != maps["S1"].exprs or any(
            r.kind == "scalar" for r in s.rows
        )

    def test_pipeline_fusion(self):
        src = """
        for (i = 0; i < N; i++) B[i] = 2.0 * A[i];
        for (i = 0; i < N; i++) C[i] = 3.0 * B[i];
        """
        p, ddg, s = schedule_src(src)
        # producer-consumer at the same i: fusable with a beta dimension
        assert not ddg.unsatisfied()

    def test_scc_cut_produces_scalar_dim(self):
        # two dependent loop nests that cannot fuse into one band fully:
        src = """
        for (i = 0; i < N; i++)
            B[i] = 2.0 * A[N-1-i];
        for (i = 0; i < N; i++)
            A[i] = A[i] + B[i];
        """
        p, ddg, s = schedule_src(src, "pluto")
        assert not ddg.unsatisfied()


class TestOptionsValidation:
    def test_bad_algorithm(self):
        with pytest.raises(ValueError):
            SchedulerOptions(algorithm="feautrier")

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            SchedulerOptions(coeff_bound=0)

    def test_stats_populated(self):
        p = parse_program(FIG1, "p", params=("N",))
        ddg = DependenceGraph(p, compute_dependences(p))
        sch = PlutoScheduler(p, ddg, SchedulerOptions(algorithm="plutoplus"))
        sch.schedule()
        assert sch.stats.hyperplanes_found == 2
        assert sch.stats.ilp_solves > 0
