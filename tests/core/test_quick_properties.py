"""Property tests: quick-path schedules are legal whatever the heuristic saw.

Two angles:

* *completeness on friendly inputs* — a uniform dependence with a
  non-negative distance vector is carried by the original loop order, so
  the quick scheduler must find a permutation (no fallback, no ILPs);
* *soundness on arbitrary inputs* — whatever the offsets (including
  skew-requiring negative components), ``scheduler="auto"`` must produce
  a schedule the independent verifier accepts, either via a validated
  permutation or via the exact fallback.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.core.quick import QuickScheduler
from repro.core.verify import verify_schedule
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program
from repro.pipeline import PipelineOptions, optimize


def _stencil_src(di: int, dj: int) -> str:
    """A 2-d nest with one uniform dependence of distance ``(di, dj)``."""
    lb = max(0, -dj)
    return f"""
    for (i = 0; i < N; i++)
        for (j = {lb}; j < N - {max(dj, 0)}; j++)
            A[i + {di}][j + {dj}] = 0.5 * A[i][j];
    """


@st.composite
def nonneg_distance(draw):
    di = draw(st.integers(0, 2))
    dj = draw(st.integers(0 if di else 1, 2))
    return di, dj


@st.composite
def any_distance(draw):
    di = draw(st.integers(0, 2))
    dj = draw(st.integers(-2, 2))
    if di == 0 and dj <= 0:
        dj = 1  # keep the dependence forward in original execution order
    return di, dj


class TestQuickProperties:
    @given(nonneg_distance())
    @settings(max_examples=15, deadline=None)
    def test_nonnegative_distances_are_quick_schedulable(self, dist):
        """Lexicographically non-negative uniform distances never need
        skewing, so the permutation heuristic must succeed outright."""
        di, dj = dist
        p = parse_program(_stencil_src(di, dj), "p", params=("N",), param_min=4)
        ddg = DependenceGraph(p, compute_dependences(p))
        sched = QuickScheduler(p, ddg).schedule()  # SchedulerError would fail
        assert verify_schedule(sched, ddg).legal

    @given(any_distance())
    @settings(max_examples=15, deadline=None)
    def test_auto_is_always_verifiably_legal(self, dist):
        di, dj = dist
        p = parse_program(_stencil_src(di, dj), "p", params=("N",), param_min=4)
        result = optimize(p, PipelineOptions(scheduler="auto", tile=False))
        assert result.scheduler_stats.scheduler_path in ("quick", "fallback")
        assert api.verify(result).legal

    @given(any_distance())
    @settings(max_examples=10, deadline=None)
    def test_forced_quick_never_returns_illegal(self, dist):
        """Forced quick may keep an untilable permutation, but never an
        illegal one: candidates are validated against exact relations."""
        di, dj = dist
        p = parse_program(_stencil_src(di, dj), "p", params=("N",), param_min=4)
        result = optimize(p, PipelineOptions(scheduler="quick", tile=False))
        assert api.verify(result).legal
