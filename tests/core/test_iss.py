"""Tests for index-set splitting (Section 2.4, Fig. 4c)."""

import pytest

from repro.core import index_set_split, long_dependence_dims, needs_iss
from repro.deps import compute_dependences
from repro.frontend import parse_program
from repro.workloads.periodic import heat_1dp, heat_2dp


class TestLongDependenceDetection:
    def test_uniform_deps_not_long(self):
        src = """
        for (t = 0; t < T; t++)
            for (i = 1; i < N-1; i++)
                A[i] = 0.5 * (A[i-1] + A[i+1]);
        """
        p = parse_program(src, "p", params=("T", "N"), param_min=4)
        deps = compute_dependences(p)
        assert not needs_iss(deps)

    def test_periodic_wraparound_is_long(self):
        deps = compute_dependences(heat_1dp())
        dims = long_dependence_dims(deps)
        assert dims == {"S0": {"i"}}

    def test_symmetric_reflection_is_long(self):
        src = """
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
                a[i+1][j] = 2.0 * a[i][N-j-1];
        """
        p = parse_program(src, "p", params=("N",))
        deps = compute_dependences(p)
        dims = long_dependence_dims(deps)
        assert "j" in dims.get("S0", set())
        assert "i" not in dims.get("S0", set())

    def test_2d_periodic_long_in_both_dims(self):
        deps = compute_dependences(heat_2dp())
        dims = long_dependence_dims(deps)
        assert dims == {"S0": {"i", "j"}}


class TestSplitting:
    def test_1d_split_into_halves(self):
        p = heat_1dp()
        p2, changed = index_set_split(p)
        assert changed
        assert [s.name for s in p2.statements] == ["S0_m", "S0_p"]

    def test_halves_partition_domain(self):
        p = heat_1dp()
        p2, _ = index_set_split(p)
        lo, hi = p2.statements
        n, t_steps = 9, 3
        orig_pts = p.statements[0].domain.enumerate_points({"N": n, "T": t_steps})
        lo_pts = lo.domain.enumerate_points({"N": n, "T": t_steps})
        hi_pts = hi.domain.enumerate_points({"N": n, "T": t_steps})
        assert sorted(lo_pts + hi_pts) == sorted(orig_pts)
        assert not (set(lo_pts) & set(hi_pts))

    def test_cut_at_midpoint(self):
        p = heat_1dp()
        p2, _ = index_set_split(p)
        lo, hi = p2.statements
        # N = 9: 2i <= 8 -> i <= 4; hi: i >= 5
        assert lo.domain.contains({"t": 0, "i": 4, "N": 9, "T": 3})
        assert not lo.domain.contains({"t": 0, "i": 5, "N": 9, "T": 3})
        assert hi.domain.contains({"t": 0, "i": 5, "N": 9, "T": 3})

    def test_2d_split_into_quadrants(self):
        p2, changed = index_set_split(heat_2dp())
        assert changed
        assert len(p2.statements) == 4
        names = {s.name for s in p2.statements}
        assert names == {"S0_mm", "S0_mp", "S0_pm", "S0_pp"}

    def test_no_split_returns_same_program(self):
        src = "for (i = 0; i < N; i++) A[i+1] = A[i];"
        p = parse_program(src, "p", params=("N",))
        p2, changed = index_set_split(p)
        assert not changed and p2 is p

    def test_neighbors_split_along_shared_cut_dims(self):
        """Every statement owning a cut dimension is split — even ones whose
        own dependences are short (the [6] whole-space splitting; leaving a
        neighbor unsplit makes the post-ISS shift systems infeasible)."""
        from repro.frontend import ProgramBuilder, Access
        from repro.polyhedra import AffineMap, AffExpr
        from repro.workloads.periodic_util import periodic_reads

        b = ProgramBuilder("mix", params=("T", "N"), param_min=4)
        with b.loop("t", 0, "T-1"):
            with b.loop("i", 0, "N-1"):
                sp = b.program.space_for(["t", "i"])
                t = AffExpr.var(sp, "t")
                i = AffExpr.var(sp, "i")
                b.stmt(
                    "A[t+1][i] = A[t][(i+1)%N]",
                    body_py="A[t+1, i] = A[t, (i+1) % N]",
                    writes=[Access("A", AffineMap(sp, [t + 1, i]))],
                    reads=periodic_reads(sp, "A", t, {"i": 1}, {"i": "N"}),
                )
            with b.loop("i", 0, "N-1"):
                b.stmt("B[t][i] = A[t][i]", name="SB")
        p2, changed = index_set_split(b.build())
        assert changed
        names = [s.name for s in p2.statements]
        assert sorted(names) == ["SB_m", "SB_p", "S0_m", "S0_p"] or len(names) == 4

    def test_split_preserves_semantics(self):
        """Original order of the split program equals the unsplit program."""
        from repro.codegen import generate_python, original_schedule
        from repro.runtime import random_arrays
        import numpy as np

        p = heat_1dp()
        p2, _ = index_set_split(p)
        params = {"N": 8, "T": 4}
        a1 = random_arrays(p, params, seed=3)
        a2 = {k: v.copy() for k, v in a1.items()}
        generate_python(original_schedule(p)).run(a1, params)
        generate_python(original_schedule(p2)).run(a2, params)
        for k in a1:
            assert np.allclose(a1[k], a2[k])
