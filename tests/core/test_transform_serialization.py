"""Tests for schedule JSON round-tripping."""

import json

import pytest

from repro.core import PlutoScheduler, Schedule, SchedulerOptions
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program

SRC = """
for (t = 0; t < T; t++) {
    for (i = 1; i < N-1; i++)
        B[i] = 0.3 * (A[i-1] + A[i] + A[i+1]);
    for (i = 1; i < N-1; i++)
        A[i] = B[i];
}
"""


@pytest.fixture(scope="module")
def scheduled():
    p = parse_program(SRC, "jacobi", params=("T", "N"), param_min=4)
    ddg = DependenceGraph(p, compute_dependences(p))
    s = PlutoScheduler(p, ddg, SchedulerOptions()).schedule()
    return p, s


class TestSerialization:
    def test_roundtrip_preserves_maps(self, scheduled):
        p, s = scheduled
        data = json.loads(json.dumps(s.to_dict()))
        restored = Schedule.from_dict(p, data)
        for stmt in p.statements:
            assert restored.map_for(stmt) == s.map_for(stmt)

    def test_roundtrip_preserves_bands(self, scheduled):
        p, s = scheduled
        restored = Schedule.from_dict(p, s.to_dict())
        assert [(b.start, b.end) for b in restored.bands] == [
            (b.start, b.end) for b in s.bands
        ]

    def test_roundtrip_preserves_rank(self, scheduled):
        p, s = scheduled
        restored = Schedule.from_dict(p, s.to_dict())
        assert restored.rank == s.rank

    def test_wrong_program_rejected(self, scheduled):
        p, s = scheduled
        other = parse_program("for (i = 0; i < N; i++) A[i] = 1.0;", "other", params=("N",))
        with pytest.raises(ValueError):
            Schedule.from_dict(other, s.to_dict())

    def test_restored_schedule_verifies(self, scheduled):
        from repro.core import verify_schedule

        p, s = scheduled
        ddg = DependenceGraph(p, compute_dependences(p))
        restored = Schedule.from_dict(p, s.to_dict())
        assert verify_schedule(restored, ddg).legal
