"""Reduction detection, relaxation, tagging, and emission (PR 10)."""

import ast

import numpy as np
import pytest

from repro.codegen import generate_c, generate_python
from repro.core.reductions import (
    REDUCTION_IDENTITY,
    detect_reductions,
    reduction_split,
    relax_reduction_deps,
)
from repro.core.scheduler import SchedulerStats
from repro.deps import compute_dependences
from repro.deps.analysis import DepStats
from repro.frontend import parse_program
from repro.pipeline import PipelineOptions, optimize
from repro.runtime import random_arrays
from repro.workloads import get_workload


class TestReductionSplit:
    """The body parser that both emitters and detection share."""

    def test_scalar_add(self):
        s = reduction_split("s[()] = s[()] + A[i] * B[i]")
        assert s is not None
        assert (s.array, s.op) == ("s", "+")
        assert ast.unparse(s.update) == "A[i] * B[i]"

    def test_array_cell_add(self):
        s = reduction_split("C[i, j] = C[i, j] + A[i, k] * B[k, j]")
        assert s is not None and s.array == "C" and s.op == "+"

    def test_commuted_operands(self):
        s = reduction_split("s[()] = A[i] + s[()]")
        assert s is not None and ast.unparse(s.update) == "A[i]"

    def test_product(self):
        s = reduction_split("p[()] = p[()] * A[i]")
        assert s is not None and s.op == "*"
        assert REDUCTION_IDENTITY[s.op] == "1.0"

    def test_augassign(self):
        s = reduction_split("s[()] += A[i]")
        assert s is not None and s.op == "+"

    def test_sub_folds_into_add(self):
        s = reduction_split("s[()] = s[()] - A[i]")
        assert s is not None and s.op == "+"
        assert ast.unparse(s.update) == "-A[i]"

    def test_sub_wrong_side_rejected(self):
        # e - target does not commute: not a reduction
        assert reduction_split("s[()] = A[i] - s[()]") is None

    def test_update_reading_accumulator_rejected(self):
        assert reduction_split("s[()] = s[()] + s[()] * 2.0") is None
        assert reduction_split("s[()] += s[()]") is None

    def test_non_reduction_forms_rejected(self):
        assert reduction_split("B[i] = 2.0 * A[i]") is None
        assert reduction_split("s[()] = s[()] / A[i]") is None
        assert reduction_split("s = s + A[i]") is None  # bare Name LHS
        assert reduction_split("not python (") is None


class TestDetectReductions:
    def test_dot_detected(self):
        p = get_workload("dot").program()
        (info,) = detect_reductions(p)
        assert (info.array, info.op) == ("s", "+")
        assert info.dims == ("i",)

    def test_tensor_contract_two_dims(self):
        p = get_workload("tensor-contract").program()
        (info,) = detect_reductions(p)
        assert info.dims == ("i", "j")

    def test_gemm_k_only(self):
        src = """
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
                for (k = 0; k < N; k++)
                    C[i][j] = C[i][j] + A[i][k] * B[k][j];
        """
        p = parse_program(src, "g", params=("N",))
        (info,) = detect_reductions(p)
        assert info.dims == ("k",)

    def test_stencil_not_detected(self):
        src = """
        for (t = 0; t < T; t++)
            for (i = 1; i < N-1; i++)
                A[i] = 0.5 * (A[i-1] + A[i+1]);
        """
        p = parse_program(src, "p", params=("T", "N"), param_min=3)
        assert detect_reductions(p) == []

    def test_all_iterators_in_write_not_detected(self):
        # B[i] = B[i] + A[i]: the self-dep is iteration-local, nothing to relax
        src = "for (i = 0; i < N; i++) B[i] = B[i] + A[i];"
        p = parse_program(src, "p", params=("N",))
        assert detect_reductions(p) == []


class TestRelaxation:
    def test_only_self_deps_relaxed(self):
        src = """
        for (i = 0; i < N; i++)
            s = s + A[i];
        for (i = 0; i < N; i++)
            B[i] = 2.0 * s;
        """
        p = parse_program(src, "p", params=("N",))
        deps = compute_dependences(p)
        kept, relaxed = relax_reduction_deps(deps, detect_reductions(p))
        assert relaxed and all(d.source is d.target for d in relaxed)
        # the consumer edge (accumulate -> read of s) survives
        assert any(d.source is not d.target and d.array == "s" for d in kept)
        assert len(kept) + len(relaxed) == len(deps)

    def test_no_reductions_keeps_everything(self):
        p = get_workload("dot").program()
        deps = compute_dependences(p)
        kept, relaxed = relax_reduction_deps(deps, [])
        assert kept == list(deps) and relaxed == []


def _opt(workload, **overrides):
    w = get_workload(workload)
    return optimize(w.program(), w.pipeline_options("plutoplus", **overrides))


class TestEndToEnd:
    def test_dot_serial_without_relaxation(self):
        result = _opt("dot")
        assert result.tiled.parallel_levels() == []
        assert result.tiled.reduction_levels() == []

    def test_dot_parallel_with_relaxation(self):
        result = _opt("dot", parallel_reductions="privatize")
        assert result.tiled.reduction_levels() == [0]
        assert 0 in result.tiled.parallel_levels()
        assert result.scheduler_stats.reductions_detected == 1
        assert result.scheduler_stats.reductions_relaxed >= 1

    def test_privatized_python_source(self):
        result = _opt("dot", parallel_reductions="privatize")
        src = generate_python(result.tiled).python_source
        assert "# parallel reduction" in src
        assert "= 0.0" in src          # identity seed
        assert "s[()] = s[()] +" in src  # serial combine after the loop

    @pytest.mark.parametrize("name", ["dot", "l2norm", "tensor-contract"])
    def test_relaxed_result_matches_serial(self, name):
        w = get_workload(name)
        serial = optimize(w.program(), w.pipeline_options("plutoplus"))
        relaxed = optimize(
            w.program(),
            w.pipeline_options("plutoplus", parallel_reductions="privatize"),
        )
        params = dict(w.small_sizes)
        base = random_arrays(serial.program, params, seed=3)
        ref = {k: v.copy() for k, v in base.items()}
        out = {k: v.copy() for k, v in base.items()}
        serial.run(ref, params)
        relaxed.run(out, params)
        for k in sorted(base):
            assert np.allclose(ref[k], out[k], rtol=1e-9, atol=1e-11)

    def test_c_kernel_reduction_clause(self):
        result = _opt("dot", parallel_reductions="omp")
        from repro.codegen.c_emit import generate_c_kernel

        src = generate_c_kernel(result.tiled).source
        assert "reduction(+:" in src

    def test_c_display_source_has_no_racy_pragma(self):
        # display mode never rewrites the body, so a reduction row must not
        # carry a parallel pragma there — only the explanatory comment
        result = _opt("dot", parallel_reductions="omp")
        src = generate_c(result.tiled)
        assert "parallel reduction" in src
        assert "#pragma omp parallel for" not in src


class TestStatsCompat:
    """Pre-PR-10 manifests (no reduction/rar keys) must still parse."""

    @staticmethod
    def _old_record():
        # a pre-PR-10 manifest record: today's serialization never writes
        # the reduction keys at zero, so dropping them reproduces it exactly
        d = SchedulerStats(ilp_solves=4, hyperplanes_found=2).as_dict()
        assert "reductions_detected" not in d
        assert "reductions_relaxed" not in d
        return d

    def test_from_dict_tolerates_missing_keys(self):
        stats = SchedulerStats.from_dict(self._old_record())
        assert stats.reductions_detected == 0
        assert stats.reductions_relaxed == 0
        assert stats.ilp_solves == 4

    def test_round_trip_preserves_nonzero_counters(self):
        stats = SchedulerStats(reductions_detected=2, reductions_relaxed=3)
        again = SchedulerStats.from_dict(stats.as_dict())
        assert again.reductions_detected == 2
        assert again.reductions_relaxed == 3

    def test_dep_stats_omit_zero_rar(self):
        d = DepStats().as_dict()
        assert "rar_deps" not in d
        stats = DepStats()
        stats.rar_deps = 3
        assert stats.as_dict()["rar_deps"] == 3


class TestOptionsValidation:
    def test_bad_parallel_reductions_rejected(self):
        with pytest.raises(ValueError, match="parallel_reductions"):
            PipelineOptions(parallel_reductions="yes")

    def test_bad_rar_rejected(self):
        with pytest.raises(ValueError, match="rar"):
            PipelineOptions(rar="true")

    def test_defaults_absent_from_as_dict(self):
        d = PipelineOptions().as_dict()
        assert "rar" not in d
        assert "parallel_reductions" not in d

    def test_non_defaults_present(self):
        d = PipelineOptions(rar=True, parallel_reductions="omp").as_dict()
        assert d["rar"] is True
        assert d["parallel_reductions"] == "omp"
