"""Tests for the ILP variable naming scheme."""

from repro.core import (
    W_NAME,
    c0_name,
    c_name,
    csum_name,
    d_name,
    delta_name,
    deltal_name,
    u_name,
)
from repro.frontend import parse_program


def stmt():
    p = parse_program("for (i = 0; i < N; i++) A[i] = 1.0;", "p", params=("N",))
    return p.statements[0]


class TestNames:
    def test_accept_statement_or_string(self):
        s = stmt()
        assert c_name(s, "i") == c_name("S0", "i") == "c.S0.i"

    def test_all_distinct(self):
        s = stmt()
        names = {
            c_name(s, "i"), d_name(s, "N"), c0_name(s), csum_name(s),
            delta_name(s), deltal_name(s), u_name("N"), W_NAME,
        }
        assert len(names) == 8

    def test_per_statement_disjoint(self):
        assert c_name("A", "i") != c_name("B", "i")
        assert delta_name("A") != deltal_name("A")

    def test_paper_objective_grouping(self):
        """Names sort into the eq. (8) blocks used by the scheduler."""
        s = stmt()
        assert csum_name(s).startswith("csum.")
        assert delta_name(s).startswith("dz.")
        assert deltal_name(s).startswith("dl.")
