"""Structural warm-start: fingerprints, the skeleton store, replay parity.

Three layers:

* *fingerprint properties* (hypothesis) — the structural fingerprint must
  be invariant under everything a parameter sweep changes (program name,
  ``param_min`` values, schedule-irrelevant options) and must change under
  anything that reshapes the scheduling problem (statement body edits,
  domain-bound edits, schedule-relevant options);
* *store mechanics* — merge/get round-trips, invalid-record drops, the
  startup and opportunistic orphaned-tmp sweeps, env resolution;
* *replay parity* — a warm-started run must produce byte-identical
  schedule, tiled schedule, and generated code vs the cold run it
  shadows, for both the core scheduler and the diamond path, and the
  ``structural_path`` verdict must be miss / hit / fallback exactly when
  the store was empty / sufficient / value-invalidated.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import SchedulerStats
from repro.core.skeleton import (
    SKELETON_FORMAT_VERSION,
    SkeletonStore,
    WarmStart,
    skeleton_store_from_env,
    structural_fingerprint,
)
from repro.frontend import parse_program
from repro.frontend.serialize import program_to_dict
from repro.ilp.model import SolveStats
from repro.pipeline import PipelineOptions, optimize
from repro.workloads import get_workload


def _stencil(di: int, dj: int, name: str = "p", param_min=4) -> str:
    lb = max(0, -dj)
    src = f"""
    for (i = 0; i < N; i++)
        for (j = {lb}; j < N - {max(dj, 0)}; j++)
            A[i + {di}][j + {dj}] = 0.5 * A[i][j];
    """
    return parse_program(src, name, params=("N",), param_min=param_min)


def _fp(program, **overrides) -> str:
    options = PipelineOptions(**overrides)
    return structural_fingerprint(program_to_dict(program), options.as_dict())


@st.composite
def distance(draw):
    di = draw(st.integers(0, 2))
    dj = draw(st.integers(-2, 2))
    if di == 0 and dj <= 0:
        dj = 1
    return di, dj


class TestFingerprint:
    @given(distance(), st.integers(2, 100))
    @settings(max_examples=15, deadline=None)
    def test_invariant_under_rename_and_param_rescale(self, dist, pmin):
        """The whole point: a parameter sweep lands on one fingerprint."""
        di, dj = dist
        base = _fp(_stencil(di, dj, "orig", param_min=4))
        clone = _fp(_stencil(di, dj, "renamed-sweep-17", param_min=pmin))
        assert clone == base

    @given(distance(), distance())
    @settings(max_examples=15, deadline=None)
    def test_body_edit_changes_it(self, a, b):
        """Different access offsets → different dependence shape → new key."""
        fa, fb = _fp(_stencil(*a)), _fp(_stencil(*b))
        assert (fa == fb) == (a == b)

    def test_schedule_irrelevant_options_share_it(self):
        p = _stencil(1, 1)
        base = _fp(p)
        assert _fp(p, tile_size=64) == base
        assert _fp(p, tile=False) == base
        assert _fp(p, backend="c") == base

    def test_schedule_relevant_options_split_it(self):
        p = _stencil(1, 1)
        base = _fp(p)
        assert _fp(p, coeff_bound=7) != base
        assert _fp(p, fuse="max") != base
        assert _fp(p, scheduler="quick") != base

    def test_domain_edit_changes_it(self):
        src = """
        for (i = 2; i < N; i++)
            A[i] = A[i-1];
        """
        shifted = parse_program(src, "p", params=("N",), param_min=4)
        assert _fp(shifted) != _fp(_stencil(1, 0))


class TestWarmStart:
    def test_lookup_record_forget(self):
        w = WarmStart({"k1": {"status": "optimal", "assignment": {}}})
        assert w.lookup("k1")["status"] == "optimal"
        assert w.lookup("nope") is None
        assert not w.dirty

        w.record("k2", {"status": "optimal", "assignment": {"c": "1"}})
        assert w.dirty and "k2" in w.solves
        w.dirty = False
        w.record("k2", {"status": "other"})  # first writer wins
        assert w.solves["k2"]["status"] == "optimal" and not w.dirty

        w.forget("k1")
        assert w.lookup("k1") is None and w.dirty

    def test_non_dict_record_is_not_served(self):
        w = WarmStart({"k": "garbage"})
        assert w.lookup("k") is None


class TestSkeletonStore:
    FP = "ab" + "0" * 62

    def _rec(self):
        return {"s1": {"status": "optimal", "assignment": {"x": "2"}}}

    def test_merge_get_roundtrip(self, tmp_path):
        store = SkeletonStore(tmp_path)
        assert store.get(self.FP) is None
        store.merge(self.FP, self._rec(), meta={"program": "p"},
                    farkas={"flow:a->a@A": [3, 2]})
        # fresh instance: must come back from disk
        again = SkeletonStore(tmp_path)
        rec = again.get(self.FP)
        assert rec["solves"] == self._rec()
        assert rec["farkas"] == {"flow:a->a@A": [3, 2]}
        assert rec["meta"]["program"] == "p"
        assert again.disk_len() == 1

    def test_merge_is_additive_first_writer_wins(self, tmp_path):
        store = SkeletonStore(tmp_path)
        store.merge(self.FP, {"s1": {"status": "optimal", "assignment": {}}})
        merged = store.merge(self.FP, {
            "s1": {"status": "other"},
            "s2": {"status": "optimal", "assignment": {"y": "1"}},
        })
        assert merged["solves"]["s1"]["status"] == "optimal"
        assert "s2" in merged["solves"]

    def test_invalid_record_dropped(self, tmp_path):
        store = SkeletonStore(tmp_path)
        path = store.path_for(self.FP)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ not json")
        assert store.get(self.FP) is None
        assert store.stats.invalid_dropped == 1
        assert not path.exists()

        path.write_text(json.dumps({
            "version": SKELETON_FORMAT_VERSION + 1, "solves": {},
        }))
        assert store.get(self.FP) is None
        assert store.stats.invalid_dropped == 2

    def test_startup_sweeps_old_tmp_only(self, tmp_path):
        sub = tmp_path / "ab"
        sub.mkdir()
        old = sub / f"{self.FP}.tmp.999"
        old.write_text("x")
        import os
        os.utime(old, (1, 1))
        young = sub / f"{self.FP}.tmp.998"
        young.write_text("y")

        store = SkeletonStore(tmp_path)
        assert store.stats.tmp_swept == 1
        assert not old.exists() and young.exists()

    def test_opportunistic_sweep_every_n_merges(self, tmp_path):
        import os
        store = SkeletonStore(tmp_path, sweep_every=2)
        orphan = tmp_path / "cd" / "orphan.tmp.999"
        orphan.parent.mkdir()
        orphan.write_text("x")
        os.utime(orphan, (1, 1))

        store.merge(self.FP, self._rec())          # put 1: not due
        assert orphan.exists()
        store.merge("cd" + "0" * 62, self._rec())  # put 2: sweeps
        assert not orphan.exists()
        assert store.stats.tmp_swept == 1

    def test_memory_tier_serves_without_disk(self, tmp_path):
        store = SkeletonStore(tmp_path)
        store.merge(self.FP, self._rec())
        store.path_for(self.FP).unlink()
        assert store.get(self.FP)["solves"] == self._rec()  # memory hit

    def test_snapshot_shape(self, tmp_path):
        store = SkeletonStore(tmp_path)
        store.merge(self.FP, self._rec())
        snap = store.snapshot()
        assert snap["stores"] == 1 and snap["disk_entries"] == 1
        assert snap["root"] == str(tmp_path)


class TestEnvResolution:
    def test_unset_or_empty_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_SKELETON_CACHE", raising=False)
        assert skeleton_store_from_env() is None
        monkeypatch.setenv("REPRO_SKELETON_CACHE", "  ")
        assert skeleton_store_from_env() is None

    def test_legacy_mode_disables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SKELETON_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_EXACT_LEGACY", "1")
        assert skeleton_store_from_env() is None

    def test_memoized_per_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SKELETON_CACHE", str(tmp_path))
        assert skeleton_store_from_env() is skeleton_store_from_env()


class TestReplayParity:
    """Warm runs must be byte-identical to cold runs, not just legal."""

    def _same(self, a, b):
        assert a.schedule.to_dict() == b.schedule.to_dict()
        assert a.tiled.to_dict() == b.tiled.to_dict()
        assert a.code.python_source == b.code.python_source

    def test_miss_then_hit_identical(self, monkeypatch, tmp_path):
        p = _stencil(1, -1)
        opts = PipelineOptions()

        monkeypatch.delenv("REPRO_SKELETON_CACHE", raising=False)
        cold = optimize(_stencil(1, -1), opts)
        assert cold.scheduler_stats.structural_path is None

        monkeypatch.setenv("REPRO_SKELETON_CACHE", str(tmp_path))
        seed = optimize(p, opts)
        assert seed.scheduler_stats.structural_path == "miss"
        self._same(cold, seed)

        warm = optimize(
            _stencil(1, -1, "renamed"), PipelineOptions(tile_size=64)
        )
        assert warm.scheduler_stats.structural_path == "hit"
        assert warm.scheduler_stats.structural_warm_start > 0
        assert warm.scheduler_stats.solve.structural_warm_start > 0
        warm_dict, cold_dict = warm.schedule.to_dict(), cold.schedule.to_dict()
        assert warm_dict.pop("program") == "renamed"  # hit across the rename
        cold_dict.pop("program")
        assert warm_dict == cold_dict
        assert warm.code.python_source != cold.code.python_source  # tile_size

    def test_param_rescale_falls_back_identically(self, monkeypatch, tmp_path):
        opts = PipelineOptions()
        monkeypatch.setenv("REPRO_SKELETON_CACHE", str(tmp_path))
        seed = optimize(_stencil(1, -1), opts)
        assert seed.scheduler_stats.structural_path == "miss"

        monkeypatch.delenv("REPRO_SKELETON_CACHE")
        cold = optimize(_stencil(1, -1, param_min=40), opts)

        monkeypatch.setenv("REPRO_SKELETON_CACHE", str(tmp_path))
        fb = optimize(_stencil(1, -1, param_min=40), opts)
        assert fb.scheduler_stats.structural_path == "fallback"
        assert fb.scheduler_stats.structural_warm_start == 0
        self._same(cold, fb)

    def test_diamond_path_replays_identically(self, monkeypatch, tmp_path):
        w = get_workload("heat-1dp")
        opts = w.pipeline_options("plutoplus")

        monkeypatch.delenv("REPRO_SKELETON_CACHE", raising=False)
        cold = optimize(w.program(), opts)
        assert cold.used_diamond

        monkeypatch.setenv("REPRO_SKELETON_CACHE", str(tmp_path))
        seed = optimize(w.program(), opts)
        assert seed.scheduler_stats.structural_path == "miss"
        warm = optimize(w.program(), opts)
        assert warm.scheduler_stats.structural_path == "hit"
        assert warm.used_diamond
        self._same(cold, warm)

    def test_store_survives_poisoned_record(self, monkeypatch, tmp_path):
        """A corrupt stored assignment must fall back, not crash or skew."""
        monkeypatch.setenv("REPRO_SKELETON_CACHE", str(tmp_path))
        store = skeleton_store_from_env()
        seed = optimize(_stencil(1, 0), PipelineOptions())
        fp = structural_fingerprint(
            program_to_dict(_stencil(1, 0)), PipelineOptions().as_dict()
        )
        rec = store.get(fp)
        assert rec is not None and rec["solves"]
        poisoned = {
            k: {"status": "optimal", "assignment": {"bogus": "1"}}
            for k in rec["solves"]
        }
        store.merge(fp + "x", {})  # noop guard: wrong fp untouched below
        path = store.path_for(fp)
        rec["solves"] = poisoned
        path.write_text(json.dumps(rec))
        store._mem.clear()

        cold = optimize(_stencil(1, 0), PipelineOptions())
        assert cold.scheduler_stats.structural_path == "fallback"
        self._same(seed, cold)


class TestStatsCompat:
    def test_scheduler_stats_from_old_manifest(self):
        old = SchedulerStats().as_dict()
        old.pop("structural_warm_start")
        old.pop("structural_path")
        st = SchedulerStats.from_dict(old)
        assert st.structural_warm_start == 0
        assert st.structural_path is None

    def test_solve_stats_from_old_manifest(self):
        old = SolveStats().as_dict()
        old.pop("structural_warm_start")
        assert SolveStats.from_dict(old).structural_warm_start == 0
