"""Tests for orthogonal sub-spaces and the radix encodings (Sections 3.3-3.4)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    c_name,
    orthogonal_basis_rows,
    orthogonal_projector_rows,
    pluto_independence_constraints,
    plutoplus_independence_constraints,
    plutoplus_nonzero_constraints,
)
from repro.frontend import parse_program


def stmt_3d():
    src = "for (i = 0; i < N; i++) for (j = 0; j < N; j++) for (k = 0; k < N; k++) A[i][j][k] = 1;"
    return parse_program(src, "s3", params=("N",)).statements[0]


def stmt_2d():
    src = "for (i = 0; i < N; i++) for (j = 0; j < N; j++) A[i][j] = 1;"
    return parse_program(src, "s2", params=("N",)).statements[0]


class TestProjector:
    def test_empty_h_is_identity(self):
        assert orthogonal_projector_rows([], 3) == [
            [1, 0, 0], [0, 1, 0], [0, 0, 1],
        ]

    def test_paper_example_e1(self):
        # H = [1 0 0] -> perp spans {e2, e3} (Section 3.4)
        rows = orthogonal_projector_rows([[1, 0, 0]], 3)
        assert rows == [[0, 1, 0], [0, 0, 1]]

    def test_paper_example_skewed(self):
        # H = [1 1 0] -> rows like [1 -1 0] and [0 0 1]
        rows = orthogonal_projector_rows([[1, 1, 0]], 3)
        assert len(rows) == 2
        for r in rows:
            assert r[0] + r[1] == 0
        assert any(r[2] != 0 for r in rows)

    def test_full_rank_gives_empty(self):
        assert orthogonal_projector_rows([[1, 0], [0, 1]], 2) == []

    def test_dependent_h_rows_handled(self):
        rows = orthogonal_projector_rows([[1, 0, 0], [2, 0, 0]], 3)
        assert len(rows) == 2

    def test_rows_orthogonal_to_h(self):
        h = [[1, 2, 1]]
        for r in orthogonal_projector_rows(h, 3):
            assert sum(a * b for a, b in zip(h[0], r)) == 0


class TestRadixEncodings:
    """The radix trick must exclude exactly the zero vector over the box."""

    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_nonzero_exact_over_box(self, m):
        b = 2  # small bound: exhaustive check feasible
        src = "A[%s] = 1;" % "][".join("ijk"[:m])
        loops = "".join(
            f"for ({v} = 0; {v} < N; {v}++) " for v in "ijk"[:m]
        )
        stmt = parse_program(loops + src, "s", params=("N",)).statements[0]
        cons = plutoplus_nonzero_constraints(stmt, b)
        names = [c_name(stmt, it) for it in stmt.space.dims]
        for combo in itertools.product(range(-b, b + 1), repeat=m):
            point = dict(zip(names, combo))
            # at least one delta value must make all constraints hold iff nonzero
            feasible = any(
                all(
                    con.is_satisfied({**point, f"dz.{stmt.name}": dz})
                    for con in cons
                )
                for dz in (0, 1)
            )
            assert feasible == (any(combo)), combo

    def test_paper_base5_coefficients(self):
        stmt = stmt_2d()
        cons = plutoplus_nonzero_constraints(stmt, 4)
        # radix is b+1 = 5: weights 1 and 5, big-M 25 (eqs. (5)/(6))
        weights = sorted(
            abs(v)
            for con in cons
            for k, v in con.coeffs.items()
            if k.startswith("c.")
        )
        assert weights == [1, 1, 5, 5]
        deltas = {
            abs(v)
            for con in cons
            for k, v in con.coeffs.items()
            if k.startswith("dz.")
        }
        assert deltas == {25}

    def test_independence_paper_example(self):
        """H = [1 1], b = 4: perp row is +-[1 -1], max row value 8, radix 9."""
        stmt = stmt_2d()
        cons = plutoplus_independence_constraints(stmt, [[1, 1]], 4)
        assert len(cons) == 2
        big_ms = {
            abs(v)
            for con in cons
            for k, v in con.coeffs.items()
            if k.startswith("dl.")
        }
        assert big_ms == {9}

    def test_independence_excludes_exactly_dependents(self):
        b = 2
        stmt = stmt_2d()
        h = [[1, 1]]
        cons = plutoplus_independence_constraints(stmt, h, b)
        names = [c_name(stmt, it) for it in stmt.space.dims]
        for combo in itertools.product(range(-b, b + 1), repeat=2):
            point = dict(zip(names, combo))
            feasible = any(
                all(
                    con.is_satisfied({**point, f"dl.{stmt.name}": dl})
                    for con in cons
                )
                for dl in (0, 1)
            )
            # dependent on (1,1) means c = k*(1,1): c1 == c2
            independent = combo[0] != combo[1]
            assert feasible == independent, combo

    def test_full_rank_no_constraints(self):
        stmt = stmt_2d()
        assert plutoplus_independence_constraints(stmt, [[1, 0], [0, 1]], 4) == []


class TestPlutoIndependence:
    def test_level0_sum_constraint(self):
        stmt = stmt_2d()
        cons = pluto_independence_constraints(stmt, [])
        # c_i >= 0 rows plus the sum >= 1 row
        sums = [c for c in cons if c.const == -1]
        assert len(sums) == 1
        assert set(sums[0].coeffs.values()) == {1}

    def test_restricts_to_nonneg_orthant(self):
        stmt = stmt_3d()
        cons = pluto_independence_constraints(stmt, [[1, 1, 0]])
        names = [c_name(stmt, it) for it in stmt.space.dims]
        # (1, -1, 0): in the orthogonal space but outside the chosen orthant?
        # row r = [1,-1,0]: r.c = 2 >= 0 OK; the sum row decides.
        point = dict(zip(names, (0, 0, 1)))  # e3: inside
        assert all(con.is_satisfied(point) for con in cons)
        point = dict(zip(names, (-1, 1, 0)))  # -e1+e2: r.c = -2 < 0 -> excluded
        assert not all(con.is_satisfied(point) for con in cons)

    def test_full_rank_no_constraints(self):
        stmt = stmt_2d()
        assert pluto_independence_constraints(stmt, [[1, 0], [0, 1]]) == []


class TestBasisRows:
    @given(
        st.lists(
            st.lists(st.integers(-3, 3), min_size=3, max_size=3),
            min_size=1,
            max_size=2,
        )
    )
    @settings(max_examples=40)
    def test_basis_orthogonal(self, h):
        rows = orthogonal_basis_rows(h, 3)
        for r in rows:
            for hrow in h:
                assert sum(a * b for a, b in zip(hrow, r)) == 0
