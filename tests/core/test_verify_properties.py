"""Property tests: the verifier agrees with construction and catches damage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PlutoScheduler,
    Schedule,
    ScheduleRow,
    SchedulerOptions,
    verify_schedule,
)
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program
from repro.polyhedra import AffExpr


@st.composite
def uniform_program(draw):
    """Small nests with a forward uniform dependence."""
    di = draw(st.integers(0, 1))
    dj = draw(st.integers(-1, 1))
    if di == 0 and dj <= 0:
        dj = 1
    lb = max(0, -dj)
    src = f"""
    for (i = 0; i < N; i++)
        for (j = {lb}; j < N - {max(dj, 0)}; j++)
            A[i + {di}][j + {dj}] = 0.5 * A[i][j];
    """
    return src


class TestVerifierProperties:
    @given(uniform_program(), st.sampled_from(["pluto", "plutoplus"]))
    @settings(max_examples=10, deadline=None)
    def test_scheduler_output_verifies(self, src, algo):
        p = parse_program(src, "p", params=("N",), param_min=4)
        ddg = DependenceGraph(p, compute_dependences(p))
        s = PlutoScheduler(p, ddg, SchedulerOptions(algorithm=algo)).schedule()
        assert verify_schedule(s, ddg).legal

    @given(uniform_program())
    @settings(max_examples=10, deadline=None)
    def test_time_reversal_caught(self, src):
        """Negating the level that carries the dependence must be flagged."""
        p = parse_program(src, "p", params=("N",), param_min=4)
        ddg = DependenceGraph(p, compute_dependences(p))
        s = PlutoScheduler(p, ddg, SchedulerOptions()).schedule()
        assert verify_schedule(s, ddg).legal

        # find the first loop level that strictly carries the dependence and
        # negate it: the resulting schedule must NOT verify
        (dep,) = ddg.deps
        for idx, row in enumerate(s.rows):
            if row.kind != "loop":
                continue
            expr = dep.distance_expr(
                row.expr_for(dep.source), row.expr_for(dep.target)
            )
            mx = dep.polyhedron.max_of(expr)
            if mx is not None and mx >= 1:
                damaged = Schedule(p)
                for j, r in enumerate(s.rows):
                    if j == idx:
                        damaged.add_row(
                            ScheduleRow(
                                "loop",
                                {k: -e for k, e in r.exprs.items()},
                            )
                        )
                    else:
                        damaged.add_row(r)
                report = verify_schedule(damaged, ddg)
                assert not report.legal
                return
        pytest.skip("no strictly-carrying level (all-zero distances)")
