"""Tests for the independent schedule legality verifier."""

import pytest

from repro.core import (
    PlutoScheduler,
    Schedule,
    ScheduleRow,
    SchedulerOptions,
    verify_schedule,
)
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program
from repro.polyhedra import AffExpr


def setup(src, params=("N",), param_min=3):
    p = parse_program(src, "p", params=params, param_min=param_min)
    ddg = DependenceGraph(p, compute_dependences(p))
    return p, ddg


FIG1 = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i+1][j+1] = 2.0 * A[i][j];
"""


def hand_schedule(p, rows):
    s = Schedule(p)
    stmt = p.statements[0]
    for terms in rows:
        s.add_row(
            ScheduleRow(
                "loop",
                {stmt.name: AffExpr.from_terms(stmt.space, terms)},
            )
        )
    return s


class TestVerifier:
    def test_identity_is_legal(self):
        p, ddg = setup(FIG1)
        s = hand_schedule(p, [{"i": 1}, {"j": 1}])
        assert verify_schedule(s, ddg).legal

    def test_full_reversal_is_illegal(self):
        p, ddg = setup(FIG1)
        s = hand_schedule(p, [{"i": -1}, {"j": -1}])
        report = verify_schedule(s, ddg)
        assert not report.legal
        assert report.violations

    def test_skew_is_legal(self):
        p, ddg = setup(FIG1)
        s = hand_schedule(p, [{"i": 1, "j": -1}, {"j": 1}])
        assert verify_schedule(s, ddg).legal

    def test_rank_deficient_schedule_unordered(self):
        # only one dimension: the (1,1) dep is ordered, but a same-hyperplane
        # pair stays unordered? phi = i orders all pairs of this dep (i-dist 1)
        p, ddg = setup(FIG1)
        s = hand_schedule(p, [{"i": 1}])
        assert verify_schedule(s, ddg).legal  # i-distance is exactly 1

    def test_weak_only_schedule_flagged(self):
        # phi = i - j has distance 0 for every pair: never strictly ordered
        p, ddg = setup(FIG1)
        s = hand_schedule(p, [{"i": 1, "j": -1}])
        report = verify_schedule(s, ddg)
        assert not report.legal
        assert report.unordered and not report.violations
        weak = verify_schedule(s, ddg, require_total_order=False)
        assert weak.legal

    def test_scalar_row_orders_statements(self):
        src = """
        for (i = 0; i < N; i++) {
            B[i] = 2.0 * A[i];
            C[i] = 3.0 * B[i];
        }
        """
        p, ddg = setup(src)
        s = Schedule(p)
        s.add_row(
            ScheduleRow(
                "loop",
                {st.name: AffExpr.var(st.space, "i") for st in p.statements},
            )
        )
        s.add_scalar_row({"S0": 0, "S1": 1})
        assert verify_schedule(s, ddg).legal
        # reversed statement order: backwards
        s2 = Schedule(p)
        s2.add_row(
            ScheduleRow(
                "loop",
                {st.name: AffExpr.var(st.space, "i") for st in p.statements},
            )
        )
        s2.add_scalar_row({"S0": 1, "S1": 0})
        assert not verify_schedule(s2, ddg).legal

    def test_scheduler_output_always_verifies(self):
        for algo in ("pluto", "plutoplus"):
            for src, params, pmin in (
                (FIG1, ("N",), 3),
                (
                    """
                    for (t = 0; t < T; t++)
                        for (i = 1; i < N-1; i++)
                            A[t+1][i] = 0.3*(A[t][i-1]+A[t][i]+A[t][i+1]);
                    """,
                    ("T", "N"),
                    4,
                ),
            ):
                p, ddg = setup(src, params, pmin)
                s = PlutoScheduler(p, ddg, SchedulerOptions(algorithm=algo)).schedule()
                assert verify_schedule(s, ddg).legal, (algo, src[:40])

    def test_diamond_verifies(self):
        from repro.core import find_diamond_schedule, index_set_split
        from repro.workloads.periodic import heat_1dp

        p, _ = index_set_split(heat_1dp())
        ddg = DependenceGraph(p, compute_dependences(p))
        s = find_diamond_schedule(p, ddg, SchedulerOptions(algorithm="plutoplus"))
        assert verify_schedule(s, ddg).legal

    def test_tiled_schedule_accepted(self):
        from repro.core import mark_parallelism, tile_schedule

        p, ddg = setup(FIG1)
        s = PlutoScheduler(p, ddg, SchedulerOptions()).schedule()
        mark_parallelism(s, ddg)
        ts = tile_schedule(s, tile_size=4)
        assert verify_schedule(ts, ddg).legal
