"""Tests for band tiling and schedule containers."""

import pytest

from repro.core import (
    Band,
    PlutoScheduler,
    Schedule,
    SchedulerOptions,
    mark_parallelism,
    tile_schedule,
    untiled_schedule,
)
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program

JACOBI = """
for (t = 0; t < T; t++) {
    for (i = 1; i < N - 1; i++)
        B[i] = 0.33 * (A[i-1] + A[i] + A[i+1]);
    for (i = 1; i < N - 1; i++)
        A[i] = B[i];
}
"""


@pytest.fixture(scope="module")
def jacobi_schedule():
    p = parse_program(JACOBI, "jacobi", params=("T", "N"), param_min=4)
    ddg = DependenceGraph(p, compute_dependences(p))
    s = PlutoScheduler(p, ddg, SchedulerOptions(algorithm="plutoplus")).schedule()
    mark_parallelism(s, ddg)
    return p, s


class TestTileSchedule:
    def test_band_tiled_once(self, jacobi_schedule):
        p, s = jacobi_schedule
        ts = tile_schedule(s, tile_size=16)
        kinds = [r.kind for r in ts.rows]
        # 2-wide band -> 2 tile rows + 2 point rows, then the beta scalar
        assert kinds == ["tile", "tile", "loop", "loop", "scalar"]

    def test_tile_sizes_recorded(self, jacobi_schedule):
        _, s = jacobi_schedule
        ts = tile_schedule(s, tile_size=16)
        assert all(r.tile_size == 16 for r in ts.rows if r.kind == "tile")

    def test_narrow_band_not_tiled(self, jacobi_schedule):
        _, s = jacobi_schedule
        ts = tile_schedule(s, min_band_width=3)
        assert ts.tile_levels() == []

    def test_per_band_tile_sizes(self, jacobi_schedule):
        _, s = jacobi_schedule
        ts = tile_schedule(s, tile_size={0: 8})
        assert {r.tile_size for r in ts.rows if r.kind == "tile"} == {8}

    def test_untiled_mirror(self, jacobi_schedule):
        _, s = jacobi_schedule
        ts = untiled_schedule(s)
        assert ts.depth == s.depth
        assert [r.kind for r in ts.rows] == [r.kind for r in s.rows]

    def test_bands_cover_tile_and_point(self, jacobi_schedule):
        _, s = jacobi_schedule
        ts = tile_schedule(s, tile_size=4)
        tile_band = ts.bands[0]
        point_band = ts.bands[1]
        assert tile_band.width == 2 and point_band.width == 2
        assert tile_band.end + 1 == point_band.start

    def test_concurrent_start_tiles_stay_sequential(self):
        """Diamond hyperplanes are dependence-non-negative pointwise but can
        still be carried at tile granularity — annotating the first tile
        loop parallel raced under real OpenMP threads (exec_threads gate),
        so tile rows are never marked; the band flag alone records
        concurrent start for the analytic layers."""
        from repro.core import find_diamond_schedule, index_set_split
        from repro.workloads.periodic import heat_1dp

        p, _ = index_set_split(heat_1dp())
        ddg = DependenceGraph(p, compute_dependences(p))
        s = find_diamond_schedule(p, ddg, SchedulerOptions(algorithm="plutoplus"))
        mark_parallelism(s, ddg)
        ts = tile_schedule(s, tile_size=8)
        tiles = [r for r in ts.rows if r.kind == "tile"]
        assert not any(t.parallel for t in tiles)
        assert any(b.concurrent_start for b in ts.bands)


class TestScheduleContainer:
    def test_h_rows_skips_zero_rows(self, jacobi_schedule):
        p, s = jacobi_schedule
        for st_ in p.statements:
            rows = s.h_rows(st_)
            assert all(any(r) for r in rows)

    def test_map_for_depth(self, jacobi_schedule):
        p, s = jacobi_schedule
        m = s.map_for(p.statements[0])
        assert m.n_out == s.depth

    def test_band_at(self, jacobi_schedule):
        _, s = jacobi_schedule
        b = s.band_at(0)
        assert isinstance(b, Band) and b.start == 0

    def test_pretty_mentions_bands(self, jacobi_schedule):
        _, s = jacobi_schedule
        assert "band[" in s.pretty()
