"""Tests for L2 tiling, intra-tile optimization, and fusion policies."""

import pytest

from repro.core import (
    PlutoScheduler,
    SchedulerOptions,
    l2_tile_schedule,
    mark_parallelism,
    optimize_intra_tile,
    tile_schedule,
)
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program
from repro.runtime import validate_transformation

STENCIL = """
for (t = 0; t < T; t++)
    for (i = 1; i < N-1; i++)
        A[t+1][i] = 0.3 * (A[t][i-1] + A[t][i] + A[t][i+1]);
"""

MATMUL = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        for (k = 0; k < N; k++)
            C[i][j] = C[i][j] + A[i][k] * B[k][j];
"""


def tiled(src, params, param_min=3, ts=4, algo="plutoplus"):
    p = parse_program(src, "p", params=params, param_min=param_min)
    ddg = DependenceGraph(p, compute_dependences(p))
    s = PlutoScheduler(p, ddg, SchedulerOptions(algorithm=algo)).schedule()
    mark_parallelism(s, ddg)
    return p, ddg, tile_schedule(s, tile_size=ts)


class TestL2Tiling:
    def test_structure(self):
        p, _, ts = tiled(STENCIL, ("T", "N"), 4)
        l2 = l2_tile_schedule(ts, ratio=4)
        kinds = [(r.kind, r.tile_size) for r in l2.rows]
        assert kinds[:4] == [("tile", 16), ("tile", 16), ("tile", 4), ("tile", 4)]

    def test_validates(self):
        p, _, ts = tiled(STENCIL, ("T", "N"), 4, ts=2)
        l2 = l2_tile_schedule(ts, ratio=2)
        assert validate_transformation(p, l2, {"T": 6, "N": 12}).ok

    def test_matmul_l2_validates(self):
        p, _, ts = tiled(MATMUL, ("N",), 3, ts=2)
        l2 = l2_tile_schedule(ts, ratio=2)
        assert validate_transformation(p, l2, {"N": 6}).ok

    def test_bad_ratio_rejected(self):
        p, _, ts = tiled(STENCIL, ("T", "N"), 4)
        with pytest.raises(ValueError):
            l2_tile_schedule(ts, ratio=1)

    def test_untouched_without_tile_bands(self):
        from repro.core import untiled_schedule

        p = parse_program(STENCIL, "p", params=("T", "N"), param_min=4)
        ddg = DependenceGraph(p, compute_dependences(p))
        s = PlutoScheduler(p, ddg, SchedulerOptions()).schedule()
        ts = untiled_schedule(s)
        l2 = l2_tile_schedule(ts, ratio=4)
        assert [r.kind for r in l2.rows] == [r.kind for r in ts.rows]


class TestIntraTile:
    def test_moves_parallel_innermost(self):
        p, _, ts = tiled(MATMUL, ("N",), 3)
        # matmul point band: some level is parallel (i or j), k carries C
        opt = optimize_intra_tile(ts)
        point_band = [b for b in opt.bands if opt.rows[b.start].kind == "loop"]
        if point_band:
            inner = opt.rows[point_band[0].end]
            # if the band had any parallel level it is now innermost
            had_parallel = any(
                ts.rows[l].parallel for b in ts.bands for l in b.levels()
                if ts.rows[l].kind == "loop"
            )
            if had_parallel:
                assert inner.parallel

    def test_validates_after_rotation(self):
        p, _, ts = tiled(MATMUL, ("N",), 3, ts=2)
        opt = optimize_intra_tile(ts)
        assert validate_transformation(p, opt, {"N": 6}).ok

    def test_noop_when_already_inner_parallel(self):
        p, _, ts = tiled(STENCIL, ("T", "N"), 4)
        once = optimize_intra_tile(ts)
        twice = optimize_intra_tile(once)
        assert [id(r.exprs) for r in once.rows] != None  # smoke
        assert [r.kind for r in once.rows] == [r.kind for r in twice.rows]


class TestFusionPolicies:
    SRC = """
    for (i = 0; i < N; i++)
        B[i] = 2.0 * A[i];
    for (i = 0; i < N; i++)
        C[i] = 3.0 * B[i];
    """

    def _schedule(self, fuse):
        p = parse_program(self.SRC, "p", params=("N",))
        ddg = DependenceGraph(p, compute_dependences(p))
        s = PlutoScheduler(p, ddg, SchedulerOptions(fuse=fuse)).schedule()
        return p, s

    def test_max_fuses(self):
        p, s = self._schedule("max")
        # both statements share the loop row (non-constant for both)
        first_loop = next(r for r in s.rows if r.kind == "loop")
        assert not first_loop.expr_for("S0").is_constant()
        assert not first_loop.expr_for("S1").is_constant()

    def test_no_distributes(self):
        p, s = self._schedule("no")
        assert s.rows[0].kind == "scalar"
        assert s.rows[0].expr_for("S0").const_term != s.rows[0].expr_for("S1").const_term

    def test_smart_cuts_dimension_mismatch(self):
        src = """
        for (i = 0; i < N; i++)
            x[i] = A[i][0];
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
                A[i][j] = A[i][j] + x[i];
        """
        p = parse_program(src, "p", params=("N",))
        ddg = DependenceGraph(p, compute_dependences(p))
        s = PlutoScheduler(p, ddg, SchedulerOptions(fuse="smart")).schedule()
        assert s.rows[0].kind == "scalar"  # 1-d and 2-d SCCs separated upfront

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            SchedulerOptions(fuse="aggressive")

    @pytest.mark.parametrize("fuse", ["smart", "max", "no"])
    def test_all_policies_valid(self, fuse):
        from repro.core import untiled_schedule

        p = parse_program(self.SRC, "p", params=("N",))
        ddg = DependenceGraph(p, compute_dependences(p))
        s = PlutoScheduler(p, ddg, SchedulerOptions(fuse=fuse)).schedule()
        assert validate_transformation(p, untiled_schedule(s), {"N": 8}).ok
