"""Tests for diamond tiling (concurrent start; Fig. 4g)."""

import pytest

from repro.core import (
    SchedulerOptions,
    find_diamond_schedule,
    index_set_split,
)
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program
from repro.workloads.periodic import heat_1dp


@pytest.fixture(scope="module")
def split_heat():
    p, _ = index_set_split(heat_1dp())
    ddg = DependenceGraph(p, compute_dependences(p))
    return p, ddg


class TestDiamondOnPeriodicHeat:
    def test_plutoplus_finds_fig4_transformation(self, split_heat):
        p, ddg = split_heat
        s = find_diamond_schedule(p, ddg, SchedulerOptions(algorithm="plutoplus"))
        assert s is not None
        maps = {name: s.map_for(name) for name in ("S0_m", "S0_p")}
        # Fig. 4g(d): one half gets (t+i, t-i), the other (t-i+N, t+i-N)
        plus_half = maps["S0_p"]
        minus_half = maps["S0_m"]
        pm = [
            [e.coeff_of("t") for e in plus_half],
            [e.coeff_of("i") for e in plus_half],
        ]
        assert pm == [[1, 1], [1, -1]] or pm == [[1, 1], [-1, 1]]
        # the reversed half carries the parametric shift N
        assert any(e.coeff_of("N") != 0 for e in minus_half)

    def test_band_is_concurrent_start(self, split_heat):
        p, ddg = split_heat
        s = find_diamond_schedule(p, ddg, SchedulerOptions(algorithm="plutoplus"))
        assert s.bands[0].concurrent_start
        assert s.bands[0].width == 2

    def test_all_deps_satisfied(self, split_heat):
        p, ddg = split_heat
        s = find_diamond_schedule(p, ddg, SchedulerOptions(algorithm="plutoplus"))
        assert s is not None
        assert not ddg.unsatisfied()

    def test_classic_pluto_fails(self, split_heat):
        """The reversal needs a negative coefficient: classic Pluto's ILP is
        infeasible — the paper's core claim."""
        p, ddg = split_heat
        s = find_diamond_schedule(p, ddg, SchedulerOptions(algorithm="pluto"))
        assert s is None

    def test_band_distances_nonnegative_everywhere(self, split_heat):
        """Full permutability: every dependence has distance >= 0 at every
        band level (checked exactly)."""
        p, ddg = split_heat
        s = find_diamond_schedule(p, ddg, SchedulerOptions(algorithm="plutoplus"))
        for d in ddg.deps:
            for level in s.bands[0].levels():
                row = s.rows[level]
                mn = d.polyhedron.min_of(
                    d.distance_expr(row.expr_for(d.source), row.expr_for(d.target))
                )
                assert mn is not None and mn >= 0


class TestDiamondGuards:
    def test_no_common_time_iterator(self):
        src = """
        for (i = 0; i < N; i++) A[i] = 1.0;
        for (j = 0; j < N; j++) B[j] = 2.0;
        """
        p = parse_program(src, "p", params=("N",))
        ddg = DependenceGraph(p, compute_dependences(p))
        assert find_diamond_schedule(p, ddg) is None

    def test_one_dimensional_statements_rejected(self):
        src = "for (t = 0; t < T; t++) A[t+1] = A[t];"
        p = parse_program(src, "p", params=("T",))
        ddg = DependenceGraph(p, compute_dependences(p))
        assert find_diamond_schedule(p, ddg) is None

    def test_nonperiodic_jacobi_gets_diamond(self):
        """Plain (non-periodic) stencils admit diamonds too ([2])."""
        src = """
        for (t = 0; t < T; t++)
            for (i = 1; i < N-1; i++)
                A[t+1][i] = 0.3 * (A[t][i-1] + A[t][i] + A[t][i+1]);
        """
        p = parse_program(src, "p", params=("T", "N"), param_min=4)
        ddg = DependenceGraph(p, compute_dependences(p))
        s = find_diamond_schedule(p, ddg, SchedulerOptions(algorithm="plutoplus"))
        assert s is not None
        assert s.bands[0].concurrent_start
