"""Tests for Farkas-lemma constraint generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bounding_constraints, c0_name, c_name, legality_constraints
from repro.deps import compute_dependences
from repro.frontend import parse_program
from repro.ilp import ILPModel, ILPStatus, solve_ilp


def single_dep(src, params=("N",), kind="raw"):
    p = parse_program(src, "p", params=params)
    deps = [d for d in compute_dependences(p) if d.kind == kind]
    assert deps, "expected at least one dependence"
    return p, deps[0]


def build_model_for(dep, constraints, bound=4):
    """A small model over the coefficient variables the constraints use."""
    m = ILPModel()
    names = set()
    for con in constraints:
        names.update(con.coeffs)
    for n in sorted(names):
        if n.startswith("c.") :
            m.add_variable(n, lower=-bound, upper=bound)
        else:
            m.add_variable(n, lower=0)
    for con in constraints:
        m.add_constraint(con.coeffs, con.const, con.equality)
    return m


UNIFORM_11 = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i+1][j+1] = 2.0 * A[i][j];
"""


class TestLegality:
    def test_identity_hyperplanes_feasible(self):
        p, dep = single_dep(UNIFORM_11)
        cons = legality_constraints(dep)
        m = build_model_for(dep, cons)
        s = dep.source
        # phi = i  (c_i = 1, c_j = 0) is legal for dep (1,1)
        fix = [
            ({c_name(s, "i"): 1}, -1),
            ({c_name(s, "j"): 1}, 0),
        ]
        for coeffs, const in fix:
            m.add_constraint(coeffs, const, equality=True)
        assert solve_ilp(m, {}).is_optimal

    def test_reversal_infeasible_for_forward_dep(self):
        p, dep = single_dep(UNIFORM_11)
        cons = legality_constraints(dep)
        m = build_model_for(dep, cons)
        s = dep.source
        # phi = -i - j has distance -2 < 0: must be cut off
        m.add_constraint({c_name(s, "i"): 1}, 1, equality=True)   # c_i = -1
        m.add_constraint({c_name(s, "j"): 1}, 1, equality=True)   # c_j = -1
        res = solve_ilp(m, {})
        assert res.status == ILPStatus.INFEASIBLE

    def test_negative_skew_feasible_when_legal(self):
        p, dep = single_dep(UNIFORM_11)
        cons = legality_constraints(dep)
        m = build_model_for(dep, cons)
        s = dep.source
        # phi = i - j has distance 0 for dep (1,1): legal
        m.add_constraint({c_name(s, "i"): 1}, -1, equality=True)
        m.add_constraint({c_name(s, "j"): 1}, 1, equality=True)
        assert solve_ilp(m, {}).is_optimal

    def test_constraints_reference_both_statements(self):
        src = """
        for (i = 0; i < N; i++)
            B[i] = 2.0 * A[i];
        for (i = 0; i < N; i++)
            C[i] = 3.0 * B[i];
        """
        p, dep = single_dep(src)
        cons = legality_constraints(dep)
        names = set()
        for con in cons:
            names.update(con.coeffs)
        assert any(dep.source.name in n for n in names)
        assert any(dep.target.name in n for n in names)


class TestBounding:
    def test_u_w_appear(self):
        p, dep = single_dep(UNIFORM_11)
        cons = bounding_constraints(dep)
        names = set()
        for con in cons:
            names.update(con.coeffs)
        assert "w" in names or any(n.startswith("u.") for n in names)

    def test_w_lower_bound_for_identity(self):
        """With phi = i the distance is exactly 1, so w >= 1 when u = 0."""
        p, dep = single_dep(UNIFORM_11)
        cons = bounding_constraints(dep)
        m = build_model_for(dep, cons)
        s = dep.source
        for extra in ("w", "u.N"):
            if extra not in m.variables:
                m.add_variable(extra, lower=0)
        m.add_constraint({c_name(s, "i"): 1}, -1, equality=True)
        m.add_constraint({c_name(s, "j"): 1}, 0, equality=True)
        m.add_constraint({"u.N": 1}, 0, equality=True)  # u = 0
        res = solve_ilp(m, {"w": 1})
        assert res.is_optimal
        assert res.assignment["w"] >= 1


class TestSoundnessProperty:
    """Farkas output must admit exactly the legal hyperplanes (checked by
    sampling candidate hyperplanes and comparing with the exact distance)."""

    @given(
        ci=st.integers(-2, 2),
        cj=st.integers(-2, 2),
    )
    @settings(max_examples=25, deadline=None)
    def test_legality_matches_exact_min_distance(self, ci, cj):
        from repro.polyhedra import AffExpr

        p, dep = single_dep(UNIFORM_11)
        cons = legality_constraints(dep)
        m = build_model_for(dep, cons)
        s = dep.source
        m.add_constraint({c_name(s, "i"): 1}, -ci, equality=True)
        m.add_constraint({c_name(s, "j"): 1}, -cj, equality=True)
        # free shift allowed; pin it to zero for exactness
        if c0_name(s) in m.variables:
            m.add_constraint({c0_name(s): 1}, 0, equality=True)
        feasible = solve_ilp(m, {}).is_optimal

        phi = AffExpr.from_terms(s.space, {"i": ci, "j": cj})
        mn = dep.min_distance(phi, phi)
        exact_legal = mn is not None and mn >= 0
        assert feasible == exact_legal
