"""Tests for the public `repro.api` facade and result serialization."""

import pickle

import pytest

import repro
from repro import api
from repro.pipeline import OptimizationResult, PipelineOptions

# three cheap workloads spanning plain / ISS / ISS+diamond pipelines
ROUND_TRIP_WORKLOADS = ["fig1-skew", "fig3-symmetric-deps", "heat-1dp"]


class TestFacadeSurface:
    def test_top_level_reexports(self):
        for name in ("optimize", "analyze_dependences", "verify",
                     "list_workloads", "PipelineOptions", "OptimizationResult"):
            assert getattr(repro, name) is getattr(api, name)

    def test_deep_imports_still_work(self):
        from repro.pipeline import optimize as deep_optimize

        assert deep_optimize is api.optimize

    def test_list_workloads(self):
        names = api.list_workloads()
        assert "gemm" in names and "heat-1dp" in names
        periodic = api.list_workloads("periodic")
        assert "heat-1dp" in periodic and "gemm" not in periodic

    def test_analyze_dependences_by_name(self):
        deps = api.analyze_dependences("fig1-skew")
        assert deps and all(hasattr(d, "polyhedron") for d in deps)

    def test_analyze_dependences_type_error(self):
        with pytest.raises(TypeError, match="Program or a workload name"):
            api.analyze_dependences(42)

    def test_verify_result(self):
        result = api.optimize("fig1-skew", PipelineOptions(tile=False))
        report = api.verify(result)
        assert report.legal

    def test_verify_schedule_needs_program(self):
        result = api.optimize("fig1-skew", PipelineOptions(tile=False))
        with pytest.raises(TypeError, match="requires the program"):
            api.verify(result.schedule)
        assert api.verify(result.schedule, "fig1-skew").legal


class TestPipelineOptionsSurface:
    def test_keyword_only(self):
        with pytest.raises(TypeError):
            PipelineOptions("pluto")

    def test_dict_round_trip(self):
        opts = PipelineOptions(algorithm="pluto", iss=True, tile_size=8)
        assert PipelineOptions.from_dict(opts.as_dict()) == opts

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown PipelineOptions fields"):
            PipelineOptions.from_dict({"algorithm": "pluto", "warp_drive": 9})


class TestResultSerialization:
    @pytest.mark.parametrize("workload", ROUND_TRIP_WORKLOADS)
    def test_json_round_trip_equal(self, workload):
        from repro.workloads import get_workload

        w = get_workload(workload)
        result = api.optimize(workload, w.pipeline_options("plutoplus"))
        rebuilt = OptimizationResult.from_json(result.to_json())
        assert rebuilt == result

    def test_pickle_round_trip_after_compile(self):
        result = api.optimize("fig1-skew", PipelineOptions(tile=False))
        assert callable(result.code.function)  # force the exec'd handle
        rebuilt = pickle.loads(pickle.dumps(result))
        assert rebuilt == result
        assert callable(rebuilt.code.function)  # lazily recompiled

    def test_rebuilt_kernel_executes(self):
        import numpy as np

        result = api.optimize("fig1-skew", PipelineOptions(tile=False))
        rebuilt = OptimizationResult.from_json(result.to_json())
        n = 6
        a1 = np.arange(float((n + 1) * (n + 1))).reshape(n + 1, n + 1)
        a2 = a1.copy()
        result.code.run({"A": a1}, {"N": n})
        rebuilt.code.run({"A": a2}, {"N": n})
        assert np.array_equal(a1, a2)

    def test_version_gate(self):
        result = api.optimize("fig1-skew", PipelineOptions(tile=False))
        import json

        payload = json.loads(result.to_json())
        payload["version"] = 999
        with pytest.raises(ValueError, match="format v999"):
            OptimizationResult.from_json(json.dumps(payload))
