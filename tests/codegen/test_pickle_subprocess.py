"""GeneratedCode pickling across process boundaries.

The compiled kernel handle (``_func``) is a cache: ``__getstate__`` drops
it, and ``function()`` rebuilds it by re-exec'ing the generated source.
The suite engine and the serving daemon both ship results between
processes, so the round trip is exercised here in a *fresh* interpreter —
a subprocess that never saw the objects being unpickled — not just via an
in-process ``pickle.loads``.
"""

import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np

import repro
from repro.frontend import parse_program
from repro.pipeline import PipelineOptions, optimize
from repro.runtime import random_arrays

SRC = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
        C[i][j] = 0.0;
        for (k = 0; k < N; k++)
            C[i][j] = C[i][j] + A[i][k] * B[k][j];
    }
"""

PARAMS = {"N": 5}


def _result():
    program = parse_program(SRC, "gemm-pickle", params=("N",))
    return optimize(program, PipelineOptions(tile=True, tile_size=2))


def _checksum(result) -> float:
    arrays = random_arrays(result.source_program, PARAMS, seed=7)
    result.code.run(arrays, PARAMS)
    return float(np.sum(arrays["C"]))


class TestPickleRoundTrip:
    def test_getstate_drops_compiled_kernel(self):
        result = _result()
        _ = result.code.function  # force compilation
        assert result.code._func is not None
        assert result.code.__getstate__()["_func"] is None

    def test_in_process_roundtrip_recompiles_lazily(self):
        result = _result()
        expected = _checksum(result)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.code._func is None
        assert _checksum(clone) == expected
        assert clone.code.python_source == result.code.python_source

    def test_fresh_subprocess_unpickles_and_runs(self, tmp_path):
        result = _result()
        expected = _checksum(result)
        blob = tmp_path / "result.pkl"
        blob.write_bytes(pickle.dumps(result))

        script = textwrap.dedent(
            """
            import json, pickle, sys

            import numpy as np

            from repro.runtime import random_arrays

            with open(sys.argv[1], "rb") as fh:
                result = pickle.load(fh)
            assert result.code._func is None, "kernel arrived precompiled"
            params = {"N": 5}
            arrays = random_arrays(result.source_program, params, seed=7)
            result.code.run(arrays, params)
            print(json.dumps({"checksum": float(np.sum(arrays["C"]))}))
            """
        )
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONPATH=src_dir)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(blob)],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        import json

        assert json.loads(proc.stdout)["checksum"] == expected
