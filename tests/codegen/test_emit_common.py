"""Tests for shared bound/expression rendering."""

import pytest

from repro.codegen.emit_common import merge_bounds, render_expr, render_lower, render_upper
from repro.codegen.scan import Bound
from repro.polyhedra import AffExpr, Space


@pytest.fixture
def sp():
    return Space(("i", "j"), ("N",))


class TestRenderExpr:
    def test_simple(self, sp):
        e = AffExpr.from_terms(sp, {"i": 1, "j": -1}, 3)
        assert render_expr(e) == "i - j + 3"

    def test_coefficients(self, sp):
        e = AffExpr.from_terms(sp, {"i": 2, "N": -3})
        assert render_expr(e) == "2*i - 3*N"

    def test_constant_only(self, sp):
        assert render_expr(AffExpr.const(sp, -7)) == "-7"

    def test_zero(self, sp):
        assert render_expr(AffExpr.zero(sp)) == "0"

    def test_leading_negative(self, sp):
        e = AffExpr.from_terms(sp, {"i": -1}, 1)
        assert render_expr(e) == "-i + 1"

    def test_valid_python(self, sp):
        e = AffExpr.from_terms(sp, {"i": 2, "j": -3, "N": 1}, -4)
        assert eval(render_expr(e), {"i": 5, "j": 2, "N": 7}) == e.evaluate(
            {"i": 5, "j": 2, "N": 7}
        )


class TestBounds:
    def test_lower_div1(self, sp):
        b = Bound(AffExpr.var(sp, "N"), 1)
        assert render_lower(b) == "N"

    def test_lower_ceil_python(self, sp):
        b = Bound(AffExpr.from_terms(sp, {"N": 1}, -1), 4)
        text = render_lower(b)
        # ceil((N-1)/4) at N=6 -> ceil(5/4) = 2
        assert eval(text, {"N": 6}) == 2

    def test_upper_floor_python(self, sp):
        b = Bound(AffExpr.from_terms(sp, {"N": 1}, -1), 4)
        assert eval(render_upper(b), {"N": 6}) == 1

    def test_negative_numerator_ceil(self, sp):
        b = Bound(AffExpr.const(sp, -5), 2)
        assert eval(render_lower(b), {}) == -2  # ceil(-5/2) = -2

    def test_c_renderings(self, sp):
        b = Bound(AffExpr.var(sp, "N"), 4)
        assert render_lower(b, "c") == "ceild(N, 4)"
        assert render_upper(b, "c") == "floord(N, 4)"


class TestMergeBounds:
    def test_single_passthrough(self):
        assert merge_bounds(["a"], "max") == "a"

    def test_dedup(self):
        assert merge_bounds(["a", "a"], "max") == "a"

    def test_python_max(self):
        assert merge_bounds(["a", "b"], "max") == "max(a, b)"

    def test_c_nested(self):
        # prefixed macros: bare min/max collide with libc headers once the
        # emitted source is actually compiled
        assert (
            merge_bounds(["a", "b", "c"], "min", "c")
            == "repro_min(repro_min(a, b), c)"
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_bounds([], "max")
