"""Execution-order and correctness property tests for generated code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import generate_python, original_schedule
from repro.core import (
    PlutoScheduler,
    SchedulerOptions,
    mark_parallelism,
    tile_schedule,
    untiled_schedule,
)
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program
from repro.runtime import random_arrays, validate_transformation


def optimize_src(src, algo="plutoplus", params=("N",), param_min=3, tile=None):
    p = parse_program(src, "p", params=params, param_min=param_min)
    ddg = DependenceGraph(p, compute_dependences(p))
    s = PlutoScheduler(p, ddg, SchedulerOptions(algorithm=algo)).schedule()
    mark_parallelism(s, ddg)
    ts = tile_schedule(s, tile_size=tile) if tile else untiled_schedule(s)
    return p, ddg, ts


GEMM_ISH = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
        C[i][j] = 0.0;
        for (k = 0; k < N; k++)
            C[i][j] = C[i][j] + A[i][k] * B[k][j];
    }
"""


class TestTransformedExecution:
    @pytest.mark.parametrize("algo", ["pluto", "plutoplus"])
    def test_gemm_matches_numpy(self, algo):
        p, _, ts = optimize_src(GEMM_ISH, algo)
        params = {"N": 5}
        arrays = random_arrays(p, params, seed=1)
        a, b = arrays["A"].copy(), arrays["B"].copy()
        generate_python(ts).run(arrays, params)
        assert np.allclose(arrays["C"], a @ b)

    @pytest.mark.parametrize("tile", [None, 2, 3])
    def test_tiled_gemm_validates(self, tile):
        p, _, ts = optimize_src(GEMM_ISH, tile=tile)
        assert validate_transformation(p, ts, {"N": 6}).ok

    def test_skewed_jacobi_validates(self):
        src = """
        for (t = 0; t < T; t++)
            for (i = 1; i < N-1; i++)
                A[t+1][i] = 0.3 * (A[t][i-1] + A[t][i] + A[t][i+1]);
        """
        p, _, ts = optimize_src(src, params=("T", "N"), param_min=4, tile=3)
        assert validate_transformation(p, ts, {"T": 5, "N": 11}).ok

    def test_trace_respects_dependences(self):
        """In the transformed order, every dependence source executes before
        its target (checked on a small instance via the trace)."""
        src = """
        for (i = 0; i < N; i++)
            B[i] = 2.0 * A[i];
        for (i = 0; i < N; i++)
            C[i] = 3.0 * B[N-1-i];
        """
        p, ddg, ts = optimize_src(src)
        code = generate_python(ts, trace=True)
        params = {"N": 5}
        arrays = random_arrays(p, params)
        trace = []
        code.run(arrays, params, trace)
        position = {ev: k for k, ev in enumerate(trace)}
        for d in ddg.deps:
            pts = d.polyhedron.enumerate_points({"N": 5})
            half = len(d.source.space.dims)
            for pt in pts:
                src_ev = (d.source.name, pt[:half])
                tgt_ev = (d.target.name, pt[half:])
                assert position[src_ev] < position[tgt_ev], (d, pt)


class TestGeneratedSourceShape:
    def test_parallel_annotation_present(self):
        src = "for (i = 0; i < N; i++) for (j = 0; j < N; j++) A[i+1][j+1] = 2.0*A[i][j];"
        p, _, ts = optimize_src(src)
        code = generate_python(ts)
        assert "# parallel" in code.python_source

    def test_source_compiles(self):
        p, _, ts = optimize_src(GEMM_ISH, tile=4)
        code = generate_python(ts)
        compile(code.python_source, "<test>", "exec")


@st.composite
def uniform_stencil_program(draw):
    """Random small uniform-dependence loop nests for validation fuzzing."""
    shift_i = draw(st.integers(0, 1))
    shift_j = draw(st.integers(-1, 1))
    coef = draw(st.sampled_from(["0.5", "2.0", "1.25"]))
    if shift_i == 0 and shift_j <= 0:
        shift_j = 1  # keep the write ahead of the read (a real dependence)
    lb_j = max(0, -shift_j)
    src = f"""
    for (i = 0; i < N; i++)
        for (j = {lb_j}; j < N - {max(shift_j, 0)}; j++)
            A[i + {shift_i}][j + {shift_j}] = {coef} * A[i][j] + B[i][j];
    """
    return src


class TestValidationFuzz:
    @given(uniform_stencil_program(), st.sampled_from(["pluto", "plutoplus"]))
    @settings(max_examples=12, deadline=None)
    def test_random_uniform_nests_validate(self, src, algo):
        p, _, ts = optimize_src(src, algo=algo, tile=2)
        assert validate_transformation(p, ts, {"N": 6}).ok
