"""Tests for scan systems, bound extraction, and original-order codegen."""

import pytest

from repro.codegen import build_scan_systems, generate_python, original_schedule
from repro.core import untiled_schedule
from repro.frontend import parse_program


def program_and_sched(src, params=("N",), **kw):
    p = parse_program(src, "p", params=params, **kw)
    return p, original_schedule(p)


class TestOriginalSchedule:
    def test_single_loop(self):
        p, ts = program_and_sched("for (i = 0; i < N; i++) A[i] = 1.0;")
        kinds = [r.kind for r in ts.rows]
        assert kinds == ["scalar", "loop", "scalar"]

    def test_two_statements_share_loop(self):
        src = """
        for (i = 0; i < N; i++) {
            A[i] = 1.0;
            B[i] = 2.0;
        }
        """
        p, ts = program_and_sched(src)
        last = ts.rows[-1]
        assert last.expr_for("S0").const_term == 0
        assert last.expr_for("S1").const_term == 1

    def test_depth_padding(self):
        src = """
        for (i = 0; i < N; i++) A[i] = 1.0;
        for (i = 0; i < N; i++) for (j = 0; j < N; j++) C[i][j] = A[i];
        """
        p, ts = program_and_sched(src)
        assert ts.depth == 5  # beta, i, beta, j, beta
        # the shallow statement is padded with constant zero at the j level
        assert ts.rows[3].expr_for("S0").is_constant()


class TestScanSystems:
    def test_z_bounds_simple(self):
        p, ts = program_and_sched("for (i = 0; i < N; i++) A[i] = 1.0;")
        sys = build_scan_systems(ts)[0]
        lowers, uppers = sys.z_bounds(1)
        assert lowers and uppers

    def test_iterator_name_collision_rejected(self):
        src = "for (z0 = 0; z0 < N; z0++) A[z0] = 1.0;"
        p, ts = program_and_sched(src)
        with pytest.raises(ValueError):
            build_scan_systems(ts)

    def test_triangular_bounds_follow_outer(self):
        src = "for (i = 0; i < N; i++) for (j = 0; j <= i; j++) A[i][j] = 1.0;"
        p, ts = program_and_sched(src)
        sys = build_scan_systems(ts)[0]
        _, uppers = sys.z_bounds(3)  # the j level
        rendered = {str(b.expr) for b in uppers}
        assert any("z1" in r for r in rendered)  # j <= i == z1


class TestGeneratedOriginal:
    def test_executes_in_source_order(self):
        src = """
        for (i = 0; i < N; i++) {
            A[i] = 1.0;
            B[i] = A[i] + 1.0;
        }
        """
        p, ts = program_and_sched(src)
        code = generate_python(ts, trace=True)
        from repro.runtime import random_arrays

        arrays = random_arrays(p, {"N": 3})
        trace = []
        code.run(arrays, {"N": 3}, trace)
        assert trace == [
            ("S0", (0,)), ("S1", (0,)),
            ("S0", (1,)), ("S1", (1,)),
            ("S0", (2,)), ("S1", (2,)),
        ]

    def test_guarded_statement_skips_points(self):
        src = """
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
                if (j <= i - 1)
                    A[i][j] = 1.0;
        """
        p, ts = program_and_sched(src)
        code = generate_python(ts, trace=True)
        from repro.runtime import allocate_arrays

        arrays = allocate_arrays(p, {"N": 3})
        trace = []
        code.run(arrays, {"N": 3}, trace)
        assert ("S0", (0, 0)) not in trace
        assert ("S0", (1, 0)) in trace
        assert len(trace) == 3

    def test_each_point_exactly_once(self):
        src = "for (i = 0; i < N; i++) for (j = i; j < N; j++) A[i][j] = 1.0;"
        p, ts = program_and_sched(src)
        code = generate_python(ts, trace=True)
        from repro.runtime import allocate_arrays

        arrays = allocate_arrays(p, {"N": 4})
        trace = []
        code.run(arrays, {"N": 4}, trace)
        pts = [t[1] for t in trace]
        assert len(pts) == len(set(pts)) == 10
