"""Tests for the affine expression parser."""

import pytest

from repro.frontend import AffineSyntaxError, parse_affine
from repro.polyhedra import AffExpr, Space


@pytest.fixture
def sp():
    return Space(("i", "j"), ("N", "M"))


class TestParseAffine:
    def test_simple_var(self, sp):
        assert parse_affine(sp, "i").coeffs == (1, 0, 0, 0, 0)

    def test_constant(self, sp):
        assert parse_affine(sp, "42").const_term == 42

    def test_sum_and_difference(self, sp):
        e = parse_affine(sp, "N - 1 - i")
        assert e.coeff_of("N") == 1 and e.coeff_of("i") == -1
        assert e.const_term == -1

    def test_coefficient_products(self, sp):
        e = parse_affine(sp, "2*i + 3 * j - 4")
        assert e.coeffs == (2, 3, 0, 0, -4)

    def test_reversed_product(self, sp):
        assert parse_affine(sp, "i*2").coeff_of("i") == 2

    def test_parentheses(self, sp):
        e = parse_affine(sp, "2*(i - j) + (N - 1)")
        assert e.coeffs == (2, -2, 1, 0, -1)

    def test_unary_minus(self, sp):
        assert parse_affine(sp, "-i + -2").coeffs == (-1, 0, 0, 0, -2)

    def test_double_negative_parens(self, sp):
        assert parse_affine(sp, "-(i - j)").coeffs == (-1, 1, 0, 0, 0)

    def test_exact_division(self, sp):
        assert parse_affine(sp, "(2*i + 4)/2").coeffs == (1, 0, 0, 0, 2)

    def test_inexact_division_rejected(self, sp):
        with pytest.raises(AffineSyntaxError):
            parse_affine(sp, "i/2")

    def test_nonaffine_product_rejected(self, sp):
        with pytest.raises(AffineSyntaxError):
            parse_affine(sp, "i*j")

    def test_unknown_name_rejected(self, sp):
        with pytest.raises(AffineSyntaxError):
            parse_affine(sp, "k + 1")

    def test_trailing_garbage_rejected(self, sp):
        with pytest.raises(AffineSyntaxError):
            parse_affine(sp, "i + 1)")

    def test_missing_paren_rejected(self, sp):
        with pytest.raises(AffineSyntaxError):
            parse_affine(sp, "(i + 1")

    def test_int_passthrough(self, sp):
        assert parse_affine(sp, 7).const_term == 7

    def test_affexpr_passthrough(self, sp):
        e = AffExpr.var(sp, "i")
        assert parse_affine(sp, e) is e

    def test_affexpr_rebase(self, sp):
        small = Space(("i",), ("N", "M"))
        e = AffExpr.var(small, "i")
        out = parse_affine(sp, e)
        assert out.space == sp and out.coeff_of("i") == 1
