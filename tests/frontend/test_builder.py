"""Tests for the loop-nest builder: domains, schedules, guards."""

import pytest

from repro.frontend import Access, ProgramBuilder, parse_condition
from repro.polyhedra import AffExpr, AffineMap, BasicSet, Space


def build_gemm():
    b = ProgramBuilder("gemm", params=("NI", "NJ", "NK"))
    with b.loop("i", 0, "NI-1"):
        with b.loop("j", 0, "NJ-1"):
            b.stmt("C[i][j] = C[i][j] * beta")
            with b.loop("k", 0, "NK-1"):
                b.stmt("C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j]")
    return b.build()


class TestBuilder:
    def test_gemm_shape(self):
        p = build_gemm()
        assert len(p) == 2
        s0, s1 = p.statements
        assert s0.iters == ("i", "j")
        assert s1.iters == ("i", "j", "k")

    def test_gemm_domains(self):
        p = build_gemm()
        s1 = p.statements[1]
        vals = {"i": 0, "j": 0, "k": 0, "NI": 2, "NJ": 2, "NK": 2}
        assert s1.domain.contains(vals)
        assert not s1.domain.contains({**vals, "k": 2})

    def test_gemm_schedules(self):
        p = build_gemm()
        s0, s1 = p.statements
        # S0: (0, i, 0, j, 0); S1: (0, i, 0, j, 1, k, 0)
        assert s0.sched[0] == 0 and s0.sched[2] == 0 and s0.sched[4] == 0
        assert s1.sched[4] == 1 and s1.sched[6] == 0
        assert isinstance(s0.sched[1], AffExpr)

    def test_gemm_accesses(self):
        p = build_gemm()
        s1 = p.statements[1]
        assert s1.write_arrays() == {"C"}
        assert s1.read_arrays() == {"C", "A", "B", "alpha"}

    def test_sequential_loops_get_distinct_beta(self):
        b = ProgramBuilder("two", params=("N",))
        with b.loop("i", 0, "N-1"):
            b.stmt("A[i] = 1")
        with b.loop("i", 0, "N-1"):
            b.stmt("B[i] = A[i]")
        p = b.build()
        assert p.statements[0].sched[0] == 0
        assert p.statements[1].sched[0] == 1

    def test_guard_restricts_domain(self):
        b = ProgramBuilder("tri", params=("N",))
        with b.loop("i", 0, "N-1"):
            with b.loop("j", 0, "N-1"):
                with b.guard("j <= i - 1"):
                    b.stmt("A[i][j] = 0")
        p = b.build()
        d = p.statements[0].domain
        assert d.contains({"i": 2, "j": 1, "N": 4})
        assert not d.contains({"i": 1, "j": 1, "N": 4})

    def test_guard_is_schedule_transparent(self):
        b = ProgramBuilder("g", params=("N",))
        with b.loop("i", 0, "N-1"):
            b.stmt("A[i] = 0")
            with b.guard("i >= 1"):
                b.stmt("B[i] = A[i]")
            b.stmt("C[i] = B[i]")
        p = b.build()
        betas = [s.sched[-1] for s in p.statements]
        assert betas == [0, 1, 2]

    def test_explicit_accesses_override(self):
        b = ProgramBuilder("periodic", params=("N",))
        with b.loop("i", 0, "N-1"):
            sp = b.program.space_for(["i"])
            wrap = BasicSet(sp)
            from repro.polyhedra import ineq
            wrap.add(ineq(sp, {"i": 1, "N": -1}, 1))  # i == N-1 (with ub)
            b.stmt(
                "A2[i] = A[(i+1) % N]",
                body_py="A2[i] = A[(i+1) % N]",
                writes=[Access("A2", AffineMap.from_terms(sp, [({"i": 1}, 0)]))],
                reads=[
                    Access(
                        "A",
                        AffineMap.from_terms(sp, [({"i": 1}, 1)]),
                        guard=BasicSet(sp, [ineq(sp, {"i": -1, "N": 1}, -2)]),
                    ),
                    Access(
                        "A",
                        AffineMap.from_terms(sp, [({}, 0)]),
                        guard=wrap,
                    ),
                ],
            )
        p = b.build()
        s = p.statements[0]
        assert len(s.reads) == 2
        assert s.reads[0].guard is not None

    def test_unclosed_loop_rejected(self):
        b = ProgramBuilder("bad")
        cm = b.loop("i", 0, 10)
        cm.__enter__()
        with pytest.raises(RuntimeError):
            b.build()

    def test_duplicate_statement_names_rejected(self):
        b = ProgramBuilder("dup", params=("N",))
        with b.loop("i", 0, "N-1"):
            b.stmt("A[i] = 0", name="S")
            with pytest.raises(ValueError):
                b.stmt("B[i] = 0", name="S")


class TestParseCondition:
    def test_operators(self):
        sp = Space(("i", "j"), ("N",))
        for text, point, ok in [
            ("i <= j", {"i": 1, "j": 2, "N": 4}, True),
            ("i < j", {"i": 2, "j": 2, "N": 4}, False),
            ("i >= j", {"i": 2, "j": 2, "N": 4}, True),
            ("i > j", {"i": 2, "j": 2, "N": 4}, False),
            ("i == j", {"i": 2, "j": 2, "N": 4}, True),
        ]:
            (con,) = parse_condition(sp, text)
            assert con.is_satisfied(point) is ok, text

    def test_conjunction(self):
        sp = Space(("i",), ("N",))
        cons = parse_condition(sp, "i >= 1 && i <= N - 2")
        assert len(cons) == 2

    def test_missing_operator_raises(self):
        sp = Space(("i",), ())
        with pytest.raises(ValueError):
            parse_condition(sp, "i + 1")
