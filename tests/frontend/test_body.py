"""Tests for body access extraction and C-to-Python conversion."""

import numpy as np
import pytest

from repro.frontend import BodySyntaxError, extract_accesses, split_assignment, to_python
from repro.polyhedra import Space


@pytest.fixture
def sp():
    return Space(("i", "j"), ("N",))


class TestSplitAssignment:
    def test_plain(self):
        assert split_assignment("A[i] = B[i] + 1;") == ("A[i]", "", "B[i] + 1")

    def test_compound(self):
        assert split_assignment("x += y") == ("x", "+", "y")

    def test_no_assignment_raises(self):
        with pytest.raises(BodySyntaxError):
            split_assignment("A[i] + B[i];")


class TestExtractAccesses:
    def test_simple(self, sp):
        writes, reads = extract_accesses("A[i][j] = B[j][i] + A[i][j-1]", sp)
        assert [w[0] for w in writes] == ["A"]
        assert sorted(r[0] for r in reads) == ["A", "B"]

    def test_access_maps(self, sp):
        writes, reads = extract_accesses("A[i+1][j+1] = A[i][j]", sp)
        assert writes[0][1].apply({"i": 2, "j": 3, "N": 0}) == (3, 4)
        assert reads[0][1].apply({"i": 2, "j": 3, "N": 0}) == (2, 3)

    def test_scalar_read(self, sp):
        writes, reads = extract_accesses("A[i][j] = alpha * A[i][j]", sp)
        names = {r[0] for r in reads}
        assert "alpha" in names
        alpha = next(r for r in reads if r[0] == "alpha")
        assert alpha[1].n_out == 0  # 0-d access

    def test_scalar_write(self, sp):
        writes, _ = extract_accesses("x = A[i][i]", sp)
        assert writes[0][0] == "x" and writes[0][1].n_out == 0

    def test_compound_reads_lhs(self, sp):
        _, reads = extract_accesses("A[i][j] += B[i][j]", sp)
        assert sorted(r[0] for r in reads) == ["A", "B"]

    def test_function_not_data(self, sp):
        _, reads = extract_accesses("A[i][j] = sqrt(B[i][j])", sp)
        assert {r[0] for r in reads} == {"B"}

    def test_nonaffine_subscript_rejected(self, sp):
        with pytest.raises(BodySyntaxError):
            extract_accesses("A[i*j] = 0", sp)

    def test_numeric_rhs_no_reads(self, sp):
        _, reads = extract_accesses("A[i][j] = 0.5", sp)
        assert reads == []


class TestToPython:
    def test_subscript_conversion(self, sp):
        py = to_python("A[i][j+1] = A[i][j] + B[j][i]", sp, ["A", "B"])
        assert py == "A[i, j+1] = A[i, j] + B[j, i]"

    def test_executes_on_numpy(self, sp):
        py = to_python("A[i][j] = B[j][i] + 1", sp, ["A", "B"])
        A, B = np.zeros((2, 2)), np.arange(4.0).reshape(2, 2)
        exec(py, {}, {"A": A, "B": B, "i": 0, "j": 1})
        assert A[0, 1] == B[1, 0] + 1

    def test_scalar_becomes_0d(self, sp):
        py = to_python("x = A[i][i] + alpha", sp, ["A"])
        assert py == "x[()] = A[i, i] + alpha[()]"
        x = np.zeros(())
        alpha = np.full((), 2.0)
        A = np.eye(3)
        exec(py, {}, {"x": x, "alpha": alpha, "A": A, "i": 1})
        assert x[()] == 3.0

    def test_compound_op(self, sp):
        py = to_python("A[i][j] += B[i][j]", sp, ["A", "B"])
        assert py == "A[i, j] += B[i, j]"

    def test_functions_preserved(self, sp):
        py = to_python("A[i][j] = sqrt(A[i][j])", sp, ["A"])
        assert "sqrt(A[i, j])" in py


class TestWrittenScalarStores:
    """A *written* scalar must become a 0-d subscript even when it is in
    the accessed-arrays list — a bare ``s = ...`` rebinds a local inside
    the exec'd kernel and the store never reaches ``arrays['s']``."""

    def test_written_scalar_rewritten_on_both_sides(self):
        sp = Space(("i",), ("N",))
        py = to_python("s = s + A[i] * B[i]", sp, ["A", "B", "s"])
        assert py == "s[()] = s[()] + A[i] * B[i]"

    def test_store_reaches_the_array(self):
        sp = Space(("i",), ("N",))
        py = to_python("s = s + A[i] * B[i]", sp, ["A", "B", "s"])
        s = np.zeros(())
        env = {"s": s, "A": np.ones(3), "B": np.ones(3), "i": 0}
        exec(py, {}, env)
        assert s[()] == 1.0

    def test_read_only_scalars_stay_bare(self):
        # historical spelling preserved: read-only scalars (alpha, beta in
        # the polybench kernels) keep their bare form, so cached bodies and
        # cache keys predating the fix are unchanged
        sp = Space(("i",), ("N",))
        py = to_python("C[i] = alpha * A[i]", sp, ["A", "C", "alpha"])
        assert py == "C[i] = alpha * A[i]"
