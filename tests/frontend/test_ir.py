"""Tests for the polyhedral IR containers."""

import pytest

from repro.frontend import Program, parse_program
from repro.frontend.ir import Statement
from repro.polyhedra import BasicSet, Space


class TestProgram:
    def test_param_min_scalar(self):
        p = Program("p", params=("N", "M"), param_min=3)
        assert p.param_min == {"N": 3, "M": 3}

    def test_param_min_mapping(self):
        p = Program("p", params=("N", "M"), param_min={"N": 5})
        assert p.param_min == {"N": 5, "M": 2}

    def test_statement_lookup(self):
        p = parse_program("for (i = 0; i < N; i++) A[i] = 1.0;", "p", params=("N",))
        assert p.statement("S0").name == "S0"
        with pytest.raises(KeyError):
            p.statement("S9")

    def test_duplicate_statement_rejected(self):
        p = Program("p", params=("N",))
        sp = Space(("i",), ("N",))
        p.add_statement(Statement("S", BasicSet(sp)))
        with pytest.raises(ValueError):
            p.add_statement(Statement("S", BasicSet(sp)))

    def test_arrays_collected(self):
        src = "for (i = 0; i < N; i++) A[i] = B[i] + C[i];"
        p = parse_program(src, "p", params=("N",))
        assert p.arrays() == {"A", "B", "C"}

    def test_context_constraints(self):
        p = parse_program(
            "for (i = 0; i < N; i++) A[i] = 1.0;", "p", params=("N",), param_min=4
        )
        sp = p.statements[0].space
        cons = p.context_constraints(sp)
        assert len(cons) == 1
        assert cons[0].is_satisfied({"i": 0, "N": 4})
        assert not cons[0].is_satisfied({"i": 0, "N": 3})

    def test_max_depth(self):
        src = """
        for (i = 0; i < N; i++) A[i] = 1.0;
        for (i = 0; i < N; i++) for (j = 0; j < N; j++) B[i][j] = 2.0;
        """
        p = parse_program(src, "p", params=("N",))
        assert p.max_depth() == 2

    def test_iteration_and_len(self):
        p = parse_program("for (i = 0; i < N; i++) A[i] = 1.0;", "p", params=("N",))
        assert len(p) == 1
        assert [s.name for s in p] == ["S0"]

    def test_str_contains_statements(self):
        p = parse_program("for (i = 0; i < N; i++) A[i] = 1.0;", "p", params=("N",))
        assert "S0" in str(p)


class TestStatement:
    def test_accessors(self):
        src = "for (i = 0; i < N; i++) A[i] = B[i+1];"
        p = parse_program(src, "p", params=("N",))
        s = p.statements[0]
        assert s.iters == ("i",)
        assert s.dim == 1
        assert s.read_arrays() == {"B"}
        assert s.write_arrays() == {"A"}
        assert "A[i]" in str(s)
