"""Tests for the C-like loop-nest parser."""

import pytest

from repro.frontend import ParseError, parse_program

JACOBI_1D = """
for (t = 0; t < T; t++) {
    for (i = 1; i < N - 1; i++) {
        B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]);
    }
    for (i = 1; i < N - 1; i++) {
        A[i] = B[i];
    }
}
"""


class TestParser:
    def test_jacobi_structure(self):
        p = parse_program(JACOBI_1D, "jacobi-1d", params=("T", "N"))
        assert len(p) == 2
        s0, s1 = p.statements
        assert s0.iters == ("t", "i") and s1.iters == ("t", "i")
        # second space loop has beta 1 under the shared t loop
        assert s0.sched[2] == 0 and s1.sched[2] == 1

    def test_strict_bound_normalized(self):
        p = parse_program(JACOBI_1D, "jacobi-1d", params=("T", "N"))
        s0 = p.statements[0]
        # i < N - 1  ->  i <= N - 2
        assert not s0.domain.contains({"t": 0, "i": 7, "N": 8, "T": 2})
        assert s0.domain.contains({"t": 0, "i": 6, "N": 8, "T": 2})

    def test_accesses_extracted(self):
        p = parse_program(JACOBI_1D, "jacobi-1d", params=("T", "N"))
        s0 = p.statements[0]
        assert s0.write_arrays() == {"B"}
        assert s0.read_arrays() == {"A"}
        assert len(s0.reads) == 3

    def test_named_statements(self):
        src = "for (i = 0; i <= N-1; i++) { INIT: A[i] = 0; }"
        p = parse_program(src, "t", params=("N",))
        assert p.statements[0].name == "INIT"

    def test_if_condition(self):
        src = """
        for (i = 0; i <= N-1; i++)
            for (j = 0; j <= N-1; j++)
                if (j <= i)
                    A[i][j] = 1;
        """
        p = parse_program(src, "tri", params=("N",))
        d = p.statements[0].domain
        assert d.contains({"i": 3, "j": 3, "N": 5})
        assert not d.contains({"i": 2, "j": 3, "N": 5})

    def test_comments_stripped(self):
        src = """
        // outer loop
        for (i = 0; i <= N-1; i++) {
            A[i] = 0; /* init */
        }
        """
        p = parse_program(src, "c", params=("N",))
        assert len(p) == 1

    def test_braceless_nesting(self):
        src = "for (i = 0; i <= N-1; i++) for (j = 0; j <= i; j++) A[i][j] = 0;"
        p = parse_program(src, "nb", params=("N",))
        assert p.statements[0].iters == ("i", "j")

    def test_bad_increment_rejected(self):
        with pytest.raises(ParseError):
            parse_program("for (i = 0; i <= N; i--) A[i] = 0;", "x", params=("N",))

    def test_wrong_condition_var_rejected(self):
        with pytest.raises(ParseError):
            parse_program("for (i = 0; j <= N; i++) A[i] = 0;", "x", params=("N",))

    def test_unsupported_relation_rejected(self):
        with pytest.raises(ParseError):
            parse_program("for (i = N; i >= 0; i++) A[i] = 0;", "x", params=("N",))

    def test_triangular_bounds(self):
        src = "for (i = 0; i <= N-1; i++) for (j = i+1; j <= N-1; j++) A[i][j] = A[j][i];"
        p = parse_program(src, "tri", params=("N",))
        d = p.statements[0].domain
        assert d.contains({"i": 0, "j": 1, "N": 3})
        assert not d.contains({"i": 1, "j": 1, "N": 3})

    def test_float_literals(self):
        src = "for (i = 0; i <= N-1; i++) A[i] = 0.25 * B[i] + 1e-3;"
        p = parse_program(src, "f", params=("N",))
        assert "0.25" in p.statements[0].body

    def test_compound_assignment(self):
        src = "for (i = 0; i <= N-1; i++) x += A[i];"
        p = parse_program(src, "dot", params=("N",))
        s = p.statements[0]
        assert s.write_arrays() == {"x"}
        assert "x" in s.read_arrays() and "A" in s.read_arrays()
