"""Tests for the IR JSON serializer (repro.frontend.serialize)."""

import json

import pytest

from repro.frontend import parse_program, program_from_dict, program_to_dict
from repro.frontend.serialize import (
    IR_FORMAT_VERSION,
    basicset_from_dict,
    basicset_to_dict,
)
from repro.polyhedra import BasicSet, Space, ineq
from repro.workloads import get_workload

GUARDED = """
for (i = 0; i < N; i++)
    for (j = i; j < N; j++)
        A[i][j] = 1.5 * A[j][i];
"""


class TestProgramRoundTrip:
    def test_parsed_program(self):
        p = parse_program(GUARDED, "guarded", params=("N",), param_min=3)
        q = program_from_dict(program_to_dict(p))
        assert q == p
        assert q.param_min == p.param_min

    @pytest.mark.parametrize(
        "workload", ["fig2-symmetric-consumer", "heat-1dp", "lbm-poi-d2q9"]
    )
    def test_registry_workloads(self, workload):
        # heat-1dp and the LBM models carry guarded (periodic) accesses —
        # the hard case for access serialization
        p = get_workload(workload).program()
        assert program_from_dict(program_to_dict(p)) == p

    def test_payload_is_json_plain(self):
        p = get_workload("heat-1dp").program()
        d = program_to_dict(p)
        assert json.loads(json.dumps(d)) == d
        assert d["version"] == IR_FORMAT_VERSION

    def test_version_gate(self):
        p = parse_program(GUARDED, "guarded", params=("N",))
        d = program_to_dict(p)
        d["version"] = 0
        with pytest.raises(ValueError, match="format v0"):
            program_from_dict(d)


class TestBasicSetRoundTrip:
    def test_equalities_survive(self):
        sp = Space(("i", "j"), ("N",))
        bs = BasicSet(sp, [ineq(sp, {"i": 1}, 0), ineq(sp, {"N": 1, "j": -1}, -1)])
        assert basicset_from_dict(basicset_to_dict(bs)) == bs
