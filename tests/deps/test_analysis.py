"""Tests for dependence analysis on the paper's motivating patterns."""

import pytest

from repro.deps import compute_dependences
from repro.frontend import parse_program
from repro.polyhedra import AffExpr


def deps_of(src, name="p", params=("N",), **kw):
    return compute_dependences(parse_program(src, name, params=params, **kw))


class TestFig1SkewExample:
    """Figure 1: A[i+1][j+1] = f(A[i][j]) has a single RAW of distance (1,1)."""

    SRC = """
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            A[i+1][j+1] = 2.0 * A[i][j];
    """

    def test_single_raw(self):
        deps = deps_of(self.SRC)
        raws = [d for d in deps if d.kind == "raw"]
        assert len(raws) == 1

    def test_distance_vector(self):
        (raw,) = [d for d in deps_of(self.SRC) if d.kind == "raw"]
        assert raw.distance_vector() == (1, 1)
        assert raw.is_uniform()


class TestSequentialLoops:
    SRC = """
    for (i = 0; i < N; i++)
        B[i] = 2.0 * A[i];
    for (i = 0; i < N; i++)
        C[i] = 3.0 * B[i];
    """

    def test_raw_across_loops(self):
        deps = deps_of(self.SRC)
        raws = [d for d in deps if d.kind == "raw" and d.array == "B"]
        assert len(raws) == 1
        assert raws[0].source.name != raws[0].target.name

    def test_same_iteration_allowed(self):
        (raw,) = [d for d in deps_of(self.SRC) if d.kind == "raw"]
        # the polyhedron includes i__s == i__t points (S0 i=2 before S1 i=2)
        assert raw.polyhedron.contains(
            {"i__s": 2, "i__t": 2, "N": 4}
        )


class TestSymmetricConsumer:
    """Figure 2: c[i] = f(b[N-1-i]) — dependence with reflected access."""

    SRC = """
    for (i = 0; i < N; i++)
        b[i] = 2.0 * a[i];
    for (i = 0; i < N; i++)
        c[i] = 2.0 * b[N-1-i];
    """

    def test_reflected_dependence(self):
        deps = deps_of(self.SRC)
        (raw,) = [d for d in deps if d.kind == "raw" and d.array == "b"]
        # write at i__s is read at i__t with i__s == N-1-i__t
        assert raw.polyhedron.contains({"i__s": 3, "i__t": 0, "N": 4})
        assert not raw.polyhedron.contains({"i__s": 3, "i__t": 1, "N": 4})
        assert not raw.is_uniform()


class TestSelfDependences:
    SRC = """
    for (t = 0; t < T; t++)
        for (i = 1; i < N-1; i++)
            A[i] = 0.5 * (A[i-1] + A[i+1]);
    """

    def test_kinds_present(self):
        deps = deps_of(self.SRC, params=("T", "N"), param_min=3)
        kinds = {d.kind for d in deps}
        assert kinds == {"raw", "war", "waw"}

    def test_waw_min_distance(self):
        deps = deps_of(self.SRC, params=("T", "N"), param_min=3)
        waw = [d for d in deps if d.kind == "waw"]
        assert waw
        # same cell rewritten at a later t: minimum time distance is 1
        # (memory-based deps include *all* later writes, so the distance is
        # not uniform, but its minimum under phi = t is exactly 1)
        d = waw[0]
        from repro.polyhedra import AffExpr

        phi = AffExpr.var(d.source.space, "t")
        assert d.min_distance(phi, phi) == 1

    def test_no_self_instance_dependence(self):
        # a statement instance never depends on itself
        deps = deps_of(self.SRC, params=("T", "N"), param_min=3)
        for d in deps:
            assert not d.polyhedron.contains(
                {"t__s": 1, "i__s": 2, "t__t": 1, "i__t": 2, "T": 3, "N": 4}
            )


class TestReadOnlyNoDeps:
    def test_inputs_generate_nothing(self):
        deps = deps_of(
            "for (i = 0; i < N; i++) C[i] = A[i] + B[i];"
        )
        assert deps == []


class TestGuardedAccess:
    def test_periodic_wraparound_dependence(self):
        from repro.frontend import Access, ProgramBuilder
        from repro.polyhedra import AffineMap, BasicSet, ineq

        b = ProgramBuilder("periodic", params=("T", "N"), param_min=4)
        with b.loop("t", 0, "T-1"):
            with b.loop("i", 0, "N-1"):
                sp = b.program.space_for(["t", "i"])
                interior = BasicSet(sp, [ineq(sp, {"i": -1, "N": 1}, -2)])  # i <= N-2
                boundary = BasicSet(sp, [ineq(sp, {"i": 1, "N": -1}, 1)])   # i >= N-1
                b.stmt(
                    "A[t+1][i] = A[t][i] + A[t][(i+1)%N]",
                    body_py="A[t+1, i] = A[t, i] + A[t, (i+1) % N]",
                    writes=[
                        Access("A", AffineMap.from_terms(sp, [({"t": 1}, 1), ({"i": 1}, 0)]))
                    ],
                    reads=[
                        Access("A", AffineMap.from_terms(sp, [({"t": 1}, 0), ({"i": 1}, 0)])),
                        Access(
                            "A",
                            AffineMap.from_terms(sp, [({"t": 1}, 0), ({"i": 1}, 1)]),
                            guard=interior,
                        ),
                        Access(
                            "A",
                            AffineMap.from_terms(sp, [({"t": 1}, 0), ({}, 0)]),
                            guard=boundary,
                        ),
                    ],
                )
        deps = compute_dependences(b.build())
        raws = [d for d in deps if d.kind == "raw"]
        # the wraparound read produces a *long* dependence: i__s = 0 read at
        # i__t = N-1 one time step later
        long = [
            d
            for d in raws
            if d.polyhedron.contains(
                {"t__s": 0, "i__s": 0, "t__t": 1, "i__t": 3, "T": 4, "N": 4}
            )
        ]
        assert long, "wraparound dependence not found"
        assert not long[0].is_uniform()
