"""Fast-path dependence analysis: cached == uncached, and DepStats sanity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps import DepStats, compute_dependences
from repro.deps.analysis import (
    _access_pairs,
    _dependence_polyhedron,
    _happens_before_cases,
    product_space,
)
from repro.frontend.builder import ProgramBuilder
from repro.polyhedra.cache import cache_disabled, global_cache
from repro.workloads import get_workload


@pytest.fixture(autouse=True)
def fresh_cache():
    global_cache().clear()
    global_cache().reset_stats()
    yield
    global_cache().clear()
    global_cache().reset_stats()


def _off(base: str, delta: int) -> str:
    return f"{base}{delta:+d}" if delta else base


def _random_program(offsets, second_stmt):
    a, b, c, d, e, f = offsets
    builder = ProgramBuilder("rand", params=("N",))
    with builder.loop("i", 2, "N-3"):
        with builder.loop("j", 2, "N-3"):
            builder.stmt(
                f"A[{_off('i', a)}][{_off('j', b)}] = "
                f"A[{_off('i', c)}][{_off('j', d)}] + B[j][i]"
            )
            if second_stmt:
                builder.stmt(f"B[i][j] = A[{_off('i', e)}][{_off('j', f)}]")
    return builder.build()


def _signature(deps):
    return [
        (
            d.kind,
            d.source.name,
            d.target.name,
            d.array,
            frozenset((c.coeffs, c.equality) for c in d.polyhedron.constraints),
        )
        for d in deps
    ]


class TestCachedEqualsUncached:
    @given(
        offsets=st.tuples(*[st.integers(-2, 2)] * 6),
        second_stmt=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_affine_programs(self, offsets, second_stmt):
        program = _random_program(offsets, second_stmt)
        global_cache().clear()
        cached = compute_dependences(program)
        with cache_disabled():
            uncached = compute_dependences(program)
        assert _signature(cached) == _signature(uncached)

    def test_workload_relations_identical(self):
        program = get_workload("fig1-skew").program()
        cached = compute_dependences(program)
        with cache_disabled():
            uncached = compute_dependences(program)
        assert _signature(cached) == _signature(uncached)

    def test_incremental_construction_matches_reference(self):
        # compute_dependences layers shared rows on copies; the standalone
        # builder is the executable spec for each candidate's content.
        import itertools

        from repro.polyhedra.fastcheck import set_is_empty

        program = get_workload("fig1-skew").program()
        reference = []
        for src, tgt in itertools.product(program.statements, repeat=2):
            space, s_ren, t_ren = product_space(src, tgt)
            cases = list(_happens_before_cases(src, tgt, space, s_ren, t_ren))
            for kind, acc_s, acc_t in _access_pairs(src, tgt):
                for case in cases:
                    poly = _dependence_polyhedron(
                        program, src, tgt, acc_s, acc_t, case,
                        space, s_ren, t_ren,
                    )
                    if set_is_empty(poly):
                        continue
                    reference.append(
                        (
                            kind,
                            src.name,
                            tgt.name,
                            acc_s.array,
                            frozenset(
                                (c.coeffs, c.equality)
                                for c in poly.constraints
                            ),
                        )
                    )
        assert _signature(compute_dependences(program)) == reference


class TestDepStats:
    def test_counters_consistent(self):
        program = get_workload("fig1-skew").program()
        stats = DepStats()
        compute_dependences(program, stats)
        assert stats.lookups == stats.cache_hits + stats.cache_misses
        assert stats.pairs_tested >= stats.fast_rejects + stats.deps_found
        assert stats.deps_found > 0
        assert stats.analysis_seconds > 0

    def test_merge_accumulates(self):
        program = get_workload("fig1-skew").program()
        a, b = DepStats(), DepStats()
        compute_dependences(program, a)
        compute_dependences(program, b)
        total = DepStats()
        total.merge(a)
        total.merge(b)
        assert total.pairs_tested == a.pairs_tested + b.pairs_tested
        assert total.lookups == a.lookups + b.lookups
        d = total.as_dict()
        assert d["deps_found"] == a.deps_found + b.deps_found

    def test_second_run_hits_cache(self):
        program = get_workload("fig1-skew").program()
        first, second = DepStats(), DepStats()
        compute_dependences(program, first)
        compute_dependences(program, second)
        assert second.cache_hits > 0
        assert second.cache_misses == 0

    def test_uncached_run_counts_nothing(self):
        program = get_workload("fig1-skew").program()
        stats = DepStats()
        with cache_disabled():
            compute_dependences(program, stats)
        assert stats.lookups == 0
        assert stats.fast_rejects == 0
        assert stats.pairs_tested > 0
