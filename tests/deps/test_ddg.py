"""Tests for the dependence graph and SCC machinery."""

from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program


def make_ddg(src, params=("N",), param_min=3):
    p = parse_program(src, "p", params=params, param_min=param_min)
    return DependenceGraph(p, compute_dependences(p))


PIPELINE = """
for (i = 0; i < N; i++)
    B[i] = 2.0 * A[i];
for (i = 0; i < N; i++)
    C[i] = 3.0 * B[i];
for (i = 0; i < N; i++)
    D[i] = C[i] + B[i];
"""

CYCLE = """
for (t = 0; t < T; t++) {
    for (i = 1; i < N-1; i++)
        B[i] = 0.5 * (A[i-1] + A[i+1]);
    for (i = 1; i < N-1; i++)
        A[i] = B[i];
}
"""


class TestDDG:
    def test_pipeline_sccs_are_singletons_in_order(self):
        ddg = make_ddg(PIPELINE)
        sccs = ddg.sccs()
        assert [[s.name for s in scc] for scc in sccs] == [["S0"], ["S1"], ["S2"]]

    def test_cycle_detected(self):
        ddg = make_ddg(CYCLE, params=("T", "N"), param_min=4)
        sccs = ddg.sccs()
        assert len(sccs) == 1
        assert {s.name for s in sccs[0]} == {"S0", "S1"}

    def test_unsatisfied_initially_all(self):
        ddg = make_ddg(PIPELINE)
        assert len(ddg.unsatisfied()) == len(ddg.deps)

    def test_mark_cut_satisfied(self):
        ddg = make_ddg(PIPELINE)
        sccs = ddg.sccs()
        index = {}
        for pos, scc in enumerate(sccs):
            for s in scc:
                index[s.name] = pos
        n = ddg.mark_cut_satisfied(index)
        assert n == len(ddg.deps)  # all edges cross SCC boundaries here
        assert ddg.unsatisfied() == []

    def test_satisfied_edges_release_scc(self):
        ddg = make_ddg(CYCLE, params=("T", "N"), param_min=4)
        for d in ddg.deps:
            d.satisfaction_level = 0
        sccs = ddg.sccs()
        assert len(sccs) == 2  # cycle broken once edges are satisfied

    def test_reset(self):
        ddg = make_ddg(PIPELINE)
        for d in ddg.deps:
            d.satisfied_by_cut = True
        ddg.reset()
        assert len(ddg.unsatisfied()) == len(ddg.deps)

    def test_deps_between(self):
        ddg = make_ddg(PIPELINE)
        p = ddg.program
        a = [p.statement("S0")]
        b = [p.statement("S1")]
        edges = ddg.deps_between(a, b)
        assert edges and all(d.source.name == "S0" for d in edges)

    def test_str(self):
        ddg = make_ddg(PIPELINE)
        assert "stmts" in str(ddg)
