"""Tests for DOT export of dependence graphs."""

from repro.deps import DependenceGraph, compute_dependences
from repro.deps.dot import ddg_to_dot
from repro.frontend import parse_program

SRC = """
for (i = 0; i < N; i++)
    B[i] = 2.0 * A[i];
for (i = 0; i < N; i++)
    C[i] = 3.0 * B[i];
"""


def make():
    p = parse_program(SRC, "p", params=("N",))
    return DependenceGraph(p, compute_dependences(p))


class TestDot:
    def test_valid_structure(self):
        text = ddg_to_dot(make())
        assert text.startswith("digraph ddg {")
        assert text.rstrip().endswith("}")
        assert text.count("{") == text.count("}")

    def test_nodes_and_edges_present(self):
        text = ddg_to_dot(make())
        assert '"S0"' in text and '"S1"' in text
        assert '"S0" -> "S1"' in text

    def test_distance_labels(self):
        text = ddg_to_dot(make(), include_distances=True)
        assert "RAW (0,)" in text

    def test_no_distance_labels(self):
        text = ddg_to_dot(make(), include_distances=False)
        assert "(0,)" not in text

    def test_kind_styles(self):
        src = """
        for (t = 0; t < T; t++)
            for (i = 1; i < N-1; i++)
                A[i] = 0.5 * (A[i-1] + A[i+1]);
        """
        p = parse_program(src, "p", params=("T", "N"), param_min=4)
        ddg = DependenceGraph(p, compute_dependences(p))
        text = ddg_to_dot(ddg)
        assert "style=dashed" in text   # WAR
        assert "style=dotted" in text   # WAW
