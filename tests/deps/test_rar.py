"""RAR relations: locality signal only, never a legality constraint."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps import DependenceGraph, compute_dependences
from repro.deps.analysis import DepStats
from repro.deps.rar import compute_rar_dependences
from repro.frontend import parse_program
from repro.pipeline import PipelineOptions, optimize
from repro.workloads import get_workload

SHARED_READ = """
for (i = 0; i < N; i++)
    B[i] = 2.0 * A[i];
for (i = 0; i < N; i++)
    C[i] = 3.0 * A[N-1-i];
"""


class TestComputeRar:
    def test_kind_and_array(self):
        p = parse_program(SHARED_READ, "p", params=("N",))
        rars = compute_rar_dependences(p)
        assert rars and all(d.kind == "rar" for d in rars)
        assert {d.array for d in rars} == {"A"}

    def test_stats_counter(self):
        p = parse_program(SHARED_READ, "p", params=("N",))
        stats = DepStats()
        rars = compute_rar_dependences(p, stats)
        assert stats.rar_deps == len(rars)
        assert stats.as_dict()["rar_deps"] == len(rars)

    def test_no_shared_reads_no_rars(self):
        p = parse_program(
            "for (i = 0; i < N; i++) B[i] = 2.0 * A[i];", "p", params=("N",)
        )
        # A is read twice only across iterations of the same access — those
        # pairs exist; what cannot happen is a RAR on an unread array
        rars = compute_rar_dependences(p)
        assert all(d.array == "A" for d in rars)

    def test_rars_never_reach_the_ddg(self):
        p = parse_program(SHARED_READ, "p", params=("N",))
        deps = compute_dependences(p)
        assert all(d.kind in ("raw", "war", "waw") for d in deps)
        ddg = DependenceGraph(p, deps)
        assert all(d.kind != "rar" for d in ddg.deps)


_SRCS = {
    "skew": """
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            A[i+1][j+1] = 2.0 * A[i][j];
    """,
    "shared-read": SHARED_READ,
    "jacobi": """
    for (t = 0; t < T; t++)
        for (i = 1; i < N-1; i++)
            A[t+1][i] = 0.3 * (A[t][i-1] + A[t][i] + A[t][i+1]);
    """,
    "gemm": """
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            for (k = 0; k < N; k++)
                C[i][j] = C[i][j] + A[i][k] * B[k][j];
    """,
}


def _params_of(src):
    return ("T", "N") if "T" in src else ("N",)


class TestRarLegality:
    """Enabling rar steers the objective; it can never change legality."""

    @settings(max_examples=8, deadline=None)
    @given(name=st.sampled_from(sorted(_SRCS)), tile=st.booleans())
    def test_schedule_stays_legal_and_deps_satisfied(self, name, tile):
        from repro.core.verify import verify_schedule

        src = _SRCS[name]
        params = _params_of(src)
        p = parse_program(src, name, params=params, param_min=3)
        opts = PipelineOptions(
            algorithm="plutoplus",
            tile=tile,
            tile_size=4,
            rar=True,
        )
        result = optimize(p, opts)
        ddg = DependenceGraph(
            result.program, compute_dependences(result.program)
        )
        report = verify_schedule(result.schedule, ddg)
        assert report.legal, report

    def test_legality_dep_set_identical_with_and_without(self):
        p = parse_program(_SRCS["gemm"], "g", params=("N",))
        without = optimize(p, PipelineOptions(algorithm="plutoplus"))
        withrar = optimize(p, PipelineOptions(algorithm="plutoplus", rar=True))
        # both runs saw the same legality dependences; rar only adds
        # bounding rows, which is visible in dep_stats
        assert withrar.dep_stats.rar_deps > 0
        assert without.dep_stats.as_dict().get("rar_deps") is None
        assert without.schedule.depth == withrar.schedule.depth


class TestDefaultByteIdentity:
    """All-defaults output is byte-identical to the pre-PR-10 pipeline."""

    def test_schedule_and_options_serialization_unchanged(self):
        w = get_workload("gemm")
        result = optimize(w.program(), w.pipeline_options("plutoplus"))
        opts_d = result.options.as_dict()
        assert "rar" not in opts_d
        assert "parallel_reductions" not in opts_d
        for row in result.schedule.to_dict()["rows"]:
            assert "reduction" not in row
        for row in result.tiled.to_dict()["rows"]:
            assert "reduction" not in row
        stats_d = result.scheduler_stats.as_dict()
        assert "reductions_detected" not in stats_d
        assert "reductions_relaxed" not in stats_d
