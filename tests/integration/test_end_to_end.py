"""End-to-end integration: optimize + execute + compare with source order.

Runs the full pipeline (both algorithms) on representative workloads at
small sizes and validates the generated code against the original execution
order on random inputs.  These are the strongest correctness checks in the
repository — any unsoundness in dependence analysis, Farkas, the ILP,
satisfaction tracking, ISS, tiling, or scanning shows up here.
"""

import pytest

from repro.pipeline import optimize
from repro.runtime import validate_transformation
from repro.workloads import get_workload

# (workload, algorithms) — chosen to cover: perfect nests, imperfect nests,
# fusion, triangular domains, scalars, reversal/ISS patterns, diamonds.
FAST_CASES = [
    "gemm",
    "mvt",
    "atax",
    "trisolv",
    "jacobi-1d-imper",
    "seidel-2d",
    "fig1-skew",
    "fig2-symmetric-consumer",
    "fig3-symmetric-deps",
    "heat-1dp",
]

SLOWER_CASES = [
    "2mm",
    "bicg",
    "gesummv",
    "doitgen",
    "gemver",
    "syrk",
    "covariance",
    "floyd-warshall",
    "jacobi-2d-imper",
    "lu",
]


@pytest.mark.parametrize("name", FAST_CASES)
@pytest.mark.parametrize("algorithm", ["pluto", "plutoplus"])
def test_validate_fast(name, algorithm):
    w = get_workload(name)
    result = optimize(w.program(), w.pipeline_options(algorithm, tile_size=3))
    check = validate_transformation(result.program, result.tiled, w.small_sizes)
    assert check.ok, f"{name}/{algorithm}: mismatch in {check.mismatched_arrays}"


@pytest.mark.parametrize("name", SLOWER_CASES)
def test_validate_plutoplus_only(name):
    w = get_workload(name)
    result = optimize(w.program(), w.pipeline_options("plutoplus", tile_size=3))
    check = validate_transformation(result.program, result.tiled, w.small_sizes)
    assert check.ok, f"{name}: mismatch in {check.mismatched_arrays}"


class TestHeadlineBehaviors:
    """The paper's core claims, end to end."""

    def test_periodic_heat_only_plutoplus_diamonds(self):
        w = get_workload("heat-1dp")
        plus = optimize(w.program(), w.pipeline_options("plutoplus"))
        classic = optimize(w.program(), w.pipeline_options("pluto"))
        assert plus.used_diamond and plus.used_iss
        assert not classic.used_diamond

    def test_polybench_same_transformation_quality(self):
        """Section 4.2: on Polybench both algorithms find the same (or
        equivalent) transformations — compared here structurally: the same
        band widths and parallelism pattern."""
        for name in ("gemm", "mvt", "seidel-2d", "jacobi-1d-imper"):
            w = get_workload(name)
            a = optimize(w.program(), w.pipeline_options("pluto"))
            b = optimize(w.program(), w.pipeline_options("plutoplus"))
            widths_a = sorted(band.width for band in a.schedule.bands)
            widths_b = sorted(band.width for band in b.schedule.bands)
            assert widths_a == widths_b, name

    def test_lbm_model_transformed_and_valid(self):
        w = get_workload("lbm-ldc-d2q9")
        result = optimize(w.program(), w.pipeline_options("plutoplus", tile_size=3))
        assert result.used_iss
        check = validate_transformation(result.program, result.tiled, w.small_sizes)
        assert check.ok

    def test_fig2_outer_parallel_only_with_plutoplus(self):
        w = get_workload("fig2-symmetric-consumer")
        plus = optimize(w.program(), w.pipeline_options("plutoplus", tile=False))
        classic = optimize(w.program(), w.pipeline_options("pluto", tile=False))
        assert plus.schedule.rows[0].parallel
        assert not classic.schedule.rows[0].parallel

    def test_c_code_emitted_for_transformed(self):
        from repro.codegen import generate_c

        # heat-1dp's diamond band emits tiled-but-sequential code: neither
        # diamond hyperplane is carried-free at tile granularity, so the
        # pragma its first tile row used to carry was a data race
        w = get_workload("heat-1dp")
        result = optimize(w.program(), w.pipeline_options("plutoplus"))
        c = generate_c(result.tiled)
        assert "#pragma omp parallel for" not in c
        assert "floord" in c or "for (int z0" in c

        # a sound inner-parallel point loop still gets the pragma
        w = get_workload("fig1-skew")
        result = optimize(w.program(), w.pipeline_options("plutoplus"))
        assert "#pragma omp parallel for" in generate_c(result.tiled)
