"""Tests for the end-to-end pipeline module and the C emitter."""

import pytest

from repro.codegen import generate_c
from repro.frontend import parse_program
from repro.pipeline import PipelineOptions, optimize
from repro.workloads import get_workload

SIMPLE = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i+1][j+1] = 0.5 * A[i][j];
"""


class TestPipeline:
    def test_timing_breakdown_sums(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions())
        t = res.timing
        assert t.total == pytest.approx(
            t.dependence_analysis + t.auto_transformation + t.code_generation + t.misc
        )
        assert t.total > 0

    def test_no_tile_option(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(tile=False))
        assert res.tiled.tile_levels() == []

    def test_tile_size_respected(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(tile_size=8))
        sizes = {r.tile_size for r in res.tiled.rows if r.kind == "tile"}
        assert sizes == {8}

    def test_iss_off_by_default(self):
        w = get_workload("heat-1dp")
        res = optimize(w.program(), PipelineOptions(algorithm="plutoplus"))
        assert not res.used_iss  # --iss not passed
        assert res.program is res.source_program

    def test_diamond_requires_flag(self):
        w = get_workload("heat-1dp")
        res = optimize(w.program(), PipelineOptions(algorithm="plutoplus", iss=True))
        assert res.used_iss and not res.used_diamond

    def test_summary_text(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions())
        text = res.summary()
        assert "p [plutoplus]" in text and "timing" in text

    def test_scheduler_stats_cover_diamond(self):
        w = get_workload("heat-1dp")
        res = optimize(w.program(), w.pipeline_options("plutoplus"))
        assert res.used_diamond
        # the diamond path's internal scheduler reports into the shared stats
        assert res.scheduler_stats is not None
        assert res.scheduler_stats.ilp_solves > 0
        assert res.timing.ilp_solve > 0


class TestCEmitter:
    def test_structure(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(algorithm="plutoplus", tile_size=16))
        c = generate_c(res.tiled)
        assert "#define ceild" in c
        assert c.count("{") == c.count("}")
        assert "for (int z0" in c
        assert "A[i + 1][j + 1]" in c  # original C body preserved

    def test_parallel_pragma(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(algorithm="plutoplus", tile=False))
        c = generate_c(res.tiled)
        assert "#pragma omp parallel for" in c

    def test_multi_statement_guards(self):
        src = """
        for (i = 0; i < N; i++) {
            INIT: B[i] = 2.0 * A[i];
            for (k = 0; k < N; k++)
                C[i][k] = C[i][k] + B[i];
        }
        """
        p = parse_program(src, "p", params=("N",))
        res = optimize(p, PipelineOptions(tile=False))
        c = generate_c(res.tiled)
        assert "if (" in c  # statement-specific scan guards
