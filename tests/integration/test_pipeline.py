"""Tests for the end-to-end pipeline module and the C emitter."""

import pytest

from repro.codegen import generate_c
from repro.frontend import parse_program
from repro.pipeline import PipelineOptions, optimize
from repro.workloads import get_workload

SIMPLE = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i+1][j+1] = 0.5 * A[i][j];
"""


class TestPipeline:
    def test_timing_breakdown_sums(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions())
        t = res.timing
        assert t.total == pytest.approx(
            t.dependence_analysis + t.auto_transformation + t.code_generation + t.misc
        )
        assert t.total > 0

    def test_no_tile_option(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(tile=False))
        assert res.tiled.tile_levels() == []

    def test_tile_size_respected(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(tile_size=8))
        sizes = {r.tile_size for r in res.tiled.rows if r.kind == "tile"}
        assert sizes == {8}

    def test_iss_off_by_default(self):
        w = get_workload("heat-1dp")
        res = optimize(w.program(), PipelineOptions(algorithm="plutoplus"))
        assert not res.used_iss  # --iss not passed
        assert res.program is res.source_program

    def test_diamond_requires_flag(self):
        w = get_workload("heat-1dp")
        res = optimize(w.program(), PipelineOptions(algorithm="plutoplus", iss=True))
        assert res.used_iss and not res.used_diamond

    def test_summary_text(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions())
        text = res.summary()
        assert "p [plutoplus]" in text and "timing" in text

    def test_scheduler_stats_cover_diamond(self):
        w = get_workload("heat-1dp")
        res = optimize(w.program(), w.pipeline_options("plutoplus"))
        assert res.used_diamond
        # the diamond path's internal scheduler reports into the shared stats
        assert res.scheduler_stats is not None
        assert res.scheduler_stats.ilp_solves > 0
        assert res.timing.ilp_solve > 0


class TestPipelineInputs:
    def test_string_input_resolves_workload(self):
        res = optimize("fig1-skew", PipelineOptions(tile=False))
        assert res.source_program.name == get_workload("fig1-skew").program().name
        assert res.schedule.depth > 0

    def test_string_input_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            optimize("nope-kernel")

    def test_non_program_input_rejected(self):
        with pytest.raises(TypeError, match="Program or a workload name"):
            optimize(123)

    def test_dep_stats_populated(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(tile=False))
        assert res.dep_stats is not None
        assert res.dep_stats.pairs_tested > 0
        assert res.dep_stats.deps_found > 0
        assert res.timing.dependence_analysis == pytest.approx(
            res.dep_stats.analysis_seconds
        )

    def test_deps_cache_off_matches_default(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        base = optimize(p, PipelineOptions(tile=False))
        off = optimize(p, PipelineOptions(tile=False, deps_cache=False))
        assert off.dep_stats.lookups == 0
        assert off.dep_stats.fast_rejects == 0
        assert off.schedule.pretty() == base.schedule.pretty()


class TestPipelineOptionValidation:
    def test_tile_size_zero_rejected(self):
        with pytest.raises(ValueError, match="tile_size"):
            PipelineOptions(tile_size=0)

    def test_tile_size_negative_rejected(self):
        with pytest.raises(ValueError, match="tile_size"):
            PipelineOptions(tile_size=-4)

    def test_l2_ratio_validated(self):
        with pytest.raises(ValueError, match="l2_ratio"):
            PipelineOptions(l2_ratio=0)

    def test_min_band_width_validated(self):
        with pytest.raises(ValueError, match="min_band_width"):
            PipelineOptions(min_band_width=0)

    def test_coeff_bound_validated(self):
        with pytest.raises(ValueError, match="coeff_bound"):
            PipelineOptions(coeff_bound=0)

    def test_bad_algorithm_rejected(self):
        with pytest.raises(ValueError, match="algorithm"):
            PipelineOptions(algorithm="tutu")

    def test_tile_false_allows_any_tile_size_ge_one(self):
        # disabling tiling is the documented way out, not tile_size=0
        opts = PipelineOptions(tile=False)
        assert opts.tile_size >= 1


class TestCEmitter:
    def test_structure(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(algorithm="plutoplus", tile_size=16))
        c = generate_c(res.tiled)
        assert "#define ceild" in c
        assert c.count("{") == c.count("}")
        assert "for (int z0" in c
        assert "A[i + 1][j + 1]" in c  # original C body preserved

    def test_parallel_pragma(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(algorithm="plutoplus", tile=False))
        c = generate_c(res.tiled)
        assert "#pragma omp parallel for" in c

    def test_multi_statement_guards(self):
        src = """
        for (i = 0; i < N; i++) {
            INIT: B[i] = 2.0 * A[i];
            for (k = 0; k < N; k++)
                C[i][k] = C[i][k] + B[i];
        }
        """
        p = parse_program(src, "p", params=("N",))
        res = optimize(p, PipelineOptions(tile=False))
        c = generate_c(res.tiled)
        assert "if (" in c  # statement-specific scan guards
