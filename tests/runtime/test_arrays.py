"""Tests for shape inference and array allocation."""

import numpy as np
import pytest

from repro.frontend import parse_program
from repro.runtime import allocate_arrays, infer_shapes, random_arrays


def prog(src, params=("N",), **kw):
    return parse_program(src, "p", params=params, **kw)


class TestInferShapes:
    def test_simple_extents(self):
        p = prog("for (i = 0; i < N; i++) A[i] = B[i+1];")
        shapes = infer_shapes(p, {"N": 10})
        assert shapes["A"] == (10,)
        assert shapes["B"] == (11,)

    def test_2d_and_transposed(self):
        p = prog(
            "for (i = 0; i < N; i++) for (j = 0; j < M; j++) A[i][j] = B[j][i];",
            params=("N", "M"),
        )
        shapes = infer_shapes(p, {"N": 4, "M": 7})
        assert shapes["A"] == (4, 7)
        assert shapes["B"] == (7, 4)

    def test_scalar_is_0d(self):
        p = prog("for (i = 0; i < N; i++) x += A[i];")
        shapes = infer_shapes(p, {"N": 4})
        assert shapes["x"] == ()

    def test_guarded_access_extends_shape(self):
        from repro.workloads.periodic import heat_1dp

        p = heat_1dp()
        shapes = infer_shapes(p, {"N": 8, "T": 3})
        assert shapes["A"] == (4, 8)  # t in 0..3 written

    def test_constant_subscript(self):
        p = prog("for (i = 0; i < N; i++) A[i] = B[0];")
        assert infer_shapes(p, {"N": 5})["B"] == (1,)


class TestAllocation:
    def test_allocate_zero_filled(self):
        p = prog("for (i = 0; i < N; i++) A[i] = 1.0;")
        arrays = allocate_arrays(p, {"N": 6})
        assert arrays["A"].shape == (6,)
        assert (arrays["A"] == 0).all()

    def test_random_deterministic(self):
        p = prog("for (i = 0; i < N; i++) A[i] = B[i];")
        a1 = random_arrays(p, {"N": 5}, seed=7)
        a2 = random_arrays(p, {"N": 5}, seed=7)
        assert np.array_equal(a1["B"], a2["B"])

    def test_random_scalar_is_0d_array(self):
        p = prog("for (i = 0; i < N; i++) x += A[i];")
        arrays = random_arrays(p, {"N": 4})
        assert arrays["x"].shape == ()
