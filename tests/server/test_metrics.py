"""Tests for serving metrics: counters, hit rate, latency percentiles."""

import pytest

from repro.server.metrics import LatencyWindow, ServerMetrics


class TestLatencyWindow:
    def test_empty_percentiles_are_none(self):
        window = LatencyWindow()
        assert window.percentile(0.5) is None
        assert window.as_dict() == {
            "count": 0, "p50": None, "p90": None, "p99": None, "max": None,
        }

    def test_percentiles_from_samples(self):
        window = LatencyWindow()
        for ms in range(1, 101):
            window.record(ms / 1000.0)
        assert window.percentile(0.5) == pytest.approx(0.051)
        assert window.percentile(0.99) == pytest.approx(0.1)
        d = window.as_dict()
        assert d["count"] == 100
        assert d["max"] == pytest.approx(0.1)

    def test_window_bounds_samples_but_not_count(self):
        window = LatencyWindow(window=4)
        for i in range(10):
            window.record(float(i))
        assert window.count == 10
        assert window.percentile(0.0) == 6.0  # oldest surviving sample


class TestServerMetrics:
    def test_outcome_counters(self):
        m = ServerMetrics()
        for tag in ("hit-memory", "hit-disk", "coalesced", "miss", "miss"):
            m.count_outcome(tag)
        assert m.ok == 5
        assert (m.hits_memory, m.hits_disk, m.coalesced, m.misses) == (1, 1, 1, 2)

    def test_hit_rate_counts_coalesced_as_hit(self):
        m = ServerMetrics()
        m.count_outcome("coalesced")
        m.count_outcome("miss")
        assert m.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty_is_zero(self):
        assert ServerMetrics().hit_rate == 0.0

    def test_error_and_busy_counters(self):
        m = ServerMetrics()
        m.count_busy()
        m.count_error("crash")
        m.count_error("crash")
        m.count_error("timeout")
        assert m.busy == 1
        assert m.errors == {"crash": 2, "timeout": 1}

    def test_request_counters(self):
        m = ServerMetrics()
        m.count_request("ping")
        m.count_request("optimize")
        m.count_request("optimize")
        assert m.requests == 3
        assert m.optimize_requests == 2

    def test_snapshot_splices_gauges(self):
        m = ServerMetrics()
        m.count_request("optimize")
        m.count_outcome("miss")
        m.observe("total", 0.25)
        m.observe("compute", 0.2)
        snap = m.snapshot(in_flight=3, queue_depth=1)
        assert snap["in_flight"] == 3
        assert snap["queue_depth"] == 1
        assert snap["misses"] == 1
        assert snap["latency"]["total"]["count"] == 1
        assert snap["latency"]["total"]["p50"] == pytest.approx(0.25)
        assert snap["latency"]["compute"]["p50"] == pytest.approx(0.2)
        assert snap["latency"]["lookup"]["count"] == 0
        assert snap["uptime_seconds"] >= 0

    def test_summary_line(self):
        m = ServerMetrics()
        m.count_request("optimize")
        m.count_outcome("hit-memory")
        m.count_request("optimize")
        m.count_outcome("miss")
        m.observe("total", 0.5)
        line = m.summary_line()
        assert "served 2 optimize request(s)" in line
        assert "hit rate 0.50" in line
        assert "p50 total 0.500s" in line

    def test_summary_line_before_any_request(self):
        assert "p50 total n/a" in ServerMetrics().summary_line()

    def test_scheduler_path_counters(self):
        m = ServerMetrics()
        m.count_scheduler("quick")
        m.count_scheduler("quick")
        m.count_scheduler("fallback", "untilable-band")
        m.count_scheduler("fallback", "diamond-requested")
        m.count_scheduler("exact")
        assert m.scheduler_paths == {"quick": 2, "fallback": 2, "exact": 1}
        assert m.fallback_reasons == {
            "untilable-band": 1, "diamond-requested": 1,
        }

    def test_scheduler_none_path_ignored(self):
        # pre-quick result payloads carry no scheduler_path
        m = ServerMetrics()
        m.count_scheduler(None)
        m.count_scheduler(None, "untilable-band")
        assert m.scheduler_paths == {}
        assert m.fallback_reasons == {}

    def test_scheduler_counters_in_snapshot_and_summary(self):
        m = ServerMetrics()
        m.count_scheduler("quick")
        m.count_scheduler("fallback", "no-legal-permutation")
        snap = m.snapshot()
        assert snap["scheduler_paths"] == {"quick": 1, "fallback": 1}
        assert snap["fallback_reasons"] == {"no-legal-permutation": 1}
        line = m.summary_line()
        assert '"quick": 1' in line
        assert "no-legal-permutation" in line

    def test_structural_counters(self):
        m = ServerMetrics()
        m.count_structural("hit")
        m.count_structural("hit")
        m.count_structural("miss")
        m.count_structural("fallback")
        m.count_structural(None)  # store disabled: not counted at all
        assert (m.structural_hits, m.structural_misses,
                m.structural_fallbacks) == (2, 1, 1)
        snap = m.snapshot()
        assert snap["structural_hits"] == 2
        assert snap["structural_misses"] == 1
        assert snap["structural_fallbacks"] == 1
        assert "structural 2/1/1 (hit/miss/fb)" in m.summary_line()

    def test_pool_counters(self):
        m = ServerMetrics()
        m.count_pool_spawn()
        m.count_pool_spawn()
        m.count_pool_dispatch(reused=False)
        m.count_pool_dispatch(reused=True)
        m.count_pool_dispatch(reused=True)
        m.count_pool_recycle()
        assert m.pool_spawns == 2
        assert m.pool_dispatches == 3
        assert m.pool_reuses == 2
        assert m.pool_recycles == 1
        snap = m.snapshot()
        assert snap["pool"] == {
            "spawns": 2, "dispatches": 3, "reuses": 2, "recycles": 1,
        }

    def test_pool_counters_default_zero(self):
        # spawn-per-miss pools never touch these; the snapshot still
        # carries the block so dashboards need no special-casing
        snap = ServerMetrics().snapshot()
        assert snap["pool"] == {
            "spawns": 0, "dispatches": 0, "reuses": 0, "recycles": 0,
        }

    def test_shard_route_counters(self):
        m = ServerMetrics()
        m.count_shard_route("/tmp/s0.sock")
        m.count_shard_route("/tmp/s1.sock")
        m.count_shard_route("/tmp/s0.sock")
        assert m.shard_routes == {"/tmp/s0.sock": 2, "/tmp/s1.sock": 1}
        assert m.snapshot()["shard_routes"] == {
            "/tmp/s0.sock": 2, "/tmp/s1.sock": 1,
        }


class TestReductionParallelCounter:
    def test_counter_and_snapshot(self):
        m = ServerMetrics()
        assert m.snapshot(in_flight=0, queue_depth=0)["reduction_parallel"] == 0
        m.count_reduction_parallel()
        m.count_reduction_parallel()
        assert m.reduction_parallel == 2
        snap = m.snapshot(in_flight=0, queue_depth=0)
        assert snap["reduction_parallel"] == 2

    def test_summary_line_mentions_it(self):
        m = ServerMetrics()
        m.count_reduction_parallel()
        assert "1 reduction-parallel" in m.summary_line()
