"""Tests for cache sharding: the consistent-hash ring and the router.

Ring tests are pure placement math.  Router tests run a real fleet — two
scripted daemons plus the router, all on background threads over Unix
sockets — and pin the routing invariants: every key lands on exactly one
shard, responses relay byte-identically, and fleet-wide stats/shutdown
fan out.  Fork-gated like the daemon tests.
"""

import json
import multiprocessing
import os
import socket
import threading
import time

import pytest

from repro.frontend import parse_program
from repro.frontend.serialize import program_to_dict
from repro.pipeline import RESULT_FORMAT_VERSION
from repro.server import Daemon, DaemonConfig, Router, RouterConfig, ServerClient
from repro.server.shard import ShardRing, parse_endpoint

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="behavior injection requires forked workers",
)

TINY = """
for (i = 1; i < N; i++)
    A[i] = 0.5 * A[i-1];
"""


def _program(name: str) -> dict:
    return program_to_dict(parse_program(TINY, name, params=("N",)))


def _scripted(payload):
    name = payload["program"]["name"]
    return json.dumps({"version": RESULT_FORMAT_VERSION, "marker": name,
                       "pid": os.getpid()})


class TestParseEndpoint:
    def test_host_port(self):
        assert parse_endpoint("127.0.0.1:9000") == ("tcp", "127.0.0.1", 9000)
        assert parse_endpoint("example.com:80") == ("tcp", "example.com", 80)

    def test_bare_port_defaults_host(self):
        assert parse_endpoint(":9000") == ("tcp", "127.0.0.1", 9000)

    def test_unix_paths(self):
        assert parse_endpoint("/tmp/repro.sock") == ("unix", "/tmp/repro.sock")
        # a path with a colon in the basename is still a path
        assert parse_endpoint("/tmp/a:b") == ("unix", "/tmp/a:b")
        assert parse_endpoint("relative.sock") == ("unix", "relative.sock")


class TestShardRing:
    ENDPOINTS = ["/tmp/s0.sock", "/tmp/s1.sock", "/tmp/s2.sock"]
    KEYS = [f"{i:064x}" for i in range(512)]

    def test_deterministic_across_instances(self):
        a = ShardRing(self.ENDPOINTS)
        b = ShardRing(list(self.ENDPOINTS))
        assert [a.owner(k) for k in self.KEYS] == [b.owner(k) for k in self.KEYS]

    def test_order_of_endpoints_is_irrelevant(self):
        a = ShardRing(self.ENDPOINTS)
        b = ShardRing(list(reversed(self.ENDPOINTS)))
        assert all(a.owner(k) == b.owner(k) for k in self.KEYS)

    def test_every_key_has_exactly_one_owner(self):
        ring = ShardRing(self.ENDPOINTS)
        for k in self.KEYS:
            assert ring.owner(k) in self.ENDPOINTS

    def test_load_spreads_across_shards(self):
        ring = ShardRing(self.ENDPOINTS)
        spread = ring.spread(self.KEYS)
        assert set(spread) == set(self.ENDPOINTS)
        # 512 keys over 3 shards with 64 vnodes: nobody starves, nobody hogs
        assert all(count > len(self.KEYS) * 0.1 for count in spread.values())

    def test_growing_the_fleet_remaps_a_minority(self):
        small = ShardRing(self.ENDPOINTS)
        grown = ShardRing(self.ENDPOINTS + ["/tmp/s3.sock"])
        moved = sum(
            1 for k in self.KEYS if small.owner(k) != grown.owner(k)
        )
        # consistent hashing: ~1/4 of keys move to the new shard; an
        # unstructured rehash would move ~3/4
        assert moved < len(self.KEYS) * 0.5
        assert all(
            grown.owner(k) == "/tmp/s3.sock"
            for k in self.KEYS
            if small.owner(k) != grown.owner(k)
        )

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardRing([])
        with pytest.raises(ValueError, match="duplicate"):
            ShardRing(["/tmp/a.sock", "/tmp/a.sock"])


@pytest.fixture
def fleet(tmp_path):
    """Two scripted shard daemons + a router, all on background threads."""
    stack = {"daemons": [], "threads": [], "router": None}

    shard_paths = []
    for i in range(2):
        config = DaemonConfig(
            socket_path=str(tmp_path / f"shard{i}.sock"),
            jobs=2, drain_seconds=2.0,
            cache_dir=str(tmp_path / f"cache{i}"),
        )
        daemon = Daemon(config)
        daemon.pool.fn = _scripted
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        stack["daemons"].append(daemon)
        stack["threads"].append(thread)
        shard_paths.append(config.socket_path)

    router = Router(RouterConfig(
        shards=shard_paths, socket_path=str(tmp_path / "router.sock"),
    ))
    stack["router"] = router
    router_thread = threading.Thread(target=router.serve, daemon=True)
    router_thread.start()
    stack["threads"].append(router_thread)

    deadline = time.time() + 10
    for path in shard_paths + [router.config.socket_path]:
        while not os.path.exists(path):
            assert time.time() < deadline, f"{path} never bound"
            time.sleep(0.01)

    yield router, stack["daemons"]

    router.shutdown()
    for daemon in stack["daemons"]:
        daemon.shutdown()
    for thread in stack["threads"]:
        thread.join(timeout=20)
        assert not thread.is_alive()


def _router_client(router) -> ServerClient:
    return ServerClient(socket_path=router.config.socket_path)


class TestRouter:
    def test_ping_answered_locally(self, fleet):
        router, _ = fleet
        with _router_client(router) as client:
            assert client.ping()["status"] == "ok"
        assert router.metrics.requests == 1

    def test_requests_partition_across_shards(self, fleet):
        router, daemons = fleet
        with _router_client(router) as client:
            responses = {
                name: client.optimize(program=_program(name))
                for name in (f"part-{i}" for i in range(8))
            }
        assert {r["status"] for r in responses.values()} == {"ok"}
        # every request was routed, and with 8 distinct keys over 2 shards
        # both shards should have seen work
        routed = router.metrics.shard_routes
        assert sum(routed.values()) == 8
        assert len(routed) == 2
        shard_served = [
            d.metrics.snapshot()["optimize_requests"] for d in daemons
        ]
        assert sum(shard_served) == 8
        assert all(n > 0 for n in shard_served)

    def test_same_key_always_lands_on_one_shard(self, fleet):
        router, daemons = fleet
        with _router_client(router) as client:
            cold = client.optimize(program=_program("sticky"))
            warm = client.optimize(program=_program("sticky"))
        assert cold["cache"] == "miss"
        assert warm["cache"] == "hit-memory"  # same shard, warm tier
        assert warm["result"] == cold["result"]
        # exactly one shard computed and cached it
        stores = [d.cache.stats.stores for d in daemons]
        assert sorted(stores) == [0, 1]

    def test_routed_response_byte_identical_to_direct(self, fleet, tmp_path):
        router, daemons = fleet
        request = json.dumps(
            {"type": "optimize", "program": _program("bytes-eq")}
        ).encode() + b"\n"

        def raw_roundtrip(path: str) -> bytes:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                s.connect(path)
                s.sendall(request)
                buf = b""
                while not buf.endswith(b"\n"):
                    chunk = s.recv(1 << 20)
                    if not chunk:
                        break
                    buf += chunk
                return buf

        via_router = raw_roundtrip(router.config.socket_path)
        owner = router.ring.owner(
            json.loads(via_router)["key"]
        )
        direct = raw_roundtrip(owner)
        # the second request hits the shard's cache; apart from the cache
        # tag and elapsed time the lines must match byte-for-byte — and
        # the result payload exactly
        via = json.loads(via_router)
        dir_ = json.loads(direct)
        assert via["result"] == dir_["result"]
        assert via["key"] == dir_["key"]
        assert (via["cache"], dir_["cache"]) == ("miss", "hit-memory")

    def test_stats_aggregates_fleet(self, fleet):
        router, daemons = fleet
        with _router_client(router) as client:
            client.optimize(program=_program("agg"))
            stats = client.stats()["stats"]
        assert set(stats) == {"router", "shards"}
        assert stats["router"]["shards"] == [
            d.config.socket_path for d in daemons
        ]
        assert sum(
            s["server"]["optimize_requests"] for s in stats["shards"].values()
        ) == 1

    def test_bad_request_answered_by_router(self, fleet):
        router, daemons = fleet
        with _router_client(router) as client:
            resp = client.optimize("no-such-workload-anywhere")
        assert resp["status"] == "error"
        assert resp["kind"] == "bad-request"
        # never forwarded: the shards saw nothing
        assert all(d.metrics.requests == 0 for d in daemons)

    def test_unreachable_shard_is_structured_error(self, tmp_path):
        router = Router(RouterConfig(
            shards=[str(tmp_path / "nobody-home.sock")],
            socket_path=str(tmp_path / "router.sock"),
        ))
        thread = threading.Thread(target=router.serve, daemon=True)
        thread.start()
        deadline = time.time() + 10
        while not os.path.exists(router.config.socket_path):
            assert time.time() < deadline
            time.sleep(0.01)
        try:
            with _router_client(router) as client:
                resp = client.optimize(program=_program("orphan"))
            assert resp["status"] == "error"
            assert "unreachable" in resp["message"]
        finally:
            router.shutdown()
            thread.join(timeout=10)

    def test_shutdown_fans_out_to_every_shard(self, fleet):
        router, daemons = fleet
        with _router_client(router) as client:
            resp = client.shutdown()
        assert resp["status"] == "ok"
        assert set(resp["shards"]) == {d.config.socket_path for d in daemons}
        assert set(resp["shards"].values()) == {"ok"}
        deadline = time.time() + 15
        paths = [d.config.socket_path for d in daemons]
        paths.append(router.config.socket_path)
        for path in paths:
            while os.path.exists(path):
                assert time.time() < deadline, f"{path} never shut down"
                time.sleep(0.05)
