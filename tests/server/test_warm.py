"""Tests for ``repro warm``: pre-populating the cache over the matrix.

A scripted daemon serves a real workload matrix (the motivation figures —
resolution is real, only the scheduling work is stubbed), and warming is
checked for the property that matters: after a warm pass, a plain client
request for any cell is a cache hit.  Fork-gated like the daemon tests.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.pipeline import RESULT_FORMAT_VERSION
from repro.server import Daemon, DaemonConfig, ServerClient, warm_cache
from repro.suite.matrix import build_matrix

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="behavior injection requires forked workers",
)


def _fast(payload):
    return json.dumps({
        "version": RESULT_FORMAT_VERSION,
        "marker": payload["program"]["name"],
    })


def _slowish(payload):
    time.sleep(0.3)
    return _fast(payload)


@pytest.fixture
def daemon_factory(tmp_path):
    started = []

    def make(fn=_fast, **cfg):
        cfg.setdefault("jobs", 2)
        cfg.setdefault("drain_seconds", 2.0)
        cfg.setdefault("cache_dir", str(tmp_path / "cache"))
        config = DaemonConfig(
            socket_path=str(tmp_path / f"d{len(started)}.sock"), **cfg
        )
        daemon = Daemon(config)
        daemon.pool.fn = fn
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        deadline = time.time() + 10
        while not os.path.exists(config.socket_path):
            assert thread.is_alive(), "daemon died during startup"
            assert time.time() < deadline, "daemon never bound its socket"
            time.sleep(0.01)
        started.append((daemon, thread))
        return daemon

    yield make
    for daemon, thread in started:
        daemon.shutdown()
        thread.join(timeout=20)
        assert not thread.is_alive()


class TestClientRequest:
    def test_spec_becomes_an_optimize_request(self):
        spec = build_matrix(category="motivation")[0]
        request = spec.client_request()
        assert request["type"] == "optimize"
        assert request["workload"] == spec.workload
        assert request["options"] == spec.options.as_dict()


class TestWarmCache:
    def test_warm_pass_populates_every_cell(self, daemon_factory):
        daemon = daemon_factory()
        specs = build_matrix(category="motivation")
        report = warm_cache(
            specs, socket_path=daemon.config.socket_path, jobs=2
        )
        assert len(report.outcomes) == len(specs)
        assert report.failed == []
        assert report.computed == len(specs)
        assert report.already_warm == 0
        # warming computed exactly the entries real requests look up: a
        # bare client request (daemon resolves the paper flags itself) hits
        with ServerClient(socket_path=daemon.config.socket_path) as client:
            for spec in specs:
                resp = client.optimize(spec.workload)
                assert resp["status"] == "ok"
                assert resp["cache"].startswith("hit-"), spec.run_id

    def test_second_pass_is_all_hits(self, daemon_factory):
        daemon = daemon_factory()
        specs = build_matrix(category="motivation")
        first = warm_cache(specs, socket_path=daemon.config.socket_path)
        again = warm_cache(specs, socket_path=daemon.config.socket_path)
        assert first.computed == len(specs)
        assert again.computed == 0
        assert again.already_warm == len(specs)
        assert again.failed == []

    def test_busy_responses_are_retried_not_failed(self, daemon_factory):
        # one worker, zero backlog, slow jobs, more clients than slots:
        # admission control answers busy constantly; warming rides it out
        daemon = daemon_factory(fn=_slowish, jobs=1, backlog=0)
        specs = build_matrix(category="motivation")
        report = warm_cache(
            specs, socket_path=daemon.config.socket_path,
            jobs=4, busy_backoff=0.05,
        )
        assert report.failed == []
        assert report.computed == len(specs)
        assert daemon.metrics.busy > 0, "the test never actually saturated"

    def test_progress_callback_sees_every_outcome(self, daemon_factory):
        daemon = daemon_factory()
        specs = build_matrix(category="motivation")
        seen = []
        report = warm_cache(
            specs, socket_path=daemon.config.socket_path,
            progress=seen.append,
        )
        assert len(seen) == len(specs)
        assert {o["run_id"] for o in seen} == {s.run_id for s in specs}
        assert report.summary_line().startswith(f"warmed {len(specs)} spec")

    def test_unreachable_daemon_reports_errors_not_raises(self, tmp_path):
        specs = build_matrix(category="motivation")
        report = warm_cache(
            specs, socket_path=str(tmp_path / "nobody.sock"), jobs=2
        )
        assert len(report.failed) == len(specs)
        assert all("cannot connect" in o["message"] for o in report.failed)

    def test_report_as_dict_shape(self, daemon_factory):
        daemon = daemon_factory()
        specs = build_matrix(category="motivation")[:2]
        report = warm_cache(specs, socket_path=daemon.config.socket_path)
        data = report.as_dict()
        assert data["specs"] == 2
        assert data["computed"] == 2
        assert data["failed"] == 0
        assert len(data["outcomes"]) == 2
