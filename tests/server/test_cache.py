"""Tests for the two-tier content-addressed schedule cache."""

import json
import time

import pytest

from repro.pipeline import RESULT_FORMAT_VERSION
from repro.server.cache import ScheduleCache, cache_key, canonical_request

PROGRAM = {"name": "p", "statements": [{"text": "A[i] = A[i-1];"}]}
OPTIONS = {"algorithm": "plutoplus", "tile": True, "tile_size": 32}


def _payload(marker="x"):
    """A minimal valid cache value (format version is all _valid checks)."""
    return json.dumps({"version": RESULT_FORMAT_VERSION, "marker": marker})


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key(PROGRAM, OPTIONS) == cache_key(PROGRAM, OPTIONS)

    def test_key_is_hex_sha256(self):
        key = cache_key(PROGRAM, OPTIONS)
        assert len(key) == 64
        int(key, 16)  # raises on non-hex

    def test_insensitive_to_dict_ordering(self):
        shuffled = dict(reversed(list(OPTIONS.items())))
        assert cache_key(PROGRAM, shuffled) == cache_key(PROGRAM, OPTIONS)

    def test_sensitive_to_any_option_change(self):
        base = cache_key(PROGRAM, OPTIONS)
        assert cache_key(PROGRAM, {**OPTIONS, "tile_size": 64}) != base

    def test_sensitive_to_program_change(self):
        other = {**PROGRAM, "statements": [{"text": "A[i] = 0;"}]}
        assert cache_key(other, OPTIONS) != cache_key(PROGRAM, OPTIONS)

    def test_folds_in_pipeline_fingerprint(self, monkeypatch):
        base = cache_key(PROGRAM, OPTIONS)
        monkeypatch.setattr(
            "repro.server.cache.pipeline_fingerprint",
            lambda scheduler=None: "pipeline-v999",
        )
        assert cache_key(PROGRAM, OPTIONS) != base

    def test_scheduler_modes_never_share_a_key(self):
        # same IR, same options except the resolved scheduler mode: the
        # fingerprint segment keeps quick/auto/exact results apart even
        # though quick-won and exact schedules can differ
        keys = {
            mode: cache_key(PROGRAM, {**OPTIONS, "scheduler": mode})
            for mode in ("exact", "quick", "auto")
        }
        assert len(set(keys.values())) == 3
        # an options dict predating the field resolves to the exact segment
        legacy = json.loads(canonical_request(PROGRAM, OPTIONS))["pipeline"]
        explicit = json.loads(
            canonical_request(PROGRAM, {**OPTIONS, "scheduler": "exact"})
        )["pipeline"]
        assert legacy == explicit

    def test_scheduler_mode_lands_in_the_fingerprint_not_just_options(self):
        quick = canonical_request(PROGRAM, {**OPTIONS, "scheduler": "quick"})
        exact = canonical_request(PROGRAM, {**OPTIONS, "scheduler": "exact"})
        assert json.loads(quick)["pipeline"] != json.loads(exact)["pipeline"]

    def test_canonical_text_is_compact_and_sorted(self):
        text = canonical_request(PROGRAM, OPTIONS)
        assert ": " not in text and ", " not in text
        assert json.loads(text)["options"] == OPTIONS


class TestTiers:
    def test_miss_then_memory_hit(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c")
        key = cache_key(PROGRAM, OPTIONS)
        assert cache.get(key) == (None, None)
        cache.put(key, _payload())
        assert cache.get(key) == (_payload(), "memory")
        assert cache.stats.misses == 1
        assert cache.stats.hits_memory == 1
        assert cache.stats.stores == 1

    def test_disk_survives_new_instance_and_promotes(self, tmp_path):
        key = cache_key(PROGRAM, OPTIONS)
        ScheduleCache(tmp_path / "c").put(key, _payload("cold"))

        reborn = ScheduleCache(tmp_path / "c")
        assert reborn.get(key) == (_payload("cold"), "disk")
        # promoted into the memory tier on the way through
        assert reborn.get(key) == (_payload("cold"), "memory")
        assert reborn.stats.hits_disk == 1
        assert reborn.stats.hits_memory == 1

    def test_memory_only_mode(self):
        cache = ScheduleCache(None)
        key = cache_key(PROGRAM, OPTIONS)
        cache.put(key, _payload())
        assert cache.get(key) == (_payload(), "memory")
        assert cache.path_for(key) is None
        assert cache.disk_len() == 0

    def test_memory_tier_disabled(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c", memory_entries=0)
        key = cache_key(PROGRAM, OPTIONS)
        cache.put(key, _payload())
        assert cache.get(key) == (_payload(), "disk")
        assert cache.get(key) == (_payload(), "disk")
        assert cache.memory_len() == 0

    def test_memory_lru_eviction(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c", memory_entries=2)
        keys = [cache_key(PROGRAM, {**OPTIONS, "tile_size": n}) for n in (1, 2, 3)]
        for k in keys:
            cache.put(k, _payload(k[:8]))
        assert cache.memory_len() == 2
        assert cache.stats.evictions == 1
        # the evicted entry falls back to the disk tier
        assert cache.get(keys[0]) == (_payload(keys[0][:8]), "disk")
        assert cache.get(keys[2])[1] == "memory"


class TestDiskHygiene:
    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c")
        key = cache_key(PROGRAM, OPTIONS)
        cache.put(key, _payload())
        leftovers = [
            p for p in (tmp_path / "c").rglob("*") if ".tmp" in p.name
        ]
        assert leftovers == []
        assert cache.path_for(key).read_text() == _payload()

    def test_corrupt_file_dropped_as_miss(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c")
        key = cache_key(PROGRAM, OPTIONS)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{truncated by a killed writ")
        assert cache.get(key) == (None, None)
        assert cache.stats.invalid_dropped == 1
        assert not path.exists()

    def test_foreign_version_dropped_as_miss(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c")
        key = cache_key(PROGRAM, OPTIONS)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"version": RESULT_FORMAT_VERSION + 999}))
        assert cache.get(key) == (None, None)
        assert cache.stats.invalid_dropped == 1
        assert not path.exists()

    def test_startup_sweeps_stale_tmp_files(self, tmp_path):
        import os

        root = tmp_path / "c"
        key = cache_key(PROGRAM, OPTIONS)
        first = ScheduleCache(root)
        first.put(key, _payload())
        # a writer killed between write and rename leaves these behind
        stale = root / key[:2] / f"{key}.tmp.12345"
        stale.write_text("{half a payl")
        old = time.time() - 3600
        os.utime(stale, (old, old))

        reborn = ScheduleCache(root)
        assert not stale.exists()
        assert reborn.stats.tmp_swept == 1
        assert reborn.snapshot()["tmp_swept"] == 1
        # the real entry is untouched
        assert reborn.get(key) == (_payload(), "disk")

    def test_sweep_spares_fresh_tmp_files(self, tmp_path):
        root = tmp_path / "c"
        key = cache_key(PROGRAM, OPTIONS)
        ScheduleCache(root).put(key, _payload())
        # a *fresh* tmp may belong to a live writer sharing the directory
        fresh = root / key[:2] / f"{key}.tmp.54321"
        fresh.write_text("{in progress")

        reborn = ScheduleCache(root)
        assert fresh.exists()
        assert reborn.stats.tmp_swept == 0

    def test_sweep_noop_on_fresh_directory(self, tmp_path):
        cache = ScheduleCache(tmp_path / "new")
        assert cache.stats.tmp_swept == 0

    def test_opportunistic_sweep_every_n_puts(self, tmp_path):
        """A long-lived daemon must reclaim orphans left *after* startup —
        the startup-only sweep used to let them accumulate forever."""
        import os

        root = tmp_path / "c"
        cache = ScheduleCache(root, sweep_every=2)
        key = cache_key(PROGRAM, OPTIONS)
        orphan = root / key[:2] / f"{key}.tmp.99999"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_text("{half a payl")
        old = time.time() - 3600
        os.utime(orphan, (old, old))

        cache.put(key, _payload())          # put 1: not due yet
        assert orphan.exists()
        cache.put("ab" + "0" * 62, _payload())  # put 2: sweep fires
        assert not orphan.exists()
        assert cache.stats.tmp_swept == 1

    def test_opportunistic_sweep_spares_fresh_tmp(self, tmp_path):
        root = tmp_path / "c"
        cache = ScheduleCache(root, sweep_every=1)
        key = cache_key(PROGRAM, OPTIONS)
        fresh = root / key[:2] / f"{key}.tmp.99999"
        fresh.parent.mkdir(parents=True, exist_ok=True)
        fresh.write_text("{in progress")

        cache.put(key, _payload())  # due immediately, but file is young
        assert fresh.exists()
        assert cache.stats.tmp_swept == 0

    def test_snapshot_reports_both_tiers(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c", memory_entries=5)
        cache.put(cache_key(PROGRAM, OPTIONS), _payload())
        snap = cache.snapshot()
        assert snap["memory_entries"] == 1
        assert snap["memory_capacity"] == 5
        assert snap["disk_entries"] == 1
        assert snap["stores"] == 1
        assert snap["cache_dir"] == str(tmp_path / "c")


class TestStats:
    def test_hit_rate(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c")
        key = cache_key(PROGRAM, OPTIONS)
        cache.get(key)          # miss
        cache.put(key, _payload())
        cache.get(key)          # memory hit
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.as_dict()["hit_rate"] == pytest.approx(0.5)
