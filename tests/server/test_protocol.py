"""Unit tests for the JSON-lines wire protocol."""

import io
import json

import pytest

from repro import __version__
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    read_message,
    response_header,
    validate_request,
    write_message,
)


def _roundtrip(*objs):
    buf = io.BytesIO()
    for obj in objs:
        write_message(buf, obj)
    buf.seek(0)
    return buf


class TestFraming:
    def test_write_then_read_roundtrips(self):
        buf = _roundtrip({"type": "ping", "id": 7})
        assert read_message(buf) == {"type": "ping", "id": 7}

    def test_messages_are_single_lines(self):
        buf = _roundtrip({"type": "ping"}, {"type": "stats"})
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_eof_reads_as_none(self):
        assert read_message(io.BytesIO(b"")) is None

    def test_blank_lines_skipped(self):
        buf = io.BytesIO(b"\n   \n" + json.dumps({"type": "ping"}).encode() + b"\n")
        assert read_message(buf) == {"type": "ping"}

    def test_garbage_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            read_message(io.BytesIO(b"{nope\n"))

    def test_non_object_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            read_message(io.BytesIO(b"[1, 2]\n"))


class TestValidation:
    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request type"):
            validate_request({"type": "frobnicate"})

    def test_missing_type_rejected(self):
        with pytest.raises(ProtocolError):
            validate_request({})

    def test_optimize_needs_workload_or_program(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            validate_request({"type": "optimize"})

    def test_optimize_rejects_both_workload_and_program(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            validate_request(
                {"type": "optimize", "workload": "w", "program": {}}
            )

    def test_optimize_options_must_be_object(self):
        with pytest.raises(ProtocolError, match="'options'"):
            validate_request(
                {"type": "optimize", "workload": "w", "options": [1]}
            )

    def test_valid_requests_pass_through(self):
        for req in (
            {"type": "ping"},
            {"type": "stats"},
            {"type": "shutdown"},
            {"type": "optimize", "workload": "heat-2dp"},
            {"type": "optimize", "program": {"name": "p"}, "options": {}},
        ):
            assert validate_request(req) is req


class TestResponses:
    def test_header_carries_versions(self):
        header = response_header()
        assert header == {
            "protocol": PROTOCOL_VERSION,
            "server_version": __version__,
        }

    def test_header_echoes_request_id(self):
        assert response_header({"type": "ping", "id": "abc"})["id"] == "abc"
        assert "id" not in response_header({"type": "ping"})

    def test_error_response_shape(self):
        resp = error_response({"id": 3}, "bad-request", "nope")
        assert resp["status"] == "error"
        assert resp["kind"] == "bad-request"
        assert resp["message"] == "nope"
        assert resp["id"] == 3
        assert resp["protocol"] == PROTOCOL_VERSION
        assert resp["server_version"] == __version__
