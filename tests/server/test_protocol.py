"""Unit tests for the JSON-lines wire protocol."""

import io
import json

import pytest

from repro import __version__
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_message,
    encode_response_with_result,
    error_response,
    parse_line,
    read_message,
    response_header,
    validate_request,
    write_message,
)


def _roundtrip(*objs):
    buf = io.BytesIO()
    for obj in objs:
        write_message(buf, obj)
    buf.seek(0)
    return buf


class TestFraming:
    def test_write_then_read_roundtrips(self):
        buf = _roundtrip({"type": "ping", "id": 7})
        assert read_message(buf) == {"type": "ping", "id": 7}

    def test_messages_are_single_lines(self):
        buf = _roundtrip({"type": "ping"}, {"type": "stats"})
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_eof_reads_as_none(self):
        assert read_message(io.BytesIO(b"")) is None

    def test_blank_lines_skipped(self):
        buf = io.BytesIO(b"\n   \n" + json.dumps({"type": "ping"}).encode() + b"\n")
        assert read_message(buf) == {"type": "ping"}

    def test_garbage_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            read_message(io.BytesIO(b"{nope\n"))

    def test_non_object_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            read_message(io.BytesIO(b"[1, 2]\n"))


class TestLineHelpers:
    """The async loop's framing primitives (no file objects involved)."""

    def test_encode_message_is_one_line(self):
        data = encode_message({"type": "ping", "id": 7})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert json.loads(data) == {"type": "ping", "id": 7}

    def test_parse_line_roundtrips_encode(self):
        obj = {"type": "optimize", "workload": "w", "options": {"tile": True}}
        assert parse_line(encode_message(obj)) == obj

    def test_parse_line_blank_is_none(self):
        assert parse_line(b"\n") is None
        assert parse_line(b"   \n") is None

    def test_parse_line_garbage_raises(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_line(b"{nope\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_line(b"[1]\n")

    def test_splice_matches_full_encode_byte_for_byte(self):
        # the warm path splices cached to_json() text into the response
        # line instead of parsing + re-dumping; the bytes must be exactly
        # what the slow path would produce
        result_text = json.dumps(
            {"version": 1, "schedule": {"rows": [[0, 1], [1, 0]]},
             "unicode": "héhé", "nested": {"deep": [1.5, None, True]}}
        )
        head = {
            **response_header({"id": "x"}),
            "status": "ok", "cache": "hit-memory", "key": "ab" * 32,
            "elapsed": 0.000123,
        }
        spliced = encode_response_with_result(head, result_text)
        full = encode_message({**head, "result": json.loads(result_text)})
        assert spliced == full

    def test_splice_result_parses_back_verbatim(self):
        result_text = json.dumps({"version": 1, "marker": "m"})
        line = encode_response_with_result(
            {**response_header(), "status": "ok"}, result_text
        )
        parsed = parse_line(line)
        assert parsed["status"] == "ok"
        assert json.dumps(parsed["result"]) == result_text


class TestValidation:
    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request type"):
            validate_request({"type": "frobnicate"})

    def test_missing_type_rejected(self):
        with pytest.raises(ProtocolError):
            validate_request({})

    def test_optimize_needs_workload_or_program(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            validate_request({"type": "optimize"})

    def test_optimize_rejects_both_workload_and_program(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            validate_request(
                {"type": "optimize", "workload": "w", "program": {}}
            )

    def test_optimize_options_must_be_object(self):
        with pytest.raises(ProtocolError, match="'options'"):
            validate_request(
                {"type": "optimize", "workload": "w", "options": [1]}
            )

    def test_valid_requests_pass_through(self):
        for req in (
            {"type": "ping"},
            {"type": "stats"},
            {"type": "shutdown"},
            {"type": "optimize", "workload": "heat-2dp"},
            {"type": "optimize", "program": {"name": "p"}, "options": {}},
        ):
            assert validate_request(req) is req


class TestResponses:
    def test_header_carries_versions(self):
        header = response_header()
        assert header == {
            "protocol": PROTOCOL_VERSION,
            "server_version": __version__,
        }

    def test_header_echoes_request_id(self):
        assert response_header({"type": "ping", "id": "abc"})["id"] == "abc"
        assert "id" not in response_header({"type": "ping"})

    def test_error_response_shape(self):
        resp = error_response({"id": 3}, "bad-request", "nope")
        assert resp["status"] == "error"
        assert resp["kind"] == "bad-request"
        assert resp["message"] == "nope"
        assert resp["id"] == 3
        assert resp["protocol"] == PROTOCOL_VERSION
        assert resp["server_version"] == __version__
