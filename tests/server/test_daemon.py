"""End-to-end daemon tests over real Unix sockets.

The daemon runs on a background thread inside the test process; worker
behavior is injected by swapping the pool supervisor's job body for a
scripted one — forked workers inherit the swap, and the script keys off
the serialized program's *name*, so hostile behavior (crash, hang, slow)
is selected per request.  Fork-gated like the suite-engine tests.
"""

import json
import multiprocessing
import os
import socket
import threading
import time

import pytest

from repro import __version__
from repro.frontend import parse_program
from repro.frontend.serialize import program_to_dict
from repro.pipeline import RESULT_FORMAT_VERSION, PipelineOptions, optimize
from repro.server import Daemon, DaemonConfig, ServerClient
from repro.server.protocol import PROTOCOL_VERSION

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="behavior injection requires forked workers",
)

TINY = """
for (i = 1; i < N; i++)
    A[i] = 0.5 * A[i-1];
"""


def _program(name: str) -> dict:
    """Distinct names → distinct serialized IR → distinct cache keys."""
    return program_to_dict(parse_program(TINY, name, params=("N",)))


def _scripted(payload):
    """Injected job body: the program name selects the behavior."""
    name = payload["program"]["name"]
    if name.startswith("crash"):
        os._exit(9)
    if name.startswith("hang"):
        time.sleep(60)
    if name.startswith("slowerr"):
        time.sleep(0.6)
        raise RuntimeError(f"scripted failure for {name}")
    if name.startswith("slow"):
        time.sleep(0.6)
    if name.startswith("sched"):
        quick = "quick" in name
        return json.dumps({
            "version": RESULT_FORMAT_VERSION,
            "marker": name,
            "scheduler_stats": {
                "scheduler_path": "quick" if quick else "fallback",
                "fallback_reason": None if quick else "untilable-band",
            },
        })
    if name.startswith("redpar"):
        # the serialization rule: "reduction" appears on a tiled row only
        # when relaxation actually bought a parallel dimension
        return json.dumps({
            "version": RESULT_FORMAT_VERSION,
            "marker": name,
            "tiled": {"rows": [
                {"kind": "loop", "parallel": True, "reduction": [
                    {"stmt": "S0", "array": "s", "op": "+", "mode": "omp"}
                ]},
                {"kind": "loop"},
            ]},
        })
    return json.dumps({"version": RESULT_FORMAT_VERSION, "marker": name})


def _inject(daemon, fn) -> None:
    """Swap the pool's job body (works for both pool implementations).

    Must happen before ``serve()``: warm workers capture ``fn`` at fork.
    """
    if hasattr(daemon.pool, "_sup"):
        daemon.pool._sup.fn = fn  # spawn-per-miss supervisor
    else:
        daemon.pool.fn = fn       # warm pool: captured at each fork


@pytest.fixture(
    params=[("async", "warm"), ("threads", "spawn")],
    ids=["async-warm", "threads-spawn"],
)
def daemon_factory(request, tmp_path):
    """Start daemons on background threads; drain them all afterwards.

    Parametrized over the default serving stack (asyncio loop + warm
    pre-forked pool) and the legacy one (thread-per-connection +
    spawn-per-miss), so every end-to-end behavior is pinned on both.
    """
    loop, pool_mode = request.param
    started = []

    def make(scripted=True, **cfg):
        cfg.setdefault("jobs", 2)
        cfg.setdefault("drain_seconds", 2.0)
        cfg.setdefault("cache_dir", str(tmp_path / "cache"))
        cfg.setdefault("loop", loop)
        cfg.setdefault("pool_mode", pool_mode)
        config = DaemonConfig(
            socket_path=str(tmp_path / f"d{len(started)}.sock"), **cfg
        )
        daemon = Daemon(config)
        if scripted:
            _inject(daemon, _scripted)
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        deadline = time.time() + 10
        while not os.path.exists(config.socket_path):
            assert thread.is_alive(), "daemon died during startup"
            assert time.time() < deadline, "daemon never bound its socket"
            time.sleep(0.01)
        started.append((daemon, thread))
        return daemon

    yield make
    for daemon, thread in started:
        daemon.shutdown()
        thread.join(timeout=20)
        assert not thread.is_alive()


def _client(daemon, **kwargs) -> ServerClient:
    return ServerClient(socket_path=daemon.config.socket_path, **kwargs)


class TestBasics:
    def test_ping_carries_versions(self, daemon_factory):
        with _client(daemon_factory()) as client:
            resp = client.ping()
        assert resp["status"] == "ok"
        assert resp["protocol"] == PROTOCOL_VERSION
        assert resp["server_version"] == __version__

    def test_request_id_echoed(self, daemon_factory):
        with _client(daemon_factory()) as client:
            resp = client.request({"type": "ping", "id": "req-42"})
        assert resp["id"] == "req-42"

    def test_garbage_line_answered_not_fatal(self, daemon_factory):
        daemon = daemon_factory()
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
            raw.connect(daemon.config.socket_path)
            raw.sendall(b"{this is not json\n")
            rfile = raw.makefile("rb")
            resp = json.loads(rfile.readline())
            assert resp["status"] == "error"
            assert resp["kind"] == "bad-request"
            # the connection is still usable afterwards
            raw.sendall(b'{"type": "ping"}\n')
            assert json.loads(rfile.readline())["status"] == "ok"

    def test_stats_request_shape(self, daemon_factory):
        daemon = daemon_factory()
        with _client(daemon) as client:
            client.optimize(program=_program("ok-stats"))
            resp = client.stats()
        server = resp["stats"]["server"]
        assert server["optimize_requests"] == 1
        assert server["misses"] == 1
        assert server["jobs"] == 2
        assert server["in_flight"] == 0
        assert resp["stats"]["cache"]["stores"] == 1

    def test_scheduler_paths_counted_once_per_computation(self, daemon_factory):
        daemon = daemon_factory()
        with _client(daemon) as client:
            client.optimize(program=_program("sched-quick"))
            client.optimize(program=_program("sched-fb"))
            client.optimize(program=_program("sched-quick"))  # cache hit
            server = client.stats()["stats"]["server"]
        assert server["scheduler_paths"] == {"quick": 1, "fallback": 1}
        assert server["fallback_reasons"] == {"untilable-band": 1}
        # pre-quick payloads (no scheduler_stats) are simply not counted
        with _client(daemon) as client:
            client.optimize(program=_program("ok-plain"))
            server = client.stats()["stats"]["server"]
        assert server["scheduler_paths"] == {"quick": 1, "fallback": 1}

    def test_reduction_parallel_counted_once_per_computation(
        self, daemon_factory
    ):
        daemon = daemon_factory()
        with _client(daemon) as client:
            client.optimize(program=_program("redpar-a"))
            client.optimize(program=_program("ok-noredpar"))
            client.optimize(program=_program("redpar-a"))  # cache hit
            server = client.stats()["stats"]["server"]
        assert server["reduction_parallel"] == 1


class TestBadRequests:
    def test_unknown_workload(self, daemon_factory):
        with _client(daemon_factory()) as client:
            resp = client.optimize("no-such-workload")
        assert resp["status"] == "error"
        assert resp["kind"] == "bad-request"
        assert "no-such-workload" in resp["message"]

    def test_unknown_option_field(self, daemon_factory):
        with _client(daemon_factory()) as client:
            resp = client.optimize(
                program=_program("p"), options={"frobnicate": 1}
            )
        assert resp["status"] == "error"
        assert "frobnicate" in resp["message"]

    def test_unknown_request_type(self, daemon_factory):
        with _client(daemon_factory()) as client:
            resp = client.request({"type": "frobnicate"})
        assert resp["kind"] == "bad-request"
        assert "unknown request type" in resp["message"]


class TestCachePath:
    def test_miss_then_memory_hit_byte_identical(self, daemon_factory):
        daemon = daemon_factory()
        with _client(daemon) as client:
            cold = client.optimize(program=_program("ok-a"))
            warm = client.optimize(program=_program("ok-a"))
        assert cold["status"] == warm["status"] == "ok"
        assert cold["cache"] == "miss"
        assert warm["cache"] == "hit-memory"
        assert warm["key"] == cold["key"]
        assert warm["result"] == cold["result"]

    def test_disk_cache_survives_restart(self, daemon_factory, tmp_path):
        first = daemon_factory()
        with _client(first) as client:
            cold = client.optimize(program=_program("ok-persist"))
        first.shutdown()

        second = daemon_factory()  # same cache_dir, empty memory tier
        with _client(second) as client:
            warm = client.optimize(program=_program("ok-persist"))
        assert warm["cache"] == "hit-disk"
        assert warm["result"] == cold["result"]

    def test_distinct_options_are_distinct_keys(self, daemon_factory):
        daemon = daemon_factory()
        with _client(daemon) as client:
            a = client.optimize(program=_program("ok-opt"))
            b = client.optimize(
                program=_program("ok-opt"), options={"tile_size": 64}
            )
        assert a["key"] != b["key"]
        assert b["cache"] == "miss"

    def test_single_flight_coalesces_concurrent_identical(self, daemon_factory):
        daemon = daemon_factory()
        responses = []

        def ask():
            with _client(daemon) as client:
                responses.append(client.optimize(program=_program("slow-sf")))

        threads = [threading.Thread(target=ask) for _ in range(2)]
        threads[0].start()
        time.sleep(0.2)  # let the first request own the flight
        threads[1].start()
        for t in threads:
            t.join(timeout=30)
        assert {r["status"] for r in responses} == {"ok"}
        assert sorted(r["cache"] for r in responses) == ["coalesced", "miss"]
        assert responses[0]["result"] == responses[1]["result"]
        with _client(daemon) as client:
            server = client.stats()["stats"]["server"]
        assert server["coalesced"] == 1
        assert server["misses"] == 1

    def test_coalesced_waiters_receive_worker_error(self, daemon_factory):
        # every request joined to a failing flight gets the structured
        # error — not a hang, not a phantom ok
        daemon = daemon_factory()
        responses = []

        def ask():
            with _client(daemon) as client:
                responses.append(
                    client.optimize(program=_program("slowerr-shared"))
                )

        threads = [threading.Thread(target=ask) for _ in range(3)]
        threads[0].start()
        time.sleep(0.2)  # let the first request own the flight
        for t in threads[1:]:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(responses) == 3
        assert {r["status"] for r in responses} == {"error"}
        assert {r["kind"] for r in responses} == {"error"}
        assert all("scripted failure" in r["message"] for r in responses)
        # a failed flight leaves nothing cached: the next request recomputes
        with _client(daemon) as client:
            server = client.stats()["stats"]["server"]
        assert server["ok"] == 0
        assert server["errors"].get("error") == 1  # counted once per flight

    def test_disk_hit_with_memory_tier_disabled(self, daemon_factory):
        # memory_entries=0 forces every warm request through the disk tier
        daemon = daemon_factory(memory_entries=0)
        with _client(daemon) as client:
            cold = client.optimize(program=_program("ok-nomem"))
            warm = client.optimize(program=_program("ok-nomem"))
            again = client.optimize(program=_program("ok-nomem"))
            snap = client.stats()["stats"]
        assert cold["cache"] == "miss"
        assert warm["cache"] == "hit-disk"
        assert again["cache"] == "hit-disk"  # never promoted to memory
        assert warm["result"] == cold["result"]
        assert snap["server"]["hits_disk"] == 2
        assert snap["cache"]["memory_entries"] == 0
        assert snap["cache"]["hits_disk"] == 2


class TestFaultIsolation:
    def test_worker_crash_is_structured_error(self, daemon_factory):
        daemon = daemon_factory()
        with _client(daemon) as client:
            resp = client.optimize(program=_program("crash-x"))
            assert resp["status"] == "error"
            assert resp["kind"] == "crash"
            assert "exit code 9" in resp["message"]
            # the daemon survives its worker
            assert client.ping()["status"] == "ok"
            assert client.optimize(program=_program("ok-after"))["status"] == "ok"

    def test_hung_worker_killed_at_deadline(self, daemon_factory):
        daemon = daemon_factory(timeout=0.5)
        t0 = time.perf_counter()
        with _client(daemon) as client:
            resp = client.optimize(program=_program("hang-x"))
        assert time.perf_counter() - t0 < 30
        assert resp["status"] == "error"
        assert resp["kind"] == "timeout"
        assert "deadline" in resp["message"]

    def test_saturated_pool_answers_busy(self, daemon_factory):
        daemon = daemon_factory(jobs=1, backlog=0)
        slow_resp = []

        def ask_slow():
            with _client(daemon) as client:
                slow_resp.append(client.optimize(program=_program("slow-busy")))

        slow_thread = threading.Thread(target=ask_slow)
        slow_thread.start()
        time.sleep(0.25)  # let the slow job occupy the only slot
        with _client(daemon) as client:
            busy = client.optimize(program=_program("ok-rejected"))
        slow_thread.join(timeout=30)
        assert busy["status"] == "busy"
        assert busy["in_flight"] == 1
        assert "retry" in busy["message"]
        assert slow_resp[0]["status"] == "ok"

    def test_busy_under_saturated_queue_reports_depth(self, daemon_factory):
        # one slot computing + one distinct key queued = at capacity; the
        # third distinct key is rejected with the live queue depth
        daemon = daemon_factory(jobs=1, backlog=1)
        background = []

        def ask(name):
            with _client(daemon) as client:
                background.append(client.optimize(program=_program(name)))

        threads = [
            threading.Thread(target=ask, args=(f"slow-q{i}",)) for i in range(2)
        ]
        threads[0].start()
        time.sleep(0.25)  # first job occupies the slot
        threads[1].start()
        time.sleep(0.25)  # second job sits in the queue
        with _client(daemon) as client:
            busy = client.optimize(program=_program("ok-overflow"))
            server = client.stats()["stats"]["server"]
        for t in threads:
            t.join(timeout=30)
        assert busy["status"] == "busy"
        assert busy["in_flight"] == 1
        assert busy["queued"] == 1
        assert server["busy"] == 1
        # the admitted requests both complete once the slot frees up
        assert {r["status"] for r in background} == {"ok"}


class TestShutdown:
    def test_shutdown_request_drains_and_exits(self, daemon_factory):
        daemon = daemon_factory()
        with _client(daemon) as client:
            resp = client.shutdown()
        assert resp["status"] == "ok" and resp["draining"] is True
        deadline = time.time() + 15
        while os.path.exists(daemon.config.socket_path):
            assert time.time() < deadline, "socket never removed on shutdown"
            time.sleep(0.05)

    def test_new_work_refused_while_draining(self, daemon_factory):
        # a connection opened before the drain can still submit, but a
        # cache miss during the drain is refused with shutting-down.  The
        # drain must outlast the scripted 0.6s job even on a loaded
        # 1-core runner, where fork+sleep can blow the default 2s budget
        # and the kill looks like a mid-request connection drop.
        daemon = daemon_factory(drain_seconds=15.0)
        slow_resp = []

        def ask_slow():
            with _client(daemon) as client:
                slow_resp.append(client.optimize(program=_program("slow-dr")))

        bystander = _client(daemon)  # opened before the drain begins
        try:
            slow_thread = threading.Thread(target=ask_slow)
            slow_thread.start()
            time.sleep(0.2)  # the slow job holds the pool open
            with _client(daemon) as client:
                assert client.shutdown()["draining"] is True
            late = bystander.optimize(program=_program("ok-too-late"))
            slow_thread.join(timeout=30)
        finally:
            bystander.close()
        assert late["status"] == "error"
        assert late["kind"] == "shutting-down"
        assert "draining" in late["message"]
        # the in-flight job still completed on its way out
        assert slow_resp[0]["status"] == "ok"


class TestBindSafety:
    """The socket path is probed before binding: live daemons are never
    clobbered, stale sockets are reclaimed, foreign files are refused."""

    def test_second_daemon_refuses_live_socket(self, daemon_factory):
        from repro.server import SocketInUse

        daemon = daemon_factory()
        rival = Daemon(DaemonConfig(
            socket_path=daemon.config.socket_path,
            cache_dir=daemon.config.cache_dir,
            loop=daemon.config.loop,
            pool_mode=daemon.config.pool_mode,
        ))
        with pytest.raises(SocketInUse, match="already serving"):
            rival.serve()
        # the live daemon is untouched — its socket still answers
        with _client(daemon) as client:
            assert client.ping()["status"] == "ok"

    def test_stale_socket_reclaimed(self, tmp_path):
        from repro.server.daemon import claim_unix_path

        path = str(tmp_path / "stale.sock")
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(path)
        dead.close()  # nothing accepting: the file is a corpse
        assert os.path.exists(path)
        claim_unix_path(path)
        assert not os.path.exists(path)

    def test_non_socket_file_refused(self, tmp_path):
        from repro.server import SocketInUse
        from repro.server.daemon import claim_unix_path

        path = tmp_path / "precious.txt"
        path.write_text("not a socket")
        with pytest.raises(SocketInUse, match="not a socket"):
            claim_unix_path(str(path))
        assert path.read_text() == "not a socket"  # never unlinked

    def test_missing_path_is_fine(self, tmp_path):
        from repro.server.daemon import claim_unix_path

        claim_unix_path(str(tmp_path / "never-existed.sock"))


class TestRealPipeline:
    def test_program_request_matches_in_process_optimize(self, daemon_factory):
        daemon = daemon_factory(scripted=False)
        program = parse_program(TINY, "tiny", params=("N",))
        with _client(daemon) as client:
            resp = client.optimize(
                program=program_to_dict(program), options={"tile": False}
            )
        assert resp["status"] == "ok"
        local_payload = json.loads(
            optimize(program, PipelineOptions(tile=False)).to_json()
        )
        # timings and solver counters vary run to run; the transformation
        # itself must not
        for field in ("schedule", "tiled", "code", "program", "options",
                      "used_iss", "used_diamond", "version"):
            assert resp["result"][field] == local_payload[field]

    def test_workload_request_resolves_paper_flags(self, daemon_factory):
        daemon = daemon_factory(scripted=False)
        with _client(daemon) as client:
            resp = client.optimize("fig3-symmetric-deps", options={"tile": False})
        assert resp["status"] == "ok"
        # fig3 is registered with iss=True; the daemon fills that in
        assert resp["result"]["options"]["iss"] is True
        assert resp["result"]["used_iss"] is True

    def test_skeleton_store_survives_restart(
        self, daemon_factory, monkeypatch, tmp_path
    ):
        """A reboot keeps the structural skeletons: the first request to the
        reborn daemon that misses the exact cache must warm-start from the
        previous daemon's solves, visibly in the stats counters."""
        monkeypatch.setenv("REPRO_SKELETON_CACHE", "")  # restored on teardown
        skel = str(tmp_path / "skeletons")
        program = parse_program(TINY, "sweep", params=("N",))

        first = daemon_factory(scripted=False, skeleton_dir=skel)
        with _client(first) as client:
            seed = client.optimize(program=program_to_dict(program))
            stats1 = client.stats()["stats"]["server"]
        assert seed["result"]["scheduler_stats"]["structural_path"] == "miss"
        assert stats1["structural_misses"] == 1
        assert stats1["skeleton_dir"] == skel
        first.shutdown()

        second = daemon_factory(scripted=False, skeleton_dir=skel)
        with _client(second) as client:
            # different tile_size: exact-cache miss, structural duplicate
            warm = client.optimize(
                program=program_to_dict(program), options={"tile_size": 64}
            )
            stats2 = client.stats()["stats"]["server"]
        assert warm["cache"] == "miss"
        st = warm["result"]["scheduler_stats"]
        assert st["structural_path"] == "hit"
        assert st["structural_warm_start"] > 0
        assert stats2["structural_hits"] == 1

        # replayed solves must not change the answer: byte-parity with a
        # cold in-process run (the daemon exported the env var into this
        # process — clear it so the reference really is cold)
        monkeypatch.setenv("REPRO_SKELETON_CACHE", "")
        local = json.loads(
            optimize(program, PipelineOptions(tile_size=64)).to_json()
        )
        for field in ("schedule", "tiled", "code"):
            assert warm["result"][field] == local[field]

    def test_client_rebuilds_optimization_result(self, daemon_factory):
        daemon = daemon_factory(scripted=False)
        program = parse_program(TINY, "tiny", params=("N",))
        with _client(daemon) as client:
            result = client.optimize_result(
                program=program_to_dict(program), options={"tile": False}
            )
        local = optimize(program, PipelineOptions(tile=False))
        assert result.schedule.to_dict() == local.schedule.to_dict()
        assert result.code.python_source == local.code.python_source
