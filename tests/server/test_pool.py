"""Tests for the daemon's worker pools: callbacks, backpressure, stop.

Parametrized over both implementations — spawn-per-miss
(:class:`WorkerPool`) and the pre-forked warm pool
(:class:`WarmWorkerPool`) — which share one submission interface and one
fault contract.
"""

import multiprocessing
import os
import threading
import time

import pytest

from repro.server.pool import PoolJob, WarmWorkerPool, WorkerPool

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash/hang injection requires forked workers",
)


def _echo(payload):
    return {"echo": payload}


def _slow(payload):
    time.sleep(payload.get("seconds", 5))
    return "late"


def _crash(payload):
    os._exit(7)


def _crash_if_told(payload):
    """Payload-keyed crash: the same fn serves hostile and benign jobs,
    so it needs no mid-test swapping (warm workers capture fn at fork)."""
    if payload.get("crash"):
        os._exit(7)
    return {"echo": payload}


class _Collector:
    """Collects completion events; on_done runs on the dispatcher thread."""

    def __init__(self, expected: int):
        self.events = []
        self._remaining = expected
        self._done = threading.Event()

    def __call__(self, ev):
        self.events.append(ev)
        self._remaining -= 1
        if self._remaining <= 0:
            self._done.set()

    def wait(self, timeout=30.0):
        assert self._done.wait(timeout), "pool never completed the job(s)"
        return self.events


@pytest.fixture(params=[WorkerPool, WarmWorkerPool], ids=["spawn", "warm"])
def pool_factory(request):
    pools = []

    def make(**kwargs):
        if request.param is WarmWorkerPool:
            kwargs.setdefault("preload", None)  # tests inject their own fn
        pool = request.param(**kwargs)
        pool.start()
        pools.append(pool)
        return pool

    yield make
    for pool in pools:
        pool.stop()


class TestCompletion:
    def test_ok_job_fires_callback_with_result(self, pool_factory):
        pool = pool_factory(jobs=1, target=_echo)
        done = _Collector(1)
        assert pool.try_submit(PoolJob("k1", {"n": 1}, done))
        (ev,) = done.wait()
        assert ev.kind == "ok"
        assert ev.payload == {"echo": {"n": 1}}

    def test_crash_settles_as_event_and_pool_survives(self, pool_factory):
        pool = pool_factory(jobs=1, target=_crash_if_told)
        done = _Collector(1)
        assert pool.try_submit(PoolJob("k-crash", {"crash": True}, done))
        (ev,) = done.wait()
        assert ev.kind == "crash"
        assert "without reporting" in ev.payload

        # the pool keeps dispatching after a worker death
        done2 = _Collector(1)
        assert pool.try_submit(PoolJob("k-after", {"n": 2}, done2))
        assert done2.wait()[0].kind == "ok"

    def test_hung_worker_killed_at_deadline(self, pool_factory):
        pool = pool_factory(jobs=1, timeout=0.5, target=_slow)
        done = _Collector(1)
        t0 = time.perf_counter()
        assert pool.try_submit(PoolJob("k-hang", {"seconds": 60}, done))
        (ev,) = done.wait()
        assert time.perf_counter() - t0 < 30
        assert ev.kind == "timeout"

    def test_broken_callback_does_not_kill_dispatcher(self, pool_factory):
        pool = pool_factory(jobs=1, target=_echo)

        def explode(ev):
            raise RuntimeError("callback bug")

        assert pool.try_submit(PoolJob("k-bad-cb", {}, explode))
        done = _Collector(1)
        assert pool.try_submit(PoolJob("k-good", {"n": 3}, done))
        assert done.wait()[0].kind == "ok"


class TestAdmission:
    def test_queue_overflow_rejected(self, pool_factory):
        pool = pool_factory(jobs=1, backlog=1, target=_slow)
        done = _Collector(2)
        assert pool.try_submit(PoolJob("k1", {"seconds": 2}, done))
        assert pool.try_submit(PoolJob("k2", {"seconds": 0}, done))
        # jobs + backlog = 2 admissions; the third is over capacity
        assert not pool.try_submit(PoolJob("k3", {"seconds": 0}, done))
        live, queued = pool.load()
        assert live + queued == 2
        done.wait()

    def test_submissions_refused_while_stopping(self, pool_factory):
        pool = pool_factory(jobs=1, target=_echo)
        pool.drain(timeout=5.0)
        assert not pool.try_submit(PoolJob("k-late", {}, _Collector(1)))


class TestShutdown:
    def test_drain_waits_for_running_jobs(self, pool_factory):
        pool = pool_factory(jobs=2, target=_slow)
        done = _Collector(2)
        pool.try_submit(PoolJob("k1", {"seconds": 0.3}, done))
        pool.try_submit(PoolJob("k2", {"seconds": 0.3}, done))
        assert pool.drain(timeout=30.0)
        assert {ev.kind for ev in done.events} == {"ok"}

    def test_drain_times_out_then_stop_fails_jobs(self, pool_factory):
        pool = pool_factory(jobs=1, target=_slow)
        done = _Collector(1)
        pool.try_submit(PoolJob("k-hang", {"seconds": 60}, done))
        assert not pool.drain(timeout=0.3)
        pool.stop()
        (ev,) = done.wait(timeout=10.0)
        assert ev.kind == "error"
        assert ev.payload == "pool stopped"

    def test_stop_fails_queued_jobs_too(self, pool_factory):
        pool = pool_factory(jobs=1, backlog=2, target=_slow)
        done = _Collector(3)
        for i in range(3):
            assert pool.try_submit(PoolJob(f"k{i}", {"seconds": 60}, done))
        pool.stop()
        events = done.wait(timeout=10.0)
        assert all(ev.kind == "error" for ev in events)
        assert {ev.key.key for ev in events} == {"k0", "k1", "k2"}


class TestWarmPool:
    """Behavior specific to the pre-forked warm pool: persistence across
    requests, recycling, and the reuse accounting the metrics expose."""

    @pytest.fixture
    def warm_factory(self):
        pools = []

        def make(**kwargs):
            kwargs.setdefault("preload", None)
            pool = WarmWorkerPool(**kwargs)
            pool.start()
            pools.append(pool)
            return pool

        yield make
        for pool in pools:
            pool.stop()

    def test_same_process_serves_consecutive_jobs(self, warm_factory):
        pool = warm_factory(jobs=1, target=_echo)
        done = _Collector(3)
        for i in range(3):
            assert pool.try_submit(PoolJob(f"k{i}", {"n": i}, done))
        events = done.wait()
        pids = {ev.pid for ev in events}
        assert len(pids) == 1, f"expected one persistent worker, got {pids}"
        assert all(ev.kind == "ok" for ev in events)

    def test_metrics_count_spawns_dispatches_reuses(self, warm_factory):
        from repro.server.metrics import ServerMetrics

        metrics = ServerMetrics()
        pool = warm_factory(jobs=1, target=_echo, metrics=metrics)
        done = _Collector(3)
        for i in range(3):
            assert pool.try_submit(PoolJob(f"k{i}", {"n": i}, done))
        done.wait()
        snap = metrics.snapshot()
        assert snap["pool"]["spawns"] == 1
        assert snap["pool"]["dispatches"] == 3
        # the first job went to a never-used worker; the next two reused it
        assert snap["pool"]["reuses"] == 2
        assert snap["pool"]["recycles"] == 0

    def test_worker_recycled_at_limit(self, warm_factory):
        from repro.server.metrics import ServerMetrics

        metrics = ServerMetrics()
        pool = warm_factory(jobs=1, target=_echo, recycle=2, metrics=metrics)
        done = _Collector(4)
        for i in range(4):
            assert pool.try_submit(PoolJob(f"k{i}", {"n": i}, done))
            time.sleep(0.05)  # serialize so recycling lands between jobs
        events = done.wait()
        assert all(ev.kind == "ok" for ev in events)
        # two jobs per worker: the first worker retired after k1, its
        # replacement served k2/k3
        assert len({ev.pid for ev in events}) == 2
        snap = metrics.snapshot()
        assert snap["pool"]["recycles"] >= 1
        assert snap["pool"]["spawns"] >= 2

    def test_crash_replacement_is_a_fresh_process(self, warm_factory):
        pool = warm_factory(jobs=1, target=_crash_if_told)
        done = _Collector(2)
        assert pool.try_submit(PoolJob("k-crash", {"crash": True}, done))
        assert pool.try_submit(PoolJob("k-ok", {"n": 1}, done))
        events = done.wait()
        kinds = {ev.key.key: ev.kind for ev in events}
        assert kinds == {"k-crash": "crash", "k-ok": "ok"}
        pids = {ev.key.key: ev.pid for ev in events}
        assert pids["k-crash"] != pids["k-ok"]

    def test_jobs_spread_across_workers(self, warm_factory):
        pool = warm_factory(jobs=2, target=_slow)
        done = _Collector(2)
        assert pool.try_submit(PoolJob("k1", {"seconds": 0.4}, done))
        assert pool.try_submit(PoolJob("k2", {"seconds": 0.4}, done))
        events = done.wait()
        assert len({ev.pid for ev in events}) == 2
        assert all(ev.kind == "ok" for ev in events)
        # both finished in one 0.4s window, not two serialized ones
        assert all(ev.elapsed < 2.0 for ev in events)
