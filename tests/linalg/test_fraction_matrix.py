"""Unit and property tests for exact rational matrices."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    FMatrix,
    integer_normalize_row,
    lcm,
    orthogonal_complement,
)


class TestLcm:
    def test_basic(self):
        assert lcm(4, 6) == 12

    def test_zero_left(self):
        assert lcm(0, 5) == 5

    def test_zero_right(self):
        assert lcm(5, 0) == 5

    def test_both_zero(self):
        assert lcm(0, 0) == 0

    def test_negative(self):
        assert lcm(-4, 6) == 12


class TestIntegerNormalizeRow:
    def test_fractions_scaled(self):
        assert integer_normalize_row([Fraction(1, 2), Fraction(1, 3)]) == [3, 2]

    def test_gcd_reduced(self):
        assert integer_normalize_row([4, 6, 8]) == [2, 3, 4]

    def test_zero_row(self):
        assert integer_normalize_row([0, 0]) == [0, 0]

    def test_sign_preserved(self):
        assert integer_normalize_row([Fraction(-1, 2), Fraction(1, 4)]) == [-2, 1]

    def test_single_negative(self):
        assert integer_normalize_row([Fraction(-3)]) == [-1]


class TestFMatrixBasics:
    def test_shape(self):
        m = FMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.shape == (2, 3)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            FMatrix([[1, 2], [3]])

    def test_identity(self):
        m = FMatrix.identity(3)
        assert m[0, 0] == 1 and m[0, 1] == 0 and m[2, 2] == 1

    def test_transpose(self):
        m = FMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.transpose().tolist() == FMatrix([[1, 4], [2, 5], [3, 6]]).tolist()

    def test_matmul(self):
        a = FMatrix([[1, 2], [3, 4]])
        b = FMatrix([[0, 1], [1, 0]])
        assert (a @ b).tolist() == FMatrix([[2, 1], [4, 3]]).tolist()

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            FMatrix([[1, 2]]) @ FMatrix([[1, 2]])

    def test_matvec(self):
        m = FMatrix([[1, 2], [3, 4]])
        assert m.matvec([1, 1]) == [3, 7]

    def test_matvec_length_mismatch(self):
        with pytest.raises(ValueError):
            FMatrix([[1, 2]]).matvec([1, 2, 3])

    def test_eq(self):
        assert FMatrix([[1, 2]]) == FMatrix([[Fraction(1), Fraction(2)]])

    def test_repr_contains_shape(self):
        assert "2x2" in repr(FMatrix.identity(2))


class TestElimination:
    def test_rref_identity(self):
        m = FMatrix.identity(3)
        rref, pivots = m.rref()
        assert rref == m
        assert pivots == [0, 1, 2]

    def test_rref_rank_deficient(self):
        m = FMatrix([[1, 2], [2, 4]])
        _, pivots = m.rref()
        assert pivots == [0]
        assert m.rank() == 1

    def test_rank_full(self):
        assert FMatrix([[1, 0], [1, 1]]).rank() == 2

    def test_nullspace_of_full_rank_is_empty(self):
        ns = FMatrix([[1, 0], [0, 1]]).nullspace()
        assert ns.nrows == 0

    def test_nullspace_vector_annihilates(self):
        m = FMatrix([[1, 1, 0], [0, 1, 1]])
        ns = m.nullspace()
        assert ns.nrows == 1
        v = ns.rows[0]
        for row in m.rows:
            assert sum(a * b for a, b in zip(row, v)) == 0

    def test_inverse(self):
        m = FMatrix([[2, 1], [1, 1]])
        inv = m.inverse()
        assert (m @ inv) == FMatrix.identity(2)

    def test_inverse_singular_raises(self):
        with pytest.raises(ValueError):
            FMatrix([[1, 2], [2, 4]]).inverse()

    def test_inverse_nonsquare_raises(self):
        with pytest.raises(ValueError):
            FMatrix([[1, 2, 3], [4, 5, 6]]).inverse()

    def test_solve(self):
        m = FMatrix([[2, 0], [0, 4]])
        assert m.solve([2, 8]) == [1, 2]


class TestOrthogonalComplement:
    def test_empty_h_gives_identity(self):
        assert orthogonal_complement([], 3) == [
            [1, 0, 0],
            [0, 1, 0],
            [0, 0, 1],
        ]

    def test_paper_example_e1(self):
        # H = [1 0 0]  ->  H_perp spans e2, e3 (Section 3.4 example).
        perp = orthogonal_complement([[1, 0, 0]], 3)
        assert len(perp) == 2
        for row in perp:
            assert row[0] == 0

    def test_paper_example_skewed(self):
        # H = [1 1 0]  ->  rows like [1 -1 0] and [0 0 1] up to sign/order.
        perp = orthogonal_complement([[1, 1, 0]], 3)
        assert len(perp) == 2
        for row in perp:
            assert row[0] + row[1] == 0  # orthogonal to (1, 1, 0)

    def test_rows_are_orthogonal_to_h(self):
        h = [[1, 2, 3], [0, 1, 1]]
        perp = orthogonal_complement(h, 3)
        assert len(perp) == 1
        for hrow in h:
            assert sum(a * b for a, b in zip(hrow, perp[0])) == 0

    def test_mismatched_ncols_raises(self):
        with pytest.raises(ValueError):
            orthogonal_complement([[1, 0]], 3)

    def test_full_rank_h_gives_empty(self):
        assert orthogonal_complement([[1, 0], [0, 1]], 2) == []


@st.composite
def small_matrices(draw, max_n=4):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(1, max_n))
    rows = draw(
        st.lists(
            st.lists(st.integers(-5, 5), min_size=m, max_size=m),
            min_size=n,
            max_size=n,
        )
    )
    return FMatrix(rows)


class TestProperties:
    @given(small_matrices())
    @settings(max_examples=60)
    def test_rank_bounded(self, m):
        assert 0 <= m.rank() <= min(m.nrows, m.ncols)

    @given(small_matrices())
    @settings(max_examples=60)
    def test_nullspace_dimension(self, m):
        assert m.nullspace().nrows == m.ncols - m.rank()

    @given(small_matrices())
    @settings(max_examples=60)
    def test_nullspace_annihilated(self, m):
        ns = m.nullspace()
        for v in ns.rows:
            assert all(
                sum(a * b for a, b in zip(row, v)) == 0 for row in m.rows
            )

    @given(small_matrices())
    @settings(max_examples=60)
    def test_double_transpose(self, m):
        assert m.transpose().transpose() == m

    @given(small_matrices())
    @settings(max_examples=40)
    def test_orthogonal_complement_property(self, m):
        rows = m.to_int_rows()
        perp = orthogonal_complement(rows, m.ncols)
        for p in perp:
            for h in rows:
                assert sum(a * b for a, b in zip(h, p)) == 0
