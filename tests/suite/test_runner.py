"""Tests for the parallel suite engine: crashes, hangs, retries, resume.

Hostile workloads are registered in the parent process; workers are forked,
so they inherit the registry and execute the injected factory.  Skipped
where fork is unavailable (the engine falls back to spawn there, which
cannot see test-local registrations).
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.frontend import parse_program
from repro.pipeline import PipelineOptions, optimize
from repro.suite import RunSpec, SuiteManifest, build_matrix, run_suite
from repro.workloads import WORKLOADS, Workload, register

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash/hang injection requires forked workers",
)

TINY = """
for (i = 1; i < N; i++)
    A[i] = 0.5 * A[i-1];
"""


def _tiny_program():
    return parse_program(TINY, "tiny", params=("N",))


def _crash_factory():
    os.kill(os.getpid(), signal.SIGKILL)


def _hang_factory():
    time.sleep(60)


def _raise_factory():
    raise RuntimeError("injected pipeline explosion")


@pytest.fixture
def hostile_registry():
    """Register tiny + hostile workloads; clean the registry afterwards."""
    names = ["suite-test-tiny", "suite-test-crash", "suite-test-hang",
             "suite-test-raise"]
    register(Workload(names[0], "test", _tiny_program))
    register(Workload(names[1], "test", _crash_factory))
    register(Workload(names[2], "test", _hang_factory))
    register(Workload(names[3], "test", _raise_factory))
    yield names
    for n in names:
        WORKLOADS.pop(n, None)


def _spec(workload: str) -> RunSpec:
    return RunSpec(
        run_id=f"{workload}--plutoplus",
        workload=workload,
        variant="plutoplus",
        options=PipelineOptions(tile=False),
    )


def _run(tmp_path, specs, **kwargs):
    manifest = SuiteManifest.create(tmp_path, specs, {})
    return run_suite(manifest, **kwargs)


class TestEngine:
    def test_ok_run_produces_record(self, tmp_path, hostile_registry):
        res = _run(tmp_path, [_spec("suite-test-tiny")], jobs=1, timeout=60)
        assert res.ok and not res.failures
        (record,) = res.records
        assert record["status"] == "ok"
        assert record["attempts"] == 1
        assert record["schedule"]["rows"]
        assert record["timing"]["total"] > 0
        # persisted on disk too
        on_disk = res.manifest.load_record("suite-test-tiny--plutoplus")
        assert on_disk == record

    def test_schedule_identical_to_sequential(self, tmp_path, hostile_registry):
        res = _run(tmp_path, [_spec("suite-test-tiny")], jobs=1, timeout=60)
        sequential = optimize(_tiny_program(), PipelineOptions(tile=False))
        assert res.records[0]["schedule"] == sequential.schedule.to_dict()

    def test_worker_crash_becomes_failure_with_retries(
        self, tmp_path, hostile_registry
    ):
        res = _run(tmp_path, [_spec("suite-test-crash")], jobs=1, timeout=60,
                   retries=1)
        assert not res.ok
        (failure,) = res.failures
        assert failure.kind == "crash"
        assert failure.attempts == 2  # first try + one retry, both crashed
        assert "without reporting" in failure.message

    def test_timeout_kills_and_records(self, tmp_path, hostile_registry):
        t0 = time.perf_counter()
        res = _run(tmp_path, [_spec("suite-test-hang")], jobs=1, timeout=1.0,
                   retries=0)
        assert time.perf_counter() - t0 < 30  # killed, not slept out
        (failure,) = res.failures
        assert failure.kind == "timeout"
        assert failure.attempts == 1

    def test_pipeline_exception_not_retried(self, tmp_path, hostile_registry):
        res = _run(tmp_path, [_spec("suite-test-raise")], jobs=1, timeout=60,
                   retries=3)
        (failure,) = res.failures
        assert failure.kind == "error"
        assert failure.attempts == 1  # deterministic raise: no retry
        assert "injected pipeline explosion" in failure.message

    def test_failure_never_aborts_suite(self, tmp_path, hostile_registry):
        specs = [_spec("suite-test-crash"), _spec("suite-test-tiny")]
        res = _run(tmp_path, specs, jobs=2, timeout=60, retries=0)
        assert len(res.records) == 2
        statuses = {r["run_id"]: r["status"] for r in res.records}
        assert statuses["suite-test-tiny--plutoplus"] == "ok"
        assert statuses["suite-test-crash--plutoplus"] == "failure"

    def test_resume_skips_completed(self, tmp_path, hostile_registry):
        specs = [_spec("suite-test-tiny"), _spec("suite-test-crash")]
        manifest = SuiteManifest.create(tmp_path, specs, {})
        first = run_suite(manifest, jobs=1, timeout=60, retries=0)
        assert len(first.failures) == 1

        # resume: the ok run is skipped (its record is reused verbatim),
        # the failed run is attempted again
        reloaded = SuiteManifest.load(manifest.suite_dir)
        second = run_suite(reloaded, jobs=1, timeout=60, retries=0, resume=True)
        assert second.skipped == ["suite-test-tiny--plutoplus"]
        ok_record = next(
            r for r in second.records if r["run_id"] == "suite-test-tiny--plutoplus"
        )
        assert ok_record == first.records[0]

    def test_manifest_json_is_plain(self, tmp_path, hostile_registry):
        res = _run(tmp_path, [_spec("suite-test-tiny")], jobs=1, timeout=60)
        data = json.loads(res.manifest.path.read_text())
        assert data["runs"]["suite-test-tiny--plutoplus"]["status"] == "ok"


class TestMatrixIntegration:
    def test_motivation_specs_execute(self, tmp_path):
        # fig3 is the smallest registry workload with a nontrivial flag set
        specs = build_matrix(category="motivation", filters=["fig3-*"])
        assert len(specs) == 1 and specs[0].options.iss
