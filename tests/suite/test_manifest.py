"""Tests for the on-disk suite manifest."""

import json

import pytest

from repro.pipeline import PipelineOptions
from repro.suite import MANIFEST_VERSION, RunSpec, SuiteManifest


def _spec(name: str) -> RunSpec:
    return RunSpec(
        run_id=f"{name}--plutoplus",
        workload=name,
        variant="plutoplus",
        options=PipelineOptions(),
    )


@pytest.fixture
def manifest(tmp_path):
    return SuiteManifest.create(
        tmp_path, [_spec("a"), _spec("b")], {"jobs": 2, "timeout": 10.0, "retries": 1}
    )


class TestManifest:
    def test_create_writes_index(self, manifest):
        data = json.loads(manifest.path.read_text())
        assert data["version"] == MANIFEST_VERSION
        assert [s["run_id"] for s in data["specs"]] == ["a--plutoplus", "b--plutoplus"]
        assert data["runs"] == {}
        assert data["config"]["jobs"] == 2

    def test_load_round_trip(self, manifest):
        loaded = SuiteManifest.load(manifest.suite_dir)
        assert loaded.data == manifest.data
        assert loaded.specs == manifest.specs

    def test_write_record_indexes_run(self, manifest):
        manifest.write_record(
            {"run_id": "a--plutoplus", "status": "ok", "attempts": 1,
             "elapsed": 0.5}
        )
        assert manifest.record_path("a--plutoplus").is_file()
        entry = manifest.data["runs"]["a--plutoplus"]
        assert entry["status"] == "ok" and entry["file"] == "a--plutoplus.json"
        # the on-disk index was rewritten too
        assert SuiteManifest.load(manifest.suite_dir).completed_ok() == {
            "a--plutoplus"
        }

    def test_completed_ok_requires_record_file(self, manifest):
        manifest.write_record(
            {"run_id": "a--plutoplus", "status": "ok", "attempts": 1,
             "elapsed": 0.5}
        )
        manifest.record_path("a--plutoplus").unlink()
        assert manifest.completed_ok() == set()

    def test_failures_excluded_from_completed(self, manifest):
        manifest.write_record(
            {"run_id": "b--plutoplus", "status": "failure", "attempts": 2,
             "elapsed": 1.0,
             "failure": {"run_id": "b--plutoplus", "workload": "b",
                          "variant": "plutoplus", "kind": "crash",
                          "message": "", "attempts": 2, "elapsed": 1.0}}
        )
        assert manifest.completed_ok() == set()
        assert manifest.failures()[0]["kind"] == "crash"

    def test_version_gate(self, manifest):
        data = json.loads(manifest.path.read_text())
        data["version"] = 999
        manifest.path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="version 999"):
            SuiteManifest.load(manifest.suite_dir)

    def test_no_tmp_droppings(self, manifest):
        manifest.write_record(
            {"run_id": "a--plutoplus", "status": "ok", "attempts": 1,
             "elapsed": 0.5}
        )
        assert not list(manifest.suite_dir.glob("*.tmp"))
