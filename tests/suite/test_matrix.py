"""Tests for the run matrix and spec serialization."""

import pytest

from repro.pipeline import PipelineOptions
from repro.suite import RunSpec, VARIANTS, build_matrix


class TestBuildMatrix:
    def test_periodic_default(self):
        specs = build_matrix()
        names = {s.workload for s in specs}
        assert {"heat-1dp", "heat-2dp", "heat-3dp", "swim"} <= names
        assert all(s.variant == "plutoplus" for s in specs)
        # paper flags carried from the registry
        heat = next(s for s in specs if s.workload == "heat-1dp")
        assert heat.options.iss and heat.options.diamond

    def test_all_categories(self):
        assert len(build_matrix(category="all")) > len(build_matrix())
        assert len(build_matrix(category=None)) == len(build_matrix(category="all"))

    def test_filter_glob(self):
        specs = build_matrix(filters=["heat-*"])
        assert {s.workload for s in specs} == {"heat-1dp", "heat-2dp", "heat-3dp"}

    def test_filter_matches_run_id(self):
        specs = build_matrix(filters=["swim--plutoplus"])
        assert [s.run_id for s in specs] == ["swim--plutoplus"]

    def test_variants_cross_product(self):
        specs = build_matrix(variants=("plutoplus", "pluto"), filters=["heat-1dp"])
        assert {s.run_id for s in specs} == {
            "heat-1dp--plutoplus", "heat-1dp--pluto"
        }
        pluto = next(s for s in specs if s.variant == "pluto")
        assert pluto.options.algorithm == "pluto"

    def test_variant_overrides_apply(self):
        assert "notile" in VARIANTS
        (spec,) = build_matrix(variants=("notile",), filters=["heat-1dp"])
        assert spec.options.tile is False

    def test_scheduler_variants(self):
        specs = build_matrix(variants=("quick", "auto"), filters=["heat-1dp"])
        by_variant = {s.variant: s for s in specs}
        assert by_variant["quick"].options.scheduler == "quick"
        assert by_variant["auto"].options.scheduler == "auto"
        # paper flags still carried underneath the variant override
        assert by_variant["auto"].options.diamond

    def test_scheduler_variant_survives_spec_roundtrip(self):
        (spec,) = build_matrix(variants=("quick",), filters=["heat-1dp"])
        assert RunSpec.from_dict(spec.to_dict()).options.scheduler == "quick"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            build_matrix(variants=("nope",))

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="no workloads"):
            build_matrix(category="nope")


class TestRunSpec:
    def test_round_trip(self):
        spec = RunSpec(
            run_id="x--plutoplus",
            workload="x",
            variant="plutoplus",
            options=PipelineOptions(iss=True, tile_size=16),
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_dict_is_json_plain(self):
        import json

        (spec,) = build_matrix(filters=["heat-1dp"])
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()


class TestReductionVariants:
    def test_rar_variant(self):
        assert "rar" in VARIANTS
        (spec,) = build_matrix(variants=("rar",), filters=["heat-1dp"])
        assert spec.options.rar is True
        assert spec.options.algorithm == "plutoplus"
        # survives the manifest round-trip (cross-process suite workers)
        assert RunSpec.from_dict(spec.to_dict()).options.rar is True

    def test_redpar_variant(self):
        assert "redpar" in VARIANTS
        specs = build_matrix(
            variants=("redpar",), category="reduction", filters=["dot"]
        )
        (spec,) = specs
        assert spec.options.parallel_reductions == "omp"
        roundtrip = RunSpec.from_dict(spec.to_dict())
        assert roundtrip.options.parallel_reductions == "omp"

    def test_reduction_category_in_matrix(self):
        specs = build_matrix(category="reduction")
        assert {"dot", "l2norm", "tensor-contract"} <= {
            s.workload for s in specs
        }
