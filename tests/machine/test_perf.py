"""Tests for the machine model and the Fig. 6 performance estimator."""

import pytest

from repro.machine import (
    ExecutionMode,
    XEON_E5_2680,
    classify_result,
    compare_roofline,
    estimate,
    speedup,
)
from repro.workloads import get_workload


class TestMachineModel:
    def test_table1_constants(self):
        m = XEON_E5_2680
        assert m.total_cores == 16
        assert m.peak_gflops == pytest.approx(172.8)
        assert m.core_peak_gflops() == pytest.approx(10.8)

    def test_bandwidth_saturates(self):
        m = XEON_E5_2680
        assert m.bandwidth_gbs(1) < m.bandwidth_gbs(4) <= m.bandwidth_gbs(16)
        assert m.bandwidth_gbs(16) == pytest.approx(2 * m.socket_bw_gbs)

    def test_scatter_uses_both_sockets_early(self):
        m = XEON_E5_2680
        assert m.bandwidth_gbs(2, scatter=True) == pytest.approx(
            2 * m.single_core_bw_gbs
        )
        assert m.bandwidth_gbs(2, scatter=False) == pytest.approx(
            2 * m.single_core_bw_gbs
        )
        # at 8 cores, scatter spreads 4+4; compact packs 8 on one socket
        assert m.bandwidth_gbs(8, scatter=True) >= m.bandwidth_gbs(8, scatter=False)

    def test_compute_scales_linearly(self):
        m = XEON_E5_2680
        assert m.compute_gflops(8) == pytest.approx(8 * 10.8)

    def test_zero_cores(self):
        assert XEON_E5_2680.bandwidth_gbs(0) == 0.0


class TestEstimates:
    def test_untiled_heat2dp_is_memory_bound(self):
        w = get_workload("heat-2dp")
        e = estimate(w, ExecutionMode.SPACE_PARALLEL, 16)
        assert e.bound == "memory"

    def test_diamond_heat2dp_is_compute_bound(self):
        w = get_workload("heat-2dp")
        e = estimate(w, ExecutionMode.DIAMOND, 16)
        assert e.bound == "compute"

    def test_paper_speedups_reproduced(self):
        """Headline 16-core factors from Section 4.2 (within ~25%).

        swim time-tiles as a pipelined wavefront band (its Pluto+ schedule
        has no concurrent start); the stencils diamond-tile.
        """
        targets = {
            "heat-1dp": (2.72, ExecutionMode.DIAMOND),
            "heat-2dp": (6.73, ExecutionMode.DIAMOND),
            "heat-3dp": (1.4, ExecutionMode.DIAMOND),
            "swim": (2.73, ExecutionMode.WAVEFRONT),
        }
        for name, (target, mode) in targets.items():
            w = get_workload(name)
            base = estimate(w, ExecutionMode.SPACE_PARALLEL, 16)
            tiled = estimate(w, mode, 16)
            factor = speedup(base, tiled)
            assert factor == pytest.approx(target, rel=0.25), name

    def test_lbm_mean_speedup_near_paper(self):
        import math

        names = ["lbm-ldc-d2q9", "lbm-ldc-d2q9-mrt", "lbm-fpc-d2q9", "lbm-poi-d2q9"]
        factors = []
        for name in names:
            w = get_workload(name)
            factors.append(
                speedup(
                    estimate(w, ExecutionMode.SPACE_PARALLEL, 16),
                    estimate(w, ExecutionMode.DIAMOND, 16),
                )
            )
        mean = math.prod(factors) ** (1 / len(factors))
        assert mean == pytest.approx(1.33, rel=0.15)

    def test_untiled_baseline_stops_scaling(self):
        """Bandwidth saturation: untiled heat-2dp gains little past 6 cores."""
        w = get_workload("heat-2dp")
        t6 = estimate(w, ExecutionMode.SPACE_PARALLEL, 6).seconds
        t16 = estimate(w, ExecutionMode.SPACE_PARALLEL, 16).seconds
        assert t6 / t16 < 1.6

    def test_diamond_keeps_scaling(self):
        w = get_workload("heat-2dp")
        t4 = estimate(w, ExecutionMode.DIAMOND, 4).seconds
        t16 = estimate(w, ExecutionMode.DIAMOND, 16).seconds
        assert t4 / t16 > 2.5

    def test_d3q27_numa_drop(self):
        """Fig. 6f: the untiled 3-d LBM baseline *drops* past one socket."""
        w = get_workload("lbm-ldc-d3q27")
        m10 = estimate(w, ExecutionMode.SPACE_PARALLEL, 10).mlups
        m16 = estimate(w, ExecutionMode.SPACE_PARALLEL, 16).mlups
        assert m16 < m10 * 1.05

    def test_wavefront_slower_than_diamond(self):
        w = get_workload("heat-2dp")
        wf = estimate(w, ExecutionMode.WAVEFRONT, 16)
        dm = estimate(w, ExecutionMode.DIAMOND, 16)
        assert wf.seconds >= dm.seconds

    def test_sequential_uses_one_core(self):
        w = get_workload("heat-2dp")
        seq = estimate(w, ExecutionMode.SEQUENTIAL, 16)
        par1 = estimate(w, ExecutionMode.SPACE_PARALLEL, 1)
        assert seq.seconds == pytest.approx(par1.seconds)

    def test_mlups_consistent(self):
        w = get_workload("lbm-ldc-d2q9")
        e = estimate(w, ExecutionMode.SPACE_PARALLEL, 16)
        pts = 1024 * 1024 * 50000
        assert e.mlups == pytest.approx(pts / e.seconds / 1e6)

    def test_unknown_mode_rejected(self):
        w = get_workload("heat-1dp")
        with pytest.raises(ValueError):
            estimate(w, "gpu", 16)

    def test_no_perfspec_rejected(self):
        w = get_workload("gemm")
        with pytest.raises(ValueError):
            estimate(w, ExecutionMode.SPACE_PARALLEL, 16)


class TestClassify:
    def test_classify_diamond(self):
        from repro.pipeline import optimize
        from repro.workloads import get_workload

        w = get_workload("heat-1dp")
        res = optimize(w.program(), w.pipeline_options("plutoplus"))
        assert classify_result(res) == ExecutionMode.DIAMOND

    def test_classify_space_parallel_for_pluto_periodic(self):
        from repro.pipeline import optimize

        w = get_workload("heat-1dp")
        res = optimize(w.program(), w.pipeline_options("pluto"))
        mode = classify_result(res)
        assert mode in (ExecutionMode.SPACE_PARALLEL, ExecutionMode.WAVEFRONT)


class TestCompareRoofline:
    def test_measured_feeds_back_into_the_model(self):
        from repro.pipeline import optimize

        w = get_workload("heat-1dp")
        res = optimize(w.program(), w.pipeline_options("plutoplus"))
        cmp = compare_roofline(res, 0.01, cores=1, sizes={"N": 512, "T": 64})
        assert cmp.workload == "heat-1dp"
        assert cmp.mode == ExecutionMode.DIAMOND
        assert cmp.predicted_seconds > 0
        assert cmp.ratio == pytest.approx(0.01 / cmp.predicted_seconds)
        d = cmp.as_dict()
        assert d["ratio"] == round(cmp.ratio, 3)
        assert d["cores"] == 1 and d["bound"] in ("memory", "compute")

    def test_tile_size_comes_from_the_result(self):
        from repro.pipeline import optimize

        w = get_workload("heat-1dp")
        sizes = {"N": 512, "T": 64}
        a = optimize(w.program(), w.pipeline_options("plutoplus"))
        b = optimize(
            w.program(), w.pipeline_options("plutoplus", tile_size=8)
        )
        ca = compare_roofline(a, 1.0, sizes=sizes)
        cb = compare_roofline(b, 1.0, sizes=sizes)
        # a different tile size changes the reuse model, hence the prediction
        assert ca.predicted_seconds != cb.predicted_seconds

    def test_unregistered_workload_rejected(self):
        from repro.frontend import parse_program
        from repro.pipeline import PipelineOptions, optimize

        p = parse_program(
            "for (i = 1; i < N; i++) A[i] = A[i-1];", "anon", params=("N",)
        )
        res = optimize(p, PipelineOptions(tile=False))
        with pytest.raises(ValueError, match="registered workload"):
            compare_roofline(res, 1.0)
