"""Tests for the cache simulator and the tiling-cuts-misses mechanism."""

import pytest

from repro.core import (
    PlutoScheduler,
    SchedulerOptions,
    mark_parallelism,
    tile_schedule,
    untiled_schedule,
)
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program
from repro.machine.cache import CacheConfig, CacheSim, simulate_schedule_misses


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        sim = CacheSim(CacheConfig())
        assert not sim.access(0)
        assert sim.access(8)     # same 64B line
        assert sim.hits == 1 and sim.misses == 1

    def test_line_granularity(self):
        sim = CacheSim(CacheConfig(line_bytes=64))
        sim.access(0)
        assert sim.access(63)
        assert not sim.access(64)

    def test_lru_eviction(self):
        # direct-ish tiny cache: 2 sets x 1 way x 64B lines = 128B
        cfg = CacheConfig(size_bytes=128, line_bytes=64, associativity=1)
        sim = CacheSim(cfg)
        sim.access(0)        # set 0
        sim.access(128)      # set 0, evicts line 0
        assert not sim.access(0)  # miss again

    def test_associativity_retains(self):
        cfg = CacheConfig(size_bytes=256, line_bytes=64, associativity=2)
        sim = CacheSim(cfg)
        sim.access(0)
        sim.access(128)      # same set, second way
        assert sim.access(0)  # still resident

    def test_miss_ratio(self):
        sim = CacheSim(CacheConfig())
        assert sim.miss_ratio() == 0.0
        sim.access(0)
        sim.access(0)
        assert sim.miss_ratio() == pytest.approx(0.5)


class TestTilingReducesMisses:
    def test_time_tiled_stencil_has_fewer_misses(self):
        """The Fig. 6 mechanism, observed on real generated code: with a
        cache smaller than the grid, the time-tiled schedule re-uses each
        tile across time steps and misses far less than the sweep order."""
        src = """
        for (t = 0; t < T; t++)
            for (i = 1; i < N-1; i++)
                A[t+1][i] = 0.3 * (A[t][i-1] + A[t][i] + A[t][i+1]);
        """
        p = parse_program(src, "stencil", params=("T", "N"), param_min=4)
        ddg = DependenceGraph(p, compute_dependences(p))
        s = PlutoScheduler(p, ddg, SchedulerOptions()).schedule()
        mark_parallelism(s, ddg)
        params = {"T": 16, "N": 512}
        # the cache holds half a grid row: the untiled sweep gets no reuse
        # across time steps, the 8-step tiles do
        cfg = CacheConfig(size_bytes=2048, line_bytes=64, associativity=8)
        untiled = simulate_schedule_misses(p, untiled_schedule(s), params, cfg)
        tiled = simulate_schedule_misses(p, tile_schedule(s, tile_size=8), params, cfg)
        assert untiled.accesses == tiled.accesses  # same work
        assert tiled.misses < 0.7 * untiled.misses

    def test_large_cache_equalizes(self):
        """With everything cache-resident the orders miss equally (cold only)."""
        src = """
        for (t = 0; t < T; t++)
            for (i = 1; i < N-1; i++)
                A[t+1][i] = 0.3 * (A[t][i-1] + A[t][i] + A[t][i+1]);
        """
        p = parse_program(src, "stencil", params=("T", "N"), param_min=4)
        ddg = DependenceGraph(p, compute_dependences(p))
        s = PlutoScheduler(p, ddg, SchedulerOptions()).schedule()
        mark_parallelism(s, ddg)
        params = {"T": 6, "N": 24}
        big = CacheConfig(size_bytes=1 << 20)
        untiled = simulate_schedule_misses(p, untiled_schedule(s), params, big)
        tiled = simulate_schedule_misses(p, tile_schedule(s, tile_size=4), params, big)
        assert untiled.misses == tiled.misses  # compulsory misses only
