"""Tests for affine maps (transformations and access functions)."""

import pytest

from repro.polyhedra import AffExpr, AffineMap, Space


@pytest.fixture
def sp():
    return Space(("i", "j"), ("N",))


class TestAffineMap:
    def test_identity(self, sp):
        m = AffineMap.identity(sp)
        assert m.apply({"i": 2, "j": 5, "N": 9}) == (2, 5)

    def test_paper_intro_example(self, sp):
        # T(i, j) = (i - j + N, i + j + 1), Section 2.1.
        m = AffineMap.from_terms(
            sp, [({"i": 1, "j": -1, "N": 1}, 0), ({"i": 1, "j": 1}, 1)]
        )
        assert m.apply({"i": 3, "j": 1, "N": 10}) == (12, 5)

    def test_dim_matrix_excludes_params(self, sp):
        m = AffineMap.from_terms(sp, [({"i": 1, "N": 7}, 3)])
        assert m.dim_matrix() == [[1, 0]]

    def test_rank_and_one_to_one(self, sp):
        skew = AffineMap.from_terms(sp, [({"i": 1, "j": 1}, 0), ({"j": 1}, 0)])
        assert skew.rank() == 2
        assert skew.is_one_to_one()
        proj = AffineMap.from_terms(sp, [({"i": 1}, 0), ({"i": 2}, 5)])
        assert proj.rank() == 1
        assert not proj.is_one_to_one()

    def test_reversal_is_one_to_one(self, sp):
        rev = AffineMap.from_terms(sp, [({"i": -1, "N": 1}, -1), ({"j": 1}, 0)])
        assert rev.is_one_to_one()
        assert rev.apply({"i": 0, "j": 2, "N": 8}) == (7, 2)

    def test_append_and_concat(self, sp):
        m = AffineMap.identity(sp)
        m2 = m.append(AffExpr.const(sp, 0))
        assert m2.n_out == 3
        m3 = m.concat(m)
        assert m3.n_out == 4

    def test_concat_domain_mismatch(self, sp):
        other = AffineMap.identity(Space(("k",)))
        with pytest.raises(ValueError):
            AffineMap.identity(sp).concat(other)

    def test_compose_unimodular(self, sp):
        m = AffineMap.identity(sp)
        skewed = m.compose_unimodular([[1, 1], [0, 1]])
        assert skewed.apply({"i": 2, "j": 3, "N": 0}) == (5, 3)

    def test_compose_bad_width(self, sp):
        with pytest.raises(ValueError):
            AffineMap.identity(sp).compose_unimodular([[1, 2, 3]])

    def test_expr_space_mismatch_rejected(self, sp):
        with pytest.raises(ValueError):
            AffineMap(sp, [AffExpr.var(Space(("k",)), "k")])

    def test_getitem_iter_len(self, sp):
        m = AffineMap.identity(sp)
        assert len(m) == 2
        assert m[0].coeff_of("i") == 1
        assert [e.coeff_of("j") for e in m] == [0, 1]
