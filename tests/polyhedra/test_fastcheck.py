"""Tests for the fast LP feasibility pre-filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import BasicSet, Space, eq, ineq
from repro.polyhedra.fastcheck import lp_feasible, set_is_empty


@pytest.fixture
def sp():
    return Space(("x", "y"), ("N",))


class TestLpFeasible:
    def test_universe_feasible(self, sp):
        assert lp_feasible(BasicSet(sp))

    def test_contradiction_infeasible(self, sp):
        s = BasicSet(sp)
        s.add(ineq(sp, {"x": 1}, 0))
        s.add(ineq(sp, {"x": -1}, -1))
        assert not lp_feasible(s)

    def test_rational_point_feasible(self, sp):
        # 2x == 1: the rational point 1/2 exists (equalities with a constant
        # not divisible by the coefficient gcd are kept un-normalized)
        s = BasicSet(sp)
        s.add(eq(sp, {"x": 2}, -1))
        assert lp_feasible(s)

    def test_equality_handled(self, sp):
        s = BasicSet(sp)
        s.add(eq(sp, {"x": 1, "y": -1}))
        s.add(ineq(sp, {"x": 1}, -3))
        assert lp_feasible(s)


class TestSetIsEmpty:
    def test_agrees_with_exact_on_integer_gap(self, sp):
        s = BasicSet(sp)
        s.add(eq(sp, {"x": 2}, -1))  # 2x == 1: rational only
        assert lp_feasible(s)        # the fast filter cannot decide this
        assert set_is_empty(s)       # the exact fallback does

    def test_nonempty(self, sp):
        s = BasicSet.from_bounds(sp, {"x": (0, 5)})
        assert not set_is_empty(s)

    def test_syntactic_contradiction_short_circuit(self, sp):
        s = BasicSet(sp)
        s.add(ineq(sp, {}, -2))
        assert set_is_empty(s)

    @given(
        st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2), st.integers(-4, 4)),
            min_size=0,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_exact_emptiness(self, rows):
        sp = Space(("x", "y"))
        s = BasicSet(sp)
        s.add(ineq(sp, {"x": 1}, 4))
        s.add(ineq(sp, {"x": -1}, 4))
        s.add(ineq(sp, {"y": 1}, 4))
        s.add(ineq(sp, {"y": -1}, 4))
        for a, b, c in rows:
            s.add(ineq(sp, {"x": a, "y": b}, c))
        assert set_is_empty(s) == s.is_empty()
