"""Tests for the content-addressed polyhedral memo cache and fast-reject."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import AffExpr, BasicSet, Space, eq, ineq
from repro.polyhedra.cache import (
    DEFAULT_MAX_ENTRIES,
    MISS,
    PolyCache,
    active_cache,
    cache_disabled,
    cache_enabled,
    global_cache,
)
from repro.polyhedra.fastcheck import fast_reject, set_is_empty


@pytest.fixture
def sp():
    return Space(("x", "y"), ("N",))


@pytest.fixture(autouse=True)
def fresh_cache():
    global_cache().clear()
    global_cache().reset_stats()
    yield
    global_cache().clear()
    global_cache().reset_stats()


class TestFastReject:
    def test_slope_clash_eq_vs_ineq(self, sp):
        # The dominant empty-dependence shape: conflict equality pins the
        # distance to 0 while happens-before demands >= 1.
        s = BasicSet(sp)
        s.add(eq(sp, {"x": 1, "y": -1}))        # x - y == 0
        s.add(ineq(sp, {"x": 1, "y": -1}, -1))  # x - y - 1 >= 0
        assert fast_reject(s)

    def test_interval_clash_single_var(self, sp):
        s = BasicSet(sp)
        s.add(ineq(sp, {"x": 1}, -5))   # x >= 5
        s.add(ineq(sp, {"x": -1}, 3))   # x <= 3
        assert fast_reject(s)

    def test_gcd_infeasible_equality(self, sp):
        s = BasicSet(sp)
        s.add(eq(sp, {"x": 2}, -1))  # 2x == 1
        assert fast_reject(s)

    def test_two_equalities_same_slope(self, sp):
        s = BasicSet(sp)
        s.add(eq(sp, {"x": 1, "y": 1}, -1))
        s.add(eq(sp, {"x": 1, "y": 1}, -2))
        assert fast_reject(s)

    def test_feasible_box_not_rejected(self, sp):
        s = BasicSet.from_bounds(sp, {"x": (0, 5), "y": (0, 5)})
        assert not fast_reject(s)

    @given(
        st.lists(
            st.tuples(
                st.integers(-2, 2), st.integers(-2, 2), st.integers(-4, 4),
                st.booleans(),
            ),
            min_size=0,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_reject_is_sound(self, rows):
        # fast_reject == True must imply exact emptiness, on any system.
        sp2 = Space(("x", "y"))
        s = BasicSet(sp2)
        for a, b, c, is_eq in rows:
            s.add(eq(sp2, {"x": a, "y": b}, c) if is_eq
                  else ineq(sp2, {"x": a, "y": b}, c))
        if fast_reject(s):
            with cache_disabled():
                assert s.is_empty()


class TestPolyCache:
    def test_emptiness_memoized(self, sp):
        s = BasicSet.from_bounds(sp, {"x": (0, 5)})
        assert not s.is_empty()
        assert not s.is_empty()
        stats = global_cache().stats
        assert stats.empty_lookups == 2
        assert stats.empty_hits == 1

    def test_identical_content_shares_entry(self, sp):
        a = BasicSet.from_bounds(sp, {"x": (0, 5)})
        b = BasicSet(sp)
        # same constraints, different insertion order
        b.add(ineq(sp, {"x": -1}, 5))
        b.add(ineq(sp, {"x": 1}, 0))
        assert a.content_key() == b.content_key()
        a.is_empty()
        b.is_empty()
        assert global_cache().stats.empty_hits == 1

    def test_mutation_changes_key(self, sp):
        s = BasicSet.from_bounds(sp, {"x": (0, 5)})
        key = s.content_key()
        assert not s.is_empty()
        s.add(ineq(sp, {"x": 1}, -9))  # x >= 9: now empty
        assert s.content_key() != key
        assert s.is_empty()

    def test_min_of_memoized_and_identical(self, sp):
        s = BasicSet.from_bounds(sp, {"x": (2, 7)})
        expr = AffExpr.var(sp, "x")
        first = s.min_of(expr)
        second = s.min_of(expr)
        assert first == second == 2
        assert global_cache().stats.min_hits == 1

    def test_min_of_unbounded_cached_raises_twice(self, sp):
        s = BasicSet(sp)
        expr = AffExpr.var(sp, "x")
        with pytest.raises(ValueError):
            s.min_of(expr)
        with pytest.raises(ValueError):
            s.min_of(expr)
        assert global_cache().stats.min_hits == 1

    def test_project_out_memoized_returns_independent_copy(self, sp):
        s = BasicSet.from_bounds(sp, {"x": (0, 5), "y": (1, 3)})
        p1 = s.project_out(["y"])
        p2 = s.project_out(["y"])
        assert global_cache().stats.project_hits == 1
        assert set(p1.constraints) == set(p2.constraints)
        # mutating a cached result must not poison later hits
        p2.add(ineq(p2.space, {"x": 1}, -4))
        p3 = s.project_out(["y"])
        assert set(p3.constraints) == set(p1.constraints)

    def test_lexmin_memoized(self, sp):
        s = BasicSet.from_bounds(sp, {"x": (3, 7), "y": (1, 2)})
        first = s.lexmin_point()
        second = s.lexmin_point()
        assert first == second == {"x": 3, "y": 1}
        assert global_cache().stats.lexmin_hits == 1
        second["x"] = 99  # caller mutation must not poison the cache
        assert s.lexmin_point() == {"x": 3, "y": 1}

    def test_overflow_evicts_least_recently_used(self, sp):
        cache = PolyCache(max_entries=2)
        cache.put_empty(("a",), True)
        cache.put_empty(("b",), False)
        cache.get_empty(("a",))         # refresh a: b is now the LRU entry
        cache.put_empty(("c",), True)   # evicts b only
        assert len(cache) == 2
        assert cache.get_empty(("a",)) is True
        assert cache.get_empty(("b",)) is MISS
        assert cache.get_empty(("c",)) is True
        assert cache.stats.evictions == 1

    def test_env_var_overrides_capacity(self, sp, monkeypatch):
        monkeypatch.setenv("REPRO_POLY_CACHE_CAP", "3")
        cache = PolyCache()
        assert cache.max_entries == 3
        for k in "abcd":
            cache.put_min((k,), 0)
        assert len(cache) == 3
        assert cache.stats.evictions == 1
        monkeypatch.delenv("REPRO_POLY_CACHE_CAP")
        assert PolyCache().max_entries == DEFAULT_MAX_ENTRIES

    def test_reinsert_same_key_does_not_evict(self, sp):
        cache = PolyCache(max_entries=2)
        cache.put_empty(("a",), True)
        cache.put_empty(("b",), False)
        cache.put_empty(("a",), True)  # refresh, not growth
        assert len(cache) == 2
        assert cache.stats.evictions == 0

    def test_stats_consistency(self, sp):
        s = BasicSet.from_bounds(sp, {"x": (0, 5)})
        s.is_empty()
        s.is_empty()
        s.min_of(AffExpr.var(sp, "x"))
        stats = global_cache().stats
        assert stats.misses == stats.lookups - stats.hits
        assert stats.lookups == stats.empty_lookups + stats.min_lookups \
            + stats.lexmin_lookups + stats.project_lookups


class TestEscapeHatch:
    def test_context_manager_disables(self, sp):
        assert cache_enabled()
        with cache_disabled():
            assert not cache_enabled()
            assert active_cache() is None
            s = BasicSet.from_bounds(sp, {"x": (0, 5)})
            assert not s.is_empty()
        assert cache_enabled()
        assert global_cache().stats.lookups == 0

    def test_env_var_disables(self, sp, monkeypatch):
        monkeypatch.setenv("REPRO_DEPS_NO_CACHE", "1")
        assert not cache_enabled()
        monkeypatch.setenv("REPRO_DEPS_NO_CACHE", "0")
        assert cache_enabled()

    def test_set_is_empty_matches_uncached(self, sp):
        cases = []
        s1 = BasicSet(sp)
        s1.add(eq(sp, {"x": 1, "y": -1}))
        s1.add(ineq(sp, {"x": 1, "y": -1}, -1))
        cases.append(s1)
        cases.append(BasicSet.from_bounds(sp, {"x": (0, 5)}))
        s3 = BasicSet(sp)
        s3.add(eq(sp, {"x": 2}, -1))
        cases.append(s3)
        for s in cases:
            fast = set_is_empty(s)
            with cache_disabled():
                assert set_is_empty(s) == fast
