"""Tests for spaces and affine expressions."""

import pytest

from repro.polyhedra import AffExpr, Space


@pytest.fixture
def sp():
    return Space(("i", "j"), ("N",))


class TestSpace:
    def test_ncols(self, sp):
        assert sp.ncols == 4  # i, j, N, 1

    def test_column_of(self, sp):
        assert sp.column_of("i") == 0
        assert sp.column_of("N") == 2
        assert sp.const_col == 3

    def test_unknown_name(self, sp):
        with pytest.raises(KeyError):
            sp.column_of("k")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Space(("i", "i"))
        with pytest.raises(ValueError):
            Space(("i",), ("i",))

    def test_add_drop_dims(self, sp):
        bigger = sp.add_dims(["k"])
        assert bigger.dims == ("i", "j", "k")
        smaller = bigger.drop_dims(["j"])
        assert smaller.dims == ("i", "k")

    def test_product_renames(self, sp):
        prod = sp.product(sp, {"i": "i'", "j": "j'"})
        assert prod.dims == ("i", "j", "i'", "j'")
        assert prod.params == ("N",)

    def test_product_requires_same_params(self, sp):
        with pytest.raises(ValueError):
            sp.product(Space(("k",), ("M",)), {})


class TestAffExpr:
    def test_var_and_const(self, sp):
        e = AffExpr.var(sp, "i") + AffExpr.const(sp, 3)
        assert e.coeff_of("i") == 1
        assert e.const_term == 3

    def test_from_terms(self, sp):
        e = AffExpr.from_terms(sp, {"i": 1, "j": -1, "N": 1}, 2)
        assert e.coeffs == (1, -1, 1, 2)

    def test_arithmetic(self, sp):
        i = AffExpr.var(sp, "i")
        j = AffExpr.var(sp, "j")
        e = 2 * i - j + 5
        assert e.coeffs == (2, -1, 0, 5)
        assert (-e).coeffs == (-2, 1, 0, -5)

    def test_rsub(self, sp):
        i = AffExpr.var(sp, "i")
        e = 10 - i
        assert e.coeffs == (-1, 0, 0, 10)

    def test_evaluate(self, sp):
        e = AffExpr.from_terms(sp, {"i": 1, "j": 1, "N": -1}, 1)
        assert e.evaluate({"i": 3, "j": 4, "N": 5}) == 3

    def test_space_mismatch_raises(self, sp):
        other = Space(("k",))
        with pytest.raises(ValueError):
            AffExpr.var(sp, "i") + AffExpr.var(other, "k")

    def test_immutability(self, sp):
        e = AffExpr.var(sp, "i")
        with pytest.raises(AttributeError):
            e.coeffs = (0, 0, 0, 0)

    def test_terms_excludes_zero(self, sp):
        e = AffExpr.from_terms(sp, {"i": 1, "j": 0}, 7)
        assert e.terms() == {"i": 1}

    def test_is_constant(self, sp):
        assert AffExpr.const(sp, 4).is_constant()
        assert not AffExpr.var(sp, "i").is_constant()

    def test_rebase_with_rename(self, sp):
        target = Space(("s_i", "s_j", "t_i"), ("N",))
        e = AffExpr.from_terms(sp, {"i": 2, "j": 1}, -1)
        r = e.rebase(target, {"i": "s_i", "j": "s_j"})
        assert r.coeff_of("s_i") == 2
        assert r.coeff_of("t_i") == 0
        assert r.const_term == -1

    def test_normalized(self, sp):
        e = AffExpr.from_terms(sp, {"i": 2, "j": 4}, 6)
        assert e.normalized().coeffs == (1, 2, 0, 3)

    def test_str_readable(self, sp):
        e = AffExpr.from_terms(sp, {"i": 1, "j": -1, "N": 1})
        assert str(e) == "i - j + N"

    def test_wrong_length_rejected(self, sp):
        with pytest.raises(ValueError):
            AffExpr(sp, (1, 2, 3))
