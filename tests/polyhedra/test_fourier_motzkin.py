"""Tests for Fourier–Motzkin elimination and redundancy pruning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra.fourier_motzkin import (
    eliminate_column,
    eliminate_columns,
    normalize_rows,
    prune_redundant_rows,
)

# Row layout in these tests: (x, y, const)


class TestNormalize:
    def test_gcd_reduction(self):
        rows = [((2, 4, 6), False)]
        assert normalize_rows(rows) == [((1, 2, 3), False)]

    def test_duplicate_removal(self):
        rows = [((1, 0, 0), False), ((2, 0, 0), False)]
        assert len(normalize_rows(rows)) == 1

    def test_subsumption_same_slope(self):
        # x + 5 >= 0 is implied by x + 2 >= 0
        rows = [((1, 0, 5), False), ((1, 0, 2), False)]
        out = normalize_rows(rows)
        assert out == [((1, 0, 2), False)]

    def test_trivial_rows_dropped(self):
        rows = [((0, 0, 7), False), ((1, 0, 0), False)]
        assert normalize_rows(rows) == [((1, 0, 0), False)]

    def test_contradictions_kept(self):
        rows = [((0, 0, -1), False)]
        assert normalize_rows(rows) == [((0, 0, -1), False)]

    def test_integer_tightening_of_inequalities(self):
        # 2x + 1 >= 0 over integers tightens to x >= 0 (floor of 1/2)
        rows = [((2, 0, 1), False)]
        assert normalize_rows(rows) == [((1, 0, 0), False)]

    def test_infeasible_equality_not_divided(self):
        # 2x + 1 == 0 has no integer solution; kept visible un-normalized
        rows = [((2, 0, 1), True)]
        assert normalize_rows(rows) == [((2, 0, 1), True)]


class TestEliminate:
    def test_simple_projection(self):
        # 0 <= y <= 5, x == y  -> projecting y: 0 <= x <= 5
        rows = [
            ((0, 1, 0), False),      # y >= 0
            ((0, -1, 5), False),     # y <= 5
            ((1, -1, 0), True),      # x == y
        ]
        out = eliminate_column(rows, 1)
        assert ((1, 0, 0), False) in out
        assert ((-1, 0, 5), False) in out

    def test_lower_upper_combination(self):
        # x <= y and y <= 3: eliminating y gives x <= 3
        rows = [((-1, 1, 0), False), ((0, -1, 3), False)]
        out = eliminate_column(rows, 1)
        assert ((-1, 0, 3), False) in out

    def test_unconstrained_column(self):
        rows = [((1, 0, 0), False)]
        assert eliminate_column(rows, 1) == [((1, 0, 0), False)]

    def test_multi_column(self):
        rows = [
            ((1, 1, 0), False),
            ((-1, 0, 4), False),
            ((0, -1, 4), False),
        ]
        out = eliminate_columns(rows, [0, 1])
        # fully projected: only trivially-true rows remain -> dropped
        assert out == []


class TestPruneRedundant:
    def test_drops_implied_row(self):
        # x >= 0, x >= -5: second is implied
        rows = [((1, 0, 0), False), ((1, 0, 5), False)]
        out = prune_redundant_rows(rows)
        assert ((1, 0, 0), False) in out
        assert len(out) == 1

    def test_keeps_box(self):
        rows = [
            ((1, 0, 0), False), ((-1, 0, 5), False),
            ((0, 1, 0), False), ((0, -1, 5), False),
        ]
        assert len(prune_redundant_rows(rows)) == 4

    def test_diagonal_implied_by_box(self):
        rows = [
            ((1, 0, 0), False), ((-1, 0, 5), False),
            ((0, 1, 0), False), ((0, -1, 5), False),
            ((1, 1, 0), False),                       # x + y >= 0: implied
        ]
        out = prune_redundant_rows(rows)
        assert ((1, 1, 0), False) not in out

    def test_equalities_always_kept(self):
        rows = [((1, -1, 0), True), ((1, 0, 0), False)]
        out = prune_redundant_rows(rows)
        assert ((1, -1, 0), True) in out


@st.composite
def random_system(draw):
    n = draw(st.integers(2, 4))
    rows = []
    for _ in range(draw(st.integers(1, 6))):
        coeffs = tuple(draw(st.integers(-3, 3)) for _ in range(n)) + (
            draw(st.integers(-4, 8)),
        )
        rows.append((coeffs, False))
    # bound the box so systems stay sane
    for k in range(n):
        lo = [0] * (n + 1)
        hi = [0] * (n + 1)
        lo[k], lo[-1] = 1, 3
        hi[k], hi[-1] = -1, 3
        rows.append((tuple(lo), False))
        rows.append((tuple(hi), False))
    return n, rows


def _sat(rows, point):
    for coeffs, eq in rows:
        v = sum(c * p for c, p in zip(coeffs, point)) + coeffs[-1]
        if (eq and v != 0) or (not eq and v < 0):
            return False
    return True


class TestProperties:
    @given(random_system(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_elimination_preserves_membership(self, sys_, data):
        n, rows = sys_
        point = [data.draw(st.integers(-3, 3)) for _ in range(n)]
        if not _sat(rows, point):
            return
        col = data.draw(st.integers(0, n - 1))
        out = eliminate_column(list(rows), col)
        # projection of a member remains a member (column value irrelevant)
        proj_point = list(point)
        proj_point[col] = 0  # eliminated column is zeroed in all rows
        assert _sat(out, proj_point)

    @given(random_system(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_pruning_preserves_membership_both_ways(self, sys_, data):
        n, rows = sys_
        point = [data.draw(st.integers(-3, 3)) for _ in range(n)]
        pruned = prune_redundant_rows(normalize_rows(list(rows)))
        assert _sat(rows, point) == _sat(pruned, point)
