"""Additional coverage for set operations used across the stack."""

import pytest

from repro.polyhedra import AffExpr, BasicSet, Constraint, Space, UnionSet, eq, ineq


@pytest.fixture
def sp():
    return Space(("i", "j"), ("N",))


class TestRebase:
    def test_rebase_into_product_space(self, sp):
        s = BasicSet.from_bounds(sp, {"i": (0, "N")})
        prod = Space(("i__s", "j__s", "i__t", "j__t"), ("N",))
        r = s.rebase(prod, {"i": "i__s", "j": "j__s"})
        assert r.contains({"i__s": 0, "j__s": 9, "i__t": -5, "j__t": 0, "N": 3})
        assert not r.contains({"i__s": 4, "j__s": 0, "i__t": 0, "j__t": 0, "N": 3})

    def test_rebase_keeps_params(self, sp):
        s = BasicSet(sp, [ineq(sp, {"i": 1, "N": -1})])  # i >= N
        r = s.rebase(Space(("i",), ("N",)))
        assert r.contains({"i": 5, "N": 5})
        assert not r.contains({"i": 4, "N": 5})


class TestCopyAndEquality:
    def test_copy_is_independent(self, sp):
        a = BasicSet.from_bounds(sp, {"i": (0, 5)})
        b = a.copy()
        b.add(ineq(sp, {"j": 1}))
        assert len(a.constraints) != len(b.constraints)

    def test_set_equality_ignores_order(self, sp):
        c1 = ineq(sp, {"i": 1})
        c2 = ineq(sp, {"j": 1})
        a = BasicSet(sp, [c1, c2])
        b = BasicSet(sp, [c2, c1])
        assert a == b

    def test_duplicate_constraints_deduped(self, sp):
        s = BasicSet(sp)
        s.add(ineq(sp, {"i": 1}))
        s.add(ineq(sp, {"i": 1}))
        assert len(s.constraints) == 1

    def test_trivial_constraints_dropped(self, sp):
        s = BasicSet(sp)
        s.add(ineq(sp, {}, 5))
        assert s.constraints == []


class TestMinMaxEdge:
    def test_min_equals_max_on_singleton(self, sp):
        s = BasicSet(sp, [eq(sp, {"i": 1}, -3), eq(sp, {"j": 1}, -4),
                          eq(sp, {"N": 1}, -9)])
        e = AffExpr.from_terms(sp, {"i": 2, "j": 1})
        assert s.min_of(e) == s.max_of(e) == 10

    def test_min_over_parametric_lower_bound(self, sp):
        # i >= N, N >= 3 fixed: min i tracks N
        s = BasicSet(sp, [ineq(sp, {"i": 1, "N": -1}), eq(sp, {"N": 1}, -7),
                          ineq(sp, {"i": -1}, 100), ineq(sp, {"j": 1}),
                          ineq(sp, {"j": -1}, 5)])
        assert s.min_of(AffExpr.var(sp, "i")) == 7


class TestUnionSetOps:
    def test_intersect_basic(self, sp):
        left = BasicSet(sp, [ineq(sp, {"i": -1}, 4)])    # i <= 4
        right = BasicSet(sp, [ineq(sp, {"i": 1}, -5)])   # i >= 5
        u = UnionSet([left, right])
        cut = u.intersect_basic(BasicSet(sp, [ineq(sp, {"j": 1})]))
        assert len(cut) == 2
        assert cut.contains({"i": 0, "j": 0, "N": 2})
        assert not cut.contains({"i": 0, "j": -1, "N": 2})

    def test_union_emptiness(self, sp):
        a = BasicSet(sp, [ineq(sp, {}, -1)])
        b = BasicSet(sp, [ineq(sp, {}, -1)])
        assert UnionSet([a, b]).is_empty()

    def test_union_str(self, sp):
        u = UnionSet([BasicSet(sp), BasicSet(sp)])
        assert " u " in str(u)
