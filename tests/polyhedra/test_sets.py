"""Tests for constraints, basic sets, projections, and set queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import AffExpr, BasicSet, Constraint, Space, UnionSet, eq, ineq


@pytest.fixture
def sp():
    return Space(("i", "j"), ("N",))


def square(sp, n=None):
    """0 <= i, j <= N-1 (or a fixed n)."""
    ub = AffExpr.var(sp, "N") - 1 if n is None else AffExpr.const(sp, n - 1)
    return BasicSet.from_bounds(sp, {"i": (0, ub), "j": (0, ub)})


class TestConstraint:
    def test_normalization_gcd(self, sp):
        c = ineq(sp, {"i": 2, "j": 4}, 6)
        assert c.coeffs == (1, 2, 0, 3)

    def test_inequality_constant_tightening(self, sp):
        # 2i - 1 >= 0  ->  i >= 1/2  ->  i >= 1 over integers: i - 1 >= 0
        c = ineq(sp, {"i": 2}, -1)
        assert c.coeffs == (1, 0, 0, -1)

    def test_integer_infeasible_equality_kept(self, sp):
        c = eq(sp, {"i": 2}, 1)  # 2i + 1 == 0 has no integer solution
        assert c.coeffs == (2, 0, 0, 1)

    def test_trivial_and_contradiction(self, sp):
        assert ineq(sp, {}, 0).is_trivial()
        assert ineq(sp, {}, -1).is_contradiction()
        assert eq(sp, {}, 1).is_contradiction()

    def test_negate(self, sp):
        c = ineq(sp, {"i": 1}, 0)  # i >= 0
        neg = c.negate()           # i <= -1
        assert neg.is_satisfied({"i": -1, "j": 0, "N": 4})
        assert not neg.is_satisfied({"i": 0, "j": 0, "N": 4})

    def test_negate_equality_raises(self, sp):
        with pytest.raises(ValueError):
            eq(sp, {"i": 1}).negate()


class TestBasicSet:
    def test_contains(self, sp):
        s = square(sp)
        assert s.contains({"i": 0, "j": 3, "N": 4})
        assert not s.contains({"i": 4, "j": 0, "N": 4})

    def test_emptiness_simple(self, sp):
        s = square(sp)
        s.add(ineq(sp, {"i": 1}, 0))
        assert not s.is_empty()
        s.add(ineq(sp, {"i": -1}, -1))  # i <= -1 contradicts i >= 0
        assert s.is_empty()

    def test_integer_emptiness_detected(self, sp):
        # 1 <= 2i <= 1 has the rational point i = 1/2 but no integer point.
        s = BasicSet(sp)
        s.add(ineq(sp, {"i": 2}, -1))
        s.add(ineq(sp, {"i": -2}, 1))
        assert s.is_empty()

    def test_min_max(self, sp):
        s = square(sp, n=8)
        expr = AffExpr.from_terms(sp, {"i": 1, "j": 1})
        assert s.min_of(expr) == 0
        assert s.max_of(expr) == 14

    def test_min_of_empty_is_none(self, sp):
        s = square(sp, n=4)
        s.add(ineq(sp, {"i": 1}, -10))
        assert s.min_of(AffExpr.var(sp, "i")) is None

    def test_lexmin_point(self, sp):
        s = square(sp, n=4)
        s.add(ineq(sp, {"i": 1, "j": 1}, -3))  # i + j >= 3
        assert s.lexmin_point() == {"i": 0, "j": 3}

    def test_lexmin_of_empty(self, sp):
        s = square(sp, n=2)
        s.add(ineq(sp, {"i": 1}, -5))
        assert s.lexmin_point() is None

    def test_project_out(self, sp):
        s = square(sp, n=4)
        s.add(ineq(sp, {"i": 1, "j": -1}))  # i >= j
        proj = s.project_out(["j"])
        assert proj.space.dims == ("i",)
        # i ranges over 0..3 still
        assert proj.contains({"i": 0, "N": 4}) and proj.contains({"i": 3, "N": 4})

    def test_project_out_through_equality(self, sp):
        s = BasicSet(sp)
        s.add(eq(sp, {"i": 1, "j": -1}))  # i == j
        s.add(ineq(sp, {"j": 1}))          # j >= 0
        proj = s.project_out(["j"])
        assert proj.contains({"i": 0, "N": 4})
        assert not proj.contains({"i": -1, "N": 4})

    def test_enumerate_points(self, sp):
        s = square(sp)
        s.add(ineq(sp, {"i": 1, "j": -1}))  # i >= j
        pts = s.enumerate_points({"N": 3})
        assert sorted(pts) == [
            (0, 0), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2),
        ]

    def test_enumerate_requires_params(self, sp):
        with pytest.raises(KeyError):
            square(sp).enumerate_points({})

    def test_enumerate_limit(self, sp):
        with pytest.raises(ValueError):
            square(sp).enumerate_points({"N": 10000}, limit=100)

    def test_intersect(self, sp):
        a = square(sp, n=4)
        b = BasicSet(sp, [ineq(sp, {"i": 1}, -2)])
        c = a.intersect(b)
        assert not c.contains({"i": 1, "j": 0, "N": 4})
        assert c.contains({"i": 2, "j": 0, "N": 4})

    def test_bounds_for(self, sp):
        s = square(sp)
        lowers, uppers = s.bounds_for("i")
        assert len(lowers) == 1 and len(uppers) == 1
        lo_expr, lo_div = lowers[0]
        assert lo_expr.is_constant() and lo_expr.const_term == 0 and lo_div == 1
        up_expr, up_div = uppers[0]
        assert up_expr.coeff_of("N") == 1 and up_expr.const_term == -1

    def test_bounds_for_equality(self, sp):
        s = BasicSet(sp, [eq(sp, {"i": 1, "j": -1})])
        lowers, uppers = s.bounds_for("i")
        assert len(lowers) == 1 and len(uppers) == 1

    def test_from_bounds_with_names(self, sp):
        s = BasicSet.from_bounds(sp, {"i": (0, "N")})
        assert s.contains({"i": 0, "j": 99, "N": 4})
        assert s.contains({"i": 4, "j": 0, "N": 4})
        assert not s.contains({"i": 5, "j": 0, "N": 4})


class TestUnionSet:
    def test_union_contains(self, sp):
        left = square(sp).intersect(BasicSet(sp, [ineq(sp, {"i": -2, "N": 1}, -1)]))
        right = square(sp).intersect(BasicSet(sp, [ineq(sp, {"i": 2, "N": -1})]))
        u = UnionSet([left, right])
        for i in range(4):
            assert u.contains({"i": i, "j": 0, "N": 4})

    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            UnionSet([])

    def test_mixed_spaces_rejected(self, sp):
        with pytest.raises(ValueError):
            UnionSet([BasicSet(sp), BasicSet(Space(("k",)))])


class TestProjectionProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(-3, 3), st.integers(-3, 3), st.integers(-5, 5)
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(-3, 3),
        st.integers(-3, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_projection_soundness(self, rows, px, py):
        """If (x, y) is in S then x is in project_out(S, y)."""
        sp = Space(("x", "y"))
        s = BasicSet(sp)
        # bound the box so emptiness checks terminate
        s.add(ineq(sp, {"x": 1}, 5))
        s.add(ineq(sp, {"x": -1}, 5))
        s.add(ineq(sp, {"y": 1}, 5))
        s.add(ineq(sp, {"y": -1}, 5))
        for a, b, c in rows:
            s.add(ineq(sp, {"x": a, "y": b}, c))
        if s.contains({"x": px, "y": py}):
            proj = s.project_out(["y"])
            assert proj.contains({"x": px})
