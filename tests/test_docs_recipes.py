"""The docs/USAGE.md recipes, as regression tests (docs must stay runnable)."""

from repro import PipelineOptions, ProgramBuilder, optimize, parse_program
from repro.frontend import Access
from repro.polyhedra import AffExpr, AffineMap
from repro.runtime import validate_transformation
from repro.workloads.periodic_util import periodic_reads

WAVE = """
for (t = 1; t < T; t++)
    for (i = 1; i < N - 1; i++)
        A[t+1][i] = 2.0*A[t][i] - A[t-1][i] + 0.25*(A[t][i-1] - 2.0*A[t][i] + A[t][i+1]);
"""


def test_wave_recipe():
    p = parse_program(WAVE, "wave", params=("T", "N"), param_min=4)
    r = optimize(p, PipelineOptions(algorithm="plutoplus", tile_size=4))
    assert r.schedule.bands and r.schedule.bands[0].width == 2  # time-tilable
    assert validate_transformation(p, r.tiled, {"T": 6, "N": 12}).ok


def test_ring_builder_recipe():
    b = ProgramBuilder("ring", params=("T", "N"), param_min=4)
    with b.loop("t", 0, "T-1"):
        with b.loop("i", 0, "N-1"):
            sp = b.program.space_for(["t", "i"])
            t, i = AffExpr.var(sp, "t"), AffExpr.var(sp, "i")
            b.stmt(
                "A[t+1][i] = 0.5*(A[t][(i+1)%N] + A[t][(i-1)%N])",
                body_py="A[t+1, i] = 0.5*(A[t, (i+1) % N] + A[t, (i-1) % N])",
                writes=[Access("A", AffineMap(sp, [t + 1, i]))],
                reads=(
                    periodic_reads(sp, "A", t, {"i": 1}, {"i": "N"})
                    + periodic_reads(sp, "A", t, {"i": -1}, {"i": "N"})
                ),
            )
    program = b.build()
    res = optimize(program, PipelineOptions(iss=True, diamond=True))
    assert res.used_iss and res.used_diamond
    assert validate_transformation(res.program, res.tiled, {"T": 5, "N": 11}).ok


def test_quick_scheduler_recipe():
    """The USAGE.md "Scheduling faster" Python snippet."""
    result = optimize("gemm", PipelineOptions(scheduler="auto"))
    assert result.scheduler_stats.scheduler_path == "quick"
    assert result.scheduler_stats.fallback_reason is None
    assert result.scheduler_stats.fusion_groups


def test_serving_recipe(tmp_path):
    """The USAGE.md "Scheduling as a service" Python snippet."""
    import threading

    from repro.server import Daemon, DaemonConfig, ServerClient

    config = DaemonConfig(
        socket_path=str(tmp_path / "repro.sock"),
        cache_dir=str(tmp_path / "cache"),
        jobs=1,
        drain_seconds=5.0,
    )
    daemon = Daemon(config)
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    try:
        import os
        import time

        deadline = time.time() + 10
        while not os.path.exists(config.socket_path):
            assert time.time() < deadline
            time.sleep(0.01)
        with ServerClient(socket_path=config.socket_path) as client:
            response = client.optimize("fig1-skew")
            assert response["status"] == "ok" and response["cache"] == "miss"
            result = client.optimize_result("fig1-skew")
            assert result.schedule.depth >= 1
    finally:
        daemon.shutdown()
        thread.join(timeout=15)


def test_quickstart_readme_snippet():
    program = parse_program(
        """
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
                A[i+1][j+1] = 0.5 * A[i][j] + B[i][j];
        """,
        "demo",
        params=("N",),
    )
    result = optimize(program, PipelineOptions(algorithm="plutoplus"))
    assert result.schedule.rows[0].parallel  # outer parallel via negative skew
    assert "def kernel" in result.code.python_source


def test_native_backend_recipe(tmp_path):
    """The USAGE.md "Running at native speed" Python snippet (small sizes)."""
    from repro import ExecutionOptions
    from repro.exec import find_compiler
    from repro.runtime import random_arrays

    result = optimize("jacobi-2d-imper", PipelineOptions(backend="c"))
    params = {"TSTEPS": 4, "N": 16}
    arrays = random_arrays(result.program, params)
    stats = result.run(
        arrays, params,
        exec_options=ExecutionOptions(backend="c", cache_dir=str(tmp_path)),
    )
    if find_compiler() is None:
        assert stats.backend == "python"
        assert "no C compiler" in stats.fallback_reason
    else:
        assert stats.backend == "c"
        assert stats.artifact_cache in ("compiled", "disk", "memory")


def test_parallel_reductions_recipe():
    # docs/USAGE.md "Parallelizing reductions, and RAR locality"
    from repro.workloads import get_workload

    w = get_workload("dot")
    res = optimize(
        w.program(), w.pipeline_options("plutoplus", parallel_reductions="omp")
    )
    assert res.tiled.reduction_levels() == [0]
    assert "# parallel reduction" in res.code.python_source

    rar = optimize(
        get_workload("gemm").program(),
        PipelineOptions(algorithm="plutoplus", rar=True),
    )
    assert rar.dep_stats.rar_deps > 0
