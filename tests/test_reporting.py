"""Tests for the benchmark-report formatting helpers."""

import pytest

from repro.reporting import ascii_series, format_table, geomean, normalized_breakdown


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_ignores_nonpositive(self):
        assert geomean([2, 8, 0, -3]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_identity(self):
        assert geomean([1.15]) == pytest.approx(1.15)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "x"], [["a", 1.0], ["long-name", 12.5]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert len(set(len(l) for l in lines)) == 1  # equal widths

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456]])
        assert "1.235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestNormalizedBreakdown:
    def test_fractions_sum_to_one(self):
        out = normalized_breakdown({"a": 1.0, "b": 3.0})
        assert sum(out.values()) == pytest.approx(1.0)
        assert out["b"] == pytest.approx(0.75)

    def test_zero_total(self):
        assert normalized_breakdown({"a": 0.0}) == {"a": 0.0}


class TestAsciiSeries:
    def test_plot_shape(self):
        text = ascii_series([1, 2, 4, 8], {"pluto": [4, 3, 2, 2], "plus": [4, 2, 1, 0.5]})
        lines = text.splitlines()
        assert lines[-2].startswith("+")
        assert "*=pluto" in lines[-1]

    def test_markers_present(self):
        text = ascii_series([1, 16], {"a": [1, 2], "b": [2, 4]})
        assert "*" in text and "o" in text

    def test_log_scale(self):
        text = ascii_series([1, 2], {"a": [1, 1000]}, logy=True)
        assert "(no data)" not in text

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_series([1, 2], {"a": [0, 1]}, logy=True)

    def test_no_data(self):
        assert ascii_series([1], {"a": [1]}) == "(no data)"


class TestSuiteReportColumns:
    """The PR-10 rar/redpar columns degrade to '-' on older records."""

    @staticmethod
    def _record(props_extra):
        return {
            "run_id": "w--v",
            "status": "ok",
            "timing": {
                "dependence_analysis": 0.1,
                "auto_transformation": 0.2,
                "code_generation": 0.1,
                "misc": 0.0,
                "total": 0.4,
            },
            "schedule_properties": {
                "depth": 2,
                "bands": ["b"],
                "max_band_width": 2,
                "parallel_levels": [0],
                "concurrent_start": False,
                "used_iss": False,
                "used_diamond": False,
                "scheduler_path": "exact",
                **props_extra,
            },
        }

    def test_old_record_renders_dashes(self):
        from repro.reporting import format_suite_report

        text = format_suite_report([self._record({})])
        assert "rar" in text and "redpar" in text
        row = next(l for l in text.splitlines() if "w--v" in l and "exact" in l)
        assert row.rstrip().endswith("-")

    def test_active_knobs_render(self):
        from repro.reporting import format_suite_report

        text = format_suite_report([
            self._record({
                "rar": True,
                "parallel_reductions": "omp",
                "reduction_levels": [0, 2],
            })
        ])
        row = next(l for l in text.splitlines() if "w--v" in l and "exact" in l)
        assert "yes" in row and "0,2" in row
