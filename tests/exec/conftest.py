"""Shared fixtures for the native-execution tests.

Everything that compiles goes through a per-test artifact cache under
``tmp_path`` so tests never touch (or depend on) the user's real kernel
cache; tests that need a toolchain skip with a reason instead of failing
on compiler-less machines.
"""

import pytest

from repro.exec import find_compiler


@pytest.fixture
def compiler():
    """The system C compiler, or a skip with the reason recorded."""
    comp = find_compiler()
    if comp is None:
        pytest.skip("no C compiler found (tried $REPRO_CC, cc, gcc, clang)")
    return comp


@pytest.fixture
def exec_opts(tmp_path, compiler):
    """C-backend options with an isolated artifact cache."""
    from repro.exec import ExecutionOptions

    return ExecutionOptions(backend="c", cache_dir=str(tmp_path / "kernels"))
