"""The content-addressed artifact cache: keys, tiers, restart survival."""

import pytest

from repro.exec import (
    ArtifactCache,
    ExecBackendError,
    ExecStats,
    artifact_key,
)

TRIVIAL = """\
#include <stdint.h>
void repro_kernel(double **arrays, const int64_t *shapes,
                  const int64_t *params) {
    (void)arrays; (void)shapes; (void)params;
}
"""


class TestArtifactKey:
    def test_deterministic(self, compiler):
        assert artifact_key(TRIVIAL, compiler) == artifact_key(TRIVIAL, compiler)

    def test_source_changes_key(self, compiler):
        assert artifact_key(TRIVIAL, compiler) != artifact_key(
            TRIVIAL + "\n/* v2 */\n", compiler
        )

    def test_compiler_fingerprint_changes_key(self, compiler):
        other = type(compiler)(path=compiler.path, version="imaginary-cc 99.0")
        assert artifact_key(TRIVIAL, compiler) != artifact_key(TRIVIAL, other)


class TestCacheTiers:
    def test_cold_compile_then_disk_hit(self, tmp_path, compiler):
        cache = ArtifactCache(tmp_path)
        stats = ExecStats()
        path, tier = cache.ensure(TRIVIAL, compiler, stats)
        assert tier == "compiled"
        assert path.is_file()
        assert stats.compile_seconds > 0
        assert stats.artifact_key == artifact_key(TRIVIAL, compiler)
        assert stats.compiler == compiler.version

        path2, tier2 = cache.ensure(TRIVIAL, compiler)
        assert (path2, tier2) == (path, "disk")

    def test_cache_survives_restart(self, tmp_path, compiler):
        # a fresh ArtifactCache over the same root models a new process:
        # the artifact is reused, not rebuilt, and the hit is recorded
        ArtifactCache(tmp_path).ensure(TRIVIAL, compiler)
        stats = ExecStats()
        _, tier = ArtifactCache(tmp_path).ensure(TRIVIAL, compiler, stats)
        assert tier == "disk"
        assert stats.compile_seconds == 0.0
        assert stats.artifact_key == artifact_key(TRIVIAL, compiler)

    def test_source_stored_alongside(self, tmp_path, compiler):
        cache = ArtifactCache(tmp_path)
        cache.ensure(TRIVIAL, compiler)
        key = artifact_key(TRIVIAL, compiler)
        assert cache.source_path_for(key).read_text() == TRIVIAL

    def test_entries_counts_artifacts(self, tmp_path, compiler):
        cache = ArtifactCache(tmp_path)
        assert cache.entries() == 0
        cache.ensure(TRIVIAL, compiler)
        assert cache.entries() == 1

    def test_no_tmp_litter(self, tmp_path, compiler):
        cache = ArtifactCache(tmp_path)
        cache.ensure(TRIVIAL, compiler)
        litter = [p for p in tmp_path.rglob("*") if ".tmp" in p.name]
        assert litter == []


class TestCompileFailure:
    def test_bad_source_raises_with_detail(self, tmp_path, compiler):
        with pytest.raises(ExecBackendError, match="compile failed"):
            ArtifactCache(tmp_path).ensure("this is not C;", compiler)

    def test_failed_compile_leaves_no_artifact(self, tmp_path, compiler):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ExecBackendError):
            cache.ensure("#error nope\n", compiler)
        assert cache.entries() == 0
