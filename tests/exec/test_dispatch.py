"""compile_kernel dispatch: protocol, fallback, strictness."""

import pytest

from repro.codegen import generate_python
from repro.codegen.original import original_schedule
from repro.exec import (
    CompiledKernel,
    ExecBackendError,
    ExecStats,
    ExecutionOptions,
    compile_kernel,
)
from repro.frontend import parse_program

SRC = """
for (i = 1; i < N; i++)
    A[i] = A[i] + A[i-1];
"""


def _tsched():
    return original_schedule(parse_program(SRC, "p", params=("N",)))


class TestProtocol:
    def test_python_kernel_satisfies_protocol(self):
        code = generate_python(_tsched())
        assert isinstance(code, CompiledKernel)
        assert code.backend == "python"
        assert "def kernel" in code.source

    def test_c_kernel_satisfies_protocol(self, exec_opts):
        kernel = compile_kernel(_tsched(), exec_opts)
        assert isinstance(kernel, CompiledKernel)
        assert kernel.backend == "c"
        assert "repro_kernel" in kernel.source


class TestDispatch:
    def test_default_is_python(self):
        stats = ExecStats()
        kernel = compile_kernel(_tsched(), stats=stats)
        assert kernel.backend == "python"
        assert stats.backend_requested == "python"
        assert stats.fallback_reason is None

    def test_python_backend_reuses_given_code(self):
        code = generate_python(_tsched())
        assert compile_kernel(_tsched(), code=code) is code

    def test_missing_compiler_falls_back_with_reason(self, tmp_path):
        opts = ExecutionOptions(
            backend="c", cc="no-such-compiler-xyz", cache_dir=str(tmp_path)
        )
        stats = ExecStats()
        kernel = compile_kernel(_tsched(), opts, stats)
        assert kernel.backend == "python"
        assert stats.backend_requested == "c"
        assert stats.backend == "python"
        assert "no C compiler" in stats.fallback_reason

    def test_strict_mode_raises_instead(self, tmp_path):
        opts = ExecutionOptions(
            backend="c", cc="no-such-compiler-xyz",
            cache_dir=str(tmp_path), strict=True,
        )
        with pytest.raises(ExecBackendError, match="no C compiler"):
            compile_kernel(_tsched(), opts)

    def test_c_backend_records_stats(self, exec_opts):
        stats = ExecStats()
        kernel = compile_kernel(_tsched(), exec_opts, stats)
        assert kernel.backend == "c"
        assert stats.backend == "c"
        assert stats.backend_requested == "c"
        assert stats.artifact_cache in ("compiled", "disk", "memory")
        assert stats.artifact_key and stats.compiler
