"""OptimizationResult.run(): backend dispatch, memoization, pickling."""

import pickle

import numpy as np
import pytest

from repro.exec import ExecStats, ExecutionOptions
from repro.pipeline import PipelineOptions, optimize
from repro.runtime.arrays import random_arrays
from repro.workloads import get_workload

WORKLOAD = "fig1-skew"


def _result(**opts):
    w = get_workload(WORKLOAD)
    return optimize(w.program(), PipelineOptions(**opts))


def _inputs(result, seed=0):
    params = dict(get_workload(WORKLOAD).small_sizes)
    return random_arrays(result.program, params, seed=seed), params


class TestRunDispatch:
    def test_python_run_default(self):
        result = _result()
        arrays, params = _inputs(result)
        stats = result.run(arrays, params)
        assert stats.backend == "python"
        assert stats.artifact_cache is None
        assert stats.exec_seconds > 0

    def test_options_backend_is_the_default(self, tmp_path, compiler):
        result = _result(backend="c")
        arrays, params = _inputs(result)
        stats = result.run(
            arrays, params,
            exec_options=ExecutionOptions(
                backend="c", cache_dir=str(tmp_path)
            ),
        )
        assert stats.backend == "c"
        assert stats.backend_requested == "c"

    def test_c_matches_python_bitwise(self, exec_opts):
        result = _result()
        ref_arrays, params = _inputs(result)
        c_arrays = {k: v.copy() for k, v in ref_arrays.items()}
        result.run(ref_arrays, params)
        stats = result.run(c_arrays, params, exec_options=exec_opts)
        assert stats.backend == "c", stats.fallback_reason
        for name in ref_arrays:
            assert np.array_equal(ref_arrays[name], c_arrays[name])

    def test_second_run_hits_memory(self, exec_opts):
        result = _result()
        arrays, params = _inputs(result)
        first = result.run(arrays, params, exec_options=exec_opts)
        assert first.artifact_cache in ("compiled", "disk", "memory")
        second = result.run(arrays, params, exec_options=exec_opts)
        assert second.artifact_cache == "memory"
        assert second.compile_seconds == 0.0

    def test_fallback_records_reason(self, tmp_path):
        result = _result()
        arrays, params = _inputs(result)
        stats = result.run(
            arrays, params,
            exec_options=ExecutionOptions(
                backend="c", cc="no-such-compiler-xyz",
                cache_dir=str(tmp_path),
            ),
        )
        assert stats.backend == "python"
        assert "no C compiler" in stats.fallback_reason


class TestPickle:
    def test_round_trip_drops_kernels_and_recompiles(self, exec_opts):
        result = _result()
        arrays, params = _inputs(result)
        result.run(arrays, params, exec_options=exec_opts)
        assert result.__dict__.get("_kernels")

        clone = pickle.loads(pickle.dumps(result))
        assert "_kernels" not in clone.__dict__

        # the clone reruns through the artifact cache and still agrees
        ref, params = _inputs(result, seed=3)
        out = {k: v.copy() for k, v in ref.items()}
        result.run(ref, params)
        stats = clone.run(out, params, exec_options=exec_opts)
        assert stats.backend == "c", stats.fallback_reason
        for name in ref:
            assert np.array_equal(ref[name], out[name])

    def test_ckernel_pickle_drops_ctypes_handles(self, exec_opts):
        from repro.exec import compile_kernel

        result = _result()
        kernel = compile_kernel(result.tiled, exec_opts)
        arrays, params = _inputs(result)
        kernel.run(arrays, params)
        assert kernel._fn is not None

        clone = pickle.loads(pickle.dumps(kernel))
        assert clone._fn is None and clone._set_threads is None
        out, params = _inputs(result, seed=5)
        ref = {k: v.copy() for k, v in out.items()}
        kernel.run(ref, params)
        clone.run(out, params)  # lazily reloads from the artifact cache
        for name in ref:
            assert np.array_equal(ref[name], out[name])


class TestCacheKeyCompat:
    def test_default_backend_omitted_from_options_dict(self):
        # the server cache key hashes as_dict(); pre-backend clients and
        # post-backend defaults must collide on the same key
        assert "backend" not in PipelineOptions().as_dict()
        assert PipelineOptions(backend="c").as_dict()["backend"] == "c"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            PipelineOptions(backend="rust")

    def test_exec_stats_threads_recorded(self, exec_opts):
        result = _result()
        arrays, params = _inputs(result)
        stats = ExecStats()
        result.run(
            arrays, params,
            exec_options=ExecutionOptions(
                backend="c", threads=1, cache_dir=exec_opts.cache_dir
            ),
            stats=stats,
        )
        assert stats.backend == "c", stats.fallback_reason
        assert stats.threads == 1
