"""The kernel-mode C emitter: structure, macros, ABI contract.

These tests need no compiler — they pin down the emitted text and the
marshalling contract (:class:`CKernelSource`) that the ctypes loader and
any future backend build against.
"""

import pytest

from repro.codegen import generate_c, generate_c_kernel
from repro.codegen.c_emit import KERNEL_ENTRY
from repro.codegen.original import original_schedule
from repro.frontend import parse_program
from repro.pipeline import PipelineOptions, optimize
from repro.workloads import get_workload

SIMPLE = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i+1][j+1] = 0.5 * A[i][j];
"""

MACROS = ("ceild", "floord", "repro_max", "repro_min", "repro_mod")


def _kernel(src=SIMPLE, **opts):
    p = parse_program(src, "p", params=("N",))
    res = optimize(p, PipelineOptions(**opts))
    return generate_c_kernel(res.tiled)


class TestKernelStructure:
    def test_entry_point_and_abi(self):
        ksrc = _kernel()
        assert ksrc.entry == KERNEL_ENTRY
        assert (
            f"void {KERNEL_ENTRY}(double **arrays, "
            "const int64_t *shapes, const int64_t *params)" in ksrc.source
        )
        assert "#include <stdint.h>" in ksrc.source
        assert "#include <math.h>" in ksrc.source

    def test_macros_are_ifndef_guarded(self):
        ksrc = _kernel()
        for macro in MACROS:
            assert f"#ifndef {macro}" in ksrc.source
            assert f"#define {macro}(" in ksrc.source
        # no unprefixed min/max macros — they collide with libc headers
        assert "#define min(" not in ksrc.source
        assert "#define max(" not in ksrc.source

    def test_braces_balanced(self):
        ksrc = _kernel()
        assert ksrc.source.count("{") == ksrc.source.count("}")

    def test_marshalling_contract(self):
        ksrc = _kernel()
        assert ksrc.array_order == ("A",)
        assert ksrc.array_ranks == {"A": 2}
        assert ksrc.param_order == ("N",)

    def test_array_order_is_sorted(self):
        src = """
        for (i = 0; i < N; i++) {
            Z[i] = B[i] + A[i];
        }
        """
        p = parse_program(src, "p", params=("N",))
        ksrc = generate_c_kernel(original_schedule(p))
        assert ksrc.array_order == ("A", "B", "Z")

    def test_omp_controls_present(self):
        ksrc = _kernel(tile=False)
        assert "repro_set_threads" in ksrc.source
        assert "repro_omp_enabled" in ksrc.source
        assert "#pragma omp parallel for" in ksrc.source

    def test_periodic_wraparound_survives(self):
        # stmt.text (the display surface) drops the periodic % N; the
        # kernel body must come from stmt.body, where it is present
        w = get_workload("heat-1dp")
        ksrc = generate_c_kernel(original_schedule(w.program()))
        assert "repro_mod(" in ksrc.source


class TestDisplayEmitterUnchanged:
    """generate_c (the human-facing listing) keeps its historical shape."""

    def test_structure(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(algorithm="plutoplus", tile_size=16))
        c = generate_c(res.tiled)
        assert "#define ceild" in c
        assert c.count("{") == c.count("}")
        assert "A[i + 1][j + 1]" in c  # original C body preserved

    def test_parallel_pragma(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(algorithm="plutoplus", tile=False))
        c = generate_c(res.tiled)
        assert "#pragma omp parallel for" in c


class TestReductionEmission:
    """The three discharge cases of ``_emit_reduction_loop``."""

    def _opt(self, src, **overrides):
        p = parse_program(src, "p", params=("N",))
        opts = dict(
            algorithm="plutoplus", tile=False, parallel_reductions="omp"
        )
        opts.update(overrides)
        return optimize(p, PipelineOptions(**opts))

    def test_scalar_accumulator_gets_reduction_clause(self):
        res = self._opt("for (i = 0; i < N; i++) s = s + A[i] * B[i];")
        assert res.tiled.reduction_levels() == [0]
        src = generate_c_kernel(res.tiled).source
        assert "#pragma omp parallel for reduction(+:__red0)" in src
        assert "double __red0 = 0.0;" in src
        assert "__red0 += (" in src
        # serial combine back into the cell after the loop
        assert "s[0] = s[0] + __red0;" in src
        assert src.count("{") == src.count("}")

    def test_array_cell_accumulator_gets_atomic(self):
        # the written cell is a fixed array element, not a rank-0 scalar:
        # no private copy exists, so the discharge is per-update atomics
        res = self._opt("for (j = 0; j < N; j++) C[0] = C[0] + A[j];")
        assert res.tiled.reduction_levels() == [0]
        src = generate_c_kernel(res.tiled).source
        assert "#pragma omp parallel for\n" in src
        assert "#pragma omp atomic" in src
        assert "reduction(" not in src

    def test_nested_reduction_row_stays_sequential(self):
        # gemm: i/j are genuinely parallel, k is reduction-tagged but
        # nested inside their parallel region — a pragma there would race
        gemm = """
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
                for (k = 0; k < N; k++)
                    C[i][j] = C[i][j] + A[i][k] * B[k][j];
        """
        res = self._opt(gemm)
        assert res.tiled.reduction_levels()
        src = generate_c_kernel(res.tiled).source
        assert "#pragma omp parallel for" in src
        assert "atomic" not in src and "reduction(" not in src
        assert src.count("{") == src.count("}")

    def test_privatize_mode_keeps_native_loop_sequential(self):
        res = self._opt(
            "for (i = 0; i < N; i++) s = s + A[i] * B[i];",
            parallel_reductions="privatize",
        )
        assert res.tiled.reduction_levels() == [0]
        src = generate_c_kernel(res.tiled).source
        assert "reduction(" not in src and "atomic" not in src
        assert "#pragma omp parallel for" not in src
