"""The kernel-mode C emitter: structure, macros, ABI contract.

These tests need no compiler — they pin down the emitted text and the
marshalling contract (:class:`CKernelSource`) that the ctypes loader and
any future backend build against.
"""

import pytest

from repro.codegen import generate_c, generate_c_kernel
from repro.codegen.c_emit import KERNEL_ENTRY
from repro.codegen.original import original_schedule
from repro.frontend import parse_program
from repro.pipeline import PipelineOptions, optimize
from repro.workloads import get_workload

SIMPLE = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i+1][j+1] = 0.5 * A[i][j];
"""

MACROS = ("ceild", "floord", "repro_max", "repro_min", "repro_mod")


def _kernel(src=SIMPLE, **opts):
    p = parse_program(src, "p", params=("N",))
    res = optimize(p, PipelineOptions(**opts))
    return generate_c_kernel(res.tiled)


class TestKernelStructure:
    def test_entry_point_and_abi(self):
        ksrc = _kernel()
        assert ksrc.entry == KERNEL_ENTRY
        assert (
            f"void {KERNEL_ENTRY}(double **arrays, "
            "const int64_t *shapes, const int64_t *params)" in ksrc.source
        )
        assert "#include <stdint.h>" in ksrc.source
        assert "#include <math.h>" in ksrc.source

    def test_macros_are_ifndef_guarded(self):
        ksrc = _kernel()
        for macro in MACROS:
            assert f"#ifndef {macro}" in ksrc.source
            assert f"#define {macro}(" in ksrc.source
        # no unprefixed min/max macros — they collide with libc headers
        assert "#define min(" not in ksrc.source
        assert "#define max(" not in ksrc.source

    def test_braces_balanced(self):
        ksrc = _kernel()
        assert ksrc.source.count("{") == ksrc.source.count("}")

    def test_marshalling_contract(self):
        ksrc = _kernel()
        assert ksrc.array_order == ("A",)
        assert ksrc.array_ranks == {"A": 2}
        assert ksrc.param_order == ("N",)

    def test_array_order_is_sorted(self):
        src = """
        for (i = 0; i < N; i++) {
            Z[i] = B[i] + A[i];
        }
        """
        p = parse_program(src, "p", params=("N",))
        ksrc = generate_c_kernel(original_schedule(p))
        assert ksrc.array_order == ("A", "B", "Z")

    def test_omp_controls_present(self):
        ksrc = _kernel(tile=False)
        assert "repro_set_threads" in ksrc.source
        assert "repro_omp_enabled" in ksrc.source
        assert "#pragma omp parallel for" in ksrc.source

    def test_periodic_wraparound_survives(self):
        # stmt.text (the display surface) drops the periodic % N; the
        # kernel body must come from stmt.body, where it is present
        w = get_workload("heat-1dp")
        ksrc = generate_c_kernel(original_schedule(w.program()))
        assert "repro_mod(" in ksrc.source


class TestDisplayEmitterUnchanged:
    """generate_c (the human-facing listing) keeps its historical shape."""

    def test_structure(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(algorithm="plutoplus", tile_size=16))
        c = generate_c(res.tiled)
        assert "#define ceild" in c
        assert c.count("{") == c.count("}")
        assert "A[i + 1][j + 1]" in c  # original C body preserved

    def test_parallel_pragma(self):
        p = parse_program(SIMPLE, "p", params=("N",))
        res = optimize(p, PipelineOptions(algorithm="plutoplus", tile=False))
        c = generate_c(res.tiled)
        assert "#pragma omp parallel for" in c
