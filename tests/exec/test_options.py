"""ExecutionOptions validation and ExecStats manifest tolerance."""

import pytest

from repro.exec import BACKENDS, ExecStats, ExecutionOptions


class TestExecutionOptions:
    def test_defaults_are_python(self):
        opts = ExecutionOptions()
        assert opts.backend == "python"
        assert opts.threads is None and not opts.strict

    def test_kw_only(self):
        with pytest.raises(TypeError):
            ExecutionOptions("c")  # positional construction is banned

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            ExecutionOptions(backend="fortran")

    def test_backends_constant_matches_validation(self):
        for backend in BACKENDS:
            assert ExecutionOptions(backend=backend).backend == backend

    def test_threads_must_be_positive(self):
        with pytest.raises(ValueError, match="threads"):
            ExecutionOptions(threads=0)

    def test_dict_round_trip(self):
        opts = ExecutionOptions(backend="c", threads=4, strict=True)
        assert ExecutionOptions.from_dict(opts.as_dict()) == opts

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ExecutionOptions"):
            ExecutionOptions.from_dict({"backend": "c", "turbo": True})


class TestExecStats:
    def test_as_dict_from_dict_round_trip(self):
        stats = ExecStats(
            backend_requested="c", backend="c", compile_seconds=1.5,
            artifact_cache="compiled", artifact_key="ab" * 32, omp=True,
        )
        assert ExecStats.from_dict(stats.as_dict()) == stats

    def test_from_dict_tolerates_old_manifests(self):
        # a manifest written before ExecStats existed at all
        assert ExecStats.from_dict({}) == ExecStats()
        # ... or before any given field was added
        partial = ExecStats.from_dict({"backend": "c", "exec_seconds": 0.25})
        assert partial.backend == "c"
        assert partial.exec_seconds == 0.25
        assert partial.artifact_cache is None and partial.omp is None

    def test_from_dict_ignores_future_fields(self):
        # fields added by a later format version must not break parsing
        stats = ExecStats.from_dict({"backend": "c", "gpu_seconds": 9.0})
        assert stats.backend == "c"

    def test_fallback_reason_defaults_none(self):
        assert ExecStats().fallback_reason is None
