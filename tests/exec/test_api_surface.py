"""The redesigned execution API surface: factory, re-exports, stability."""

import warnings

import pytest

from repro.codegen import make_generated_code
from repro.codegen.original import original_schedule
from repro.codegen.python_emit import GeneratedCode, generate_python
from repro.frontend import parse_program

SRC = """
for (i = 0; i < N; i++)
    A[i] = 2.0 * A[i];
"""


def _tsched():
    return original_schedule(parse_program(SRC, "p", params=("N",)))


class TestFactory:
    def test_direct_construction_warns(self):
        tsched = _tsched()
        template = generate_python(tsched)
        with pytest.warns(DeprecationWarning, match="make_generated_code"):
            GeneratedCode(
                python_source=template.python_source, tsched=tsched
            )

    def test_factory_does_not_warn(self):
        tsched = _tsched()
        template = generate_python(tsched)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            code = make_generated_code(template.python_source, tsched)
        assert code.python_source == template.python_source

    def test_generate_python_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            generate_python(_tsched())


class TestReExports:
    def test_api_re_exports(self):
        from repro import api

        assert api.ExecutionOptions is not None
        assert api.ExecStats is not None

    def test_package_re_exports(self):
        import repro

        assert repro.ExecutionOptions().backend == "python"
        assert repro.ExecStats().backend == "python"
        assert "ExecutionOptions" in repro.__all__
        assert "ExecStats" in repro.__all__

    def test_exec_facade_is_complete(self):
        from repro import exec as rexec

        for name in (
            "ArtifactCache", "CKernel", "CompiledKernel", "Compiler",
            "ExecBackendError", "ExecStats", "ExecutionOptions",
            "artifact_key", "build_c_kernel", "compile_kernel",
            "default_cache_dir", "find_compiler",
        ):
            assert hasattr(rexec, name), name
