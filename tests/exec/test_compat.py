"""Bit-compatibility: the C backend must reproduce the Python kernel.

Every registered workload runs through :func:`backend_compat_check` at its
small validation sizes on the original 2d+1 schedule (exercising every
statement body the repository knows how to emit), plus a handful of full
pipeline outputs covering tiling, skewing, and periodic ISS.  Agreement is
bitwise — exact integers, 0 ULPs on floats — which ``-ffp-contract=off``
makes achievable on real hardware.
"""

import numpy as np
import pytest

from repro.codegen.original import original_schedule
from repro.exec import ExecutionOptions
from repro.runtime.arrays import random_arrays
from repro.runtime.validate import backend_compat_check
from repro.workloads import WORKLOADS, get_workload


def _small_params(w, prog):
    return dict(w.small_sizes) or {p: 8 for p in prog.params}


def _compat_arrays(name, prog, params):
    """Workload-aware inputs: cholesky factorizes, so its matrix must be
    symmetric positive definite or the *reference* kernel leaves the
    domain of sqrt; everything else takes plain random arrays."""
    if name != "cholesky":
        return None
    arrays = random_arrays(prog, params, seed=0)
    for aname, a in arrays.items():
        if a.ndim == 2 and a.shape[0] == a.shape[1]:
            arrays[aname] = a @ a.T + a.shape[0] * np.eye(a.shape[0])
    return arrays


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_original_schedule_bitwise(name, tmp_path, compiler):
    w = get_workload(name)
    prog = w.program()
    params = _small_params(w, prog)
    report = backend_compat_check(
        original_schedule(prog),
        params,
        ExecutionOptions(backend="c", cache_dir=str(tmp_path)),
        arrays=_compat_arrays(name, prog, params),
    )
    assert report.checked, f"fell back: {report.fallback_reason}"
    assert report.ok, (
        f"{name}: C backend diverged on {report.mismatched_arrays} "
        f"(max {report.max_ulps} ulps, abs diff {report.max_abs_diff})"
    )
    assert report.max_ulps == 0


@pytest.mark.parametrize(
    "name", ["fig1-skew", "jacobi-2d-imper", "heat-1dp"]
)
def test_optimized_schedule_bitwise(name, tmp_path, compiler):
    # the full pipeline: tiled + skewed (+ ISS on the periodic stencil)
    from repro.pipeline import optimize

    w = get_workload(name)
    prog = w.program()
    result = optimize(prog, w.pipeline_options("plutoplus"))
    params = _small_params(w, prog)
    report = backend_compat_check(
        result.tiled,
        params,
        ExecutionOptions(backend="c", cache_dir=str(tmp_path)),
    )
    assert report.checked, f"fell back: {report.fallback_reason}"
    assert report.ok and report.max_ulps == 0, (
        f"{name}: optimized schedule diverged on {report.mismatched_arrays}"
    )


def test_compat_check_skips_gracefully_without_compiler(tmp_path):
    w = get_workload("fig1-skew")
    prog = w.program()
    report = backend_compat_check(
        original_schedule(prog),
        _small_params(w, prog),
        ExecutionOptions(
            backend="c", cc="no-such-compiler-xyz", cache_dir=str(tmp_path)
        ),
    )
    assert not report.checked
    assert report.backend == "python"
    assert "no C compiler" in report.fallback_reason
    assert bool(report)  # a skip is not a failure
