"""Unit tests for branch-and-bound ILP on top of the exact simplex."""

from fractions import Fraction

import pytest

from repro.ilp import ILPModel, ILPStatus, solve_ilp
from repro.ilp.branch_bound import BranchAndBoundError


class TestILP:
    def test_integral_relaxation_needs_no_branching(self):
        m = ILPModel()
        m.add_variable("x")
        m.add_constraint({"x": 1}, -3)
        res = solve_ilp(m, {"x": 1})
        assert res.is_optimal and res.objective == 3
        assert res.stats.lp_solves == 1

    def test_rounding_up_fractional(self):
        # min x  s.t.  2x >= 1, x integer  ->  x = 1 (LP gives 1/2)
        m = ILPModel()
        m.add_variable("x")
        m.add_constraint({"x": 2}, -1)
        res = solve_ilp(m, {"x": 1})
        assert res.objective == 1
        assert res.assignment["x"] == 1

    def test_knapsack_style(self):
        # max 5a + 4b  s.t. 6a + 5b <= 14, a,b in {0..2}
        m = ILPModel()
        m.add_variable("a", lower=0, upper=2)
        m.add_variable("b", lower=0, upper=2)
        m.add_constraint({"a": -6, "b": -5}, 14)
        res = solve_ilp(m, {"a": -5, "b": -4})
        assert res.is_optimal
        assert -res.objective == 10  # a=2, b=0 (LP optimum is fractional)
        assert 6 * res.assignment["a"] + 5 * res.assignment["b"] <= 14

    def test_infeasible_integer_but_feasible_lp(self):
        # 2 <= 4x <= 3 has rational but no integer solution
        m = ILPModel()
        m.add_variable("x")
        m.add_constraint({"x": 4}, -2)
        m.add_constraint({"x": -4}, 3)
        res = solve_ilp(m, {"x": 1})
        assert res.status == ILPStatus.INFEASIBLE

    def test_negative_bounds(self):
        m = ILPModel()
        m.add_variable("c", lower=-4, upper=4)
        m.add_constraint({"c": 2}, -3)  # 2c >= 3 -> c >= 2 for integers
        res = solve_ilp(m, {"c": 1})
        assert res.assignment["c"] == 2

    def test_unbounded(self):
        m = ILPModel()
        m.add_variable("x", lower=None)
        res = solve_ilp(m, {"x": 1})
        assert res.status == ILPStatus.UNBOUNDED

    def test_mixed_integer(self):
        # x integer, y continuous: min x + y s.t. 2x + 2y >= 3, y <= 1/2 via 2y<=1
        m = ILPModel()
        m.add_variable("x")
        m.add_variable("y", integer=False)
        m.add_constraint({"x": 2, "y": 2}, -3)
        m.add_constraint({"y": -2}, 1)
        res = solve_ilp(m, {"x": 1, "y": 1})
        assert res.is_optimal
        assert res.assignment["x"].denominator == 1
        assert res.objective == Fraction(3, 2)

    def test_node_limit_raises(self):
        # An intentionally branch-heavy model with a tiny node limit.
        m = ILPModel()
        for i in range(6):
            m.add_variable(f"x{i}", lower=0, upper=1)
        m.add_constraint({f"x{i}": 2 for i in range(6)}, -7)
        with pytest.raises(BranchAndBoundError):
            solve_ilp(m, {f"x{i}": 1 for i in range(6)}, node_limit=1)

    def test_paper_style_delta_model(self):
        # The shape used by zero-solution avoidance: c in [-4,4]^2, delta binary,
        # 5^0 c1 + 5^1 c2 >= 1 - 25 delta ; -(...) >= 1 - 25 (1 - delta).
        m = ILPModel()
        m.add_variable("c1", lower=-4, upper=4)
        m.add_variable("c2", lower=-4, upper=4)
        m.add_variable("delta", lower=0, upper=1)
        m.add_constraint({"c1": 1, "c2": 5, "delta": 25}, -1)
        m.add_constraint({"c1": -1, "c2": -5, "delta": -25}, 24)
        res = solve_ilp(m, {"c1": 1, "c2": 1})
        assert res.is_optimal
        assert (res.assignment["c1"], res.assignment["c2"]) != (0, 0)
