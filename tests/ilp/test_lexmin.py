"""Unit and property tests for the lexmin driver and backend agreement."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import (
    ILPModel,
    ILPStatus,
    lexmin,
    pick_backend,
    solve_ilp,
    solve_ilp_highs,
)


def _chain_model():
    # minimize (u, w) lexicographically: u >= w - 2, u + w >= 3, all >= 0
    m = ILPModel()
    m.add_variable("u")
    m.add_variable("w")
    m.add_constraint({"u": 1, "w": -1}, 2)
    m.add_constraint({"u": 1, "w": 1}, -3)
    m.set_objective_order(["u", "w"])
    return m


class TestLexmin:
    def test_orders_matter(self):
        m = _chain_model()
        res = lexmin(m, backend="exact")
        assert res.is_optimal
        # u minimized first: u >= w - 2 and u + w >= 3 -> min u is ceil(1/2)=1? u=w-2,u+w=3 -> u=1/2 -> integer: u=1,w=2
        assert res.assignment["u"] == 1
        assert res.assignment["w"] == 2
        assert res.values == [1, 2]

    def test_reverse_order_changes_solution(self):
        m = _chain_model()
        m.set_objective_order(["w", "u"])
        res = lexmin(m, backend="exact")
        assert res.assignment["w"] == 0
        assert res.assignment["u"] == 3

    def test_no_objective_raises(self):
        m = ILPModel()
        m.add_variable("x")
        with pytest.raises(ValueError):
            lexmin(m)

    def test_infeasible(self):
        m = ILPModel()
        m.add_variable("x", lower=0, upper=1)
        m.add_constraint({"x": 1}, -2)
        m.set_objective_order(["x"])
        res = lexmin(m, backend="exact")
        assert res.status == ILPStatus.INFEASIBLE

    def test_unbounded(self):
        m = ILPModel()
        m.add_variable("x", lower=None)
        m.set_objective_order(["x"])
        res = lexmin(m, backend="exact")
        assert res.status == ILPStatus.UNBOUNDED

    def test_lower_bound_shortcut_skips_solves(self):
        m = ILPModel()
        for i in range(5):
            m.add_variable(f"x{i}", lower=0, upper=4)
        m.add_constraint({"x0": 1}, -1)  # only x0 is pushed off its bound
        m.set_objective_order([f"x{i}" for i in range(5)])
        res = lexmin(m, backend="exact")
        assert res.is_optimal
        assert res.solves == 1  # x1..x4 resolved by the lower-bound shortcut
        assert [int(v) for v in res.values] == [1, 0, 0, 0, 0]

    def test_backend_selection_auto(self):
        m = _chain_model()
        _, name = pick_backend(m, "auto", auto_threshold=100)
        assert name == "exact"
        _, name = pick_backend(m, "auto", auto_threshold=1)
        assert name == "highs"

    def test_unknown_backend_rejected(self):
        m = _chain_model()
        with pytest.raises(ValueError):
            pick_backend(m, "gurobi")

    def test_highs_backend_agrees(self):
        m = _chain_model()
        exact = lexmin(m, backend="exact")
        fast = lexmin(m, backend="highs")
        assert exact.values == fast.values

    def test_result_satisfies_model(self):
        m = _chain_model()
        res = lexmin(m, backend="exact")
        assert m.check(res.assignment)


@st.composite
def random_ilp(draw):
    """Small random bounded ILPs (always feasible: box contains solutions)."""
    nvars = draw(st.integers(1, 4))
    m = ILPModel()
    names = []
    for i in range(nvars):
        lo = draw(st.integers(-3, 0))
        hi = draw(st.integers(1, 4))
        name = f"v{i}"
        m.add_variable(name, lower=lo, upper=hi)
        names.append(name)
    # One shared witness point anchors every constraint, so the model is
    # feasible by construction.
    witness = {
        n: draw(st.integers(m.variables[n].lower, m.variables[n].upper))
        for n in names
    }
    ncons = draw(st.integers(0, 3))
    for _ in range(ncons):
        coeffs = {
            n: draw(st.integers(-3, 3)) for n in names if draw(st.booleans())
        }
        if not coeffs:
            continue
        val = sum(c * witness[n] for n, c in coeffs.items())
        m.add_constraint(coeffs, -val)  # expr >= expr(witness)
    m.set_objective_order(names)
    return m


class TestBackendAgreement:
    @given(random_ilp())
    @settings(max_examples=40, deadline=None)
    def test_exact_vs_highs_single_objective(self, m):
        obj = {m.var_names()[0]: 1}
        exact = solve_ilp(m, obj)
        fast = solve_ilp_highs(m, obj)
        assert exact.status == fast.status
        if exact.is_optimal:
            assert exact.objective == fast.objective

    @given(random_ilp())
    @settings(max_examples=30, deadline=None)
    def test_exact_vs_highs_lexmin(self, m):
        exact = lexmin(m, backend="exact")
        fast = lexmin(m, backend="highs")
        assert exact.status == fast.status
        if exact.is_optimal:
            assert exact.values == fast.values

    @given(random_ilp())
    @settings(max_examples=30, deadline=None)
    def test_lexmin_solution_feasible(self, m):
        res = lexmin(m, backend="exact")
        assert res.is_optimal  # constructed to be feasible
        assert m.check(res.assignment)

    @given(random_ilp())
    @settings(max_examples=30, deadline=None)
    def test_lexmin_first_component_is_global_min(self, m):
        res = lexmin(m, backend="exact")
        first = m.objective_order[0]
        single = solve_ilp(m, {first: 1})
        assert res.assignment[first] == single.objective
