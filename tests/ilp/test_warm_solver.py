"""Warm-start equivalence, engine agreement, and auto-threshold tests.

Three concerns around the exact solver's fast path:

* ``pick_backend("auto")`` must gate on *both* the variable and the
  constraint count (the simplex cost grows with the row count too);
* the integer-scaled tableau must agree with the seed's dense ``Fraction``
  reference engine on random feasible LPs (property test);
* the warm-started lexmin sequence must produce the same lexicographic
  optimum as the seed's cold sequence on every Polybench and periodic
  scheduler model.  Cold exact re-runs phase 1 per objective, which is
  minutes on the larger models — exactly why ``auto`` routes those to
  HiGHS — so the warm/cold comparison runs where cold exact is tractable
  and the rest assert the auto routing that shields them.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import PlutoScheduler
from repro.core.transform import Schedule
from repro.deps import DependenceGraph, compute_dependences
from repro.ilp import (
    AUTO_CONSTRAINT_THRESHOLD,
    AUTO_THRESHOLD,
    ILPModel,
    IncrementalLP,
    lexmin,
    pick_backend,
    solve_lp,
)
from repro.workloads import all_workloads

#: cold exact lexmin stays under a few seconds below this many constraints
_COLD_EXACT_LIMIT = 75


def _model_with(nvars: int, ncons: int) -> ILPModel:
    m = ILPModel()
    for i in range(nvars):
        m.add_variable(f"x{i}", lower=0, upper=3)
    for _ in range(ncons):
        m.add_constraint({"x0": 1}, 0)
    m.set_objective_order(["x0"])
    return m


class TestAutoThresholds:
    def test_variable_threshold(self):
        m = _model_with(5, 2)
        kw = dict(auto_threshold=5, auto_constraint_threshold=100)
        assert pick_backend(m, "auto", **kw)[1] == "exact"
        assert pick_backend(_model_with(6, 2), "auto", **kw)[1] == "highs"

    def test_constraint_threshold(self):
        kw = dict(auto_threshold=100, auto_constraint_threshold=4)
        assert pick_backend(_model_with(3, 4), "auto", **kw)[1] == "exact"
        assert pick_backend(_model_with(3, 5), "auto", **kw)[1] == "highs"

    def test_default_thresholds(self):
        small = _model_with(3, 2)
        assert pick_backend(small, "auto")[1] == "exact"
        wide = _model_with(AUTO_THRESHOLD + 1, 2)
        assert pick_backend(wide, "auto")[1] == "highs"
        tall = _model_with(3, AUTO_CONSTRAINT_THRESHOLD + 1)
        assert pick_backend(tall, "auto")[1] == "highs"

    def test_explicit_backend_ignores_size(self):
        wide = _model_with(AUTO_THRESHOLD + 1, 2)
        assert pick_backend(wide, "exact")[1] == "exact"
        assert pick_backend(_model_with(2, 1), "highs")[1] == "highs"


# ---------------------------------------------------------------------------
# Integer-scaled engine vs the seed's Fraction reference engine
# ---------------------------------------------------------------------------


@st.composite
def random_lp(draw):
    """Random bounded LPs, feasible by construction (anchored on a witness)."""
    nvars = draw(st.integers(1, 4))
    m = ILPModel()
    names = []
    for i in range(nvars):
        lo = draw(st.integers(-3, 0))
        hi = draw(st.integers(1, 4))
        name = f"v{i}"
        m.add_variable(name, lower=lo, upper=hi)
        names.append(name)
    witness = {
        n: draw(st.integers(m.variables[n].lower, m.variables[n].upper))
        for n in names
    }
    for _ in range(draw(st.integers(0, 4))):
        coeffs = {
            n: draw(st.integers(-3, 3)) for n in names if draw(st.booleans())
        }
        coeffs = {n: c for n, c in coeffs.items() if c}
        if not coeffs:
            continue
        val = sum(c * witness[n] for n, c in coeffs.items())
        equality = draw(st.booleans())
        m.add_constraint(coeffs, -val, equality=equality)  # holds at witness
    objective = {n: draw(st.integers(-2, 2)) for n in names}
    return m, objective


class TestEngineAgreement:
    @given(random_lp())
    @settings(max_examples=60, deadline=None)
    def test_int_engine_matches_fraction_engine(self, case):
        model, objective = case
        fast = solve_lp(model, objective, engine="int")
        ref = solve_lp(model, objective, engine="fraction")
        assert fast.status == ref.status
        if ref.is_optimal:
            # the optimal *value* is unique even when the vertex is not
            assert fast.objective == ref.objective

    @given(random_lp())
    @settings(max_examples=40, deadline=None)
    def test_incremental_minimize_matches_fraction(self, case):
        model, objective = case
        inc = IncrementalLP(model)
        assert inc.is_feasible  # witness-anchored
        res = inc.minimize(objective)
        ref = solve_lp(model, objective, engine="fraction")
        assert res.status == ref.status
        if ref.is_optimal:
            # the relaxation may sit on a fractional vertex, so only the
            # optimal value (unique) is compared, not the assignment
            assert res.objective == ref.objective

    @given(random_lp())
    @settings(max_examples=30, deadline=None)
    def test_snapshot_restore_roundtrip(self, case):
        model, objective = case
        inc = IncrementalLP(model)
        snap = inc.snapshot()
        before = inc.minimize(objective)
        first = model.var_names()[0]
        inc.fix(first, before.assignment[first])
        inc.restore(snap)
        after = inc.minimize(objective)
        assert after.status == before.status
        if before.is_optimal:
            assert after.objective == before.objective


# ---------------------------------------------------------------------------
# Warm vs cold lexmin on every Polybench / periodic scheduler model
# ---------------------------------------------------------------------------


def _level0_model(workload) -> ILPModel:
    program = workload.program()
    ddg = DependenceGraph(program, compute_dependences(program))
    scheduler = PlutoScheduler(
        program, ddg, workload.pipeline_options("plutoplus").scheduler_options()
    )
    return scheduler.build_model(Schedule(program), list(ddg.deps))


_WORKLOADS = [
    w for w in all_workloads() if w.category in ("polybench", "periodic")
]


@pytest.mark.parametrize("workload", _WORKLOADS, ids=lambda w: w.name)
def test_warm_vs_cold_lexmin(workload):
    model = _level0_model(workload)
    small = (
        model.num_variables <= AUTO_THRESHOLD
        and model.num_constraints <= _COLD_EXACT_LIMIT
    )
    if not small:
        # Outside the exact envelope ``auto`` must route to HiGHS — the warm
        # path is never taken for this model, which is the property that
        # keeps the pipeline fast here.
        assert pick_backend(model, "auto")[1] == "highs"
        return
    warm = lexmin(model, backend="exact")
    cold = lexmin(model, backend="exact", warm_start=False)
    assert warm.is_optimal and cold.is_optimal
    assert warm.values == cold.values
    for name in model.objective_order:
        assert warm.assignment[name] == cold.assignment[name]
    assert model.check(warm.assignment)
    assert model.check(cold.assignment)
