"""Tests for the ILP model container."""

from fractions import Fraction

import pytest

from repro.ilp import ILPModel, LinearConstraint, SolveStats, Variable


class TestVariable:
    def test_defaults(self):
        v = Variable("x")
        assert v.lower == 0 and v.upper is None and v.integer

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Variable("x", lower=2, upper=1)

    def test_frozen(self):
        v = Variable("x")
        with pytest.raises(AttributeError):
            v.lower = 5


class TestLinearConstraint:
    def test_evaluate(self):
        c = LinearConstraint({"x": 2, "y": -1}, 3)
        assert c.evaluate({"x": 1, "y": 4}) == 1

    def test_satisfaction_inequality(self):
        c = LinearConstraint({"x": 1}, -2)
        assert c.is_satisfied({"x": 2})
        assert not c.is_satisfied({"x": 1})

    def test_satisfaction_equality(self):
        c = LinearConstraint({"x": 1}, -2, equality=True)
        assert c.is_satisfied({"x": 2})
        assert not c.is_satisfied({"x": 3})

    def test_fraction_arithmetic(self):
        c = LinearConstraint({"x": Fraction(1, 2)}, Fraction(-1, 4))
        assert c.evaluate({"x": Fraction(1, 2)}) == 0


class TestILPModel:
    def test_duplicate_variable_rejected(self):
        m = ILPModel()
        m.add_variable("x")
        with pytest.raises(ValueError):
            m.add_variable("x")

    def test_unknown_constraint_var_rejected(self):
        m = ILPModel()
        with pytest.raises(KeyError):
            m.add_constraint({"ghost": 1}, 0)

    def test_unknown_objective_var_rejected(self):
        m = ILPModel()
        m.add_variable("x")
        with pytest.raises(KeyError):
            m.set_objective_order(["x", "ghost"])

    def test_check_bounds(self):
        m = ILPModel()
        m.add_variable("x", lower=0, upper=3)
        assert m.check({"x": 2})
        assert not m.check({"x": 4})
        assert not m.check({"x": -1})

    def test_check_integrality(self):
        m = ILPModel()
        m.add_variable("x")
        assert not m.check({"x": Fraction(1, 2)})

    def test_check_continuous_allows_fractions(self):
        m = ILPModel()
        m.add_variable("x", integer=False)
        assert m.check({"x": Fraction(1, 2)})

    def test_counts_and_repr(self):
        m = ILPModel()
        m.add_variable("x")
        m.add_constraint({"x": 1}, 0)
        m.set_objective_order(["x"])
        assert m.num_variables == 1 and m.num_constraints == 1
        assert "1 vars" in repr(m)


class TestSolveStats:
    def test_merge(self):
        a = SolveStats(simplex_pivots=3, bb_nodes=1, lp_solves=2)
        b = SolveStats(simplex_pivots=4, bb_nodes=2, lp_solves=1)
        a.merge(b)
        assert (a.simplex_pivots, a.bb_nodes, a.lp_solves) == (7, 3, 3)
