"""Unit tests for the exact rational simplex."""

from fractions import Fraction

import pytest

from repro.ilp import ILPModel, LPStatus, solve_lp


def _model_2d(lower=0):
    m = ILPModel()
    m.add_variable("x", lower=lower)
    m.add_variable("y", lower=lower)
    return m


class TestBasicLP:
    def test_trivial_minimum_at_lower_bounds(self):
        m = _model_2d()
        res = solve_lp(m, {"x": 1, "y": 1})
        assert res.is_optimal
        assert res.objective == 0
        assert res.assignment["x"] == 0 and res.assignment["y"] == 0

    def test_single_constraint(self):
        # minimize x + y  s.t.  x + y >= 3
        m = _model_2d()
        m.add_constraint({"x": 1, "y": 1}, -3)
        res = solve_lp(m, {"x": 1, "y": 1})
        assert res.is_optimal and res.objective == 3

    def test_equality_constraint(self):
        m = _model_2d()
        m.add_constraint({"x": 1, "y": 2}, -4, equality=True)
        res = solve_lp(m, {"x": 1})
        assert res.is_optimal and res.objective == 0
        assert res.assignment["y"] == 2

    def test_infeasible(self):
        m = _model_2d()
        m.add_constraint({"x": 1}, -5)          # x >= 5
        m.add_constraint({"x": -1}, 3)          # x <= 3
        res = solve_lp(m, {"x": 1})
        assert res.status == LPStatus.INFEASIBLE

    def test_unbounded(self):
        m = ILPModel()
        m.add_variable("x", lower=None)
        res = solve_lp(m, {"x": 1})
        assert res.status == LPStatus.UNBOUNDED

    def test_fractional_optimum(self):
        # minimize y  s.t.  2y >= 1
        m = ILPModel()
        m.add_variable("y")
        m.add_constraint({"y": 2}, -1)
        res = solve_lp(m, {"y": 1})
        assert res.objective == Fraction(1, 2)

    def test_maximize_via_negation(self):
        # maximize x subject to x <= 7  ==  minimize -x
        m = ILPModel()
        m.add_variable("x", lower=0, upper=7)
        res = solve_lp(m, {"x": -1})
        assert res.is_optimal and res.assignment["x"] == 7

    def test_unknown_objective_var_raises(self):
        m = _model_2d()
        with pytest.raises(KeyError):
            solve_lp(m, {"z": 1})


class TestVariableKinds:
    def test_negative_lower_bound(self):
        m = ILPModel()
        m.add_variable("c", lower=-4, upper=4)
        res = solve_lp(m, {"c": 1})
        assert res.assignment["c"] == -4

    def test_upper_only_variable(self):
        m = ILPModel()
        m.add_variable("x", lower=None, upper=10)
        res = solve_lp(m, {"x": -1})
        assert res.assignment["x"] == 10

    def test_free_variable_with_constraints(self):
        m = ILPModel()
        m.add_variable("x", lower=None)
        m.add_constraint({"x": 1}, 5)  # x >= -5
        res = solve_lp(m, {"x": 1})
        assert res.assignment["x"] == -5

    def test_bounds_respected_in_constrained_problem(self):
        m = ILPModel()
        m.add_variable("x", lower=1, upper=3)
        m.add_variable("y", lower=0)
        m.add_constraint({"x": 1, "y": 1}, -6)  # x + y >= 6
        res = solve_lp(m, {"y": 1})
        assert res.assignment["x"] == 3 and res.assignment["y"] == 3

    def test_bad_bounds_rejected(self):
        m = ILPModel()
        with pytest.raises(ValueError):
            m.add_variable("x", lower=3, upper=1)


class TestDegenerateAndExactness:
    def test_degenerate_does_not_cycle(self):
        # A classic degenerate configuration; Bland's rule must terminate.
        m = ILPModel()
        for name in ("a", "b", "c"):
            m.add_variable(name)
        m.add_constraint({"a": 1, "b": -1}, 0)
        m.add_constraint({"a": -1, "b": 1}, 0)
        m.add_constraint({"a": 1, "b": 1, "c": 1}, -1)
        res = solve_lp(m, {"a": 1, "b": 1, "c": 2})
        assert res.is_optimal
        assert res.objective == 1

    def test_exact_fractions_no_drift(self):
        # minimize x  s.t.  3x >= 1, 7x >= 2  ->  x = max(1/3, 2/7) = 1/3
        m = ILPModel()
        m.add_variable("x")
        m.add_constraint({"x": 3}, -1)
        m.add_constraint({"x": 7}, -2)
        res = solve_lp(m, {"x": 1})
        assert res.objective == Fraction(1, 3)

    def test_redundant_equalities_ok(self):
        m = _model_2d()
        m.add_constraint({"x": 1, "y": 1}, -2, equality=True)
        m.add_constraint({"x": 2, "y": 2}, -4, equality=True)  # same plane
        res = solve_lp(m, {"x": 1})
        assert res.is_optimal and res.objective == 0

    def test_assignment_satisfies_model(self):
        m = ILPModel()
        m.add_variable("x", lower=-10, upper=10, integer=False)
        m.add_variable("y", lower=-10, upper=10, integer=False)
        m.add_constraint({"x": 2, "y": 3}, -6)
        m.add_constraint({"x": -1, "y": 1}, 4)
        res = solve_lp(m, {"x": 1, "y": 5})
        assert res.is_optimal
        assert m.check({**res.assignment})
