"""Tests for the shared worker supervision layer (:mod:`repro.workers`).

These exercise the supervisor directly with tiny module-level job bodies;
the suite-engine and daemon tests cover the same machinery end to end.
Fork-gated like those: crash/hang jobs rely on forked children.
"""

import multiprocessing
import os
import time

import pytest

from repro.workers import WorkerEvent, WorkerSupervisor, worker_main

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash/hang injection requires forked workers",
)


def _double(payload):
    return payload * 2


def _boom(payload):
    raise RuntimeError(f"boom on {payload}")


def _die(payload):
    os._exit(13)


def _sleep(payload):
    time.sleep(payload)
    return "woke"


def _drain(sup, deadline=30.0):
    """Poll until every spawned worker settles; return all events."""
    events = []
    t0 = time.perf_counter()
    while sup.live_count and time.perf_counter() - t0 < deadline:
        got, _ = sup.poll(timeout=1.0)
        events.extend(got)
    return events


class TestSupervisor:
    def test_ok_event_carries_result(self):
        sup = WorkerSupervisor(_double)
        sup.spawn("job-1", 21)
        (ev,) = _drain(sup)
        assert ev == WorkerEvent("job-1", "ok", 42, ev.elapsed, ev.pid)
        assert ev.elapsed > 0
        assert ev.pid is not None

    def test_error_event_carries_traceback(self):
        sup = WorkerSupervisor(_boom)
        sup.spawn("job-err", "input-7")
        (ev,) = _drain(sup)
        assert ev.kind == "error"
        assert "RuntimeError" in ev.payload
        assert "boom on input-7" in ev.payload

    def test_silent_death_classified_as_crash(self):
        sup = WorkerSupervisor(_die)
        sup.spawn("job-crash", None)
        (ev,) = _drain(sup)
        assert ev.kind == "crash"
        assert "without reporting" in ev.payload
        assert "13" in ev.payload

    def test_deadline_kill_classified_as_timeout(self):
        sup = WorkerSupervisor(_sleep)
        sup.spawn("job-hang", 60, timeout=0.5)
        t0 = time.perf_counter()
        (ev,) = _drain(sup)
        assert time.perf_counter() - t0 < 30  # killed, not slept out
        assert ev.kind == "timeout"
        assert "deadline" in ev.payload
        assert sup.live_count == 0

    def test_many_workers_all_settle(self):
        sup = WorkerSupervisor(_double)
        for i in range(6):
            sup.spawn(f"job-{i}", i)
        events = _drain(sup)
        assert sorted((ev.key, ev.payload) for ev in events) == [
            (f"job-{i}", 2 * i) for i in range(6)
        ]

    def test_poll_reports_ready_extras(self):
        sup = WorkerSupervisor(_double)
        r, w = os.pipe()
        try:
            os.write(w, b"x")
            events, ready = sup.poll(extra=[r], timeout=5.0)
            assert events == []
            assert ready == [r]
        finally:
            os.close(r)
            os.close(w)

    def test_shutdown_kills_live_workers(self):
        sup = WorkerSupervisor(_sleep)
        handle = sup.spawn("job-hang", 60)
        assert sup.live_count == 1
        sup.shutdown()
        assert sup.live_count == 0
        handle.proc.join(5.0)
        assert not handle.proc.is_alive()


class TestWorkerMain:
    def test_reports_exactly_one_ok_message(self):
        parent, child = multiprocessing.Pipe(duplex=False)
        worker_main(_double, 5, child)
        assert parent.recv() == ("ok", 10)
        with pytest.raises(EOFError):
            parent.recv()  # child end closed after the single report

    def test_reports_error_with_traceback(self):
        parent, child = multiprocessing.Pipe(duplex=False)
        worker_main(_boom, "x", child)
        status, payload = parent.recv()
        assert status == "error"
        assert "RuntimeError: boom on x" in payload
