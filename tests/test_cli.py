"""Tests for the command-line driver."""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main

FIG1 = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i+1][j+1] = 2.0 * A[i][j];
"""


@pytest.fixture
def kernel_file(tmp_path):
    f = tmp_path / "kernel.c"
    f.write_text(FIG1)
    return str(f)


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["opt", "x.c", "--params", "N", "--emit", "py"])
        assert args.command == "opt" and args.emit == "py"

    def test_opt_emits_c(self, kernel_file, capsys):
        assert main(["opt", kernel_file, "--params", "N"]) == 0
        out = capsys.readouterr().out
        assert "for (int z0" in out

    def test_opt_emits_schedule(self, kernel_file, capsys):
        assert main(["opt", kernel_file, "--params", "N", "--emit", "schedule"]) == 0
        out = capsys.readouterr().out
        assert "T_S0" in out

    def test_opt_emits_python_to_file(self, kernel_file, tmp_path, capsys):
        out_file = tmp_path / "out.py"
        rc = main(
            ["opt", kernel_file, "--params", "N", "--emit", "py", "-o", str(out_file)]
        )
        assert rc == 0
        assert "def kernel" in out_file.read_text()

    def test_opt_pluto_algorithm(self, kernel_file, capsys):
        assert main(
            ["opt", kernel_file, "--params", "N", "--algorithm", "pluto",
             "--emit", "schedule"]
        ) == 0

    def test_opt_workload(self, capsys):
        assert main(
            ["opt", "--workload", "fig2-symmetric-consumer", "--emit", "schedule"]
        ) == 0
        assert "T_S0" in capsys.readouterr().out

    def test_deps_command(self, kernel_file, capsys):
        assert main(["deps", kernel_file, "--params", "N"]) == 0
        out = capsys.readouterr().out
        assert "RAW" in out and "distance (1, 1)" in out

    def test_verify_command(self, kernel_file, capsys):
        assert main(["verify", kernel_file, "--params", "N"]) == 0
        assert "legal" in capsys.readouterr().out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "heat-1dp" in out

    def test_missing_input_rejected(self):
        with pytest.raises(SystemExit):
            main(["opt", "--params", "N"])

    def test_tile_zero_disables_tiling(self, kernel_file, capsys):
        assert main(
            ["opt", kernel_file, "--params", "N", "--tile", "0", "--emit", "py"]
        ) == 0
        out = capsys.readouterr().out
        assert "16*z0" not in out and "32*z0" not in out


class TestCLIWorkloadResolution:
    def test_unknown_positional_suggests_list(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["opt", "nope-kernel", "--emit", "schedule"])
        msg = str(exc.value)
        assert "nope-kernel" in msg
        assert "repro list" in msg
        assert "Traceback" not in capsys.readouterr().err

    def test_unknown_workload_flag_suggests_list(self):
        with pytest.raises(SystemExit) as exc:
            main(["opt", "--workload", "nope-kernel", "--emit", "schedule"])
        msg = str(exc.value)
        assert "nope-kernel" in msg and "repro list" in msg

    def test_positional_workload_name_resolves(self, capsys):
        assert main(["opt", "fig1-skew", "--emit", "schedule"]) == 0
        assert "T_S0" in capsys.readouterr().out

    def test_deps_unknown_workload(self):
        with pytest.raises(SystemExit) as exc:
            main(["deps", "nope-kernel"])
        assert "repro list" in str(exc.value)


class TestCLIVerifyExitCodes:
    def test_verify_legal_exits_zero(self, kernel_file, capsys):
        assert main(["verify", kernel_file, "--params", "N"]) == 0
        assert "legal" in capsys.readouterr().out

    def test_verify_illegal_schedule_exits_nonzero(
        self, kernel_file, tmp_path, capsys
    ):
        # export the real schedule, then corrupt it into an illegal one by
        # reversing every loop hyperplane (ordering all dependences backwards)
        import json

        sched_file = tmp_path / "sched.json"
        assert main(
            ["opt", kernel_file, "--params", "N", "--emit", "schedule-json",
             "-o", str(sched_file)]
        ) == 0
        data = json.loads(sched_file.read_text())
        for row in data["rows"]:
            if row["kind"] == "loop":
                row["exprs"] = {
                    name: [-c for c in coeffs]
                    for name, coeffs in row["exprs"].items()
                }
        bad_file = tmp_path / "bad.json"
        bad_file.write_text(json.dumps(data))

        rc = main(
            ["verify", kernel_file, "--params", "N", "--schedule", str(bad_file)]
        )
        assert rc == 1
        assert "ILLEGAL" in capsys.readouterr().out

    def test_verify_exported_schedule_exits_zero(
        self, kernel_file, tmp_path, capsys
    ):
        sched_file = tmp_path / "sched.json"
        assert main(
            ["opt", kernel_file, "--params", "N", "--emit", "schedule-json",
             "-o", str(sched_file)]
        ) == 0
        assert main(
            ["verify", kernel_file, "--params", "N",
             "--schedule", str(sched_file)]
        ) == 0

    def test_verify_unreadable_schedule_exits_two(self, kernel_file, tmp_path,
                                                   capsys):
        bad = tmp_path / "nope.json"
        assert main(
            ["verify", kernel_file, "--params", "N", "--schedule", str(bad)]
        ) == 2
        assert "cannot load schedule" in capsys.readouterr().err


class TestCLISuite:
    def test_suite_runs_and_reports(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(
            ["suite", "--category", "motivation", "--filter", "fig1-*",
             "--jobs", "1", "--timeout", "120", "--quiet"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "per-stage time" in captured.out
        assert "fig1-skew--plutoplus" in captured.out
        assert "0 failed" in captured.out
        manifests = list((tmp_path / "runs").glob("suite-*/manifest.json"))
        assert len(manifests) == 1

    def test_suite_empty_matrix_rejected(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit) as exc:
            main(["suite", "--filter", "no-such-workload-*", "--quiet"])
        assert "matrix is empty" in str(exc.value)

    def test_suite_resume_skips(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["suite", "--category", "motivation", "--filter", "fig1-*",
             "--jobs", "1", "--timeout", "120", "--quiet"]
        ) == 0
        capsys.readouterr()
        (suite_dir,) = (tmp_path / "runs").glob("suite-*")
        rc = main(["suite", "--resume", str(suite_dir), "--jobs", "1"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "skipping 1 completed run(s)" in captured.err


class TestCLIDepsCache:
    def test_no_deps_cache_flag(self, kernel_file, capsys):
        assert main(
            ["opt", kernel_file, "--params", "N", "--no-deps-cache",
             "--emit", "schedule"]
        ) == 0
        assert "T_S0" in capsys.readouterr().out

    def test_deps_command_no_cache_matches(self, kernel_file, capsys):
        assert main(["deps", kernel_file, "--params", "N"]) == 0
        cached = capsys.readouterr().out
        assert main(
            ["deps", kernel_file, "--params", "N", "--no-deps-cache"]
        ) == 0
        assert capsys.readouterr().out == cached

    def test_scheduler_quick_flag(self, capsys):
        assert main(
            ["opt", "--workload", "gemm", "--scheduler", "quick",
             "--emit", "schedule"]
        ) == 0
        err = capsys.readouterr().err
        assert "# scheduler: quick -> quick" in err

    def test_scheduler_auto_reports_fallback(self, capsys):
        assert main(
            ["opt", "--workload", "seidel-2d", "--scheduler", "auto",
             "--emit", "schedule"]
        ) == 0
        err = capsys.readouterr().err
        assert "# scheduler: auto -> fallback (untilable-band)" in err

    def test_scheduler_default_is_exact(self, capsys):
        assert main(
            ["opt", "--workload", "gemm", "--emit", "schedule"]
        ) == 0
        assert "# scheduler: exact -> exact" in capsys.readouterr().err

    def test_scheduler_rejects_unknown_mode(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["opt", "--workload", "gemm", "--scheduler", "fast"])
        assert exc.value.code == 2  # argparse choices

    def test_verify_accepts_scheduler_flag(self, capsys):
        assert main(
            ["verify", "--workload", "gemm", "--scheduler", "quick"]
        ) == 0
        assert "legal" in capsys.readouterr().out.lower()

    def test_stats_prints_dependence_block(self, kernel_file, capsys):
        assert main(
            ["opt", kernel_file, "--params", "N", "--stats",
             "--emit", "schedule"]
        ) == 0
        err = capsys.readouterr().err
        assert "# dependence stats:" in err
        assert "pairs_tested" in err
        assert "fast_rejects" in err


class TestCLIVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_dunder_version_is_a_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(p.isdigit() for p in parts[:2])


class TestCLIServeParsing:
    def test_serve_parser(self):
        args = build_parser().parse_args(
            ["serve", "--socket", "/tmp/x.sock", "--jobs", "4",
             "--cache-dir", "cache", "--report"]
        )
        assert args.command == "serve"
        assert args.jobs == 4 and args.report and args.cache_dir == "cache"

    def test_serve_needs_endpoint(self):
        with pytest.raises(SystemExit, match="serve needs"):
            main(["serve"])

    def test_client_needs_endpoint(self):
        with pytest.raises(SystemExit, match="client needs"):
            main(["client", "ping"])

    def test_client_opt_parser(self):
        args = build_parser().parse_args(
            ["client", "opt", "--workload", "heat-2dp", "--socket", "/tmp/x",
             "--tile", "0", "--emit", "summary"]
        )
        assert args.client_command == "opt"
        assert args.tile == 0 and args.emit == "summary"

    def test_client_opt_needs_source(self, tmp_path):
        with pytest.raises(SystemExit, match="source file or --workload"):
            main(["client", "opt", "--socket", str(tmp_path / "x.sock")])

    def test_serve_loop_and_pool_flags(self):
        args = build_parser().parse_args(["serve", "--socket", "/tmp/x.sock"])
        assert args.loop == "async" and args.pool == "warm"
        assert args.recycle is None
        args = build_parser().parse_args(
            ["serve", "--socket", "/tmp/x.sock", "--loop", "threads",
             "--pool", "spawn", "--recycle", "8"]
        )
        assert args.loop == "threads" and args.pool == "spawn"
        assert args.recycle == 8

    def test_route_parser(self):
        args = build_parser().parse_args(
            ["route", "--socket", "/tmp/r.sock",
             "--shard", "/tmp/s0.sock", "--shard", "/tmp/s1.sock"]
        )
        assert args.command == "route"
        assert args.shard == ["/tmp/s0.sock", "/tmp/s1.sock"]

    def test_route_requires_shards(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--socket", "/tmp/r.sock"])

    def test_route_needs_endpoint(self):
        with pytest.raises(SystemExit, match="route needs"):
            main(["route", "--shard", "/tmp/s0.sock"])

    def test_warm_parser(self):
        args = build_parser().parse_args(
            ["warm", "--socket", "/tmp/x.sock", "--category", "motivation",
             "--variants", "plutoplus,quick", "--jobs", "8",
             "--filter", "fig1*"]
        )
        assert args.command == "warm"
        assert args.category == "motivation"
        assert args.variants == "plutoplus,quick"
        assert args.jobs == 8 and args.filter == ["fig1*"]

    def test_warm_needs_endpoint(self):
        with pytest.raises(SystemExit, match="warm needs"):
            main(["warm"])

    def test_serve_refuses_occupied_socket(self, tmp_path):
        # the path exists and is not a socket: serve must not unlink it
        precious = tmp_path / "not-a-socket"
        precious.write_text("data")
        with pytest.raises(SystemExit, match="not a socket"):
            main(["serve", "--socket", str(precious), "--jobs", "1",
                  "--cache-dir", ""])
        assert precious.read_text() == "data"


class TestCLIServeEndToEnd:
    """One real daemon subprocess driven through the client commands."""

    def test_serve_ping_opt_shutdown(self, tmp_path, capsys):
        sock = str(tmp_path / "repro.sock")
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(repro.__file__).resolve().parents[1]),
        )
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", sock,
             "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
             "--report"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.time() + 30
            while not os.path.exists(sock):
                assert daemon.poll() is None, daemon.stderr.read()
                assert time.time() < deadline, "daemon never bound its socket"
                time.sleep(0.05)

            assert main(["client", "ping", "--socket", sock]) == 0
            assert "ok: server" in capsys.readouterr().out

            rc = main(["client", "opt", "--workload", "fig1-skew",
                       "--socket", sock, "--emit", "summary"])
            captured = capsys.readouterr()
            assert rc == 0
            assert "cache miss" in captured.out

            rc = main(["client", "opt", "--workload", "fig1-skew",
                       "--socket", sock, "--emit", "summary"])
            captured = capsys.readouterr()
            assert rc == 0
            assert "cache hit-memory" in captured.out

            assert main(["client", "stats", "--socket", sock]) == 0
            assert '"hits_memory": 1' in capsys.readouterr().out

            assert main(["client", "shutdown", "--socket", sock]) == 0
            assert "draining: True" in capsys.readouterr().out
            _, err = daemon.communicate(timeout=30)
            assert daemon.returncode == 0, err
            assert "# served 2 optimize request(s)" in err
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()
