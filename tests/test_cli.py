"""Tests for the command-line driver."""

import pytest

from repro.cli import build_parser, main

FIG1 = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i+1][j+1] = 2.0 * A[i][j];
"""


@pytest.fixture
def kernel_file(tmp_path):
    f = tmp_path / "kernel.c"
    f.write_text(FIG1)
    return str(f)


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["opt", "x.c", "--params", "N", "--emit", "py"])
        assert args.command == "opt" and args.emit == "py"

    def test_opt_emits_c(self, kernel_file, capsys):
        assert main(["opt", kernel_file, "--params", "N"]) == 0
        out = capsys.readouterr().out
        assert "for (int z0" in out

    def test_opt_emits_schedule(self, kernel_file, capsys):
        assert main(["opt", kernel_file, "--params", "N", "--emit", "schedule"]) == 0
        out = capsys.readouterr().out
        assert "T_S0" in out

    def test_opt_emits_python_to_file(self, kernel_file, tmp_path, capsys):
        out_file = tmp_path / "out.py"
        rc = main(
            ["opt", kernel_file, "--params", "N", "--emit", "py", "-o", str(out_file)]
        )
        assert rc == 0
        assert "def kernel" in out_file.read_text()

    def test_opt_pluto_algorithm(self, kernel_file, capsys):
        assert main(
            ["opt", kernel_file, "--params", "N", "--algorithm", "pluto",
             "--emit", "schedule"]
        ) == 0

    def test_opt_workload(self, capsys):
        assert main(
            ["opt", "--workload", "fig2-symmetric-consumer", "--emit", "schedule"]
        ) == 0
        assert "T_S0" in capsys.readouterr().out

    def test_deps_command(self, kernel_file, capsys):
        assert main(["deps", kernel_file, "--params", "N"]) == 0
        out = capsys.readouterr().out
        assert "RAW" in out and "distance (1, 1)" in out

    def test_verify_command(self, kernel_file, capsys):
        assert main(["verify", kernel_file, "--params", "N"]) == 0
        assert "legal" in capsys.readouterr().out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "heat-1dp" in out

    def test_missing_input_rejected(self):
        with pytest.raises(SystemExit):
            main(["opt", "--params", "N"])

    def test_tile_zero_disables_tiling(self, kernel_file, capsys):
        assert main(
            ["opt", kernel_file, "--params", "N", "--tile", "0", "--emit", "py"]
        ) == 0
        out = capsys.readouterr().out
        assert "16*z0" not in out and "32*z0" not in out


class TestCLIWorkloadResolution:
    def test_unknown_positional_suggests_list(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["opt", "nope-kernel", "--emit", "schedule"])
        msg = str(exc.value)
        assert "nope-kernel" in msg
        assert "repro list" in msg
        assert "Traceback" not in capsys.readouterr().err

    def test_unknown_workload_flag_suggests_list(self):
        with pytest.raises(SystemExit) as exc:
            main(["opt", "--workload", "nope-kernel", "--emit", "schedule"])
        msg = str(exc.value)
        assert "nope-kernel" in msg and "repro list" in msg

    def test_positional_workload_name_resolves(self, capsys):
        assert main(["opt", "fig1-skew", "--emit", "schedule"]) == 0
        assert "T_S0" in capsys.readouterr().out

    def test_deps_unknown_workload(self):
        with pytest.raises(SystemExit) as exc:
            main(["deps", "nope-kernel"])
        assert "repro list" in str(exc.value)


class TestCLIDepsCache:
    def test_no_deps_cache_flag(self, kernel_file, capsys):
        assert main(
            ["opt", kernel_file, "--params", "N", "--no-deps-cache",
             "--emit", "schedule"]
        ) == 0
        assert "T_S0" in capsys.readouterr().out

    def test_deps_command_no_cache_matches(self, kernel_file, capsys):
        assert main(["deps", kernel_file, "--params", "N"]) == 0
        cached = capsys.readouterr().out
        assert main(
            ["deps", kernel_file, "--params", "N", "--no-deps-cache"]
        ) == 0
        assert capsys.readouterr().out == cached

    def test_stats_prints_dependence_block(self, kernel_file, capsys):
        assert main(
            ["opt", kernel_file, "--params", "N", "--stats",
             "--emit", "schedule"]
        ) == 0
        err = capsys.readouterr().err
        assert "# dependence stats:" in err
        assert "pairs_tested" in err
        assert "fast_rejects" in err
