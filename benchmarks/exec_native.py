"""Native C backend vs the Python reference executor.

For each benchmark workload the full pipeline runs once (plutoplus paper
flags), then the optimized schedule executes on both backends at sizes
large enough to time honestly but small enough for CI:

1. **bit-compat** — identical inputs through both backends must agree
   bitwise on every array (the ``-ffp-contract=off`` contract).  Any
   mismatch fails the gate; speed means nothing if the answer changed.
2. **speed** — the Python kernel is timed once (it is the slow side); the
   native kernel is warmed (compile + load excluded) and timed as the
   best of ``REPS`` in-place runs, marshalling included.

Gate: geometric-mean speedup >= ``SPEEDUP_GATE``x (10x; measured values
are orders of magnitude higher — an interpreter-loop vs ``cc -O3``).

Graceful degradation: without a C compiler the bench writes a skip record
and exits 0 — the gate is only meaningful where the backend can exist.

``REPRO_BENCH_SCALE=quick`` (CI) runs a 4-workload subset; ``full`` (the
default) covers 10 including the periodic ISS stencils.

Usage::

    PYTHONPATH=src python benchmarks/exec_native.py [-o BENCH_exec.json]

Exits non-zero on any gate failure (mismatch or sub-gate speedup).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
import time

from repro.exec import ExecStats, ExecutionOptions, find_compiler
from repro.machine import compare_roofline
from repro.pipeline import optimize
from repro.runtime.arrays import random_arrays
from repro.workloads import get_workload

SPEEDUP_GATE = 10.0

#: native timing repetitions (best-of; the Python side runs once)
REPS = 3

#: benchmark sizes: big enough that per-run timing noise is far below the
#: gate margin, small enough that the *Python* pass stays CI-friendly
_QUICK = {
    "fig1-skew": {"N": 128},
    "gemm": {"NI": 48, "NJ": 48, "NK": 48},
    "jacobi-2d-imper": {"TSTEPS": 6, "N": 48},
    "heat-1dp": {"N": 512, "T": 64},
}

_FULL = {
    **_QUICK,
    "mvt": {"N": 256},
    "lu": {"N": 64},
    "seidel-2d": {"TSTEPS": 4, "N": 48},
    "fdtd-2d": {"TMAX": 6, "NX": 48, "NY": 48},
    "floyd-warshall": {"N": 48},
    "heat-2dp": {"N": 48, "T": 8},
}


def _workloads() -> dict[str, dict[str, int]]:
    scale = os.environ.get("REPRO_BENCH_SCALE", "full")
    return _QUICK if scale == "quick" else _FULL


def _bench_one(name: str, params: dict, cache_dir: str) -> dict:
    w = get_workload(name)
    result = optimize(w.program(), w.pipeline_options("plutoplus"))
    base = random_arrays(result.program, params, seed=0)

    # Python reference: one timed in-place run
    py_arrays = {k: v.copy() for k, v in base.items()}
    t0 = time.perf_counter()
    result.run(py_arrays, params)
    python_seconds = time.perf_counter() - t0

    opts = ExecutionOptions(backend="c", cache_dir=cache_dir)
    warm = ExecStats()
    c_arrays = {k: v.copy() for k, v in base.items()}
    result.run(c_arrays, params, exec_options=opts, stats=warm)
    if warm.backend != "c":
        return {
            "workload": name, "params": params, "status": "fallback",
            "fallback_reason": warm.fallback_reason,
        }

    bitwise = all(
        (py_arrays[k] == c_arrays[k]).all() for k in sorted(base)
    )

    c_seconds = math.inf
    for _ in range(REPS):
        arrays = {k: v.copy() for k, v in base.items()}
        t0 = time.perf_counter()
        result.run(arrays, params, exec_options=opts)
        c_seconds = min(c_seconds, time.perf_counter() - t0)

    rec = {
        "workload": name,
        "params": params,
        "status": "ok",
        "bitwise_equal": bitwise,
        "python_seconds": round(python_seconds, 6),
        "c_seconds": round(c_seconds, 6),
        "speedup": round(python_seconds / c_seconds, 2),
        "compile_seconds": round(warm.compile_seconds, 6),
        "artifact_cache": warm.artifact_cache,
        "omp": warm.omp,
    }
    # Model check-in: the measured native time against the roofline
    # prediction for this schedule's execution mode, at these sizes
    # (benchmarks/roofline_table.py renders the EXPERIMENTS.md table).
    try:
        rec["roofline"] = compare_roofline(
            result, c_seconds, cores=1, sizes=params
        ).as_dict()
    except ValueError:
        rec["roofline"] = None  # no PerfSpec registered for this workload
    return rec


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", default="BENCH_exec.json")
    args = ap.parse_args(argv)

    compiler = find_compiler()
    if compiler is None:
        report = {
            "bench": "exec_native",
            "status": "skipped",
            "reason": "no C compiler found (tried $REPRO_CC, cc, gcc, clang)",
        }
        with open(args.output, "w") as f:
            json.dump(report, f, indent=2)
        print(f"exec_native: SKIP ({report['reason']})")
        return 0

    runs = []
    with tempfile.TemporaryDirectory(prefix="repro-exec-bench-") as cache:
        cache_dir = os.environ.get("REPRO_ARTIFACT_CACHE", cache)
        for name, params in _workloads().items():
            rec = _bench_one(name, params, cache_dir)
            runs.append(rec)
            if rec["status"] == "ok":
                print(
                    f"  {name:<20} python {rec['python_seconds']:8.4f}s  "
                    f"c {rec['c_seconds']:8.4f}s  "
                    f"{rec['speedup']:9.1f}x  "
                    f"bitwise={'yes' if rec['bitwise_equal'] else 'NO'}"
                )
            else:
                print(f"  {name:<20} FELL BACK: {rec['fallback_reason']}")

    ok_runs = [r for r in runs if r["status"] == "ok"]
    mismatches = [r["workload"] for r in ok_runs if not r["bitwise_equal"]]
    fallbacks = [r["workload"] for r in runs if r["status"] == "fallback"]
    geomean = (
        math.exp(sum(math.log(r["speedup"]) for r in ok_runs) / len(ok_runs))
        if ok_runs else 0.0
    )
    gate_ok = bool(ok_runs) and not mismatches and not fallbacks and (
        geomean >= SPEEDUP_GATE
    )

    report = {
        "bench": "exec_native",
        "status": "ok" if gate_ok else "gate-failed",
        "scale": os.environ.get("REPRO_BENCH_SCALE", "full"),
        "compiler": compiler.version,
        "speedup_gate": SPEEDUP_GATE,
        "geomean_speedup": round(geomean, 2),
        "mismatches": mismatches,
        "fallbacks": fallbacks,
        "runs": runs,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)

    verdict = "PASS" if gate_ok else "FAIL"
    print(
        f"exec_native: {verdict} — geomean speedup {geomean:.1f}x "
        f"(gate {SPEEDUP_GATE}x) over {len(ok_runs)} workload(s)"
        + (f"; mismatches: {mismatches}" if mismatches else "")
        + (f"; fallbacks: {fallbacks}" if fallbacks else "")
    )
    return 0 if gate_ok else 1


if __name__ == "__main__":
    sys.exit(main())
