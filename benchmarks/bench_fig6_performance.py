"""Figure 6: performance of the periodic suite vs core count.

For every Fig. 6 panel the harness (a) runs both compiler pipelines on the
benchmark's polyhedral model, (b) classifies the resulting code's execution
mode (space-parallel for icc-omp-vec/Pluto, diamond-tiled for Pluto+), and
(c) sweeps 1..16 cores through the calibrated Table 1 machine model,
printing the paper's series (seconds, or MLUPS for the LBM panels, with the
Palabos reference where the paper provides one).

Shape expectations (Section 4.2): Pluto's curve coincides with icc-omp-vec
on every periodic benchmark (no time tiling found); Pluto+ time-tiles and
both raises the curve and keeps it scaling; the headline 16-core factors are
heat-1dp 2.72x, heat-2dp 6.73x, heat-3dp 1.4x, LBM ~1.33x mean, swim 2.73x.
"""

import math

import pytest

from benchmarks._shared import (
    PALABOS_REFERENCE_MLUPS,
    optimize_cached,
    perf_workloads,
)
from repro.machine import ExecutionMode, classify_result, estimate

CORE_COUNTS = (1, 2, 4, 8, 12, 16)

_SPEEDUPS: dict[str, float] = {}

_PAPER_16C = {
    "heat-1dp": 2.72,
    "heat-2dp": 6.73,
    "heat-3dp": 1.4,
    "swim": 2.73,
}


def _workload_params():
    return [pytest.param(w, id=w.name) for w in perf_workloads()]


@pytest.mark.parametrize("workload", _workload_params())
def test_fig6_panel(workload, benchmark):
    def pipelines():
        return (
            optimize_cached(workload, "pluto"),
            optimize_cached(workload, "plutoplus"),
        )

    pluto_res, plus_res = benchmark.pedantic(pipelines, rounds=1, iterations=1)
    pluto_mode = classify_result(pluto_res)
    plus_mode = classify_result(plus_res)

    # The paper's central qualitative claims: Pluto+ time-tiles every
    # periodic benchmark (diamond/concurrent start for the stencils and LBM;
    # swim's multi-sweep structure tiles as a pipelined wavefront band),
    # while classic Pluto never can.
    assert plus_mode in (ExecutionMode.DIAMOND, ExecutionMode.WAVEFRONT)
    if workload.name != "swim":
        assert plus_mode == ExecutionMode.DIAMOND
    assert pluto_mode not in (ExecutionMode.DIAMOND, ExecutionMode.WAVEFRONT)

    unit = "MLUPS" if workload.perf.mlups else "seconds"
    print(f"\nFig. 6 — {workload.name} ({unit} vs cores)")
    header = f"  {'cores':>5s} {'icc-omp-vec/pluto':>18s} {'pluto+':>12s}"
    if workload.name in PALABOS_REFERENCE_MLUPS:
        header += f" {'palabos(ref)':>13s}"
    print(header)
    for cores in CORE_COUNTS:
        base = estimate(workload, ExecutionMode.SPACE_PARALLEL, cores)
        plus = estimate(workload, plus_mode, cores)
        if workload.perf.mlups:
            line = f"  {cores:5d} {base.mlups:18.1f} {plus.mlups:12.1f}"
        else:
            line = f"  {cores:5d} {base.seconds:18.2f} {plus.seconds:12.2f}"
        if workload.name in PALABOS_REFERENCE_MLUPS:
            line += f" {PALABOS_REFERENCE_MLUPS[workload.name]:13.1f}"
        print(line)

    from repro.reporting import ascii_series

    metric = "mlups" if workload.perf.mlups else "seconds"
    series = {
        "pluto": [
            getattr(estimate(workload, ExecutionMode.SPACE_PARALLEL, c), metric)
            for c in CORE_COUNTS
        ],
        "pluto+": [
            getattr(estimate(workload, plus_mode, c), metric)
            for c in CORE_COUNTS
        ],
    }
    if workload.name in PALABOS_REFERENCE_MLUPS:
        series["palabos"] = [PALABOS_REFERENCE_MLUPS[workload.name]] * len(CORE_COUNTS)
    print(ascii_series(list(CORE_COUNTS), series, width=40, height=10))

    base16 = estimate(workload, ExecutionMode.SPACE_PARALLEL, 16)
    plus16 = estimate(workload, plus_mode, 16)
    factor = base16.seconds / plus16.seconds
    _SPEEDUPS[workload.name] = factor
    paper = _PAPER_16C.get(workload.name)
    note = f" (paper: {paper}x)" if paper else ""
    print(f"  16-core speedup pluto+ over pluto/icc: {factor:.2f}x{note}")
    assert factor > 1.0, "Pluto+ must not degrade performance (Section 4.2)"


def test_fig6_speedup_summary(benchmark):
    benchmark(lambda: len(_SPEEDUPS))  # keeps the summary in --benchmark-only runs
    if not _SPEEDUPS:
        pytest.skip("panel benches did not run")
    lbm = [v for k, v in _SPEEDUPS.items() if k.startswith("lbm") and "d3q27" not in k]
    print("\nSection 4.2 headline factors (modeled vs paper):")
    for name, factor in sorted(_SPEEDUPS.items()):
        paper = _PAPER_16C.get(name, "-")
        print(f"  {name:20s} {factor:6.2f}x   paper: {paper}")
    if lbm:
        mean = math.exp(sum(math.log(v) for v in lbm) / len(lbm))
        print(f"  {'LBM d2q9 mean':20s} {mean:6.2f}x   paper: 1.33")
        assert 1.1 < mean < 1.7
