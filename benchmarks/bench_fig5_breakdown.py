"""Figure 5: compile-time breakdown per benchmark, normalized.

For each benchmark and algorithm prints the fraction of total polyhedral
compilation time spent in dependence analysis / auto-transformation / code
generation / misc — the stacked bars of Fig. 5.  The paper's observation to
reproduce: code generation dominates in many cases, and the periodic suite's
Pluto+ bars shift further toward code generation (the transformation found
is non-trivial, so scanning it costs more).
"""

import pytest

from benchmarks._shared import compile_workloads, optimize_cached


def _workload_params():
    return [pytest.param(w, id=w.name) for w in compile_workloads()]


@pytest.mark.parametrize("workload", _workload_params())
def test_fig5_breakdown(workload, benchmark):
    def run_both():
        return (
            optimize_cached(workload, "pluto"),
            optimize_cached(workload, "plutoplus"),
        )

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nFig. 5 breakdown — {workload.name}")
    print(
        f"  {'variant':10s} {'dep':>6s} {'auto':>6s} {'codegen':>8s} {'misc':>6s}"
        f"   (fractions of total)"
    )
    for label, res in zip(("pluto", "pluto+"), results):
        t = res.timing
        total = max(t.total, 1e-9)
        print(
            f"  {label:10s} {t.dependence_analysis / total:6.2f} "
            f"{t.auto_transformation / total:6.2f} "
            f"{t.code_generation / total:8.2f} {t.misc / total:6.2f}"
        )
        assert abs(
            t.dependence_analysis + t.auto_transformation + t.code_generation + t.misc
            - t.total
        ) < 1e-6
