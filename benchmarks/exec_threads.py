"""Native-backend thread scaling (Fig. 6 shape) + roofline check-in.

For each workload the pipeline runs once with the paper flags, then the
compiled C kernel executes at 1, 2, and 4 OpenMP threads:

1. **bit-compat across thread counts** — the generated kernels write
   disjoint points per parallel iteration (no reductions), so every
   thread count must produce bitwise-identical arrays.  Any divergence
   fails the gate: it would mean the emitted ``#pragma omp parallel for``
   annotates a loop that was not actually parallel.
2. **scaling curve** — best-of-``REPS`` wall time per thread count, plus
   the parallel efficiency vs 1 thread.  There is **no perf gate** on the
   curve: CI containers are often single-core (the curve is honestly
   flat there), and the paper's Fig. 6 machine is a 16-core two-socket
   Xeon we do not have.  The curve is recorded for plotting, not gated.
3. **roofline check-in** — for workloads carrying a
   :class:`~repro.workloads.base.PerfSpec`, the measured 1-thread time
   feeds :func:`repro.machine.compare_roofline` and the predicted /
   measured ratio lands in the report (the EXPERIMENTS.md table rows).

Graceful degradation: without a C compiler the bench writes a skip
record and exits 0.  A kernel compiled without OpenMP support still runs
every "thread count" sequentially — recorded as ``omp: false`` and the
bit-compat gate still applies (trivially).

``REPRO_BENCH_SCALE=quick`` (CI) runs a 3-workload subset; ``full`` (the
default) covers 6.

Usage::

    PYTHONPATH=src python benchmarks/exec_threads.py [-o BENCH_threads.json]

Exits non-zero on a bit-compat failure or a backend fallback.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
import time

from repro.exec import ExecStats, ExecutionOptions, find_compiler
from repro.machine import compare_roofline
from repro.pipeline import optimize
from repro.runtime.arrays import random_arrays
from repro.workloads import get_workload

THREAD_COUNTS = (1, 2, 4)

#: native timing repetitions per thread count (best-of)
REPS = 3

_QUICK = {
    "fig1-skew": {"N": 128},
    "jacobi-2d-imper": {"TSTEPS": 6, "N": 48},
    "heat-1dp": {"N": 512, "T": 64},
}

_FULL = {
    **_QUICK,
    "fdtd-2d": {"TMAX": 6, "NX": 48, "NY": 48},
    "seidel-2d": {"TSTEPS": 4, "N": 48},
    "heat-2dp": {"N": 48, "T": 8},
}


def _workloads() -> dict[str, dict[str, int]]:
    scale = os.environ.get("REPRO_BENCH_SCALE", "full")
    return _QUICK if scale == "quick" else _FULL


def _bench_one(name: str, params: dict, cache_dir: str) -> dict:
    w = get_workload(name)
    result = optimize(w.program(), w.pipeline_options("plutoplus"))
    base = random_arrays(result.program, params, seed=0)

    # Warm once: compile + load happen here, outside every timed run.
    opts = ExecutionOptions(backend="c", cache_dir=cache_dir)
    warm = ExecStats()
    ref = {k: v.copy() for k, v in base.items()}
    result.run(ref, params, exec_options=opts, stats=warm)
    if warm.backend != "c":
        return {
            "workload": name, "params": params, "status": "fallback",
            "fallback_reason": warm.fallback_reason,
        }

    curve = []
    bitwise = True
    for t in THREAD_COUNTS:
        topts = ExecutionOptions(backend="c", cache_dir=cache_dir, threads=t)
        t_arrays = {k: v.copy() for k, v in base.items()}
        result.run(t_arrays, params, exec_options=topts)
        same = all((ref[k] == t_arrays[k]).all() for k in sorted(base))
        bitwise = bitwise and same

        best = math.inf
        for _ in range(REPS):
            arrays = {k: v.copy() for k, v in base.items()}
            t0 = time.perf_counter()
            result.run(arrays, params, exec_options=topts)
            best = min(best, time.perf_counter() - t0)
        curve.append({
            "threads": t,
            "seconds": round(best, 6),
            "bitwise_equal": same,
        })

    base_s = curve[0]["seconds"]
    for point in curve:
        point["speedup_vs_1t"] = round(base_s / point["seconds"], 2)
        point["efficiency"] = round(
            base_s / (point["seconds"] * point["threads"]), 3
        )

    rec = {
        "workload": name,
        "params": params,
        "status": "ok",
        "omp": warm.omp,
        "bitwise_equal": bitwise,
        "curve": curve,
    }
    try:
        rec["roofline"] = compare_roofline(
            result, base_s, cores=1, sizes=params
        ).as_dict()
    except ValueError:
        rec["roofline"] = None  # no PerfSpec registered for this workload
    return rec


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", default="BENCH_threads.json")
    args = ap.parse_args(argv)

    compiler = find_compiler()
    if compiler is None:
        report = {
            "bench": "exec_threads",
            "status": "skipped",
            "reason": "no C compiler found (tried $REPRO_CC, cc, gcc, clang)",
        }
        with open(args.output, "w") as f:
            json.dump(report, f, indent=2)
        print(f"exec_threads: SKIP ({report['reason']})")
        return 0

    runs = []
    with tempfile.TemporaryDirectory(prefix="repro-threads-bench-") as cache:
        cache_dir = os.environ.get("REPRO_ARTIFACT_CACHE", cache)
        for name, params in _workloads().items():
            rec = _bench_one(name, params, cache_dir)
            runs.append(rec)
            if rec["status"] == "ok":
                times = "  ".join(
                    f"{p['threads']}t {p['seconds']:8.4f}s" for p in rec["curve"]
                )
                print(
                    f"  {name:<18} {times}  omp={rec['omp']}  "
                    f"bitwise={'yes' if rec['bitwise_equal'] else 'NO'}"
                )
            else:
                print(f"  {name:<18} FELL BACK: {rec['fallback_reason']}")

    ok_runs = [r for r in runs if r["status"] == "ok"]
    mismatches = [r["workload"] for r in ok_runs if not r["bitwise_equal"]]
    fallbacks = [r["workload"] for r in runs if r["status"] == "fallback"]
    gate_ok = bool(ok_runs) and not mismatches and not fallbacks

    report = {
        "bench": "exec_threads",
        "status": "ok" if gate_ok else "gate-failed",
        "scale": os.environ.get("REPRO_BENCH_SCALE", "full"),
        "compiler": compiler.version,
        "thread_counts": list(THREAD_COUNTS),
        "mismatches": mismatches,
        "fallbacks": fallbacks,
        "runs": runs,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)

    verdict = "PASS" if gate_ok else "FAIL"
    print(
        f"exec_threads: {verdict} — {len(ok_runs)} workload(s) "
        f"bitwise-stable across {list(THREAD_COUNTS)} threads"
        + (f"; mismatches: {mismatches}" if mismatches else "")
        + (f"; fallbacks: {fallbacks}" if fallbacks else "")
    )
    return 0 if gate_ok else 1


if __name__ == "__main__":
    sys.exit(main())
