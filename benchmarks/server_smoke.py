"""Serving-daemon smoke and saturation benchmarks.

**Smoke mode** (the default) starts one real ``repro serve`` daemon (a
subprocess, exactly as deployed), then drives it the way a build farm
would:

1. **cold pass** — 16 concurrent clients requesting 4 distinct workloads
   (the motivation kernels: small enough for CI, real pipelines all the
   same).  Single-flight means 4 computations; the other 12 coalesce.
2. **warm pass** — the same 16 requests again.  Everything must be served
   from cache (the gate is hit rate >= 0.5; the expected value is 1.0),
   and every warm payload must equal its cold counterpart.
3. **shutdown** — SIGTERM, which must drain cleanly: exit code 0 and the
   socket removed.

**Saturation mode** (``--saturation``) measures warm serving throughput —
closed-loop clients hammering cached keys — on two stacks:

1. the seed daemon (``--loop threads --pool spawn``: thread-per-connection
   accept loop, unmemoized resolution, parse + re-dump responses), and
2. the current default (asyncio loop, warm pre-forked pool, memoized
   resolution, pre-serialized response splice).

Gates: the default stack must serve at least ``SPEEDUP_GATE``x the seed's
requests/s, with warm p99 under ``P99_GATE_SECONDS``.  It then stands up a
2-shard fleet behind ``repro route``, pre-populates it with the real
``repro warm`` CLI, and checks that fleet-served warm responses carry the
same transformation (schedule/tiled/code byte-equal) as single-instance
serving.  ``REPRO_BENCH_SCALE=quick`` (CI) shortens the measurement
windows; ``full`` is the default.

Usage::

    PYTHONPATH=src python benchmarks/server_smoke.py [-o FILE]
    PYTHONPATH=src python benchmarks/server_smoke.py --saturation [-o FILE]

Smoke writes ``BENCH_server_smoke.json``; saturation writes
``BENCH_server.json``.  Both exit non-zero on any gate failure.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

WORKLOADS = [
    "fig1-skew",
    "fig2-symmetric-consumer",
    "fig3-symmetric-deps",
    "fig4-periodic-stencil",
]

CLIENTS = 16

HIT_RATE_GATE = 0.5

#: saturation: the async + warm-pool + memo + splice stack must beat the
#: seed thread-per-connection daemon by this factor on warm requests/s
SPEEDUP_GATE = 5.0

#: ... while keeping warm p99 under this (seconds)
P99_GATE_SECONDS = 0.010

#: fields of the result payload that are deterministic across independent
#: computations (timings and solver counters are not)
DETERMINISTIC_FIELDS = (
    "schedule", "tiled", "code", "program", "options",
    "used_iss", "used_diamond", "version",
)


def _scale() -> dict:
    # 16 connections is the saturation sweet spot: enough load that the
    # seed's thread-per-connection contention shows, while the async
    # loop's warm p99 stays well inside the 10 ms gate
    if os.environ.get("REPRO_BENCH_SCALE", "full") == "quick":
        return {"duration": 3.0, "conns": 16}
    return {"duration": 10.0, "conns": 16}


def _start_daemon(socket_path: str, cache_dir: str, *extra: str):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", socket_path, "--cache-dir", cache_dir, *extra],
        env=dict(os.environ), stderr=subprocess.PIPE, text=True,
    )
    _await_socket(proc, socket_path)
    return proc


def _await_socket(proc, socket_path: str) -> None:
    deadline = time.time() + 60
    while not os.path.exists(socket_path):
        if proc.poll() is not None:
            raise SystemExit(
                f"server died on startup:\n{proc.stderr.read()}"
            )
        if time.time() > deadline:
            raise SystemExit("server never bound its socket")
        time.sleep(0.05)


def _stop(proc, socket_path: str, label: str) -> None:
    proc.send_signal(signal.SIGTERM)
    _, err = proc.communicate(timeout=120)
    if proc.returncode != 0:
        raise SystemExit(f"{label} exited {proc.returncode} on SIGTERM:\n{err}")
    if os.path.exists(socket_path):
        raise SystemExit(f"{label} left its socket behind")


def _drive_pass(socket_path: str, label: str) -> list[dict]:
    """CLIENTS concurrent requests, one client (connection) each."""
    from repro.server import ServerClient

    responses: list = [None] * CLIENTS

    def ask(i: int) -> None:
        workload = WORKLOADS[i % len(WORKLOADS)]
        t0 = time.perf_counter()
        with ServerClient(socket_path=socket_path, timeout=300) as client:
            response = client.optimize(workload)
        responses[i] = {
            "workload": workload,
            "status": response.get("status"),
            "cache": response.get("cache"),
            "seconds": round(time.perf_counter() - t0, 6),
            "result": response.get("result"),
        }

    threads = [threading.Thread(target=ask, args=(i,)) for i in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    bad = [r for r in responses if r is None or r["status"] != "ok"]
    if bad:
        raise SystemExit(f"{label} pass: {len(bad)} request(s) failed: {bad[:3]}")
    print(f"{label} pass: {CLIENTS} requests ok, tags "
          f"{sorted({r['cache'] for r in responses})}")
    return responses


def run_smoke(output: str, jobs: int) -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        socket_path = os.path.join(tmp, "repro.sock")
        daemon = _start_daemon(
            socket_path, os.path.join(tmp, "cache"),
            "--jobs", str(jobs), "--report",
        )
        try:
            cold = _drive_pass(socket_path, "cold")
            warm = _drive_pass(socket_path, "warm")

            hits = [r for r in warm if r["cache"].startswith("hit")]
            hit_rate = len(hits) / len(warm)
            print(f"warm pass hit rate: {hit_rate:.2f} (gate {HIT_RATE_GATE})")
            if hit_rate < HIT_RATE_GATE:
                raise SystemExit(
                    f"warm hit rate {hit_rate:.2f} below gate {HIT_RATE_GATE}"
                )

            cold_by_workload = {r["workload"]: r["result"] for r in cold}
            for r in warm:
                if r["result"] != cold_by_workload[r["workload"]]:
                    raise SystemExit(
                        f"warm payload for {r['workload']} differs from cold"
                    )

            from repro.server import ServerClient

            with ServerClient(socket_path=socket_path, timeout=60) as client:
                stats = client.stats()["stats"]

            daemon.send_signal(signal.SIGTERM)
            _, err = daemon.communicate(timeout=120)
            if daemon.returncode != 0:
                raise SystemExit(
                    f"daemon exited {daemon.returncode} on SIGTERM:\n{err}"
                )
            if os.path.exists(socket_path):
                raise SystemExit("daemon left its socket behind")
            report_line = [l for l in err.splitlines() if "served" in l]
            print(f"clean shutdown; {report_line[0] if report_line else ''}")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()

    def strip(rs):  # payloads are large; the artifact keeps the shape only
        return [{k: r[k] for k in ("workload", "status", "cache", "seconds")}
                for r in rs]

    artifact = {
        "clients": CLIENTS,
        "workloads": WORKLOADS,
        "cold": strip(cold),
        "warm": strip(warm),
        "warm_hit_rate": round(hit_rate, 4),
        "stats": stats,
    }
    with open(output, "w") as fh:
        json.dump(artifact, fh, indent=1)
    print(f"wrote {output}")
    return 0


# -- saturation mode ---------------------------------------------------------


def _measure_warm_throughput(
    socket_path: str, duration: float, conns: int
) -> dict:
    """Closed-loop warm load: ``conns`` persistent connections hammering
    the cached motivation keys for ``duration`` seconds."""
    from repro.server import ServerClient

    # ensure every key is computed and cached before the clock starts
    with ServerClient(socket_path=socket_path, timeout=300) as client:
        for workload in WORKLOADS:
            response = client.optimize(workload)
            if response.get("status") != "ok":
                raise SystemExit(
                    f"pre-warm of {workload} failed: {response}"
                )

    start = threading.Barrier(conns + 1)
    stop = threading.Event()
    per_thread: list[list[float]] = [[] for _ in range(conns)]
    errors: list[str] = []

    def drive(i: int) -> None:
        latencies = per_thread[i]
        try:
            with ServerClient(socket_path=socket_path, timeout=60) as client:
                start.wait()
                n = i  # stagger the round-robin so keys interleave
                while not stop.is_set():
                    t0 = time.perf_counter()
                    response = client.optimize(WORKLOADS[n % len(WORKLOADS)])
                    latencies.append(time.perf_counter() - t0)
                    if response.get("status") != "ok":
                        errors.append(str(response))
                        return
                    n += 1
        except Exception as e:  # noqa: BLE001 - recorded, fails the gate
            errors.append(f"client {i}: {e}")
            try:
                start.wait(timeout=1)
            except Exception:
                pass

    threads = [
        threading.Thread(target=drive, args=(i,), daemon=True)
        for i in range(conns)
    ]
    for t in threads:
        t.start()
    start.wait()
    t0 = time.perf_counter()
    time.sleep(duration)
    stop.set()
    for t in threads:
        t.join(timeout=60)
    elapsed = time.perf_counter() - t0
    if errors:
        raise SystemExit(f"saturation drive failed: {errors[:3]}")

    latencies = sorted(x for lat in per_thread for x in lat)
    if not latencies:
        raise SystemExit("saturation drive issued zero requests")

    def pct(q: float) -> float:
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "connections": conns,
        "seconds": round(elapsed, 3),
        "requests": len(latencies),
        "rps": round(len(latencies) / elapsed, 1),
        "p50": round(pct(0.50), 6),
        "p99": round(pct(0.99), 6),
        "max": round(latencies[-1], 6),
    }


def _fleet_identity_check(tmp: str, single_socket: str) -> dict:
    """2-shard fleet behind ``repro route``, warmed by the ``repro warm``
    CLI; fleet-served responses must carry the same transformation as
    single-instance serving."""
    from repro.server import ServerClient

    shard_sockets = [os.path.join(tmp, f"shard{i}.sock") for i in range(2)]
    router_socket = os.path.join(tmp, "router.sock")
    procs = []
    try:
        for i, sock in enumerate(shard_sockets):
            procs.append(_start_daemon(
                sock, os.path.join(tmp, f"shard-cache{i}"), "--jobs", "2",
            ))
        router = subprocess.Popen(
            [sys.executable, "-m", "repro", "route",
             "--socket", router_socket,
             *(arg for sock in shard_sockets for arg in ("--shard", sock))],
            env=dict(os.environ), stderr=subprocess.PIPE, text=True,
        )
        procs.append(router)
        _await_socket(router, router_socket)

        warm_cmd = subprocess.run(
            [sys.executable, "-m", "repro", "warm",
             "--socket", router_socket, "--category", "motivation",
             "--jobs", "4", "--quiet"],
            env=dict(os.environ), capture_output=True, text=True,
            timeout=600,
        )
        print(f"repro warm: {warm_cmd.stdout.strip()}")
        if warm_cmd.returncode != 0:
            raise SystemExit(
                f"repro warm failed ({warm_cmd.returncode}):\n"
                f"{warm_cmd.stdout}\n{warm_cmd.stderr}"
            )

        mismatches = []
        with ServerClient(socket_path=router_socket, timeout=300) as fleet, \
                ServerClient(socket_path=single_socket, timeout=300) as solo:
            for workload in WORKLOADS:
                via_fleet = fleet.optimize(workload)
                via_solo = solo.optimize(workload)
                if not via_fleet.get("cache", "").startswith("hit"):
                    raise SystemExit(
                        f"{workload} not warm through the router: "
                        f"{via_fleet.get('cache')}"
                    )
                for field in DETERMINISTIC_FIELDS:
                    a = json.dumps(via_fleet["result"][field], sort_keys=True)
                    b = json.dumps(via_solo["result"][field], sort_keys=True)
                    if a != b:
                        mismatches.append(f"{workload}.{field}")
            routes = fleet.stats()["stats"]["router"]["shard_routes"]
        if mismatches:
            raise SystemExit(
                f"fleet-served responses differ from single-instance "
                f"serving: {mismatches}"
            )
        print(f"fleet identity: {len(WORKLOADS)} workloads byte-equal "
              f"across {len(shard_sockets)} shards; routes {routes}")

        for sock in (router_socket,):
            with ServerClient(socket_path=sock, timeout=60) as client:
                client.shutdown()
        for proc in procs:
            proc.communicate(timeout=120)
        return {"shards": len(shard_sockets), "shard_routes": routes}
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()


def run_saturation(output: str, jobs: int) -> int:
    scale = _scale()
    print(f"saturation scale: {scale} "
          f"(REPRO_BENCH_SCALE={os.environ.get('REPRO_BENCH_SCALE', 'full')})")
    stacks = {
        "seed": ("--loop", "threads", "--pool", "spawn"),
        "async": (),  # the defaults: async loop + warm pool
    }
    measured: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-serve-sat-") as tmp:
        for name, extra in stacks.items():
            socket_path = os.path.join(tmp, f"{name}.sock")
            daemon = _start_daemon(
                socket_path, os.path.join(tmp, f"cache-{name}"),
                "--jobs", str(jobs), *extra,
            )
            try:
                measured[name] = _measure_warm_throughput(
                    socket_path, scale["duration"], scale["conns"]
                )
                print(f"{name}: {measured[name]['rps']} req/s warm, "
                      f"p99 {measured[name]['p99'] * 1000:.2f} ms")
            finally:
                if daemon.poll() is None:
                    _stop(daemon, socket_path, f"{name} daemon")

        # fleet identity runs against a freshly warmed single instance
        solo_socket = os.path.join(tmp, "solo.sock")
        solo = _start_daemon(
            solo_socket, os.path.join(tmp, "cache-solo"), "--jobs", "2",
        )
        try:
            from repro.server import ServerClient

            with ServerClient(socket_path=solo_socket, timeout=300) as client:
                for workload in WORKLOADS:
                    client.optimize(workload)
            fleet = _fleet_identity_check(tmp, solo_socket)
        finally:
            if solo.poll() is None:
                _stop(solo, solo_socket, "solo daemon")

    speedup = measured["async"]["rps"] / max(measured["seed"]["rps"], 0.001)
    p99 = measured["async"]["p99"]
    print(f"speedup: {speedup:.1f}x (gate {SPEEDUP_GATE}x), "
          f"async warm p99 {p99 * 1000:.2f} ms "
          f"(gate {P99_GATE_SECONDS * 1000:.0f} ms)")

    artifact = {
        "scale": scale,
        "workloads": WORKLOADS,
        "jobs": jobs,
        "stacks": measured,
        "speedup": round(speedup, 2),
        "speedup_gate": SPEEDUP_GATE,
        "p99_gate_seconds": P99_GATE_SECONDS,
        "fleet": fleet,
    }
    with open(output, "w") as fh:
        json.dump(artifact, fh, indent=1)
    print(f"wrote {output}")

    failures = []
    if speedup < SPEEDUP_GATE:
        failures.append(
            f"saturation speedup {speedup:.1f}x below gate {SPEEDUP_GATE}x"
        )
    if p99 >= P99_GATE_SECONDS:
        failures.append(
            f"async warm p99 {p99 * 1000:.2f} ms over gate "
            f"{P99_GATE_SECONDS * 1000:.0f} ms"
        )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default=None)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--saturation", action="store_true",
                        help="measure warm throughput (seed vs async stack) "
                             "and 2-shard fleet identity instead of the "
                             "cold/warm smoke")
    args = parser.parse_args(argv)
    if args.saturation:
        return run_saturation(args.output or "BENCH_server.json", args.jobs)
    return run_smoke(args.output or "BENCH_server_smoke.json", args.jobs)


if __name__ == "__main__":
    sys.exit(main())
