"""Serving-daemon smoke: concurrency, cache effectiveness, clean shutdown.

Starts one real ``repro serve`` daemon (a subprocess, exactly as deployed),
then drives it the way a build farm would:

1. **cold pass** — 16 concurrent clients requesting 4 distinct workloads
   (the motivation kernels: small enough for CI, real pipelines all the
   same).  Single-flight means 4 computations; the other 12 coalesce.
2. **warm pass** — the same 16 requests again.  Everything must be served
   from cache (the gate is hit rate >= 0.5; the expected value is 1.0),
   and every warm payload must equal its cold counterpart.
3. **shutdown** — SIGTERM, which must drain cleanly: exit code 0 and the
   socket removed.

The metrics snapshot plus per-pass latencies land in a JSON artifact for
CI to upload.  Exits non-zero on any failed request, a warm-pass hit rate
below the gate, a warm/cold payload mismatch, or an unclean shutdown.

Usage::

    PYTHONPATH=src python benchmarks/server_smoke.py [-o BENCH_server_smoke.json]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

WORKLOADS = [
    "fig1-skew",
    "fig2-symmetric-consumer",
    "fig3-symmetric-deps",
    "fig4-periodic-stencil",
]

CLIENTS = 16

HIT_RATE_GATE = 0.5


def _drive_pass(socket_path: str, label: str) -> list[dict]:
    """CLIENTS concurrent requests, one client (connection) each."""
    from repro.server import ServerClient

    responses: list = [None] * CLIENTS

    def ask(i: int) -> None:
        workload = WORKLOADS[i % len(WORKLOADS)]
        t0 = time.perf_counter()
        with ServerClient(socket_path=socket_path, timeout=300) as client:
            response = client.optimize(workload)
        responses[i] = {
            "workload": workload,
            "status": response.get("status"),
            "cache": response.get("cache"),
            "seconds": round(time.perf_counter() - t0, 6),
            "result": response.get("result"),
        }

    threads = [threading.Thread(target=ask, args=(i,)) for i in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    bad = [r for r in responses if r is None or r["status"] != "ok"]
    if bad:
        raise SystemExit(f"{label} pass: {len(bad)} request(s) failed: {bad[:3]}")
    print(f"{label} pass: {CLIENTS} requests ok, tags "
          f"{sorted({r['cache'] for r in responses})}")
    return responses


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_server_smoke.json")
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        socket_path = os.path.join(tmp, "repro.sock")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", socket_path, "--jobs", str(args.jobs),
             "--cache-dir", os.path.join(tmp, "cache"), "--report"],
            env=dict(os.environ), stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.time() + 60
            while not os.path.exists(socket_path):
                if daemon.poll() is not None:
                    raise SystemExit(
                        f"daemon died on startup:\n{daemon.stderr.read()}"
                    )
                if time.time() > deadline:
                    raise SystemExit("daemon never bound its socket")
                time.sleep(0.05)

            cold = _drive_pass(socket_path, "cold")
            warm = _drive_pass(socket_path, "warm")

            hits = [r for r in warm if r["cache"].startswith("hit")]
            hit_rate = len(hits) / len(warm)
            print(f"warm pass hit rate: {hit_rate:.2f} (gate {HIT_RATE_GATE})")
            if hit_rate < HIT_RATE_GATE:
                raise SystemExit(
                    f"warm hit rate {hit_rate:.2f} below gate {HIT_RATE_GATE}"
                )

            cold_by_workload = {r["workload"]: r["result"] for r in cold}
            for r in warm:
                if r["result"] != cold_by_workload[r["workload"]]:
                    raise SystemExit(
                        f"warm payload for {r['workload']} differs from cold"
                    )

            from repro.server import ServerClient

            with ServerClient(socket_path=socket_path, timeout=60) as client:
                stats = client.stats()["stats"]

            daemon.send_signal(signal.SIGTERM)
            _, err = daemon.communicate(timeout=120)
            if daemon.returncode != 0:
                raise SystemExit(
                    f"daemon exited {daemon.returncode} on SIGTERM:\n{err}"
                )
            if os.path.exists(socket_path):
                raise SystemExit("daemon left its socket behind")
            report_line = [l for l in err.splitlines() if "served" in l]
            print(f"clean shutdown; {report_line[0] if report_line else ''}")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()

    def strip(rs):  # payloads are large; the artifact keeps the shape only
        return [{k: r[k] for k in ("workload", "status", "cache", "seconds")}
                for r in rs]

    artifact = {
        "clients": CLIENTS,
        "workloads": WORKLOADS,
        "cold": strip(cold),
        "warm": strip(warm),
        "warm_hit_rate": round(hit_rate, 4),
        "stats": stats,
    }
    with open(args.output, "w") as fh:
        json.dump(artifact, fh, indent=1)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
