"""Table 3: polyhedral compilation time, Pluto vs Pluto+.

For every benchmark the harness runs the full source-to-source pipeline
under both algorithms and reports, like the paper: automatic transformation
time, total polyhedral compilation time, and the Pluto+ / Pluto factors with
geometric means over the Polybench and periodic halves of the table.

Shape expectations (Section 4.1): the overall factor on Polybench stays
modest; the periodic suite's factor is larger and dominated by *code
generation* of the non-trivial transformed programs, not by the ILP.
"""

import math

import pytest

from benchmarks._shared import compile_workloads, optimize_cached

_ROWS: list[dict] = []


def _workload_params():
    return [pytest.param(w, id=w.name) for w in compile_workloads()]


@pytest.mark.parametrize("workload", _workload_params())
def test_table3_row(workload, benchmark):
    """One Table 3 row: run both pipelines once, record the timings."""

    def run_both():
        return (
            optimize_cached(workload, "pluto"),
            optimize_cached(workload, "plutoplus"),
        )

    pluto, plus = benchmark.pedantic(run_both, rounds=1, iterations=1)
    row = {
        "name": workload.name,
        "category": workload.category,
        "pluto_auto": pluto.timing.auto_transformation,
        "plus_auto": plus.timing.auto_transformation,
        "pluto_total": pluto.timing.total,
        "plus_total": plus.timing.total,
    }
    _ROWS.append(row)
    assert pluto.schedule.depth >= 1 and plus.schedule.depth >= 1


def _geomean(values):
    values = [v for v in values if v > 0]
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def test_table3_report(benchmark):
    """Print the assembled table (depends on the row benches above)."""
    benchmark(lambda: len(_ROWS))  # trivial; keeps the report in --benchmark-only runs
    if not _ROWS:
        pytest.skip("row benches did not run")
    print("\nTable 3: Impact on polyhedral compilation time (seconds)")
    header = (
        f"  {'Benchmark':20s} {'auto(P)':>8s} {'auto(P+)':>9s} "
        f"{'total(P)':>9s} {'total(P+)':>10s} {'f-auto':>7s} {'f-total':>8s}"
    )
    for category in ("polybench", "periodic"):
        rows = [r for r in _ROWS if r["category"] == category]
        if not rows:
            continue
        print(f"  --- {category} ---")
        print(header)
        for r in rows:
            fa = r["plus_auto"] / r["pluto_auto"] if r["pluto_auto"] > 0 else float("nan")
            ft = r["plus_total"] / r["pluto_total"] if r["pluto_total"] > 0 else float("nan")
            print(
                f"  {r['name']:20s} {r['pluto_auto']:8.3f} {r['plus_auto']:9.3f} "
                f"{r['pluto_total']:9.3f} {r['plus_total']:10.3f} {fa:7.2f} {ft:8.2f}"
            )
        ga = _geomean(
            [r["plus_auto"] / r["pluto_auto"] for r in rows if r["pluto_auto"] > 0]
        )
        gt = _geomean(
            [r["plus_total"] / r["pluto_total"] for r in rows if r["pluto_total"] > 0]
        )
        print(f"  {'Mean (geometric)':20s} {'':8s} {'':9s} {'':9s} {'':10s} {ga:7.2f} {gt:8.2f}")
        paper = (0.89, 1.15) if category == "polybench" else (0.62, 2.04)
        print(f"  {'(paper)':20s} {'':8s} {'':9s} {'':9s} {'':10s} {paper[0]:7.2f} {paper[1]:8.2f}")
