"""Dependence-analysis baseline: fast-path speedup over the seed analysis.

Runs dependence analysis on the periodic stencil suite twice per workload —
once with the fast path (content-addressed memoization of polyhedral
primitives, fast-reject emptiness proofs, hoisted incremental construction)
and once under ``cache_disabled()`` (the seed's behavior, also reachable via
``REPRO_DEPS_NO_CACHE=1`` / ``--no-deps-cache``) — verifies the two produce
**identical dependence relations**, and writes ``BENCH_deps.json`` with
per-workload analysis times and the geometric means.

Each workload is measured end-to-end over the analysis the pipeline actually
performs: dependences on the input program, index-set splitting, and
re-analysis of the split program (the expensive part — ISS multiplies the
statement count).

Usage::

    PYTHONPATH=src python benchmarks/deps_baseline.py [-o BENCH_deps.json]

Exits non-zero if any dependence relation differs or the geomean speedup
is < 3x.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.iss import index_set_split
from repro.deps import DepStats, compute_dependences
from repro.polyhedra.cache import cache_disabled, global_cache
from repro.reporting import format_table, geomean
from repro.workloads import get_workload

#: The paper's periodic suite (heat-*dp, lbm-*, swim) — ISS + diamond
#: territory, where dependence analysis dominates the pipeline.
WORKLOADS = [
    "heat-1dp",
    "heat-2dp",
    "heat-3dp",
    "lbm-ldc-d2q9",
    "lbm-ldc-d2q9-mrt",
    "lbm-fpc-d2q9",
    "lbm-poi-d2q9",
    "lbm-ldc-d3q27",
    "swim",
]

_QUICK = ["heat-1dp", "heat-2dp", "lbm-ldc-d2q9", "swim"]


def _signature(deps):
    """Order-preserving content fingerprint of a dependence list."""
    return [
        (
            d.kind,
            d.source.name,
            d.target.name,
            d.array,
            frozenset((c.coeffs, c.equality) for c in d.polyhedron.constraints),
        )
        for d in deps
    ]


def _analyze(program):
    """The analysis work the pipeline performs for an ISS workload."""
    stats = DepStats()
    deps_pre = compute_dependences(program, stats)
    work, used_iss = index_set_split(program, deps_pre)
    deps_post = compute_dependences(work, stats) if used_iss else deps_pre
    return stats, _signature(deps_pre) + _signature(deps_post)


def _run(name: str, cached: bool):
    program = get_workload(name).program()
    if cached:
        global_cache().clear()  # no cross-workload carry-over in the bench
        return _analyze(program)
    with cache_disabled():
        return _analyze(program)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_deps.json")
    args = parser.parse_args(argv)

    names = _QUICK if os.environ.get("REPRO_BENCH_SCALE") == "quick" else WORKLOADS
    entries = []
    mismatches = []
    for name in names:
        fast_stats, fast_sig = _run(name, cached=True)
        seed_stats, seed_sig = _run(name, cached=False)
        if fast_sig != seed_sig:
            mismatches.append(name)
        t_fast = fast_stats.analysis_seconds
        t_seed = seed_stats.analysis_seconds
        entries.append(
            {
                "workload": name,
                "deps_seconds": t_fast,
                "deps_seconds_seed": t_seed,
                "speedup": t_seed / t_fast if t_fast > 0 else float("inf"),
                "relations_identical": name not in mismatches,
                "deps": fast_stats.as_dict(),
            }
        )
        print(
            f"{name}: seed {t_seed:.3f}s -> {t_fast:.3f}s "
            f"({t_seed / t_fast:.1f}x)"
            f"{' MISMATCH' if name in mismatches else ''}",
            flush=True,
        )

    g_fast = geomean([e["deps_seconds"] for e in entries])
    g_seed = geomean([e["deps_seconds_seed"] for e in entries])
    g_speedup = geomean([e["speedup"] for e in entries])
    report = {
        "suite": "periodic",
        "workloads": entries,
        "geomean_deps_seconds": g_fast,
        "geomean_deps_seconds_seed": g_seed,
        "geomean_speedup": g_speedup,
        "relations_identical": not mismatches,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)

    print("\nDependence-analysis time, pre-ISS + post-ISS (seconds)")
    print(
        format_table(
            ["workload", "seed", "new", "speedup"],
            [
                [e["workload"], e["deps_seconds_seed"], e["deps_seconds"], e["speedup"]]
                for e in entries
            ],
        )
    )
    print(f"  geomean: seed {g_seed:.3f}s, new {g_fast:.3f}s, speedup {g_speedup:.1f}x")
    print(f"  wrote {args.output}")

    if mismatches:
        print(f"FAIL: relation mismatch on {', '.join(mismatches)}", file=sys.stderr)
        return 1
    if g_speedup < 3.0:
        print(f"FAIL: geomean speedup {g_speedup:.2f}x < 3x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
