"""Quick-permutation scheduler baseline: heuristic vs exact search time.

Runs the full pipeline twice per workload — once with
``scheduler="exact"`` (the per-level Farkas/lexmin ILP search) and once
with ``scheduler="auto"`` (the fusion + dimension-matching heuristic with
exact fallback) — and writes ``BENCH_quick.json`` with:

* per-workload scheduling time under both modes, the arbitration outcome
  (``quick`` / ``fallback``), and the fallback reason when the heuristic
  bowed out;
* the geometric-mean scheduling speedup over the *quick-won* kernels (the
  permutation-findable ones, where the heuristic replaces every ILP);
* the win rate, and the worst-case ``auto`` overhead on fallback kernels
  (candidate validation time the exact search then repeats).

Every quick-won schedule is re-checked by the independent verifier — the
heuristic is legal by construction, and this bench enforces it.

Usage::

    PYTHONPATH=src python benchmarks/scheduler_quick.py [-o BENCH_quick.json]

``REPRO_BENCH_SCALE=quick`` runs the representative subset.  Exits
non-zero if any quick schedule fails verification, the geomean speedup on
quick-won kernels is < 5x, or auto's fallback overhead exceeds its
measured validation time plus noise margin.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import api
from repro.polyhedra.cache import global_cache
from repro.reporting import format_table, geomean
from repro.workloads import get_workload

#: Polybench kernels (permutation territory) plus the periodic suite
#: (diamond territory — ``auto`` must step aside instantly).
WORKLOADS = [
    "gemm", "2mm", "3mm", "atax", "bicg", "cholesky", "doitgen",
    "gemver", "gesummv", "mvt", "symm", "syr2k", "syrk", "trisolv",
    "durbin", "gramschmidt", "lu", "ludcmp", "correlation", "covariance",
    "floyd-warshall", "jacobi-1d-imper", "jacobi-2d-imper", "seidel-2d",
    "fdtd-2d",
    "heat-1dp", "heat-2dp", "lbm-ldc-d2q9", "lbm-poi-d2q9", "swim",
]

_QUICK = [
    "gemm", "2mm", "atax", "cholesky", "gemver", "mvt", "lu",
    "correlation", "jacobi-2d-imper", "seidel-2d", "floyd-warshall",
    "heat-1dp", "heat-2dp", "lbm-ldc-d2q9",
]

#: Noise margin on the auto-overhead gate (seconds).
OVERHEAD_SLACK = 0.5


def _run(name: str, scheduler: str):
    """One cold pipeline run; returns (result, scheduling seconds)."""
    w = get_workload(name)
    global_cache().clear()  # no cross-run carry-over
    result = api.optimize(
        w.program(), w.pipeline_options("plutoplus", scheduler=scheduler)
    )
    return result, result.timing.auto_transformation


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_quick.json")
    args = parser.parse_args(argv)

    names = _QUICK if os.environ.get("REPRO_BENCH_SCALE") == "quick" else WORKLOADS
    entries = []
    illegal = []
    slow_fallbacks = []
    for name in names:
        exact, t_exact = _run(name, "exact")
        auto, t_auto = _run(name, "auto")
        stats = auto.scheduler_stats
        path = stats.scheduler_path
        entry = {
            "workload": name,
            "scheduler_path": path,
            "fallback_reason": stats.fallback_reason,
            "sched_seconds_exact": t_exact,
            "sched_seconds_auto": t_auto,
            "quick_seconds": stats.quick_seconds,
            "quick_candidates": stats.quick_candidates,
            "quick_validations": stats.quick_validations,
            "lp_solves_auto": stats.solve.lp_solves,
            "fusion_groups": stats.fusion_groups,
        }
        if path == "quick":
            report = api.verify(auto)
            entry["verified_legal"] = report.legal
            entry["speedup"] = t_exact / t_auto if t_auto > 0 else float("inf")
            if not report.legal:
                illegal.append(name)
        else:
            # the heuristic's candidate work is the only admissible overhead
            overhead = t_auto - t_exact
            entry["fallback_overhead_seconds"] = overhead
            if overhead > stats.quick_seconds + OVERHEAD_SLACK + 0.2 * t_exact:
                slow_fallbacks.append(name)
        entries.append(entry)
        tail = (
            f"{entry['speedup']:.1f}x"
            if path == "quick"
            else f"fallback ({stats.fallback_reason})"
        )
        print(
            f"{name}: exact {t_exact:.3f}s, auto {t_auto:.3f}s [{tail}]",
            flush=True,
        )

    won = [e for e in entries if e["scheduler_path"] == "quick"]
    g_speedup = geomean([e["speedup"] for e in won])
    win_rate = len(won) / len(entries) if entries else 0.0
    report = {
        "workloads": entries,
        "quick_won": len(won),
        "fell_back": len(entries) - len(won),
        "win_rate": win_rate,
        "geomean_speedup_quick_won": g_speedup,
        "geomean_sched_seconds_exact": geomean(
            [e["sched_seconds_exact"] for e in won]
        ),
        "geomean_sched_seconds_quick": geomean(
            [e["sched_seconds_auto"] for e in won]
        ),
        "all_quick_schedules_legal": not illegal,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)

    print("\nScheduling time, quick heuristic vs exact search (seconds)")
    print(
        format_table(
            ["workload", "exact", "auto", "path", "speedup"],
            [
                [
                    e["workload"],
                    e["sched_seconds_exact"],
                    e["sched_seconds_auto"],
                    e["scheduler_path"],
                    f"{e['speedup']:.1f}x" if "speedup" in e else "-",
                ]
                for e in entries
            ],
        )
    )
    print(
        f"  quick won {len(won)}/{len(entries)} "
        f"(win rate {win_rate:.0%}), geomean speedup {g_speedup:.1f}x"
    )
    print(f"  wrote {args.output}")

    if illegal:
        print(
            f"FAIL: quick schedule failed verification on {', '.join(illegal)}",
            file=sys.stderr,
        )
        return 1
    if won and g_speedup < 5.0:
        print(
            f"FAIL: geomean speedup {g_speedup:.2f}x < 5x on quick-won kernels",
            file=sys.stderr,
        )
        return 1
    if slow_fallbacks:
        print(
            f"FAIL: auto fallback overhead beyond validation time on "
            f"{', '.join(slow_fallbacks)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
