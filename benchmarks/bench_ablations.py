"""Ablation benches for the design choices DESIGN.md calls out.

A1 — coefficient bound ``b`` (Section 3.9): sweep b in {1, 2, 4, 8} and
     report ILP solve effort and whether the periodic diamond is still
     found.  The paper argues b = 4 suffices and larger bounds only make
     the ILP heavier.

A2 — radix single-delta vs explicit per-row deltas (Section 5, RSTREAM
     comparison): encode linear independence both ways and compare decision
     variable counts and lexmin time.

A3 — exact (PIP-role) vs HiGHS (GLPK-role) backends on a real scheduler
     model.

A4 — the ``c_sum`` smallest-coefficient objective (Section 3.6): disable it
     and report the coefficient magnitudes of the schedules found.
"""

import pytest

from repro.core import (
    PlutoScheduler,
    SchedulerOptions,
    c_name,
    find_diamond_schedule,
    index_set_split,
    orthogonal_basis_rows,
)
from repro.deps import DependenceGraph, compute_dependences
from repro.frontend import parse_program
from repro.ilp import lexmin
from repro.workloads.periodic import heat_1dp

FIG1 = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i+1][j+1] = 2.0 * A[i][j];
"""


def _fig1_ddg():
    p = parse_program(FIG1, "fig1", params=("N",))
    return p, DependenceGraph(p, compute_dependences(p))


@pytest.mark.parametrize("bound", [1, 2, 4, 8])
def test_a1_bound_sweep(bound, benchmark):
    p, _ = index_set_split(heat_1dp())
    ddg = DependenceGraph(p, compute_dependences(p))

    def run():
        opts = SchedulerOptions(algorithm="plutoplus", coeff_bound=bound)
        return find_diamond_schedule(p, ddg, opts)

    sched = benchmark.pedantic(run, rounds=1, iterations=1)
    found = sched is not None
    print(f"\nA1: b={bound}: diamond {'found' if found else 'NOT found'}")
    # b = 1 already admits the Fig. 4 reversal (coefficients are +-1);
    # every bound in the sweep must find it.
    assert found


def test_a2_radix_vs_explicit_orthants(benchmark):
    """Model-size comparison on a 3-d statement with one hyperplane found."""
    src = "for (i = 0; i < N; i++) for (j = 0; j < N; j++) for (k = 0; k < N; k++) A[i][j][k] = A[i][j][k] + 1.0;"
    p = parse_program(src, "s3", params=("N",))
    stmt = p.statements[0]
    b = 4
    h = [[1, 1, 0]]
    perp = orthogonal_basis_rows(h, 3)

    from repro.core.ortho import plutoplus_independence_constraints
    from repro.ilp import ILPModel

    def build_radix():
        m = ILPModel()
        for it in stmt.space.dims:
            m.add_variable(c_name(stmt, it), lower=-b, upper=b)
        m.add_variable(f"dl.{stmt.name}", lower=0, upper=1)
        for con in plutoplus_independence_constraints(stmt, h, b):
            m.add_constraint(con.coeffs, con.const, con.equality)
        m.set_objective_order([c_name(stmt, it) for it in stmt.space.dims])
        return m

    def build_explicit():
        # RSTREAM-style: one direction binary per orthogonal-subspace row.
        m = ILPModel()
        for it in stmt.space.dims:
            m.add_variable(c_name(stmt, it), lower=-b, upper=b)
        act, sign = [], []
        for r, row in enumerate(perp):
            big = b * sum(abs(x) for x in row) + 1
            a, sgn = f"a{r}", f"s{r}"
            m.add_variable(a, lower=0, upper=1)
            m.add_variable(sgn, lower=0, upper=1)
            act.append(a)
            terms = {
                c_name(stmt, it): coef
                for it, coef in zip(stmt.space.dims, row)
                if coef
            }
            pos = dict(terms); pos[a] = big; pos[sgn] = big
            m.add_constraint(pos, -1 + big)          # r.c >= 1 - M(1-a) - M s
            neg = {k: -v for k, v in terms.items()}; neg[a] = big; neg[sgn] = -big
            m.add_constraint(neg, -1 + 2 * big)      # -r.c >= 1 - M(1-a) - M(1-s)
        m.add_constraint({a: 1 for a in act}, -1)    # at least one row active
        m.set_objective_order([c_name(stmt, it) for it in stmt.space.dims])
        return m

    radix = build_radix()
    explicit = build_explicit()
    r1 = benchmark.pedantic(lambda: lexmin(radix, backend="highs"), rounds=3, iterations=1)
    r2 = lexmin(explicit, backend="highs")
    n_dec_radix = sum(1 for v in radix.variables.values() if v.upper == 1)
    n_dec_explicit = sum(1 for v in explicit.variables.values() if v.upper == 1)
    print(
        f"\nA2: decision vars — radix: {n_dec_radix}, explicit orthants: {n_dec_explicit}; "
        f"both optimal: {r1.is_optimal and r2.is_optimal}"
    )
    assert n_dec_radix == 1  # the paper's single delta^l per statement
    assert n_dec_explicit == 2 * len(perp)
    assert r1.is_optimal and r2.is_optimal


def test_a3_exact_vs_highs_backend(benchmark):
    p, ddg = _fig1_ddg()
    from repro.core.transform import Schedule

    sch = PlutoScheduler(p, ddg, SchedulerOptions(algorithm="plutoplus"))
    model = sch.build_model(Schedule(p), list(ddg.deps))

    import time

    t0 = time.perf_counter()
    exact = lexmin(model, backend="exact")
    t_exact = time.perf_counter() - t0
    fast = benchmark.pedantic(
        lambda: lexmin(model, backend="highs"), rounds=3, iterations=1
    )
    print(
        f"\nA3: fig1 level-0 model ({model.num_variables} vars, "
        f"{model.num_constraints} rows): exact {t_exact*1e3:.0f} ms, "
        f"HiGHS benchmarked above; identical lexmin vector: {exact.values == fast.values}"
    )
    assert exact.values == fast.values


def test_a4_csum_objective(benchmark):
    """Without csum the lexmin tie-break alone still bounds coefficients, but
    the csum objective is what guarantees the smallest-magnitude choice."""
    p, ddg = _fig1_ddg()

    def run(flag):
        ddg.reset()
        opts = SchedulerOptions(algorithm="plutoplus", csum_objective=flag)
        return PlutoScheduler(p, ddg, opts).schedule()

    with_csum = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    without = run(False)

    def magnitude(s):
        return sum(
            sum(abs(c) for c in row.coeff_rows(st_))
            for row in s.rows
            if row.kind == "loop"
            for st_ in p.statements
        )

    m1, m2 = magnitude(with_csum), magnitude(without)
    print(f"\nA4: total |c| with csum: {m1}, without: {m2}")
    assert m1 <= m2


def test_a5_tiling_cuts_cache_misses(benchmark):
    """A5: validate the Fig. 6 mechanism with a trace-driven cache simulator.

    The roofline model's tiled-traffic reduction is not asserted, it is
    *observed*: generated untiled and time-tiled kernels for the same
    stencil are executed in trace mode and their memory accesses replayed
    through an LRU cache much smaller than the grid.
    """
    from repro.core import (
        mark_parallelism,
        tile_schedule,
        untiled_schedule,
    )
    from repro.machine.cache import CacheConfig, simulate_schedule_misses

    src = """
    for (t = 0; t < T; t++)
        for (i = 1; i < N-1; i++)
            A[t+1][i] = 0.3 * (A[t][i-1] + A[t][i] + A[t][i+1]);
    """
    p = parse_program(src, "stencil", params=("T", "N"), param_min=4)
    ddg = DependenceGraph(p, compute_dependences(p))
    s = PlutoScheduler(p, ddg, SchedulerOptions(algorithm="plutoplus")).schedule()
    mark_parallelism(s, ddg)
    params = {"T": 16, "N": 512}
    cfg = CacheConfig(size_bytes=2048, line_bytes=64, associativity=8)

    def run_tiled():
        return simulate_schedule_misses(p, tile_schedule(s, tile_size=8), params, cfg)

    tiled = benchmark.pedantic(run_tiled, rounds=1, iterations=1)
    untiled = simulate_schedule_misses(p, untiled_schedule(s), params, cfg)
    print(
        f"\nA5: 2KB cache, 16x512 stencil: untiled misses "
        f"{untiled.misses}/{untiled.accesses}, time-tiled "
        f"{tiled.misses}/{tiled.accesses} "
        f"({tiled.misses / untiled.misses:.2f}x)"
    )
    assert tiled.misses < untiled.misses
