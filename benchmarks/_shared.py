"""Shared infrastructure for the benchmark harness.

The Table 3 / Fig. 5 / Fig. 6 benches all consume the same per-(workload,
algorithm) pipeline runs; results are cached per session so each pipeline
executes once regardless of how many benches report on it.

Scale control via ``REPRO_BENCH_SCALE``:

* ``quick`` — representative subset (~10 minutes);
* ``full`` (default) — every benchmark (~45-60 minutes; the heavy tail is
  the 3-d LBM and swim models at several minutes per pipeline).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional

from repro.pipeline import OptimizationResult, optimize
from repro.workloads import Workload, all_workloads, get_workload

__all__ = [
    "bench_scale",
    "compile_workloads",
    "optimize_cached",
    "perf_workloads",
    "PALABOS_REFERENCE_MLUPS",
]

_RESULTS: dict[tuple[str, tuple], OptimizationResult] = {}

#: Palabos reference throughput at 16 cores (Fig. 6 d-f reference lines,
#: read off the paper's plots; a reference point, not a system under test).
PALABOS_REFERENCE_MLUPS = {
    "lbm-ldc-d2q9": 205.0,
    "lbm-ldc-d2q9-mrt": 205.0,
    "lbm-ldc-d3q27": 21.0,
}

_QUICK_COMPILE = [
    # representative Polybench slice: small/medium/large models
    "gemm", "mvt", "atax", "cholesky", "jacobi-2d-imper", "seidel-2d",
    "fdtd-2d", "lu", "correlation", "floyd-warshall",
    # the periodic suite minus the two heaviest models
    "heat-1dp", "heat-2dp", "lbm-ldc-d2q9", "lbm-poi-d2q9", "swim",
]


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "full")


def compile_workloads() -> list[Workload]:
    """Workloads included in the compile-time study (Table 3 / Fig. 5)."""
    if bench_scale() == "quick":
        return [get_workload(n) for n in _QUICK_COMPILE]
    return [
        w
        for w in all_workloads()
        if w.category in ("polybench", "periodic")
    ]


def perf_workloads() -> list[Workload]:
    """Workloads in the performance study (Fig. 6): the periodic suite."""
    names = [
        "heat-1dp", "heat-2dp", "heat-3dp",
        "lbm-ldc-d2q9", "lbm-ldc-d2q9-mrt", "lbm-ldc-d3q27",
        "lbm-fpc-d2q9", "lbm-poi-d2q9", "swim",
    ]
    if bench_scale() == "quick":
        names = ["heat-1dp", "heat-2dp", "lbm-ldc-d2q9", "swim"]
    return [get_workload(n) for n in names]


def optimize_cached(
    workload: Workload, algorithm: str, **overrides
) -> OptimizationResult:
    """Run the pipeline once per distinct configuration.

    The cache key covers the *full* :class:`PipelineOptions` (not just the
    algorithm), so benches passing overrides — a different backend, tile
    size, fusion mode, ... — never alias each other's results.
    """
    options = workload.pipeline_options(algorithm, **overrides)
    key = (workload.name, dataclasses.astuple(options))
    if key not in _RESULTS:
        _RESULTS[key] = optimize(workload.program(), options)
    return _RESULTS[key]
