"""Table 1: architecture details of the modeled machine.

Prints the machine description the Fig. 6 performance model is parameterized
with, and benchmarks the model's query functions (they sit on the hot path
of the Fig. 6 sweeps).
"""

from repro.machine import XEON_E5_2680


def _describe() -> str:
    m = XEON_E5_2680
    rows = [
        ("Machine", m.name),
        ("Clock", f"{m.clock_ghz} GHz"),
        ("Cores / socket", m.cores_per_socket),
        ("Total cores", m.total_cores),
        ("L1 cache / core", f"{m.l1_kb} KB"),
        ("L2 cache / core", f"{m.l2_kb} KB"),
        ("L3 cache / socket", f"{m.l3_mb} MB"),
        ("Peak GFLOPs", m.peak_gflops),
        ("1-core sustained BW", f"{m.single_core_bw_gbs} GB/s"),
        ("Socket sustained BW", f"{m.socket_bw_gbs} GB/s"),
    ]
    return "\n".join(f"  {k:22s} {v}" for k, v in rows)


def test_table1_machine_description(benchmark):
    result = benchmark(
        lambda: [XEON_E5_2680.bandwidth_gbs(c) for c in range(1, 17)]
    )
    assert len(result) == 16
    print("\nTable 1: Architecture details (modeled)")
    print(_describe())
