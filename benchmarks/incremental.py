"""Structural warm-start vs cold scheduling across a request sweep.

Models the serving workload the skeleton store (``repro.core.skeleton``)
exists for: the same kernel resubmitted with harmless option variations —
different tile sizes, post-scheduling knobs — each of which is an
exact-cache miss but a structural duplicate.  Per workload:

1. **seed** — one request with the paper options populates the skeleton
   store for the workload's structural fingerprint;
2. per sweep variant (schedule-irrelevant option changes):
   * **cold** — the store disabled, full Farkas + lexmin pipeline (timed);
   * **warm** — the store enabled; every per-level solve must replay from
     the seeded record (``structural_path == "hit"``, timed);
   * the warm schedule, tiled schedule, and generated source must be
     **byte-identical** to the cold ones — the store may only ever change
     how fast the answer is found, never the answer.

Both sides run in one process, so the in-process polyhedral cache is warm
for cold and warm runs alike; the measured gap is exactly the Farkas +
model-build + lexmin work the replay path skips.

Parameter-*value* rescales (``param_min``) are also exercised: they share
the fingerprint but change the Farkas systems, so they must degrade to
per-solve cold fallbacks (``structural_path == "fallback"``) with —
again — unchanged results.  They are recorded, not speed-gated.

Gate: geometric-mean end-to-end speedup >= ``SPEEDUP_GATE``x (3x) over
the structural-hit requests, every one of them byte-identical and every
expected verdict (hit / fallback) observed.

``REPRO_BENCH_SCALE=quick`` (CI) runs one variant per workload; ``full``
(the default) sweeps three.  The workload matrix has 9 entries either way.

Usage::

    PYTHONPATH=src python benchmarks/incremental.py [-o BENCH_incremental.json]

Exits non-zero on any gate failure.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import sys
import tempfile
import time

from repro.pipeline import optimize
from repro.workloads import get_workload

SPEEDUP_GATE = 3.0

#: the sweep matrix: scheduling-dominated workloads (the store cannot
#: speed up dependence analysis or code generation, and must not change
#: them).  Options come from each workload's registered paper flags.
WORKLOADS = (
    "fig1-skew",
    "jacobi-1d-imper",
    "jacobi-2d-imper",
    "seidel-2d",
    "fdtd-2d",
    "gemm",
    "mvt",
    "lu",
    "heat-1dp",
)

#: schedule-irrelevant option variants: every one lands on the seed's
#: structural fingerprint *and* the same per-level solve keys, so a
#: seeded store must answer the whole hyperplane search by replay
_VARIANTS_FULL = (
    {"tile_size": 16},
    {"tile_size": 64},
    {"intra_tile": True},
)
_VARIANTS_QUICK = ({"tile_size": 16},)

#: workloads additionally re-run with rescaled param_min: fingerprint
#: hit, solve-key mismatch, expected per-solve fallback
_RESCALED = ("jacobi-2d-imper", "heat-1dp")


def _variants():
    scale = os.environ.get("REPRO_BENCH_SCALE", "full")
    return _VARIANTS_QUICK if scale == "quick" else _VARIANTS_FULL


def _store(enabled: bool, root: str) -> None:
    if enabled:
        os.environ["REPRO_SKELETON_CACHE"] = root
    else:
        os.environ.pop("REPRO_SKELETON_CACHE", None)


def _timed(program, options):
    t0 = time.perf_counter()
    result = optimize(program, options)
    return time.perf_counter() - t0, result


def _identical(a, b) -> bool:
    return (
        a.schedule.to_dict() == b.schedule.to_dict()
        and a.tiled.to_dict() == b.tiled.to_dict()
        and a.code.python_source == b.code.python_source
    )


def _bench_workload(name: str, root: str) -> list[dict]:
    w = get_workload(name)
    base = w.pipeline_options("plutoplus")
    records = []

    _store(True, root)
    seed_seconds, _ = _timed(w.program(), base)

    for variant in _variants():
        options = dataclasses.replace(base, **variant)
        _store(False, root)
        cold_seconds, cold = _timed(w.program(), options)
        _store(True, root)
        warm_seconds, warm = _timed(w.program(), options)
        st = warm.scheduler_stats
        records.append({
            "workload": name,
            "variant": variant,
            "kind": "hit",
            "seed_seconds": round(seed_seconds, 6),
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "speedup": round(cold_seconds / warm_seconds, 2),
            "structural_path": st.structural_path,
            "replayed_solves": st.structural_warm_start,
            "identical": _identical(cold, warm),
        })

    if name in _RESCALED:
        def rescaled():
            program = w.program()
            program.param_min = {
                k: v * 10 for k, v in program.param_min.items()
            }
            return program

        _store(True, root)
        fb_seconds, fb = _timed(rescaled(), base)
        _store(False, root)
        _, cold = _timed(rescaled(), base)
        records.append({
            "workload": name,
            "variant": {"param_min": "x10"},
            "kind": "fallback",
            "warm_seconds": round(fb_seconds, 6),
            "structural_path": fb.scheduler_stats.structural_path,
            "replayed_solves": fb.scheduler_stats.structural_warm_start,
            "identical": _identical(cold, fb),
        })
    return records


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", default="BENCH_incremental.json")
    args = ap.parse_args(argv)

    runs: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-skeleton-bench-") as root:
        try:
            for name in WORKLOADS:
                for rec in _bench_workload(name, root):
                    runs.append(rec)
                    if rec["kind"] == "hit":
                        print(
                            f"  {rec['workload']:<18} {str(rec['variant']):<22} "
                            f"cold {rec['cold_seconds']:7.3f}s  "
                            f"warm {rec['warm_seconds']:7.3f}s  "
                            f"{rec['speedup']:7.1f}x  "
                            f"path={rec['structural_path']}  "
                            f"identical={'yes' if rec['identical'] else 'NO'}"
                        )
                    else:
                        print(
                            f"  {rec['workload']:<18} {str(rec['variant']):<22} "
                            f"{rec['warm_seconds']:7.3f}s  "
                            f"path={rec['structural_path']}  "
                            f"identical={'yes' if rec['identical'] else 'NO'}"
                        )
        finally:
            _store(False, root)

    hits = [r for r in runs if r["kind"] == "hit"]
    fallbacks = [r for r in runs if r["kind"] == "fallback"]
    bad_bytes = [r for r in runs if not r["identical"]]
    bad_path = (
        [r for r in hits if r["structural_path"] != "hit"]
        + [r for r in fallbacks if r["structural_path"] != "fallback"]
    )
    geomean = (
        math.exp(sum(math.log(r["speedup"]) for r in hits) / len(hits))
        if hits else 0.0
    )
    gate_ok = (
        bool(hits)
        and not bad_bytes
        and not bad_path
        and geomean >= SPEEDUP_GATE
    )

    report = {
        "bench": "incremental",
        "status": "ok" if gate_ok else "gate-failed",
        "scale": os.environ.get("REPRO_BENCH_SCALE", "full"),
        "workloads": len(WORKLOADS),
        "speedup_gate": SPEEDUP_GATE,
        "geomean_speedup": round(geomean, 2),
        "hit_requests": len(hits),
        "fallback_requests": len(fallbacks),
        "byte_mismatches": [
            {"workload": r["workload"], "variant": r["variant"]}
            for r in bad_bytes
        ],
        "path_mismatches": [
            {"workload": r["workload"], "variant": r["variant"],
             "structural_path": r["structural_path"]}
            for r in bad_path
        ],
        "runs": runs,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)

    verdict = "PASS" if gate_ok else "FAIL"
    print(
        f"incremental: {verdict} — geomean warm speedup {geomean:.1f}x "
        f"(gate {SPEEDUP_GATE}x) over {len(hits)} structural-hit request(s), "
        f"{len(fallbacks)} fallback(s)"
        + (f"; byte mismatches: {len(bad_bytes)}" if bad_bytes else "")
        + (f"; path mismatches: {len(bad_path)}" if bad_path else "")
    )
    return 0 if gate_ok else 1


if __name__ == "__main__":
    sys.exit(main())
