"""Solver baseline: exact-backend speedup over the seed solver.

Runs the full pipeline with ``--ilp-backend exact`` twice per workload —
once on the current solver stack (integer-scaled warm-started simplex) and
once with ``REPRO_EXACT_LEGACY=1`` (the seed's dense Fraction tableau, cold
lexmin sequence, no row dedup or skeleton reuse) — verifies the two produce
**identical schedules**, and writes ``BENCH_solver.json`` with per-workload
auto-transformation times and the geometric means.

The workload list is the Polybench subset on which the seed solver
terminates in minutes; the larger models take hours under the seed engine,
which is the point of the fast path (and of ``auto`` routing them to HiGHS).

Usage::

    PYTHONPATH=src python benchmarks/solver_baseline.py [-o BENCH_solver.json]

Exits non-zero if any schedule differs or the geomean speedup is < 2x.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.pipeline import optimize
from repro.reporting import format_table, geomean
from repro.workloads import get_workload

#: Polybench models where the seed exact solver finishes in minutes
WORKLOADS = [
    "floyd-warshall",
    "mvt",
    "gemm",
    "syrk",
    "trisolv",
    "lu",
    "seidel-2d",
]

_QUICK = ["floyd-warshall", "mvt", "gemm", "syrk"]


def _run(name: str, legacy: bool):
    if legacy:
        os.environ["REPRO_EXACT_LEGACY"] = "1"
    else:
        os.environ.pop("REPRO_EXACT_LEGACY", None)
    try:
        workload = get_workload(name)
        options = workload.pipeline_options("plutoplus", ilp_backend="exact")
        t0 = time.perf_counter()
        result = optimize(workload.program(), options=options)
        wall = time.perf_counter() - t0
        return result, wall
    finally:
        os.environ.pop("REPRO_EXACT_LEGACY", None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_solver.json")
    args = parser.parse_args(argv)

    names = _QUICK if os.environ.get("REPRO_BENCH_SCALE") == "quick" else WORKLOADS
    entries = []
    mismatches = []
    for name in names:
        new, _ = _run(name, legacy=False)
        old, _ = _run(name, legacy=True)
        if new.schedule.pretty() != old.schedule.pretty():
            mismatches.append(name)
        t_new = new.timing.auto_transformation
        t_old = old.timing.auto_transformation
        entries.append(
            {
                "workload": name,
                "auto_seconds": t_new,
                "auto_seconds_seed": t_old,
                "speedup": t_old / t_new if t_new > 0 else float("inf"),
                "ilp_solve_seconds": new.timing.ilp_solve,
                "schedule_identical": name not in mismatches,
                "solver": new.scheduler_stats.solve.as_dict(),
            }
        )
        print(
            f"{name}: seed {t_old:.3f}s -> {t_new:.3f}s "
            f"({t_old / t_new:.1f}x){' MISMATCH' if name in mismatches else ''}",
            flush=True,
        )

    g_new = geomean([e["auto_seconds"] for e in entries])
    g_old = geomean([e["auto_seconds_seed"] for e in entries])
    g_speedup = geomean([e["speedup"] for e in entries])
    report = {
        "backend": "exact",
        "algorithm": "plutoplus",
        "workloads": entries,
        "geomean_auto_seconds": g_new,
        "geomean_auto_seconds_seed": g_old,
        "geomean_speedup": g_speedup,
        "schedules_identical": not mismatches,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)

    print("\nExact-solver auto-transformation time (seconds)")
    print(
        format_table(
            ["workload", "seed", "new", "speedup"],
            [
                [e["workload"], e["auto_seconds_seed"], e["auto_seconds"], e["speedup"]]
                for e in entries
            ],
        )
    )
    print(f"  geomean: seed {g_old:.3f}s, new {g_new:.3f}s, speedup {g_speedup:.1f}x")
    print(f"  wrote {args.output}")

    if mismatches:
        print(f"FAIL: schedule mismatch on {', '.join(mismatches)}", file=sys.stderr)
        return 1
    if g_speedup < 2.0:
        print(f"FAIL: geomean speedup {g_speedup:.2f}x < 2x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
