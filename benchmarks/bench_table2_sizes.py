"""Table 2: problem sizes for the heat, swim, and LBM benchmarks."""

from repro.workloads import get_workload

_TABLE2 = [
    ("heat-1dp", "1.6e6 x 1000"),
    ("heat-2dp", "16000^2 x 500"),
    ("heat-3dp", "300^3 x 200"),
    ("swim", "1335^2 x 800"),
    ("lbm-ldc-d2q9", "1024^2 x 50000"),
    ("lbm-ldc-d2q9-mrt", "1024^2 x 20000"),
    ("lbm-fpc-d2q9", "1024 x 256 x 40000"),
    ("lbm-poi-d2q9", "1024 x 256 x 40000"),
    ("lbm-ldc-d3q27", "256^3 x 300"),
]


def _grid_points(w) -> float:
    pts = 1.0
    for p in w.perf.space_params:
        pts *= w.sizes[p]
    return pts


def test_table2_problem_sizes(benchmark):
    workloads = benchmark(lambda: [get_workload(n) for n, _ in _TABLE2])
    print("\nTable 2: Problem sizes for heat, swim, and LBM benchmarks")
    print(f"  {'Benchmark':20s} {'Problem size':>20s} {'(paper)':>20s}")
    for (name, paper), w in zip(_TABLE2, workloads):
        pts = _grid_points(w)
        steps = w.sizes[w.perf.time_param]
        print(f"  {name:20s} {pts:14.3g} x {steps:<6d} {paper:>18s}")
        # cross-check against the registered sizes
        assert pts > 0 and steps > 0
