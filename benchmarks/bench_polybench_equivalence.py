"""Section 4.2 claim: on Polybench, Pluto+ finds the same (or equivalent)
transformations as Pluto, hence the same performance.

For every Polybench kernel in the compile set, both pipelines run and the
resulting schedules are compared *structurally*: number of bands, band
widths, per-level parallelism pattern, and per-statement coefficient
magnitudes (Pluto+ may mirror a loop — an equivalent transformation — so
signs are compared as absolute values).
"""

import pytest

from benchmarks._shared import compile_workloads, optimize_cached

_MATCH: list[tuple[str, bool]] = []


def _structure(result):
    sched = result.schedule
    bands = sorted((b.width, b.permutable) for b in sched.bands)
    pattern = []
    for row in sched.rows:
        if row.kind != "loop":
            pattern.append("scalar")
            continue
        mags = tuple(
            tuple(abs(c) for c in row.coeff_rows(st_))
            for st_ in result.program.statements
        )
        pattern.append((bool(row.parallel), mags))
    return bands, pattern


def _polybench():
    return [
        pytest.param(w, id=w.name)
        for w in compile_workloads()
        if w.category == "polybench"
    ]


@pytest.mark.parametrize("workload", _polybench())
def test_equivalent_transformations(workload, benchmark):
    def run():
        return (
            optimize_cached(workload, "pluto"),
            optimize_cached(workload, "plutoplus"),
        )

    pluto, plus = benchmark.pedantic(run, rounds=1, iterations=1)
    bands_a, pattern_a = _structure(pluto)
    bands_b, pattern_b = _structure(plus)
    same_bands = bands_a == bands_b
    same_pattern = pattern_a == pattern_b
    _MATCH.append((workload.name, same_bands and same_pattern))
    print(
        f"\n{workload.name}: bands equal: {same_bands}, "
        f"level pattern equal: {same_pattern}"
    )
    # Band structure equality is the load-bearing part of the claim (it is
    # what determines tiling and parallelization); exact per-level magnitude
    # equality is reported but not asserted (distinct-yet-equivalent
    # solutions of equal cost exist for a few kernels).
    assert same_bands, f"{workload.name}: band structures diverge"


def test_equivalence_summary(benchmark):
    benchmark(lambda: len(_MATCH))  # keeps the summary in --benchmark-only runs
    if not _MATCH:
        pytest.skip("row benches did not run")
    same = sum(1 for _, ok in _MATCH if ok)
    print(
        f"\nPolybench structural equivalence: {same}/{len(_MATCH)} kernels "
        f"identical level-by-level; all have identical band structure "
        f"(paper: same or equivalent transformations on all of Polybench)"
    )
