"""Parallel-reduction relaxation: execution speedup + tolerance correctness.

For each reduction-bound workload the pipeline runs twice — once with the
exact dependence model (the serial baseline: no parallel dimension exists)
and once with ``parallel_reductions="omp"`` — and the gate checks that the
relaxation actually bought something:

1. **parallelism** — the relaxed schedule must carry at least one
   reduction-tagged parallel level (``tiled.reduction_levels()``); if the
   tag never appears the subsystem silently regressed.
2. **correctness** — the relaxed schedule, executed on the native backend
   with OpenMP threads, must agree with the *serial Python baseline* under
   the documented tolerance contract (``rtol=1e-9``): the reduction clause
   reassociates the accumulation, so bitwise identity is out of contract.
3. **speed** — best-of-``REPS`` native parallel execution vs the serial
   Python baseline; gate is geometric-mean speedup >= ``SPEEDUP_GATE``x.

Graceful degradation: without a C compiler the bench writes a skip record
and exits 0 (the speedup gate is meaningless without the native backend).

``REPRO_BENCH_SCALE=quick`` (CI) shrinks the problem sizes.

Usage::

    PYTHONPATH=src python benchmarks/reductions.py [-o BENCH_reductions.json]

Exits non-zero on any gate failure (missing tag, mismatch, sub-gate
speedup).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
import time

import numpy as np

from repro.exec import ExecStats, ExecutionOptions, find_compiler
from repro.pipeline import PipelineOptions, optimize
from repro.runtime.arrays import random_arrays
from repro.workloads import get_workload

SPEEDUP_GATE = 2.0

#: native timing repetitions (best-of; the Python baseline runs once)
REPS = 3

#: relative tolerance of the correctness leg — the documented contract for
#: parallelized reductions (docs/API.md)
RTOL, ATOL = 1e-9, 1e-11

_QUICK = {
    "dot": {"N": 400000},
    "l2norm": {"N": 400000},
    "tensor-contract": {"N": 300},
    "gemm": {"NI": 48, "NJ": 48, "NK": 48},
}

_FULL = {
    **_QUICK,
    "dot": {"N": 4000000},
    "l2norm": {"N": 4000000},
    "tensor-contract": {"N": 800},
    "gemm": {"NI": 96, "NJ": 96, "NK": 96},
}


def _workloads() -> dict[str, dict[str, int]]:
    scale = os.environ.get("REPRO_BENCH_SCALE", "full")
    return _QUICK if scale == "quick" else _FULL


def _bench_one(name: str, params: dict, cache_dir: str) -> dict:
    w = get_workload(name)

    # Serial baseline: exact dependence model, Python reference executor.
    serial = optimize(w.program(), w.pipeline_options("plutoplus"))
    base = random_arrays(serial.program, params, seed=0)
    ref = {k: v.copy() for k, v in base.items()}
    t0 = time.perf_counter()
    serial.run(ref, params)
    serial_seconds = time.perf_counter() - t0

    # Relaxed: reduction self-deps dropped from legality, omp discharge.
    relaxed = optimize(
        w.program(),
        w.pipeline_options("plutoplus", parallel_reductions="omp"),
    )
    red_levels = relaxed.tiled.reduction_levels()
    par_levels = relaxed.tiled.parallel_levels()

    opts = ExecutionOptions(backend="c", cache_dir=cache_dir)
    warm = ExecStats()
    out = {k: v.copy() for k, v in base.items()}
    relaxed.run(out, params, exec_options=opts, stats=warm)
    if warm.backend != "c":
        return {
            "workload": name, "params": params, "status": "fallback",
            "fallback_reason": warm.fallback_reason,
        }

    mismatched = [
        k for k in sorted(base)
        if not np.allclose(ref[k], out[k], rtol=RTOL, atol=ATOL)
    ]

    c_seconds = math.inf
    for _ in range(REPS):
        arrays = {k: v.copy() for k, v in base.items()}
        t0 = time.perf_counter()
        relaxed.run(arrays, params, exec_options=opts)
        c_seconds = min(c_seconds, time.perf_counter() - t0)

    return {
        "workload": name,
        "params": params,
        "status": "ok",
        "reduction_levels": red_levels,
        "parallel_levels": par_levels,
        "tolerance_ok": not mismatched,
        "mismatched_arrays": mismatched,
        "serial_python_seconds": round(serial_seconds, 6),
        "c_omp_seconds": round(c_seconds, 6),
        "speedup": round(serial_seconds / c_seconds, 2),
        "compile_seconds": round(warm.compile_seconds, 6),
        "omp": warm.omp,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", default="BENCH_reductions.json")
    args = ap.parse_args(argv)

    compiler = find_compiler()
    if compiler is None:
        report = {
            "bench": "reductions",
            "status": "skipped",
            "reason": "no C compiler found (tried $REPRO_CC, cc, gcc, clang)",
        }
        with open(args.output, "w") as f:
            json.dump(report, f, indent=2)
        print(f"reductions: SKIP ({report['reason']})")
        return 0

    runs = []
    with tempfile.TemporaryDirectory(prefix="repro-red-bench-") as cache:
        cache_dir = os.environ.get("REPRO_ARTIFACT_CACHE", cache)
        for name, params in _workloads().items():
            rec = _bench_one(name, params, cache_dir)
            runs.append(rec)
            if rec["status"] == "ok":
                print(
                    f"  {name:<18} serial-py {rec['serial_python_seconds']:8.4f}s  "
                    f"c+omp {rec['c_omp_seconds']:8.4f}s  "
                    f"{rec['speedup']:8.1f}x  "
                    f"red-levels={rec['reduction_levels']}  "
                    f"tol={'ok' if rec['tolerance_ok'] else 'MISMATCH'}"
                )
            else:
                print(f"  {name:<18} FELL BACK: {rec['fallback_reason']}")

    ok_runs = [r for r in runs if r["status"] == "ok"]
    untagged = [r["workload"] for r in ok_runs if not r["reduction_levels"]]
    mismatches = [r["workload"] for r in ok_runs if not r["tolerance_ok"]]
    fallbacks = [r["workload"] for r in runs if r["status"] == "fallback"]
    geomean = (
        math.exp(sum(math.log(r["speedup"]) for r in ok_runs) / len(ok_runs))
        if ok_runs else 0.0
    )
    gate_ok = bool(ok_runs) and not untagged and not mismatches and (
        not fallbacks
    ) and geomean >= SPEEDUP_GATE

    report = {
        "bench": "reductions",
        "status": "ok" if gate_ok else "gate-failed",
        "scale": os.environ.get("REPRO_BENCH_SCALE", "full"),
        "compiler": compiler.version,
        "speedup_gate": SPEEDUP_GATE,
        "rtol": RTOL,
        "geomean_speedup": round(geomean, 2),
        "untagged": untagged,
        "mismatches": mismatches,
        "fallbacks": fallbacks,
        "runs": runs,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)

    verdict = "PASS" if gate_ok else "FAIL"
    print(
        f"reductions: {verdict} — geomean speedup {geomean:.1f}x "
        f"(gate {SPEEDUP_GATE}x) over {len(ok_runs)} workload(s)"
        + (f"; untagged: {untagged}" if untagged else "")
        + (f"; mismatches: {mismatches}" if mismatches else "")
        + (f"; fallbacks: {fallbacks}" if fallbacks else "")
    )
    return 0 if gate_ok else 1


if __name__ == "__main__":
    sys.exit(main())
