"""Render the model-vs-measured roofline table from bench artifacts.

Collects the ``roofline`` records that ``benchmarks/exec_native.py`` and
``benchmarks/exec_threads.py`` embed in their JSON reports — each one is a
:class:`repro.machine.RooflineComparison` fed with a *measured* native
execution time — and renders the EXPERIMENTS.md "predicted vs measured"
markdown table from real numbers instead of analytic-only estimates.

Usage::

    PYTHONPATH=src python benchmarks/roofline_table.py \
        [BENCH_exec.json BENCH_threads.json ...] [-o table.md]

With no inputs it reads ``BENCH_exec.json`` and ``BENCH_threads.json``
from the current directory, skipping whichever is absent.  Exits 0 with a
note (and no table) when no roofline record exists anywhere — missing
artifacts are a CI-environment fact, not an error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: bench name -> column label for the source of the measurement
_SOURCES = {"exec_native": "native 1t", "exec_threads": "threads 1t"}


def collect(paths: list[Path]) -> list[dict]:
    """All roofline records across the given bench reports, annotated with
    their source bench; silently skips missing files and skip-records."""
    rows: list[dict] = []
    for path in paths:
        if not path.is_file():
            continue
        data = json.loads(path.read_text())
        source = _SOURCES.get(data.get("bench"), data.get("bench", "?"))
        for run in data.get("runs", ()):
            roofline = run.get("roofline")
            if not roofline:
                continue
            rows.append({**roofline, "source": source})
    return rows


def render(rows: list[dict]) -> str:
    """The markdown table: one row per (workload, source) measurement."""
    out = [
        "| workload | mode | bound | source | predicted (s) | "
        "measured (s) | measured/predicted |",
        "|---|---|---|---|---|---|---|",
    ]
    for r in sorted(rows, key=lambda r: (r["workload"], r["source"])):
        out.append(
            f"| {r['workload']} | {r['mode']} | {r['bound']} | "
            f"{r['source']} | {r['predicted_seconds']:.3e} | "
            f"{r['measured_seconds']:.3e} | {r['ratio']:.2f} |"
        )
    return "\n".join(out) + "\n"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("inputs", nargs="*",
                    default=["BENCH_exec.json", "BENCH_threads.json"],
                    help="bench report JSON files (default: BENCH_exec.json "
                         "BENCH_threads.json)")
    ap.add_argument("-o", "--output",
                    help="write the markdown table here instead of stdout")
    args = ap.parse_args(argv)

    rows = collect([Path(p) for p in args.inputs])
    if not rows:
        print("roofline_table: no roofline records found in "
              f"{args.inputs} (run exec_native/exec_threads first)",
              file=sys.stderr)
        return 0
    table = render(rows)
    if args.output:
        Path(args.output).write_text(table)
        print(f"# wrote {args.output} ({len(rows)} measurement(s))",
              file=sys.stderr)
    else:
        print(table, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
