"""Micro-benchmarks of the substrate layers: ILP, Farkas/FM, dependence
analysis, and code generation.  These track the per-component costs behind
the Table 3 / Fig. 5 numbers.
"""

import pytest

from repro.core import legality_constraints
from repro.deps import compute_dependences
from repro.frontend import parse_program
from repro.ilp import ILPModel, lexmin, solve_ilp, solve_lp

GEMM = """
for (i = 0; i < NI; i++)
    for (j = 0; j < NJ; j++) {
        C[i][j] = C[i][j] * beta;
        for (k = 0; k < NK; k++)
            C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
    }
"""

JACOBI2D = """
for (t = 0; t < T; t++) {
    for (i = 1; i < N-1; i++)
        for (j = 1; j < N-1; j++)
            B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
    for (i = 1; i < N-1; i++)
        for (j = 1; j < N-1; j++)
            A[i][j] = B[i][j];
}
"""


def _mid_lp_model():
    """A feasible 12-var/18-row model (origin satisfies every row)."""
    m = ILPModel()
    for i in range(12):
        m.add_variable(f"x{i}", lower=0, upper=20)
    for r in range(18):
        coeffs = {f"x{(r + k) % 12}": (1 if k % 2 else -1) for k in range(5)}
        m.add_constraint(coeffs, r % 7)  # const >= 0: x = 0 is feasible
    return m


class TestILPMicro:
    def test_exact_simplex_lp(self, benchmark):
        m = _mid_lp_model()
        res = benchmark(lambda: solve_lp(m, {"x0": 1, "x5": 2}))
        assert res.is_optimal

    def test_exact_bb_ilp(self, benchmark):
        m = _mid_lp_model()
        res = benchmark(lambda: solve_ilp(m, {"x0": 1, "x5": 2}))
        assert res.is_optimal

    def test_highs_lexmin(self, benchmark):
        m = _mid_lp_model()
        m.set_objective_order([f"x{i}" for i in range(12)])
        res = benchmark(lambda: lexmin(m, backend="highs"))
        assert res.is_optimal


class TestAnalysisMicro:
    def test_dependence_analysis_gemm(self, benchmark):
        p = parse_program(GEMM, "gemm", params=("NI", "NJ", "NK"))
        deps = benchmark(lambda: compute_dependences(p))
        assert deps

    def test_dependence_analysis_jacobi2d(self, benchmark):
        p = parse_program(JACOBI2D, "j2d", params=("T", "N"), param_min=4)
        deps = benchmark(lambda: compute_dependences(p))
        assert deps

    def test_farkas_elimination(self, benchmark):
        p = parse_program(JACOBI2D, "j2d", params=("T", "N"), param_min=4)
        deps = compute_dependences(p)
        dep = max(deps, key=lambda d: len(d.polyhedron.constraints))
        rows = benchmark(lambda: legality_constraints(dep))
        assert rows


class TestCodegenMicro:
    def test_scan_and_emit_tiled_gemm(self, benchmark):
        from repro.core import (
            PlutoScheduler,
            SchedulerOptions,
            mark_parallelism,
            tile_schedule,
        )
        from repro.codegen import generate_python
        from repro.deps import DependenceGraph

        p = parse_program(GEMM, "gemm", params=("NI", "NJ", "NK"))
        ddg = DependenceGraph(p, compute_dependences(p))
        s = PlutoScheduler(p, ddg, SchedulerOptions()).schedule()
        mark_parallelism(s, ddg)

        def emit():
            ts = tile_schedule(s, tile_size=32)
            return generate_python(ts).python_source

        src = benchmark.pedantic(emit, rounds=3, iterations=1)
        assert "def kernel" in src
