"""Legacy setup shim.

The primary metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose setuptools/pip combination
cannot build PEP-660 editable wheels (e.g. offline boxes without the
``wheel`` package installed).
"""

from setuptools import setup

setup()
