"""Lid-driven cavity flow with the D2Q9 Lattice Boltzmann solver, plus the
compiler's view of the same computation (Fig. 6d of the paper).

The physics runs in :mod:`repro.apps.lbm_d2q9`; the polyhedral model
``lbm-ldc-d2q9`` presents the identical dependence pattern (a periodic
9-point stencil in time) to the optimizer, which time-tiles it with
diamonds.  The machine model then predicts MLUPS against core count for the
untiled (icc-omp-vec / Pluto) and tiled (Pluto+) variants.

Run:  python examples/lbm_cavity.py
"""

import numpy as np

from repro.apps import LidDrivenCavity
from repro.machine import ExecutionMode, classify_result, estimate
from repro.pipeline import optimize
from repro.workloads import get_workload


def run_physics() -> None:
    print("== D2Q9 lid-driven cavity (BGK), 48x48, 600 steps ==")
    sim = LidDrivenCavity(nx=48, ny=48, tau=0.56, u_lid=0.1)
    sim.run(600)
    ux, uy = sim.velocity_field()
    speed = np.hypot(ux, uy)
    print(f"  max |u|      = {speed.max():.4f} (lid at 0.1)")
    print(f"  mean rho     = {sim.f.sum(axis=0).mean():.6f}")
    # the classic diagnostic: a single primary vortex center
    cy, cx = np.unravel_index(np.argmin(ux[5:-5, 5:-5]), ux[5:-5, 5:-5].shape)
    print(f"  strongest return flow near (y={cy + 5}, x={cx + 5})")

    print("\n== MRT collision (the lbm-ldc-d2q9-mrt variant) ==")
    sim_mrt = LidDrivenCavity(nx=32, ny=32, tau=0.56, u_lid=0.08)
    sim_mrt.run(200, collision="mrt")
    print(f"  stable: {bool(np.isfinite(sim_mrt.f).all())}")


def run_compiler_view() -> None:
    workload = get_workload("lbm-ldc-d2q9")
    print("\n== compiler's view: one update per site, periodic 2-d grid ==")
    result = optimize(workload.program(), workload.pipeline_options("plutoplus"))
    print(f"  ISS split into {len(result.program.statements)} statements; "
          f"diamond band: {result.used_diamond}")
    mode = classify_result(result)

    print("\n== modeled MLUPS at Table 2 size (Fig. 6d) ==")
    print(f"  {'cores':>5} {'pluto/icc':>10} {'pluto+':>8} {'palabos(ref)':>13}")
    for cores in (1, 2, 4, 8, 16):
        base = estimate(workload, ExecutionMode.SPACE_PARALLEL, cores)
        plus = estimate(workload, mode, cores)
        print(f"  {cores:5d} {base.mlups:10.0f} {plus.mlups:8.0f} {205.0:13.0f}")
    b, t = (
        estimate(workload, ExecutionMode.SPACE_PARALLEL, 16),
        estimate(workload, mode, 16),
    )
    print(f"\n  16-core speedup: {b.seconds / t.seconds:.2f}x (paper LBM mean: 1.33x)")


def main() -> None:
    run_physics()
    run_compiler_view()


if __name__ == "__main__":
    main()
