"""Quickstart: optimize a loop nest with Pluto+ and run the generated code.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.codegen import generate_c, generate_python
from repro.frontend import parse_program
from repro.pipeline import PipelineOptions, optimize
from repro.runtime import random_arrays, validate_transformation

# A simple kernel with a diagonal dependence (Fig. 1 of the paper): every
# point (i+1, j+1) depends on (i, j).
SOURCE = """
for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
        A[i+1][j+1] = 0.5 * A[i][j] + B[i][j];
"""


def main() -> None:
    program = parse_program(SOURCE, "quickstart", params=("N",))
    print("== input program ==")
    print(program, "\n")

    for algorithm in ("pluto", "plutoplus"):
        result = optimize(program, PipelineOptions(algorithm=algorithm, tile_size=16))
        print(f"== {algorithm} ==")
        print(result.schedule.pretty())
        print()

    # Pluto+ finds the communication-free mapping (Section 2.2): the outer
    # transformed loop is parallel.
    result = optimize(program, PipelineOptions(algorithm="plutoplus", tile_size=16))
    assert result.schedule.rows[0].parallel, "expected an outer parallel loop"

    print("== generated Python (Pluto+, tiled) ==")
    print(result.code.python_source)
    print("== generated C (Pluto+, tiled) ==")
    print(generate_c(result.tiled))

    # Execute the transformed code and check it against the original order.
    params = {"N": 64}
    check = validate_transformation(result.program, result.tiled, {"N": 16})
    print(f"validation vs original order: ok={check.ok}")

    arrays = random_arrays(program, params, seed=0)
    before = arrays["A"].copy()
    result.code.run(arrays, params)
    print(
        f"ran transformed kernel at N={params['N']}: "
        f"A changed at {np.count_nonzero(arrays['A'] != before)} points"
    )


if __name__ == "__main__":
    main()
