"""The paper's headline scenario (Section 2.4 / Fig. 4): a heat equation on
a periodic domain.

Classic Pluto cannot time-tile it — after index-set splitting, the half
domain needs a loop *reversal* (a negative transformation coefficient),
which its space excludes.  Pluto+ finds the Fig. 4g composition
(ISS -> reversal -> parametric shift -> diamond tiling), and the machine
model shows the resulting bandwidth savings and scaling (Fig. 6a).

Run:  python examples/periodic_stencil.py
"""

from repro.machine import ExecutionMode, classify_result, estimate
from repro.pipeline import optimize
from repro.runtime import validate_transformation
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("heat-1dp")
    program = workload.program()
    print("== periodic heat equation (compiler's view) ==")
    print(program, "\n")

    results = {}
    for algorithm in ("pluto", "plutoplus"):
        result = optimize(program, workload.pipeline_options(algorithm))
        results[algorithm] = result
        print(f"== {algorithm} ==")
        print(f"index-set splitting applied: {result.used_iss}")
        print(f"diamond (concurrent-start) band found: {result.used_diamond}")
        print(result.schedule.pretty())
        print()

    assert results["plutoplus"].used_diamond
    assert not results["pluto"].used_diamond

    plus = results["plutoplus"]
    print("== Fig. 4g transformation (Pluto+) ==")
    for stmt in plus.program.statements:
        print(f"  T_{stmt.name} = {plus.schedule.map_for(stmt)}")

    check = validate_transformation(plus.program, plus.tiled, {"N": 20, "T": 8})
    print(f"\nvalidation vs original execution order: ok={check.ok}")

    print("\n== modeled performance, Table 2 size (Fig. 6a) ==")
    print(f"  {'cores':>5} {'pluto/icc (s)':>14} {'pluto+ (s)':>11}")
    for cores in (1, 2, 4, 8, 16):
        base = estimate(workload, ExecutionMode.SPACE_PARALLEL, cores)
        tiled = estimate(workload, classify_result(plus), cores)
        print(f"  {cores:5d} {base.seconds:14.2f} {tiled.seconds:11.2f}")
    b16 = estimate(workload, ExecutionMode.SPACE_PARALLEL, 16)
    t16 = estimate(workload, classify_result(plus), 16)
    print(f"\n16-core speedup: {b16.seconds / t16.seconds:.2f}x (paper: 2.72x)")


if __name__ == "__main__":
    main()
