"""Sections 2.1-2.3: transformations that need reversals and negative skews.

Three motivating patterns where Pluto+'s enlarged space finds strictly
better transformations than classic Pluto:

* Fig. 1 — a diagonal dependence: Pluto+ exposes a communication-free outer
  parallel loop with the negative skew ``(i - j, j)``;
* Fig. 2 — a reflected consumer: Pluto+ fuses producer and consumer by
  reversing one of them, making the fused loop parallel;
* Fig. 3 — symmetric dependences: after index-set splitting, the reversal
  of one half shortens every dependence.

Run:  python examples/symmetric_dependences.py
"""

from repro.pipeline import optimize
from repro.workloads import get_workload


def show(name: str) -> None:
    workload = get_workload(name)
    program = workload.program()
    print("=" * 72)
    print(f"{name}:")
    for stmt in program.statements:
        print(f"    {stmt.text}")
    for algorithm in ("pluto", "plutoplus"):
        result = optimize(program, workload.pipeline_options(algorithm, tile=False))
        sched = result.schedule
        outer = sched.rows[0]
        par = "parallel" if outer.parallel else "sequential"
        print(f"\n  {algorithm}: outer loop {par}"
              + (f", ISS applied" if result.used_iss else ""))
        for stmt in result.program.statements:
            print(f"    T_{stmt.name}{tuple(stmt.space.dims)} = {sched.map_for(stmt)}")
    print()


def main() -> None:
    for name in ("fig1-skew", "fig2-symmetric-consumer", "fig3-symmetric-deps"):
        show(name)
    print("Note how every pluto transformation above uses only non-negative")
    print("dimension coefficients, while pluto+ composes reversals (negative")
    print("coefficients) to expose outer parallelism or shorten dependences.")


if __name__ == "__main__":
    main()
