"""Execution configuration and per-run statistics.

:class:`ExecutionOptions` is the backend-neutral execution contract: which
backend runs the generated kernel (``python``, ``c``, or ``auto``), how
many OpenMP threads a native kernel may use, and where compiled artifacts
live.  It deliberately mirrors :class:`repro.pipeline.PipelineOptions`'s
conventions — keyword-only, validated at construction, dict-round-trippable
— because execution options cross the same process boundaries (suite
manifests, benchmark records).

:class:`ExecStats` is the execution-side counterpart of
``SchedulerStats``: which backend was requested vs. actually used (with
``fallback_reason`` when the native path bowed out), compile/execute wall
times, and artifact-cache accounting.  ``from_dict`` tolerates missing
fields so old manifests keep parsing as the format grows.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

__all__ = ["ExecutionOptions", "ExecStats", "ExecBackendError", "BACKENDS"]

#: the execution backends OptimizationResult.run() dispatches over
BACKENDS = ("python", "c", "auto")


class ExecBackendError(RuntimeError):
    """A requested native backend cannot be used (no compiler, no C body,
    compile failure).  Non-strict execution converts this into a Python
    fallback with the message recorded as ``ExecStats.fallback_reason``."""


@dataclass(kw_only=True)
class ExecutionOptions:
    """How to execute generated code.

    All fields are keyword-only (the ``PipelineOptions`` rule: positional
    construction silently re-binds meaning whenever a field is added).

    ``backend``
        ``"python"`` — the exec'd-Python kernel (default; always works);
        ``"c"``/``"auto"`` — compile the emitted C with the system compiler
        and run at hardware speed.  Both degrade to Python when no
        compiler/body is available unless ``strict`` is set; the difference
        is intent: ``"c"`` is an explicit request (CLI ``--backend c``),
        ``"auto"`` asks for the fastest available backend.
    ``threads``
        OpenMP thread count for native kernels (``None`` = the OpenMP
        runtime default).
    ``cache_dir``
        Compiled-artifact cache root; defaults to ``$REPRO_ARTIFACT_CACHE``
        or ``~/.cache/repro/kernels``.
    ``cc``
        Compiler executable; defaults to ``$REPRO_CC`` or the first of
        ``cc``/``gcc``/``clang`` on ``PATH``.
    ``strict``
        Raise :class:`ExecBackendError` instead of falling back to Python.
    """

    backend: str = "python"
    threads: Optional[int] = None
    cache_dir: Optional[str] = None
    cc: Optional[str] = None
    strict: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown execution backend {self.backend!r} "
                f"(expected one of {', '.join(map(repr, BACKENDS))})"
            )
        if self.threads is not None and self.threads < 1:
            raise ValueError("threads must be >= 1 (or None for the default)")

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionOptions":
        known = set(cls.__dataclass_fields__)
        extra = set(data) - known
        if extra:
            raise ValueError(
                f"unknown ExecutionOptions fields: {sorted(extra)}"
            )
        return cls(**data)


@dataclass
class ExecStats:
    """What one kernel execution did (JSON-shaped for manifests/--stats).

    ``backend_requested`` is what the caller asked for; ``backend`` is what
    actually ran — they differ exactly when ``fallback_reason`` is set.
    ``artifact_cache`` records how the compiled ``.so`` was obtained:
    ``"memory"`` (already loaded in this process), ``"disk"`` (reused from
    the content-addressed store, surviving restarts), ``"compiled"`` (cold
    compile), or ``None`` for pure-Python runs.
    """

    backend_requested: str = "python"
    backend: str = "python"
    fallback_reason: Optional[str] = None
    compile_seconds: float = 0.0
    exec_seconds: float = 0.0
    marshal_seconds: float = 0.0
    artifact_cache: Optional[str] = None
    artifact_key: Optional[str] = None
    compiler: Optional[str] = None
    omp: Optional[bool] = None
    threads: Optional[int] = None

    def as_dict(self) -> dict:
        return {
            "backend_requested": self.backend_requested,
            "backend": self.backend,
            "fallback_reason": self.fallback_reason,
            "compile_seconds": self.compile_seconds,
            "exec_seconds": self.exec_seconds,
            "marshal_seconds": self.marshal_seconds,
            "artifact_cache": self.artifact_cache,
            "artifact_key": self.artifact_key,
            "compiler": self.compiler,
            "omp": self.omp,
            "threads": self.threads,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecStats":
        # Every field defaults via .get(): manifests written before a field
        # existed keep parsing (the SchedulerStats.from_dict pattern).
        return cls(
            backend_requested=data.get("backend_requested", "python"),
            backend=data.get("backend", "python"),
            fallback_reason=data.get("fallback_reason"),
            compile_seconds=data.get("compile_seconds", 0.0),
            exec_seconds=data.get("exec_seconds", 0.0),
            marshal_seconds=data.get("marshal_seconds", 0.0),
            artifact_cache=data.get("artifact_cache"),
            artifact_key=data.get("artifact_key"),
            compiler=data.get("compiler"),
            omp=data.get("omp"),
            threads=data.get("threads"),
        )
