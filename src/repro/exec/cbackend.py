"""The native execution backend: compile, load, marshal, run.

:func:`build_c_kernel` turns a :class:`~repro.core.tiling.TiledSchedule`
into a callable :class:`CKernel`: the kernel emitter renders a compilable
translation unit, the artifact cache compiles it (or reuses a prior
``.so``), and ctypes binds the ``repro_kernel`` entry point.

Marshalling follows the emitter's ABI contract
(:class:`repro.codegen.c_emit.CKernelSource`): one flat ``double*`` per
array in sorted-name order, extents and parameters as ``int64`` vectors.
Arrays run **in place** — the same mutation semantics as the Python
backend — with a transparent copy-in/copy-out only for inputs that are not
C-contiguous ``float64``.

A :class:`CKernel` pickles: the ctypes handles are a cache, dropped on
``__getstate__`` and lazily rebuilt on the other side — recompiling
through the artifact cache if the ``.so`` path does not exist there (a
different machine, a cleaned cache).
"""

from __future__ import annotations

import ctypes
import time
from pathlib import Path
from typing import Mapping, Optional

import numpy as np

from repro.codegen.c_emit import CKernelSource, generate_c_kernel
from repro.core.tiling import TiledSchedule
from repro.exec.artifacts import ArtifactCache, artifact_key, find_compiler
from repro.exec.options import ExecBackendError, ExecStats, ExecutionOptions

__all__ = ["CKernel", "build_c_kernel"]

#: loaded shared objects per artifact key (process lifetime) — dlopen'ing
#: the same path repeatedly is legal but wasteful, and the memo is what
#: makes ``artifact_cache == "memory"`` observable
_LOADED: dict[str, ctypes.CDLL] = {}


class CKernel:
    """A compiled native kernel satisfying the ``CompiledKernel`` protocol."""

    backend = "c"

    def __init__(
        self,
        ksrc: CKernelSource,
        lib_path: Path,
        artifact_key: str,
        cache_dir: Optional[str] = None,
        cc: Optional[str] = None,
    ):
        self.ksrc = ksrc
        self.lib_path = str(lib_path)
        self.artifact_key = artifact_key
        self._cache_dir = cache_dir
        self._cc = cc
        self._fn = None
        self._set_threads = None
        self._omp: Optional[bool] = None

    # -- protocol surface --------------------------------------------------

    @property
    def source(self) -> str:
        return self.ksrc.source

    @property
    def omp_enabled(self) -> Optional[bool]:
        return self._omp

    def run(
        self,
        arrays: Mapping[str, np.ndarray],
        params: Mapping[str, int],
        threads: Optional[int] = None,
        stats: Optional[ExecStats] = None,
    ) -> None:
        """Execute in place over ``arrays`` at ``params``."""
        self._ensure_loaded()
        t0 = time.perf_counter()
        bufs, writeback = self._marshal(arrays)
        ptrs = (ctypes.POINTER(ctypes.c_double) * len(bufs))(*[
            b.ctypes.data_as(ctypes.POINTER(ctypes.c_double)) for b in bufs
        ])
        shape_list: list[int] = []
        for buf in bufs:
            shape_list.extend(int(s) for s in buf.shape)
        shapes = (ctypes.c_int64 * max(1, len(shape_list)))(*shape_list)
        try:
            pvals = [int(params[p]) for p in self.ksrc.param_order]
        except KeyError as e:
            raise KeyError(
                f"missing parameter {e.args[0]!r}; kernel "
                f"{self.ksrc.name!r} needs {list(self.ksrc.param_order)}"
            ) from None
        pvec = (ctypes.c_int64 * max(1, len(pvals)))(*pvals)
        if threads is not None and self._set_threads is not None:
            self._set_threads(int(threads))
        if stats is not None:
            stats.marshal_seconds += time.perf_counter() - t0
        t1 = time.perf_counter()
        self._fn(ptrs, shapes, pvec)
        if stats is not None:
            stats.exec_seconds += time.perf_counter() - t1
            stats.omp = self._omp
            stats.threads = threads
        for name, buf in writeback:
            np.copyto(arrays[name], buf)

    # -- loading -----------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if self._fn is not None:
            return
        lib = _LOADED.get(self.artifact_key)
        if lib is None:
            path = Path(self.lib_path)
            if not path.is_file():
                path = self._recompile()
            try:
                lib = ctypes.CDLL(str(path))
            except OSError as e:
                raise ExecBackendError(f"cannot load kernel: {e}") from e
            _LOADED[self.artifact_key] = lib
        fn = getattr(lib, self.ksrc.entry)
        fn.argtypes = [
            ctypes.POINTER(ctypes.POINTER(ctypes.c_double)),
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_int64),
        ]
        fn.restype = None
        self._fn = fn
        set_threads = getattr(lib, "repro_set_threads", None)
        if set_threads is not None:
            set_threads.argtypes = [ctypes.c_int]
            set_threads.restype = None
        self._set_threads = set_threads
        omp_probe = getattr(lib, "repro_omp_enabled", None)
        if omp_probe is not None:
            omp_probe.restype = ctypes.c_int
            self._omp = bool(omp_probe())

    def _recompile(self) -> Path:
        """Rebuild the artifact (post-unpickle on another machine, or a
        cleaned cache); the content address guarantees an identical key
        reproduces an equivalent ``.so``."""
        compiler = find_compiler(self._cc)
        if compiler is None:
            raise ExecBackendError(
                "no C compiler found to rebuild the kernel artifact"
            )
        cache = ArtifactCache(self._cache_dir)
        path, _ = cache.ensure(self.ksrc.source, compiler)
        self.lib_path = str(path)
        return path

    def _marshal(
        self, arrays: Mapping[str, np.ndarray]
    ) -> tuple[list[np.ndarray], list[tuple[str, np.ndarray]]]:
        bufs: list[np.ndarray] = []
        writeback: list[tuple[str, np.ndarray]] = []
        for name in self.ksrc.array_order:
            try:
                a = arrays[name]
            except KeyError:
                raise KeyError(
                    f"missing array {name!r}; kernel {self.ksrc.name!r} "
                    f"needs {list(self.ksrc.array_order)}"
                ) from None
            a = np.asarray(a)
            rank = self.ksrc.array_ranks.get(name, 0)
            if a.ndim != rank:
                raise ValueError(
                    f"array {name!r} has rank {a.ndim}, kernel expects {rank}"
                )
            if a.dtype == np.float64 and a.flags.c_contiguous:
                bufs.append(a)
            else:
                if not np.issubdtype(a.dtype, np.floating) and not (
                    np.issubdtype(a.dtype, np.integer)
                ):
                    raise TypeError(
                        f"array {name!r} has unsupported dtype {a.dtype}"
                    )
                buf = np.ascontiguousarray(a, dtype=np.float64)
                bufs.append(buf)
                writeback.append((name, buf))
        return bufs, writeback

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_fn"] = None
        state["_set_threads"] = None
        return state


def build_c_kernel(
    tsched: TiledSchedule,
    options: Optional[ExecutionOptions] = None,
    stats: Optional[ExecStats] = None,
) -> CKernel:
    """Emit + compile (or reuse) the native kernel for ``tsched``.

    Raises :class:`ExecBackendError` when no compiler is available or the
    source does not compile; the artifact tier (``memory``/``disk``/
    ``compiled``) is recorded on ``stats``.
    """
    options = options or ExecutionOptions()
    compiler = find_compiler(options.cc)
    if compiler is None:
        raise ExecBackendError(
            "no C compiler found (tried $REPRO_CC, cc, gcc, clang)"
        )
    ksrc = generate_c_kernel(tsched)  # CEmitError is an ExecBackendError peer
    cache = ArtifactCache(options.cache_dir)
    key = artifact_key(ksrc.source, compiler)
    path, tier = cache.ensure(ksrc.source, compiler, stats)
    if stats is not None:
        already_loaded = key in _LOADED and tier == "disk"
        stats.artifact_cache = "memory" if already_loaded else tier
    return CKernel(
        ksrc,
        path,
        artifact_key=key,
        cache_dir=options.cache_dir,
        cc=options.cc,
    )
