"""Backend-neutral kernel execution.

The public surface of the execution subsystem:

* :class:`ExecutionOptions` / :class:`ExecStats` — configuration and
  per-run accounting (re-exported from :mod:`repro.api` for stability).
* :class:`CompiledKernel` — the protocol both the Python emitter's
  ``GeneratedCode`` and the native backend's :class:`CKernel` satisfy.
* :func:`compile_kernel` — the dispatch point ``OptimizationResult.run``
  (and everything above it) goes through.
* :class:`ArtifactCache` / :func:`find_compiler` — the content-addressed
  ``.so`` store and compiler discovery, for tooling and tests.
"""

from repro.exec.artifacts import (
    ARTIFACT_CACHE_ENV,
    CC_ENV,
    ArtifactCache,
    Compiler,
    artifact_key,
    default_cache_dir,
    find_compiler,
)
from repro.exec.cbackend import CKernel, build_c_kernel
from repro.exec.dispatch import CompiledKernel, compile_kernel
from repro.exec.options import (
    BACKENDS,
    ExecBackendError,
    ExecStats,
    ExecutionOptions,
)

__all__ = [
    "ARTIFACT_CACHE_ENV",
    "BACKENDS",
    "CC_ENV",
    "ArtifactCache",
    "CKernel",
    "Compiler",
    "CompiledKernel",
    "ExecBackendError",
    "ExecStats",
    "ExecutionOptions",
    "artifact_key",
    "build_c_kernel",
    "compile_kernel",
    "default_cache_dir",
    "find_compiler",
]
