"""Backend-neutral kernel compilation: the seam the execution API sits on.

:class:`CompiledKernel` is the protocol both emitters satisfy — the Python
emitter's :class:`~repro.codegen.python_emit.GeneratedCode` and the native
backend's :class:`~repro.exec.cbackend.CKernel` each expose ``backend``,
``source``, and an in-place ``run(arrays, params)``.  Callers that hold a
``CompiledKernel`` never branch on which one they got.

:func:`compile_kernel` is the single dispatch point.  ``backend="python"``
always succeeds; ``"c"``/``"auto"`` try the native path and — unless
``strict`` — degrade to Python with the reason recorded in
``ExecStats.fallback_reason``, so a missing compiler downgrades a run
instead of failing it.
"""

from __future__ import annotations

from typing import Mapping, Optional, Protocol, runtime_checkable

import numpy as np

from repro.core.tiling import TiledSchedule
from repro.exec.cbackend import build_c_kernel
from repro.exec.options import ExecBackendError, ExecStats, ExecutionOptions

__all__ = ["CompiledKernel", "compile_kernel"]


@runtime_checkable
class CompiledKernel(Protocol):
    """What every execution backend hands back.

    ``run`` mutates ``arrays`` in place; ``backend`` names the engine that
    will execute ("python" or "c"); ``source`` is the emitted kernel text
    in that backend's language.
    """

    backend: str

    @property
    def source(self) -> str: ...

    def run(
        self, arrays: Mapping[str, np.ndarray], params: Mapping[str, int]
    ) -> None: ...


def compile_kernel(
    tsched: TiledSchedule,
    options: Optional[ExecutionOptions] = None,
    stats: Optional[ExecStats] = None,
    code=None,
):
    """Compile ``tsched`` for the backend ``options`` selects.

    ``code`` is an already-generated Python :class:`GeneratedCode` to reuse
    for the Python backend (and the fallback), so dispatch never re-emits
    what the pipeline already produced.  Returns a :class:`CompiledKernel`.

    With ``options.strict`` the native path raises
    :class:`ExecBackendError` instead of falling back.
    """
    from repro.codegen import generate_python  # cycle: codegen -> exec facade

    options = options or ExecutionOptions()
    if stats is not None:
        stats.backend_requested = options.backend
    if options.backend in ("c", "auto"):
        try:
            kernel = build_c_kernel(tsched, options, stats)
            if stats is not None:
                stats.backend = "c"
            return kernel
        except ExecBackendError as e:
            if options.strict:
                raise
            if stats is not None:
                stats.fallback_reason = str(e)
    if stats is not None:
        stats.backend = "python"
    return code if code is not None else generate_python(tsched)
