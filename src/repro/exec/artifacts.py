"""Content-addressed cache of compiled kernel artifacts.

Exactly the schedule cache's contract (:mod:`repro.server.cache`), applied
to ``.so`` files: the key is ``sha256(emitted source + compiler
fingerprint + flags)``, entries live at ``<root>/<k[:2]>/<key>.so`` with
the source alongside as ``<key>.c`` (debuggability + recompilation), disk
writes are atomic (tmp + rename), and there is no invalidation protocol —
a different source, compiler, or flag set is simply a different key, and
the root can be deleted wholesale at any time.  The cache survives
restarts: a daemon or test process that re-requests a kernel it compiled
in an earlier life gets a hit, not a rebuild.

The compiler is discovered once per process (``$REPRO_CC``, then ``cc``,
``gcc``, ``clang`` on PATH) and fingerprinted by its ``--version`` first
line, so upgrading the toolchain re-keys every artifact automatically.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.exec.options import ExecBackendError, ExecStats

__all__ = [
    "ARTIFACT_CACHE_ENV",
    "CC_ENV",
    "CFLAGS",
    "Compiler",
    "ArtifactCache",
    "artifact_key",
    "default_cache_dir",
    "find_compiler",
]

#: environment override for the artifact-cache root
ARTIFACT_CACHE_ENV = "REPRO_ARTIFACT_CACHE"
#: environment override for the compiler executable
CC_ENV = "REPRO_CC"

#: compile flags for every kernel.  ``-ffp-contract=off`` keeps the
#: compiler from fusing multiply-adds into FMAs, preserving the exact
#: IEEE rounding sequence the Python emitter performs — this is what makes
#: bit-compatibility between the backends achievable rather than merely
#: ULP-approximate on FMA hardware.
CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")

_COMPILER_CANDIDATES = ("cc", "gcc", "clang")

#: probed compilers per executable path (process lifetime)
_COMPILERS: dict[str, Optional["Compiler"]] = {}


@dataclass(frozen=True)
class Compiler:
    """A discovered C compiler and its cache-key fingerprint."""

    path: str
    version: str  # first line of `--version`

    @property
    def fingerprint(self) -> str:
        return f"{self.version}|{' '.join(CFLAGS)}|-fopenmp"


def default_cache_dir() -> Path:
    env = os.environ.get(ARTIFACT_CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "kernels"


def find_compiler(cc: Optional[str] = None) -> Optional[Compiler]:
    """Locate and fingerprint a C compiler; ``None`` when there is none.

    ``cc`` (or ``$REPRO_CC``) overrides discovery; otherwise the first of
    ``cc``/``gcc``/``clang`` on PATH wins.  Probes are memoized for the
    life of the process — toolchains do not change underneath a run.
    """
    candidates = [cc] if cc else (
        [os.environ[CC_ENV]] if os.environ.get(CC_ENV)
        else list(_COMPILER_CANDIDATES)
    )
    for cand in candidates:
        if cand in _COMPILERS:
            found = _COMPILERS[cand]
            if found is not None:
                return found
            continue
        path = shutil.which(cand)
        if path is None:
            _COMPILERS[cand] = None
            continue
        try:
            probe = subprocess.run(
                [path, "--version"],
                capture_output=True, text=True, timeout=30,
            )
            version = (probe.stdout or probe.stderr).splitlines()[0].strip()
        except (OSError, subprocess.TimeoutExpired, IndexError):
            _COMPILERS[cand] = None
            continue
        compiler = Compiler(path=path, version=version)
        _COMPILERS[cand] = compiler
        return compiler
    return None


def artifact_key(source: str, compiler: Compiler) -> str:
    """Content address of one compiled kernel (hex sha256)."""
    h = hashlib.sha256()
    h.update(source.encode("utf-8"))
    h.update(b"\0")
    h.update(compiler.fingerprint.encode("utf-8"))
    return h.hexdigest()


class ArtifactCache:
    """The on-disk ``.so`` store; safe for concurrent writers.

    Not an LRU — compiled kernels are a few tens of kilobytes and the
    working set (one per distinct schedule) is small; content addressing
    means entries never go stale, only unused.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self.root = Path(cache_dir) if cache_dir is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.so"

    def source_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.c"

    def ensure(
        self,
        source: str,
        compiler: Compiler,
        stats: Optional[ExecStats] = None,
    ) -> tuple[Path, str]:
        """Return ``(path-to-.so, tier)``, compiling on a miss.

        ``tier`` is ``"disk"`` for a reused artifact and ``"compiled"``
        for a cold build; compile wall time lands in
        ``stats.compile_seconds``.  Raises :class:`ExecBackendError` when
        the compiler rejects the source.
        """
        key = artifact_key(source, compiler)
        if stats is not None:
            stats.artifact_key = key
            stats.compiler = compiler.version
        path = self.path_for(key)
        if path.is_file():
            return path, "disk"
        t0 = time.perf_counter()
        self._compile(source, compiler, key, path)
        if stats is not None:
            stats.compile_seconds += time.perf_counter() - t0
        return path, "compiled"

    def _compile(
        self, source: str, compiler: Compiler, key: str, path: Path
    ) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        src = self.source_path_for(key)
        # tmp names keep their real extensions (cc decides the language by
        # suffix); the pid suffix keeps concurrent writers apart
        tmp_src = src.with_name(f"{key}.tmp{os.getpid()}.c")
        tmp_so = path.with_name(f"{key}.tmp{os.getpid()}.so")
        tmp_src.write_text(source)
        cmd = [compiler.path, *CFLAGS, "-fopenmp",
               "-o", str(tmp_so), str(tmp_src), "-lm"]
        try:
            run = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
            if run.returncode != 0:
                # toolchains without libgomp: retry serial (results are
                # identical, only parallel speed is lost)
                cmd_serial = [c for c in cmd if c != "-fopenmp"]
                run = subprocess.run(
                    cmd_serial, capture_output=True, text=True, timeout=300
                )
            if run.returncode != 0:
                detail = (run.stderr or run.stdout).strip().splitlines()
                raise ExecBackendError(
                    "compile failed: " + (detail[0] if detail else "unknown error")
                )
            os.replace(tmp_src, src)
            os.replace(tmp_so, path)
        except (OSError, subprocess.TimeoutExpired) as e:
            raise ExecBackendError(f"compile failed: {e}") from e
        finally:
            for tmp in (tmp_src, tmp_so):
                try:
                    tmp.unlink()
                except OSError:
                    pass

    # -- introspection -----------------------------------------------------

    def entries(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.so"))
