"""Code generation from (tiled) schedules — the CLooG-role substrate."""

from repro.codegen.c_emit import generate_c
from repro.codegen.original import original_schedule
from repro.codegen.python_emit import GeneratedCode, generate_python
from repro.codegen.scan import Bound, ScanSystem, build_scan_systems, z_name

__all__ = [
    "Bound",
    "GeneratedCode",
    "ScanSystem",
    "build_scan_systems",
    "generate_c",
    "generate_python",
    "original_schedule",
    "z_name",
]
