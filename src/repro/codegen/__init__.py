"""Code generation from (tiled) schedules — the CLooG-role substrate."""

from repro.codegen.c_emit import (
    CEmitError,
    CKernelSource,
    generate_c,
    generate_c_kernel,
)
from repro.codegen.original import original_schedule
from repro.codegen.python_emit import (
    GeneratedCode,
    _new_generated_code,
    generate_python,
)
from repro.codegen.scan import Bound, ScanSystem, build_scan_systems, z_name
from repro.core.tiling import TiledSchedule

__all__ = [
    "Bound",
    "CEmitError",
    "CKernelSource",
    "GeneratedCode",
    "ScanSystem",
    "build_scan_systems",
    "generate_c",
    "generate_c_kernel",
    "generate_python",
    "make_generated_code",
    "original_schedule",
    "z_name",
]


def make_generated_code(
    python_source: str, tsched: TiledSchedule, traced: bool = False
) -> GeneratedCode:
    """The one sanctioned constructor for :class:`GeneratedCode`.

    Deserialization and tooling must come through here rather than calling
    ``GeneratedCode(...)`` directly (which now emits a
    ``DeprecationWarning``): this factory is the single place construction
    invariants for the Python-backend kernel live, mirroring how native
    kernels are only built by :func:`repro.exec.build_c_kernel`.
    """
    return _new_generated_code(python_source, tsched, traced=traced)
