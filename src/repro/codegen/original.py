"""Reconstruct a scanning order for the *original* program (identity codegen).

The builder records each statement's original 2d+1 interleaving (scalar
positions alternating with iterator dimensions).  Rendering that directly as
a :class:`TiledSchedule` gives a generated kernel that executes the program
in source order — the reference side of the validation harness, and the
"code icc compiles" side of the performance comparison.
"""

from __future__ import annotations

from repro.core.tiling import TiledRow, TiledSchedule
from repro.frontend.ir import Program
from repro.polyhedra import AffExpr

__all__ = ["original_schedule"]


def original_schedule(program: Program) -> TiledSchedule:
    """The program's source order as a scannable schedule.

    2d+1 schedules alternate scalar and loop levels uniformly across
    statements; shorter statements are padded with constant zeros of the
    level's kind.
    """
    depth = max((len(s.sched) for s in program.statements), default=0)
    out = TiledSchedule(program)
    for level in range(depth):
        kinds = set()
        exprs: dict[str, AffExpr] = {}
        for s in program.statements:
            if level < len(s.sched):
                entry = s.sched[level]
                if isinstance(entry, int):
                    kinds.add("scalar")
                    exprs[s.name] = AffExpr.const(s.space, entry)
                else:
                    kinds.add("loop")
                    exprs[s.name] = entry
            else:
                exprs[s.name] = AffExpr.const(s.space, 0)
        if not kinds:
            kind = "scalar"
        elif len(kinds) > 1:
            raise ValueError(
                f"inconsistent 2d+1 schedules at level {level} of {program.name}"
            )
        else:
            kind = kinds.pop()
        out.rows.append(TiledRow(kind, exprs))
    return out
