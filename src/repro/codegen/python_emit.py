"""Emit executable Python from a (tiled) schedule.

The generated function has signature ``kernel(arrays, params)`` where
``arrays`` maps array names to numpy ndarrays (0-d arrays for scalars) and
``params`` maps parameter names to ints.  With ``trace=True`` the signature
gains a ``__trace`` list that records ``(statement, iteration_vector)`` in
execution order — the correctness harness uses it to verify that the
transformed code executes every domain point exactly once and in a
dependence-respecting order.
"""

from __future__ import annotations

import ast
import math
import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.codegen.emit_common import merge_bounds, render_lower, render_upper
from repro.codegen.scan import ScanSystem, build_scan_systems, z_name
from repro.core.reductions import REDUCTION_IDENTITY, reduction_split
from repro.core.tiling import TiledSchedule
from repro.frontend.ir import Statement

__all__ = ["GeneratedCode", "generate_python"]

_EXEC_GLOBALS = {
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "fabs": abs,
    "abs": abs,
    "pow": pow,
    "floor": math.floor,
    "ceil": math.ceil,
    "fmin": min,
    "fmax": max,
    "min": min,
    "max": max,
    "range": range,
}


#: nonzero while the sanctioned factory is constructing (see
#: :func:`repro.codegen.make_generated_code`)
_factory_depth = 0


@dataclass
class GeneratedCode:
    """Compiled kernel plus its source and schedule metadata.

    Satisfies the :class:`repro.exec.CompiledKernel` protocol — this is the
    ``backend == "python"`` implementation, with the native backend's
    ``CKernel`` as its peer.  Construct through
    :func:`repro.codegen.make_generated_code`; calling the class directly
    is deprecated (the factory is where cross-emitter invariants live).
    """

    python_source: str
    tsched: TiledSchedule
    traced: bool = False
    _func: Optional[Callable] = field(default=None, repr=False, compare=False)

    backend = "python"

    def __post_init__(self) -> None:
        if _factory_depth == 0:
            warnings.warn(
                "constructing GeneratedCode(...) directly is deprecated; "
                "use repro.codegen.make_generated_code(...)",
                DeprecationWarning,
                stacklevel=3,
            )

    @property
    def source(self) -> str:
        """The emitted kernel text (CompiledKernel protocol surface)."""
        return self.python_source

    def __getstate__(self) -> dict:
        """Pickle support: the compiled handle is a cache, not state.

        ``exec``-produced functions cannot cross process boundaries; the
        :attr:`function` property rebuilds one lazily from the source on the
        other side, so results survive pickling unchanged."""
        state = self.__dict__.copy()
        state["_func"] = None
        return state

    @property
    def function(self) -> Callable:
        if self._func is None:
            ns: dict = {}
            exec(compile(self.python_source, "<repro-codegen>", "exec"),
                 dict(_EXEC_GLOBALS), ns)
            self._func = ns["kernel"]
        return self._func

    def run(self, arrays: dict, params: dict, trace: Optional[list] = None):
        if self.traced:
            return self.function(arrays, params, [] if trace is None else trace)
        return self.function(arrays, params)


class _Emitter:
    def __init__(self, tsched: TiledSchedule, trace: bool):
        self.tsched = tsched
        self.program = tsched.program
        self.trace = trace
        self.systems = {
            sys.stmt.name: sys for sys in build_scan_systems(tsched)
        }
        self.lines: list[str] = []
        #: statements currently rewritten into a privatized partial sum:
        #: stmt name -> (accumulator variable, combine op)
        self._privatized: dict[str, tuple[str, str]] = {}

    def line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def emit(self) -> str:
        sig = "def kernel(arrays, params, __trace):" if self.trace else "def kernel(arrays, params):"
        self.line(0, sig)
        for p in self.program.params:
            self.line(1, f"{p} = params['{p}']")
        for a in sorted(self.program.arrays()):
            self.line(1, f"{a} = arrays['{a}']")
        if not self.program.statements:
            self.line(1, "pass")
            return "\n".join(self.lines) + "\n"
        self.emit_level(0, list(self.program.statements), 1)
        return "\n".join(self.lines) + "\n"

    # -- recursion ---------------------------------------------------------------

    def emit_level(self, level: int, stmts: list[Statement], indent: int) -> None:
        if level == self.tsched.depth:
            for s in self.program.statements:
                if s in stmts:
                    self.emit_statement(s, indent)
            return
        row = self.tsched.rows[level]
        if row.kind == "scalar":
            groups: dict[int, list[Statement]] = {}
            for s in stmts:
                groups.setdefault(row.expr_for(s).const_term, []).append(s)
            for value in sorted(groups):
                self.line(indent, f"{z_name(level)} = {value}")
                self.emit_level(level + 1, groups[value], indent)
            return

        lowers: list[str] = []
        uppers: list[str] = []
        for s in stmts:
            lo, up = self.systems[s.name].z_bounds(level)
            if not lo or not up:
                raise RuntimeError(
                    f"unbounded scan dimension z{level} for {s.name}"
                )
            lowers.append(merge_bounds([render_lower(b) for b in lo], "max"))
            uppers.append(merge_bounds([render_upper(b) for b in up], "min"))
        # The loop covers the union: min of the lower bounds, max of uppers.
        lb = merge_bounds(lowers, "min")
        ub = merge_bounds(uppers, "max")
        plan = self._reduction_plan(row, stmts)
        if plan is not None:
            # Privatized partial-sum form: seed the accumulator with the
            # operator identity, fold the update expression inside the
            # loop, and combine into the written cell once afterwards.
            # Deliberately reassociates the accumulation — that is the
            # semantics parallel execution would have, which keeps this
            # backend an honest reference for tolerance verification.
            stmt, split = plan
            acc = f"__red{level}"
            self.line(indent, f"{acc} = {REDUCTION_IDENTITY[split.op]}")
            self.line(
                indent,
                f"for {z_name(level)} in range({lb}, ({ub}) + 1):"
                f"  # parallel reduction",
            )
            self._privatized[stmt.name] = (acc, split.op)
            try:
                self.emit_level(level + 1, stmts, indent + 1)
            finally:
                del self._privatized[stmt.name]
            target = ast.unparse(split.target)
            self.line(indent, f"{target} = {target} {split.op} {acc}")
            return
        if row.reduction:
            tag = "  # parallel (reduction)" if row.parallel else ""
        else:
            tag = "  # parallel" if row.parallel else ""
        self.line(indent, f"for {z_name(level)} in range({lb}, ({ub}) + 1):{tag}")
        self.emit_level(level + 1, stmts, indent + 1)

    def _reduction_plan(self, row, stmts: list[Statement]):
        """Privatization decision for a reduction-tagged loop row.

        Applies only in the clean case: the subtree scans exactly one
        statement, that statement is tagged on this row, it is not already
        privatized by an enclosing reduction loop, and its accumulator is a
        scalar (rank-0 write) — so the combine after the loop targets a
        location provably invariant across the loop.  Array-cell
        accumulators keep their original body (serial Python execution is
        correct as-is); the loop is still annotated as a reduction.
        """
        if not row.reduction or row.parallel is not True or len(stmts) != 1:
            return None
        stmt = stmts[0]
        if stmt.name in self._privatized:
            return None
        if not any(tag["stmt"] == stmt.name for tag in row.reduction):
            return None
        if len(stmt.writes) != 1 or stmt.writes[0].map.exprs:
            return None  # array-cell accumulator: no safe hoist point
        split = reduction_split(stmt.body)
        if split is None:
            return None
        return stmt, split

    def emit_statement(self, stmt: Statement, indent: int) -> None:
        sys = self.systems[stmt.name]
        cur = indent
        # Statement-specific scan-dim guards (loop bounds cover the union of
        # all statements; a statement whose schedule pins a level the others
        # iterate over needs its own check).
        if len(self.program.statements) > 1:
            conds: list[str] = []
            from repro.codegen.emit_common import render_expr

            for con in sys.z_guards():
                op = "==" if con.equality else ">="
                conds.append(f"{render_expr(con.expr)} {op} 0")
            conds = list(dict.fromkeys(conds))
            if conds:
                self.line(cur, f"if {' and '.join(conds)}:")
                cur += 1
        for k, it in enumerate(stmt.space.dims):
            lo, up = sys.iter_bounds(k)
            if not lo or not up:
                raise RuntimeError(
                    f"unbounded iterator {it} recovering {stmt.name}"
                )
            lb = merge_bounds([render_lower(b) for b in lo], "max")
            ub = merge_bounds([render_upper(b) for b in up], "min")
            self.line(cur, f"for {it} in range({lb}, ({ub}) + 1):")
            cur += 1
        if stmt.space.dims:
            body_indent = cur
        else:
            body_indent = cur
        privatized = self._privatized.get(stmt.name)
        if privatized is not None:
            acc, op = privatized
            split = reduction_split(stmt.body)
            self.line(
                body_indent, f"{acc} = {acc} {op} ({ast.unparse(split.update)})"
            )
        else:
            self.line(body_indent, stmt.body)
        if self.trace:
            vec = ", ".join(stmt.space.dims)
            vec = f"({vec},)" if stmt.space.dims else "()"
            self.line(body_indent, f"__trace.append(('{stmt.name}', {vec}))")


def _new_generated_code(
    python_source: str, tsched: TiledSchedule, traced: bool = False
) -> GeneratedCode:
    """Construct without the direct-call deprecation warning (the factory
    and the emitter come through here)."""
    global _factory_depth
    _factory_depth += 1
    try:
        return GeneratedCode(python_source, tsched, traced=traced)
    finally:
        _factory_depth -= 1


def generate_python(tsched: TiledSchedule, trace: bool = False) -> GeneratedCode:
    """Generate an executable Python kernel scanning ``tsched``."""
    emitter = _Emitter(tsched, trace)
    source = emitter.emit()
    return _new_generated_code(source, tsched, traced=trace)
