"""Shared expression/bounds rendering for the Python and C emitters."""

from __future__ import annotations

from typing import Sequence

from repro.codegen.scan import Bound
from repro.polyhedra import AffExpr

__all__ = ["render_expr", "render_lower", "render_upper", "merge_bounds"]


def render_expr(e: AffExpr) -> str:
    """Affine expression as source text (valid in both Python and C)."""
    parts: list[str] = []
    for i, name in enumerate(e.space.names):
        c = e.coeffs[i]
        if c == 0:
            continue
        if c == 1:
            term = name
        elif c == -1:
            term = f"-{name}"
        else:
            term = f"{c}*{name}"
        if parts and not term.startswith("-"):
            parts.append(f"+ {term}")
        elif parts:
            parts.append(f"- {term[1:]}")
        else:
            parts.append(term)
    const = e.coeffs[-1]
    if const or not parts:
        if parts:
            parts.append(f"+ {const}" if const >= 0 else f"- {-const}")
        else:
            parts.append(str(const))
    return " ".join(parts)


def render_lower(b: Bound, lang: str = "py") -> str:
    """``ceil(expr / div)`` as source text (floor-division based)."""
    inner = render_expr(b.expr)
    if b.div == 1:
        return inner
    if lang == "py":
        return f"-((-({inner})) // {b.div})"
    return f"ceild({inner}, {b.div})"


def render_upper(b: Bound, lang: str = "py") -> str:
    """``floor(expr / div)`` as source text."""
    inner = render_expr(b.expr)
    if b.div == 1:
        return inner
    if lang == "py":
        return f"({inner}) // {b.div}"
    return f"floord({inner}, {b.div})"


def merge_bounds(
    rendered: Sequence[str], outermost: str, lang: str = "py"
) -> str:
    """Combine several bound expressions with max/min.

    ``outermost`` is ``"max"`` for lower bounds and ``"min"`` for uppers.
    """
    uniq = list(dict.fromkeys(rendered))
    if not uniq:
        raise ValueError("variable has no bound in this direction")
    if len(uniq) == 1:
        return uniq[0]
    if lang == "py":
        return f"{outermost}({', '.join(uniq)})"
    # C: nested binary helpers; prefixed names so the emitted source
    # compiles cleanly next to <sys/param.h>/libc min/max definitions
    out = uniq[0]
    fn = f"repro_{outermost}"
    for nxt in uniq[1:]:
        out = f"{fn}({out}, {nxt})"
    return out
