"""Polyhedra scanning: per-statement scan systems and loop bound extraction.

The generator (CLooG's role) scans the *image* of each statement's domain
under its transformation.  For a schedule of depth ``D`` a statement's scan
system lives in the space ``(z0..z_{D-1}, original iterators; params)`` with

* ``z_l == phi_l(iters)``                    for loop and scalar levels,
* ``ts*z_l <= phi_l(iters) <= ts*z_l+ts-1``  for tile levels,

plus the original domain constraints.  Loop bounds for ``z_l`` come from a
Fourier–Motzkin projection onto ``z0..z_l``; the original iterators are
recovered innermost as (usually unit-range) loops whose bounds come from the
same system with all ``z`` outer.  This makes non-unimodular transformations
(diamond tiling's determinant-2 pairs) and inter-statement guards correct by
construction: infeasible combinations yield empty ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.tiling import TiledSchedule
from repro.frontend.ir import Statement
from repro.polyhedra import AffExpr, BasicSet, Constraint, Space

__all__ = ["ScanSystem", "build_scan_systems", "Bound", "z_name"]


def z_name(level: int) -> str:
    return f"z{level}"


@dataclass(frozen=True)
class Bound:
    """``var >= ceil(expr / div)`` or ``var <= floor(expr / div)``."""

    expr: AffExpr
    div: int


class ScanSystem:
    """Scan-space constraint system for one statement, with cached projections."""

    def __init__(self, stmt: Statement, tsched: TiledSchedule):
        self.stmt = stmt
        self.depth = tsched.depth
        z_dims = tuple(z_name(l) for l in range(self.depth))
        for it in stmt.space.dims:
            if it in z_dims:
                raise ValueError(
                    f"iterator name {it!r} collides with scan dimension names"
                )
        self.space = Space(z_dims + stmt.space.dims, stmt.space.params)
        self.system = BasicSet(self.space)
        for con in stmt.domain.constraints:
            self.system.add(con.rebase(self.space))
        for l, row in enumerate(tsched.rows):
            phi = row.expr_for(stmt).rebase(self.space)
            z = AffExpr.var(self.space, z_name(l))
            if row.kind == "tile":
                ts = row.tile_size
                self.system.add(Constraint(phi - ts * z))            # phi >= ts*z
                self.system.add(Constraint(ts * z + (ts - 1) - phi))  # phi <= ts*z+ts-1
            else:
                self.system.add(Constraint(z - phi, equality=True))
        self._z_projections: list[BasicSet] | None = None
        self._iter_projections: list[BasicSet] | None = None

    # -- projections ------------------------------------------------------------

    def _compute_z_projections(self) -> list[BasicSet]:
        """``R[l]`` = system projected onto ``z0..z_l`` (+ params)."""
        chain: list[BasicSet] = [None] * self.depth  # type: ignore[list-item]
        current = self.system.project_out(list(self.stmt.space.dims))
        for l in range(self.depth - 1, -1, -1):
            chain[l] = current
            if l > 0:
                current = current.project_out([z_name(l)])
        return chain

    def _compute_iter_projections(self) -> list[BasicSet]:
        """``T[k]`` = system with iterators deeper than ``k`` projected out."""
        iters = self.stmt.space.dims
        chain: list[BasicSet] = [None] * len(iters)  # type: ignore[list-item]
        current = self.system
        for k in range(len(iters) - 1, -1, -1):
            chain[k] = current
            if k > 0:
                current = current.project_out([iters[k]])
        return chain

    def z_bounds(self, level: int) -> tuple[list[Bound], list[Bound]]:
        """(lower, upper) bounds for ``z_level`` over outer z's and params."""
        if self._z_projections is None:
            self._z_projections = self._compute_z_projections()
        proj = self._z_projections[level]
        lowers, uppers = proj.bounds_for(z_name(level))
        return (
            [Bound(e, k) for e, k in lowers],
            [Bound(e, k) for e, k in uppers],
        )

    def iter_bounds(self, k: int) -> tuple[list[Bound], list[Bound]]:
        """(lower, upper) bounds for the statement's ``k``-th iterator over
        all scan dims, outer iterators, and params."""
        if self._iter_projections is None:
            self._iter_projections = self._compute_iter_projections()
        proj = self._iter_projections[k]
        lowers, uppers = proj.bounds_for(self.stmt.space.dims[k])
        return (
            [Bound(e, k2) for e, k2 in lowers],
            [Bound(e, k2) for e, k2 in uppers],
        )

    def z_guards(self):
        """Constraints over the scan dims alone that gate this statement.

        Loop bounds cover the *union* of all statements' scan ranges, and the
        innermost iterator-recovery loops only enforce constraints that
        involve iterators.  A constraint mentioning only ``z`` dims (e.g.
        ``z2 == 0`` for a statement whose schedule is constant at a level
        where another statement iterates) must therefore be re-checked as an
        explicit guard.  Returns the constraints of the projection onto the
        scan dims, minus parameter-only rows.
        """
        if self._z_projections is None:
            self._z_projections = self._compute_z_projections()
        proj = self._z_projections[self.depth - 1] if self.depth else None
        if proj is None:
            return []
        out = []
        for con in proj.constraints:
            if any(
                con.expr.coeff_of(z_name(l)) != 0 for l in range(self.depth)
            ):
                out.append(con)
        return out


def build_scan_systems(tsched: TiledSchedule) -> list[ScanSystem]:
    return [ScanSystem(s, tsched) for s in tsched.program.statements]
