"""Emit C source (with OpenMP pragmas) from a tiled schedule.

Two modes share one scanning emitter:

* **display** (:func:`generate_c`) renders the same scanning structure as
  the C a Pluto-style source-to-source tool would hand to icc — loop nests
  with ``#pragma omp parallel for`` on parallel dimensions and the
  statements' original C bodies.  It is what ``repro opt --emit c`` prints.
* **kernel** (:func:`generate_c_kernel`) renders a *complete, compilable
  translation unit*: a ``repro_kernel(double **arrays, const int64_t
  *shapes, const int64_t *params)`` entry point that the native execution
  backend (:mod:`repro.exec`) compiles with the system compiler and calls
  through ctypes.  Arrays are marshalled as flat ``double`` buffers in
  sorted-name order (the same order the Python emitter binds them) and
  rebound to C99 variable-length-array pointers.  Statement bodies are
  translated from their *Python* form (the semantics the Python emitter
  actually executes — including periodic ``% N`` wraparound the display
  text elides) with Python's floor-mod/floor-div mapped onto helpers.

The bound helper macros are ``#ifndef``-guarded and the ``min``/``max``
helpers carry a ``repro_`` prefix: the bare names collide with
``<sys/param.h>``/libc definitions under real compilers, which mattered the
moment this emitter's output started being compiled rather than just read.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.codegen.emit_common import (
    merge_bounds,
    render_expr,
    render_lower,
    render_upper,
)
from repro.codegen.scan import build_scan_systems, z_name
from repro.core.reductions import REDUCTION_IDENTITY, reduction_split
from repro.core.tiling import TiledSchedule
from repro.frontend.ir import Program, Statement

__all__ = [
    "CKernelSource",
    "KERNEL_ENTRY",
    "CEmitError",
    "generate_c",
    "generate_c_kernel",
]

#: the exported entry point of every compiled kernel
KERNEL_ENTRY = "repro_kernel"

_HEADER = """\
#ifndef ceild
#define ceild(n, d) (((n) > 0) ? (1 + ((n) - 1) / (d)) : -((-(n)) / (d)))
#endif
#ifndef floord
#define floord(n, d) (((n) > 0) ? (n) / (d) : -((-(n) + (d) - 1) / (d)))
#endif
#ifndef repro_max
#define repro_max(a, b) ((a) > (b) ? (a) : (b))
#endif
#ifndef repro_min
#define repro_min(a, b) ((a) < (b) ? (a) : (b))
#endif
#ifndef repro_mod
#define repro_mod(a, b) (((a) % (b) + (b)) % (b))
#endif
"""

_KERNEL_EPILOGUE = """\

#ifdef _OPENMP
#include <omp.h>
void repro_set_threads(int n) { if (n > 0) omp_set_num_threads(n); }
int repro_omp_enabled(void) { return 1; }
#else
void repro_set_threads(int n) { (void)n; }
int repro_omp_enabled(void) { return 0; }
#endif
"""


class CEmitError(RuntimeError):
    """The program cannot be rendered as a compilable C kernel."""


def array_ranks(program: Program) -> dict[str, int]:
    """Per-array rank: the maximum access arity, matching
    :func:`repro.runtime.arrays.infer_shapes`'s padding rule."""
    ranks: dict[str, int] = {}
    for stmt in program.statements:
        for acc in stmt.reads + stmt.writes:
            ranks[acc.array] = max(ranks.get(acc.array, 0), acc.arity)
    return ranks


@dataclass(frozen=True)
class CKernelSource:
    """A compilable kernel translation unit plus its marshalling contract.

    The entry point's ABI::

        void repro_kernel(double **arrays,
                          const int64_t *shapes,
                          const int64_t *params);

    ``arrays`` holds one base pointer per array in :attr:`array_order`
    (sorted name order — exactly how the Python emitter binds ``arrays``);
    ``shapes`` is the per-array extents flattened in the same order (each
    array contributing :attr:`array_ranks```[name]`` entries); ``params``
    follows :attr:`param_order`.  All three use 64-bit integers.
    """

    source: str
    name: str
    entry: str
    array_order: tuple[str, ...]
    array_ranks: dict[str, int]
    param_order: tuple[str, ...]


#: body-level calls → the libm/helper names the kernel compiles against.
#: ``abs`` maps to ``fabs`` (data are always doubles; C's integer ``abs``
#: would truncate); ``min``/``max``/``fmin``/``fmax`` go through the
#: prefixed macros, whose compare-and-select matches Python's builtins on
#: doubles bit-for-bit.
_C_FUNCS = {
    "min": "repro_min", "max": "repro_max",
    "fmin": "repro_min", "fmax": "repro_max",
    "abs": "fabs", "fabs": "fabs",
    "sqrt": "sqrt", "exp": "exp", "log": "log",
    "sin": "sin", "cos": "cos", "tan": "tan",
    "pow": "pow", "floor": "floor", "ceil": "ceil",
}

_C_BINOPS = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*"}
_C_CMPOPS = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<",
    ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
}


def _expr_c(node: ast.expr, ranks: dict[str, int]) -> str:
    """One Python body expression as C, preserving the evaluation tree.

    Every binary operation is parenthesized, so C re-association can never
    change the floating-point rounding sequence the Python kernel performs.
    The semantic gaps between the languages are papered over explicitly:
    Python's floor-mod becomes ``repro_mod`` (C's ``%`` truncates toward
    zero), ``//`` becomes ``floord``, and true division casts through
    ``double`` (Python ``/`` never truncates).
    """
    if isinstance(node, ast.BinOp):
        left = _expr_c(node.left, ranks)
        right = _expr_c(node.right, ranks)
        op = type(node.op)
        if op is ast.Mod:
            return f"repro_mod({left}, {right})"
        if op is ast.FloorDiv:
            return f"floord({left}, {right})"
        if op is ast.Pow:
            return f"pow({left}, {right})"
        if op is ast.Div:
            return f"((double)({left}) / (double)({right}))"
        if op in _C_BINOPS:
            return f"({left} {_C_BINOPS[op]} {right})"
        raise CEmitError(f"cannot translate operator {op.__name__} to C")
    if isinstance(node, ast.UnaryOp):
        inner = _expr_c(node.operand, ranks)
        if isinstance(node.op, ast.USub):
            return f"(-{inner})"
        if isinstance(node.op, ast.UAdd):
            return inner
        raise CEmitError(
            f"cannot translate operator {type(node.op).__name__} to C"
        )
    if isinstance(node, ast.Subscript):
        if not isinstance(node.value, ast.Name):
            raise CEmitError("only direct array subscripts translate to C")
        name = node.value.id
        idx = node.slice
        elts = list(idx.elts) if isinstance(idx, ast.Tuple) else [idx]
        if not elts:  # x[()] — the Python spelling of a scalar
            return f"{name}[0]"
        return name + "".join(f"[{_expr_c(e, ranks)}]" for e in elts)
    if isinstance(node, ast.Name):
        if ranks.get(node.id) == 0:
            # scalar data marshals as a one-element buffer
            return f"{node.id}[0]"
        return node.id
    if isinstance(node, ast.Constant):
        v = node.value
        if isinstance(v, bool):
            return "1" if v else "0"
        if isinstance(v, (int, float)):
            # repr() is the shortest round-trip form; strtod parses it back
            # to the identical double, which bit-compatibility depends on
            return repr(v)
        raise CEmitError(f"cannot translate constant {v!r} to C")
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) or node.keywords:
            raise CEmitError("only simple function calls translate to C")
        fn = _C_FUNCS.get(node.func.id)
        if fn is None:
            raise CEmitError(f"unknown function {node.func.id!r} in C body")
        args = ", ".join(_expr_c(a, ranks) for a in node.args)
        return f"{fn}({args})"
    if isinstance(node, ast.IfExp):
        return (
            f"({_expr_c(node.test, ranks)} ? "
            f"{_expr_c(node.body, ranks)} : {_expr_c(node.orelse, ranks)})"
        )
    if isinstance(node, ast.Compare):
        parts = []
        left = _expr_c(node.left, ranks)
        for op, comp in zip(node.ops, node.comparators):
            cop = _C_CMPOPS.get(type(op))
            if cop is None:
                raise CEmitError(
                    f"cannot translate comparison {type(op).__name__} to C"
                )
            right = _expr_c(comp, ranks)
            parts.append(f"({left} {cop} {right})")
            left = right
        return "(" + " && ".join(parts) + ")" if len(parts) > 1 else parts[0]
    if isinstance(node, ast.BoolOp):
        cop = " && " if isinstance(node.op, ast.And) else " || "
        return "(" + cop.join(_expr_c(v, ranks) for v in node.values) + ")"
    raise CEmitError(f"cannot translate {type(node).__name__} to C")


def _c_body(stmt: Statement, ranks: dict[str, int]) -> str:
    """The statement's computation as compilable C.

    Translates the *Python* body — the authoritative semantics the Python
    emitter executes — rather than the display-oriented ``stmt.text``,
    which drops details like periodic ``% N`` wraparound.  Raises
    :class:`CEmitError` for anything outside the affine-kernel body
    language (the caller falls back to the Python backend).
    """
    src = (stmt.body or "").strip()
    if not src:
        raise CEmitError(f"statement {stmt.name!r} has no body")
    try:
        tree = ast.parse(src, mode="exec")
    except SyntaxError as e:
        raise CEmitError(
            f"statement {stmt.name!r} body is not parseable: {e}"
        ) from None
    if len(tree.body) != 1:
        raise CEmitError(
            f"statement {stmt.name!r} body must be a single assignment"
        )
    node = tree.body[0]
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        lhs = _expr_c(node.targets[0], ranks)
        return f"{lhs} = {_expr_c(node.value, ranks)};"
    if isinstance(node, ast.AugAssign):
        op = type(node.op)
        if op not in _C_BINOPS:
            raise CEmitError(
                f"cannot translate augmented {op.__name__} to C"
            )
        lhs = _expr_c(node.target, ranks)
        return f"{lhs} {_C_BINOPS[op]}= {_expr_c(node.value, ranks)};"
    raise CEmitError(
        f"statement {stmt.name!r} body must be a single assignment"
    )


class _CEmitter:
    """Shared scanning emitter; ``kernel=True`` renders the compilable TU."""

    def __init__(self, tsched: TiledSchedule, kernel: bool = False):
        self.tsched = tsched
        self.program = tsched.program
        self.kernel = kernel
        self.int_t = "int64_t" if kernel else "int"
        self.systems = {s.stmt.name: s for s in build_scan_systems(tsched)}
        self.ranks = array_ranks(self.program) if kernel else {}
        self.lines: list[str] = []
        #: statements rewritten into a reduction-clause partial sum:
        #: stmt name -> (accumulator variable, combine op)
        self._privatized: dict[str, tuple[str, str]] = {}
        #: statements whose update must run under ``#pragma omp atomic``
        self._atomic: set[str] = set()
        #: nesting depth of emitted ``parallel for`` regions
        self._par_depth = 0

    def line(self, indent: int, text: str) -> None:
        self.lines.append("  " * indent + text)

    # -- top level ---------------------------------------------------------

    def emit(self) -> str:
        if self.kernel:
            return self._emit_kernel()
        self.lines.append(_HEADER)
        self.line(0, f"/* {self.program.name}: generated scanning code */")
        if not self.program.statements:
            return "\n".join(self.lines) + "\n"
        self.emit_level(0, list(self.program.statements), 0)
        return "\n".join(self.lines) + "\n"

    def _emit_kernel(self) -> str:
        self.line(0, f"/* {self.program.name}: repro native kernel */")
        self.line(0, "#include <math.h>")
        self.line(0, "#include <stdint.h>")
        self.lines.append(_HEADER)
        self.line(
            0,
            f"void {KERNEL_ENTRY}(double **arrays, const int64_t *shapes, "
            f"const int64_t *params)",
        )
        self.line(0, "{")
        self.line(1, "(void)arrays; (void)shapes; (void)params;")
        for j, p in enumerate(self.program.params):
            self.line(1, f"const int64_t {p} = params[{j}]; (void){p};")
        offset = 0
        for idx, name in enumerate(sorted(self.program.arrays())):
            rank = self.ranks.get(name, 0)
            if rank <= 1:
                self.line(1, f"double *{name} = arrays[{idx}];")
            else:
                dims = []
                for k in range(1, rank):
                    self.line(
                        1,
                        f"const int64_t {name}_n{k} = shapes[{offset + k}];",
                    )
                    dims.append(f"[{name}_n{k}]")
                vla = "".join(dims)
                self.line(
                    1,
                    f"double (*{name}){vla} = (double (*){vla}) arrays[{idx}];",
                )
            offset += rank
        if self.program.statements:
            self.emit_level(0, list(self.program.statements), 1)
        self.line(0, "}")
        return "\n".join(self.lines) + "\n" + _KERNEL_EPILOGUE

    # -- recursion ---------------------------------------------------------

    def emit_level(self, level: int, stmts, indent: int) -> None:
        if level == self.tsched.depth:
            for s in self.program.statements:
                if s in stmts:
                    self.emit_statement(s, indent)
            return
        row = self.tsched.rows[level]
        zv = z_name(level)
        if row.kind == "scalar":
            groups: dict[int, list] = {}
            for s in stmts:
                groups.setdefault(row.expr_for(s).const_term, []).append(s)
            for value in sorted(groups):
                if self.kernel:
                    # a declared constant, not a comment: inner loop bounds
                    # and guards may reference this scan dimension
                    self.line(indent, "{")
                    self.line(
                        indent + 1, f"const {self.int_t} {zv} = {value};"
                    )
                    self.line(indent + 1, f"(void){zv};")
                    self.emit_level(level + 1, groups[value], indent + 1)
                    self.line(indent, "}")
                else:
                    self.line(indent, f"/* {zv} = {value} */")
                    self.emit_level(level + 1, groups[value], indent)
            return
        lowers, uppers = [], []
        for s in stmts:
            lo, up = self.systems[s.name].z_bounds(level)
            lowers.append(
                merge_bounds([render_lower(b, "c") for b in lo], "max", "c")
            )
            uppers.append(
                merge_bounds([render_upper(b, "c") for b in up], "min", "c")
            )
        lb = merge_bounds(lowers, "min", "c")
        ub = merge_bounds(uppers, "max", "c")
        loop = f"for ({self.int_t} {zv} = {lb}; {zv} <= {ub}; {zv}++) {{"
        if row.parallel and row.reduction:
            if self._emit_reduction_loop(row, level, stmts, indent, loop):
                return
            # The relaxed dependences cannot be discharged here (wrong mode,
            # nested in a parallel region, unsplittable body): the level's
            # parallelism rests solely on relaxation, so run it sequentially
            # rather than emit a racy pragma.
            self.line(indent, loop)
        elif row.parallel:
            self.line(indent, "#pragma omp parallel for")
            self.line(indent, loop)
            self._par_depth += 1
            try:
                self.emit_level(level + 1, stmts, indent + 1)
            finally:
                self._par_depth -= 1
            self.line(indent, "}")
            return
        else:
            self.line(indent, loop)
        self.emit_level(level + 1, stmts, indent + 1)
        self.line(indent, "}")

    def _emit_reduction_loop(
        self, row, level: int, stmts, indent: int, loop: str
    ) -> bool:
        """Emit a reduction-tagged parallel loop, discharging the relaxed
        self-dependences; returns False when no safe discharge exists and
        the caller must emit the level as a plain sequential loop.

        Kernel mode, ``mode == "omp"``, outside any parallel region:

        * single-statement subtree with a scalar (rank-0) accumulator →
          ``reduction(op:__redN)`` clause over a local partial sum,
          combined into the cell once after the loop;
        * otherwise → ``parallel for`` with every tagged statement's
          update under ``#pragma omp atomic``.

        Display mode renders a comment instead of a pragma — the textual C
        body races as written, and unlike the kernel path nothing rewrites
        it, so advertising ``parallel for`` there would be a lie.
        """
        if not self.kernel:
            arrs = ", ".join(sorted({t["array"] for t in row.reduction}))
            self.line(
                indent,
                f"/* parallel reduction ({arrs}): discharged by the native "
                f"kernel via reduction clause / atomics */",
            )
            self.line(indent, loop)
            self.emit_level(level + 1, stmts, indent + 1)
            self.line(indent, "}")
            return True
        mode = row.reduction[0].get("mode", "off")
        if mode != "omp" or self._par_depth > 0:
            return False
        tagged = {t["stmt"] for t in row.reduction}
        splits: dict[str, tuple[Statement, object]] = {}
        for s in stmts:
            if s.name not in tagged:
                continue
            if s.name in self._privatized or s.name in self._atomic:
                return False
            sp = reduction_split(s.body)
            if sp is None:
                return False
            splits[s.name] = (s, sp)
        if not splits:
            return False
        if len(stmts) == 1 and len(splits) == 1:
            stmt, split = next(iter(splits.values()))
            if len(stmt.writes) == 1 and not stmt.writes[0].map.exprs:
                acc = f"__red{level}"
                self.line(
                    indent, f"double {acc} = {REDUCTION_IDENTITY[split.op]};"
                )
                self.line(
                    indent,
                    f"#pragma omp parallel for reduction({split.op}:{acc})",
                )
                self.line(indent, loop)
                self._privatized[stmt.name] = (acc, split.op)
                self._par_depth += 1
                try:
                    self.emit_level(level + 1, stmts, indent + 1)
                finally:
                    self._par_depth -= 1
                    del self._privatized[stmt.name]
                self.line(indent, "}")
                target = _expr_c(split.target, self.ranks)
                self.line(indent, f"{target} = {target} {split.op} {acc};")
                return True
        self.line(indent, "#pragma omp parallel for")
        self.line(indent, loop)
        self._par_depth += 1
        self._atomic.update(splits)
        try:
            self.emit_level(level + 1, stmts, indent + 1)
        finally:
            self._par_depth -= 1
            self._atomic.difference_update(splits)
        self.line(indent, "}")
        return True

    def emit_statement(self, stmt: Statement, indent: int) -> None:
        sys = self.systems[stmt.name]
        cur = indent
        closes = 0
        if len(self.program.statements) > 1:
            conds = []
            for con in sys.z_guards():
                op = "==" if con.equality else ">="
                conds.append(f"({render_expr(con.expr)}) {op} 0")
            conds = list(dict.fromkeys(conds))
            if conds:
                self.line(cur, f"if ({' && '.join(conds)}) {{")
                cur += 1
                closes += 1
        for k, it in enumerate(stmt.space.dims):
            lo, up = sys.iter_bounds(k)
            lb = merge_bounds([render_lower(b, "c") for b in lo], "max", "c")
            ub = merge_bounds([render_upper(b, "c") for b in up], "min", "c")
            self.line(
                cur,
                f"for ({self.int_t} {it} = {lb}; {it} <= {ub}; {it}++) {{",
            )
            cur += 1
            closes += 1
        if self.kernel:
            priv = self._privatized.get(stmt.name)
            if priv is not None:
                acc, op = priv
                split = reduction_split(stmt.body)
                self.line(
                    cur, f"{acc} {op}= ({_expr_c(split.update, self.ranks)});"
                )
            elif stmt.name in self._atomic:
                split = reduction_split(stmt.body)
                lhs = _expr_c(split.target, self.ranks)
                self.line(cur, "#pragma omp atomic")
                self.line(
                    cur,
                    f"{lhs} {split.op}= ({_expr_c(split.update, self.ranks)});",
                )
            else:
                self.line(cur, _c_body(stmt, self.ranks))
        else:
            body = stmt.text or stmt.body
            self.line(
                cur, f"{body};" if not body.rstrip().endswith(";") else body
            )
        for _ in range(closes):
            cur -= 1
            self.line(cur, "}")


def generate_c(tsched: TiledSchedule) -> str:
    """Render ``tsched`` as C-like source with OpenMP annotations."""
    return _CEmitter(tsched).emit()


def generate_c_kernel(tsched: TiledSchedule) -> CKernelSource:
    """Render ``tsched`` as a complete, compilable C translation unit.

    Raises :class:`CEmitError` when the program cannot be expressed as a
    native kernel (statements without C body text).
    """
    program = tsched.program
    emitter = _CEmitter(tsched, kernel=True)
    source = emitter.emit()
    return CKernelSource(
        source=source,
        name=program.name,
        entry=KERNEL_ENTRY,
        array_order=tuple(sorted(program.arrays())),
        array_ranks=array_ranks(program),
        param_order=tuple(program.params),
    )
