"""Emit C-like source (with OpenMP pragmas) from a tiled schedule.

The Python emitter (:mod:`repro.codegen.python_emit`) produces the kernel
the validation runtime executes; this emitter renders the same scanning
structure as the C a Pluto-style source-to-source tool would hand to icc —
``#pragma omp parallel for`` on parallel dimensions, ``ceild/floord`` bound
macros, and the statements' original C bodies.  It exists for inspection,
examples, and documentation; it is not compiled by the test suite.
"""

from __future__ import annotations

from repro.codegen.emit_common import merge_bounds, render_lower, render_upper
from repro.codegen.scan import build_scan_systems, z_name
from repro.core.tiling import TiledSchedule
from repro.frontend.ir import Statement

__all__ = ["generate_c"]

_HEADER = """\
#define ceild(n, d) (((n) > 0) ? (1 + ((n) - 1) / (d)) : -((-(n)) / (d)))
#define floord(n, d) (((n) > 0) ? (n) / (d) : -((-(n) + (d) - 1) / (d)))
#define max(a, b) ((a) > (b) ? (a) : (b))
#define min(a, b) ((a) < (b) ? (a) : (b))
"""


class _CEmitter:
    def __init__(self, tsched: TiledSchedule):
        self.tsched = tsched
        self.program = tsched.program
        self.systems = {s.stmt.name: s for s in build_scan_systems(tsched)}
        self.lines: list[str] = []

    def line(self, indent: int, text: str) -> None:
        self.lines.append("  " * indent + text)

    def emit(self) -> str:
        self.lines.append(_HEADER)
        self.line(0, f"/* {self.program.name}: generated scanning code */")
        if not self.program.statements:
            return "\n".join(self.lines) + "\n"
        self.emit_level(0, list(self.program.statements), 0)
        return "\n".join(self.lines) + "\n"

    def emit_level(self, level: int, stmts, indent: int) -> None:
        if level == self.tsched.depth:
            for s in self.program.statements:
                if s in stmts:
                    self.emit_statement(s, indent)
            return
        row = self.tsched.rows[level]
        zv = z_name(level)
        if row.kind == "scalar":
            groups: dict[int, list] = {}
            for s in stmts:
                groups.setdefault(row.expr_for(s).const_term, []).append(s)
            for value in sorted(groups):
                self.line(indent, f"/* {zv} = {value} */")
                self.emit_level(level + 1, groups[value], indent)
            return
        lowers, uppers = [], []
        for s in stmts:
            lo, up = self.systems[s.name].z_bounds(level)
            lowers.append(
                merge_bounds([render_lower(b, "c") for b in lo], "max", "c")
            )
            uppers.append(
                merge_bounds([render_upper(b, "c") for b in up], "min", "c")
            )
        lb = merge_bounds(lowers, "min", "c")
        ub = merge_bounds(uppers, "max", "c")
        if row.parallel:
            self.line(indent, "#pragma omp parallel for")
        self.line(
            indent,
            f"for (int {zv} = {lb}; {zv} <= {ub}; {zv}++) {{",
        )
        self.emit_level(level + 1, stmts, indent + 1)
        self.line(indent, "}")

    def emit_statement(self, stmt: Statement, indent: int) -> None:
        sys = self.systems[stmt.name]
        cur = indent
        closes = 0
        if len(self.program.statements) > 1:
            from repro.codegen.emit_common import render_expr

            conds = []
            for con in sys.z_guards():
                op = "==" if con.equality else ">="
                conds.append(f"({render_expr(con.expr)}) {op} 0")
            conds = list(dict.fromkeys(conds))
            if conds:
                self.line(cur, f"if ({' && '.join(conds)}) {{")
                cur += 1
                closes += 1
        for k, it in enumerate(stmt.space.dims):
            lo, up = sys.iter_bounds(k)
            lb = merge_bounds([render_lower(b, "c") for b in lo], "max", "c")
            ub = merge_bounds([render_upper(b, "c") for b in up], "min", "c")
            self.line(cur, f"for (int {it} = {lb}; {it} <= {ub}; {it}++) {{")
            cur += 1
            closes += 1
        body = stmt.text or stmt.body
        self.line(cur, f"{body};" if not body.rstrip().endswith(";") else body)
        for c in range(closes):
            cur -= 1
            self.line(cur, "}")


def generate_c(tsched: TiledSchedule) -> str:
    """Render ``tsched`` as C-like source with OpenMP annotations."""
    return _CEmitter(tsched).emit()
