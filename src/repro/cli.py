"""Command-line driver, in the spirit of Pluto's ``polycc``.

Usage::

    python -m repro opt kernel.c --params N M --algorithm plutoplus \
        --tile 32 --iss --diamond [--emit c|py|schedule] [-o out.c]
    python -m repro opt --workload heat-1dp --algorithm pluto
    python -m repro verify --workload heat-1dp --algorithm plutoplus
    python -m repro deps kernel.c --params N
    python -m repro list
    python -m repro suite --jobs 4 --filter 'heat-*'
    python -m repro serve --socket /tmp/repro.sock --jobs 4 --cache-dir cache
    python -m repro route --socket /tmp/router.sock --shard /tmp/s0.sock \
        --shard /tmp/s1.sock
    python -m repro warm --socket /tmp/repro.sock --category motivation
    python -m repro client opt --workload heat-2dp --socket /tmp/repro.sock

``opt`` parses an affine C-like loop nest (or loads a registered workload),
runs the full pipeline, and emits the transformed code; ``verify`` runs the
independent legality checker on the computed schedule (nonzero exit on an
illegal schedule); ``deps`` prints the dependence analysis; ``list``
enumerates registered workloads; ``suite`` fans the workload matrix out
over worker processes and writes a ``runs/<suite-id>/`` manifest; ``serve``
runs the pipeline as a persistent daemon with a content-addressed schedule
cache; ``route`` shards that cache across several daemons behind a
consistent-hash router; ``warm`` pre-populates the cache over the suite
matrix; and ``client`` talks to any of them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.codegen import generate_c
from repro.frontend import parse_program
from repro.frontend.ir import Program
from repro.pipeline import PipelineOptions, optimize

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pluto+ reproduction: polyhedral source-to-source optimizer",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input_args(p):
        p.add_argument("source", nargs="?",
                       help="C-like loop nest file or registered workload name")
        p.add_argument("--workload", help="registered workload name instead of a file")
        p.add_argument("--params", nargs="*", default=[], help="program parameters")
        p.add_argument(
            "--param-min", type=int, default=2,
            help="context lower bound on every parameter (default 2)",
        )
        p.add_argument(
            "--no-deps-cache", action="store_true",
            help="disable the dependence-analysis fast path (memoized "
                 "polyhedral primitives and fast-reject)",
        )

    opt = sub.add_parser("opt", help="optimize a loop nest")
    add_input_args(opt)
    opt.add_argument("--algorithm", choices=("pluto", "plutoplus"), default="plutoplus")
    opt.add_argument("--tile", type=int, default=32, metavar="SIZE",
                     help="tile size (0 disables tiling)")
    opt.add_argument("--iss", action="store_true", help="enable index-set splitting")
    opt.add_argument("--diamond", action="store_true",
                     help="enable diamond tiling (--partlbtile)")
    opt.add_argument("--bound", type=int, default=4, help="Pluto+ coefficient bound b")
    opt.add_argument("--fuse", choices=("smart", "max", "no"), default="smart")
    opt.add_argument("--l2tile", action="store_true", help="second-level tiling")
    opt.add_argument("--intra-tile", action="store_true",
                     help="rotate a parallel loop innermost in point bands")
    opt.add_argument("--ilp-backend", choices=("auto", "exact", "highs"),
                     default="highs",
                     help="lexmin ILP backend (auto switches on model size)")
    opt.add_argument("--scheduler", choices=("auto", "exact", "quick"),
                     default="exact",
                     help="hyperplane search: exact per-level ILPs (default), "
                          "the quick fusion + dimension-matching heuristic, "
                          "or auto (quick with exact fallback)")
    opt.add_argument("--stats", action="store_true",
                     help="print solver counters (pivots, B&B nodes, "
                          "warm-start hits, ...) to stderr; with a native "
                          "--backend also the execution stats")
    opt.add_argument("--backend", choices=("python", "c", "auto"),
                     default="python",
                     help="execution backend for the generated kernel: "
                          "python (default), c (compile the emitted C "
                          "natively), or auto (fastest available); c/auto "
                          "compile eagerly and fall back to python when no "
                          "compiler is present")
    opt.add_argument("--threads", type=int, default=None, metavar="N",
                     help="OpenMP threads for native execution "
                          "(default: the OpenMP runtime's choice)")
    opt.add_argument("--rar", action="store_true",
                     help="feed read-after-read reuse into the exact "
                          "scheduler's locality objective (never legality)")
    opt.add_argument("--parallel-reductions",
                     choices=("off", "privatize", "omp"), default="off",
                     help="relax commutative-associative reduction "
                          "self-dependences so the reduction dimension can "
                          "run in parallel; omp also emits reduction "
                          "clauses/atomics in C (verification drops to "
                          "tolerance comparison)")
    opt.add_argument("--skeleton-dir", default=None, metavar="DIR",
                     help="structural skeleton store for cross-request "
                          "warm-started scheduling (sets "
                          "REPRO_SKELETON_CACHE for this run; default: "
                          "disabled)")
    opt.add_argument("--emit", choices=("c", "py", "schedule", "schedule-json"),
                     default="c")
    opt.add_argument("-o", "--output", help="write emitted code to a file")

    ver = sub.add_parser("verify", help="verify schedule legality independently")
    add_input_args(ver)
    ver.add_argument("--algorithm", choices=("pluto", "plutoplus"), default="plutoplus")
    ver.add_argument("--iss", action="store_true")
    ver.add_argument("--diamond", action="store_true")
    ver.add_argument("--scheduler", choices=("auto", "exact", "quick"),
                     default="exact",
                     help="hyperplane search used to produce the schedule "
                          "under verification")
    ver.add_argument("--rar", action="store_true",
                     help="RAR locality objective during scheduling "
                          "(see `repro opt --rar`)")
    ver.add_argument("--parallel-reductions",
                     choices=("off", "privatize", "omp"), default="off",
                     help="relax reduction self-dependences during "
                          "scheduling; the backend check then compares "
                          "under tolerance instead of bitwise")
    ver.add_argument("--schedule", metavar="FILE",
                     help="verify this exported schedule (JSON from "
                          "`opt --emit schedule-json`) instead of running "
                          "the scheduler")
    ver.add_argument("--backend", choices=("python", "c", "auto"),
                     default="python",
                     help="additionally execute the schedule on this "
                          "backend and require bit-compatible agreement "
                          "with the Python kernel (skipped with a note "
                          "when no compiler is available)")

    deps = sub.add_parser("deps", help="print dependence analysis")
    add_input_args(deps)

    sub.add_parser("list", help="list registered workloads")

    suite = sub.add_parser(
        "suite",
        help="run the workload matrix in parallel worker processes",
    )
    suite.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="parallel worker processes (default: cpu count)")
    suite.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-run deadline in seconds (default 900)")
    suite.add_argument("--retries", type=int, default=None, metavar="N",
                       help="re-attempts after a crash/timeout (default 1)")
    suite.add_argument("--filter", action="append", default=[], metavar="GLOB",
                       help="keep only workloads/run-ids matching this glob "
                            "(repeatable)")
    suite.add_argument("--category",
                       choices=("periodic", "polybench", "motivation", "reduction", "all"),
                       default="periodic",
                       help="workload category to run (default: periodic, "
                            "the paper's Table 2 suite)")
    suite.add_argument("--variants", default="plutoplus",
                       help="comma-separated option variants "
                            "(plutoplus, pluto, notile, l2tile, quick, "
                            "auto, rar, redpar)")
    suite.add_argument("--backend", choices=("python", "c", "auto"),
                       default="python",
                       help="execution backend recorded on every spec; "
                            "c/auto additionally compiles and smoke-runs "
                            "each kernel, recording exec_stats in the "
                            "manifest")
    suite.add_argument("--out", default="runs", metavar="DIR",
                       help="manifest root directory (default: runs/)")
    suite.add_argument("--resume", metavar="DIR",
                       help="resume a partial suite from its manifest "
                            "directory, skipping completed runs")
    suite.add_argument("--quiet", action="store_true",
                       help="suppress per-run progress lines")

    def add_endpoint_args(p):
        p.add_argument("--socket", metavar="PATH",
                       help="Unix socket path (preferred)")
        p.add_argument("--host", default="127.0.0.1",
                       help="TCP bind/connect host (default 127.0.0.1)")
        p.add_argument("--port", type=int, help="TCP port instead of --socket")

    serve = sub.add_parser(
        "serve",
        help="run optimize() as a persistent daemon with a schedule cache",
    )
    add_endpoint_args(serve)
    serve.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="concurrent worker processes (default: cpu count)")
    serve.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-request worker deadline in seconds "
                            "(default 900)")
    serve.add_argument("--backlog", type=int, default=None, metavar="N",
                       help="queued misses beyond --jobs before requests "
                            "get a busy response (default 2x jobs)")
    serve.add_argument("--cache-dir", default=".repro-cache", metavar="DIR",
                       help="on-disk schedule cache root (default "
                            ".repro-cache; '' disables the disk tier)")
    serve.add_argument("--mem-entries", type=int, default=None, metavar="N",
                       help="in-memory cache entries (default 128)")
    serve.add_argument("--skeleton-dir", default=None, metavar="DIR",
                       help="structural skeleton store consulted on "
                            "exact-cache misses (default: "
                            "<cache-dir>/skeletons when the disk cache is "
                            "enabled; '' disables)")
    serve.add_argument("--loop", choices=("async", "threads"), default="async",
                       help="serving loop: one asyncio event loop "
                            "multiplexing every connection (default), or the "
                            "original thread-per-connection loop")
    serve.add_argument("--pool", choices=("warm", "spawn"), default="warm",
                       help="worker pool: pre-forked persistent workers "
                            "(default), or one fresh process per cache miss")
    serve.add_argument("--recycle", type=int, default=None, metavar="N",
                       help="warm pool: retire each worker after N requests "
                            "(default 64)")
    serve.add_argument("--report", action="store_true",
                       help="print a metrics summary line on exit")

    route = sub.add_parser(
        "route",
        help="shard the schedule cache across daemons behind a router",
    )
    add_endpoint_args(route)
    route.add_argument("--shard", action="append", default=[],
                       metavar="ENDPOINT", required=True,
                       help="a shard daemon endpoint: a Unix socket path or "
                            "host:port (repeatable; order is irrelevant — "
                            "key placement depends only on the endpoint "
                            "strings)")
    route.add_argument("--report", action="store_true",
                       help="print a metrics summary line on exit")

    warm = sub.add_parser(
        "warm",
        help="pre-populate the schedule cache over the suite matrix",
    )
    add_endpoint_args(warm)
    warm.add_argument("--jobs", type=int, default=4, metavar="N",
                      help="concurrent client connections (default 4)")
    warm.add_argument("--filter", action="append", default=[], metavar="GLOB",
                      help="keep only workloads/run-ids matching this glob "
                           "(repeatable)")
    warm.add_argument("--category",
                      choices=("periodic", "polybench", "motivation", "reduction", "all"),
                      default="periodic",
                      help="workload category to warm (default: periodic)")
    warm.add_argument("--variants", default="plutoplus",
                      help="comma-separated option variants "
                           "(plutoplus, pluto, notile, l2tile, quick, "
                           "auto, rar, redpar)")
    warm.add_argument("--quiet", action="store_true",
                      help="suppress per-spec progress lines")

    client = sub.add_parser("client", help="talk to a running repro daemon")
    csub = client.add_subparsers(dest="client_command", required=True)

    copt = csub.add_parser("opt", help="request one optimization")
    add_endpoint_args(copt)
    copt.add_argument("source", nargs="?",
                      help="C-like loop nest file or registered workload name")
    copt.add_argument("--workload", help="registered workload name")
    copt.add_argument("--params", nargs="*", default=[],
                      help="program parameters (file input only)")
    copt.add_argument("--param-min", type=int, default=2,
                      help="context lower bound on every parameter (default 2)")
    copt.add_argument("--algorithm", choices=("pluto", "plutoplus"),
                      default=None)
    copt.add_argument("--tile", type=int, default=None, metavar="SIZE",
                      help="tile size (0 disables tiling)")
    copt.add_argument("--iss", action="store_true", default=None,
                      help="enable index-set splitting")
    copt.add_argument("--diamond", action="store_true", default=None,
                      help="enable diamond tiling (--partlbtile)")
    copt.add_argument("--bound", type=int, default=None,
                      help="Pluto+ coefficient bound b")
    copt.add_argument("--fuse", choices=("smart", "max", "no"), default=None)
    copt.add_argument("--ilp-backend", choices=("auto", "exact", "highs"),
                      default=None)
    copt.add_argument("--scheduler", choices=("auto", "exact", "quick"),
                      default=None,
                      help="hyperplane search (daemon default: exact)")
    copt.add_argument("--rar", action="store_true", default=None,
                      help="RAR locality objective (daemon default: off)")
    copt.add_argument("--parallel-reductions",
                      choices=("off", "privatize", "omp"), default=None,
                      help="reduction relaxation mode (daemon default: off; "
                           "non-default modes get their own cache keys)")
    copt.add_argument("--backend", choices=("python", "c", "auto"),
                      default=None,
                      help="execution backend recorded in the resolved "
                           "options (daemon default: python; non-default "
                           "backends get their own cache keys)")
    copt.add_argument("--emit", choices=("schedule-json", "json", "summary"),
                      default="schedule-json",
                      help="what to print: the schedule export (default), "
                           "the full result payload, or a one-line summary")
    copt.add_argument("-o", "--output", help="write the emitted JSON to a file")

    for name, text in (
        ("stats", "print the daemon's metrics snapshot as JSON"),
        ("ping", "check the daemon is alive (prints version skew)"),
        ("shutdown", "ask the daemon to drain and exit"),
    ):
        p = csub.add_parser(name, help=text)
        add_endpoint_args(p)
    return parser


def _workload_program(args, name: str) -> Program:
    from repro.workloads import get_workload

    try:
        w = get_workload(name)
    except KeyError:
        raise SystemExit(
            f"error: unknown workload {name!r}; "
            f"run `python -m repro list` to see registered workloads"
        ) from None
    # carry the workload's pipeline flags unless the user set their own
    if hasattr(args, "iss") and not args.iss:
        args.iss = w.iss
    if hasattr(args, "diamond") and not args.diamond:
        args.diamond = w.diamond
    return w.program()


def _load_program(args) -> Program:
    if args.workload:
        return _workload_program(args, args.workload)
    if not args.source:
        raise SystemExit("either a source file or --workload is required")
    path = Path(args.source)
    if not path.is_file():
        from repro.workloads import WORKLOADS  # import populates the registry

        if args.source in WORKLOADS:
            return _workload_program(args, args.source)
        raise SystemExit(
            f"error: {args.source!r} is neither a readable file nor a "
            f"registered workload; run `python -m repro list` to see "
            f"registered workloads"
        )
    text = path.read_text()
    name = path.stem
    return parse_program(text, name, params=tuple(args.params), param_min=args.param_min)


def _pipeline_options(args) -> PipelineOptions:
    return PipelineOptions(
        algorithm=args.algorithm,
        tile=getattr(args, "tile", 32) != 0,
        tile_size=getattr(args, "tile", 32) or 32,
        iss=getattr(args, "iss", False),
        diamond=getattr(args, "diamond", False),
        coeff_bound=getattr(args, "bound", 4),
        ilp_backend=getattr(args, "ilp_backend", "highs"),
        fuse=getattr(args, "fuse", "smart"),
        l2tile=getattr(args, "l2tile", False),
        intra_tile=getattr(args, "intra_tile", False),
        deps_cache=not getattr(args, "no_deps_cache", False),
        scheduler=getattr(args, "scheduler", "exact"),
        backend=getattr(args, "backend", "python") or "python",
        rar=getattr(args, "rar", False),
        parallel_reductions=getattr(args, "parallel_reductions", "off"),
    )


def _cmd_opt(args) -> int:
    import os

    if getattr(args, "skeleton_dir", None):
        os.environ["REPRO_SKELETON_CACHE"] = args.skeleton_dir
    program = _load_program(args)
    result = optimize(program, _pipeline_options(args))
    print(f"# {program.name}: {args.algorithm}", file=sys.stderr)
    print(f"# ISS: {result.used_iss}, diamond: {result.used_diamond}", file=sys.stderr)
    if result.scheduler_stats is not None:
        st = result.scheduler_stats
        line = f"# scheduler: {st.scheduler_mode} -> {st.scheduler_path}"
        if st.fallback_reason:
            line += f" ({st.fallback_reason})"
        print(line, file=sys.stderr)
        if st.structural_path is not None:
            print(f"# structural: {st.structural_path} "
                  f"({st.structural_warm_start} replayed solves)",
                  file=sys.stderr)
    print(f"# timing: {result.timing.as_dict()}", file=sys.stderr)
    if getattr(args, "stats", False) and result.scheduler_stats is not None:
        from repro.reporting import format_dep_stats, format_solve_stats

        st = result.scheduler_stats
        print(f"# solver stats ({', '.join(sorted(st.backends_used)) or 'n/a'}):",
              file=sys.stderr)
        print(format_solve_stats(st.solve.as_dict(), indent="#   "), file=sys.stderr)
        if result.dep_stats is not None:
            print("# dependence stats:", file=sys.stderr)
            print(format_dep_stats(result.dep_stats.as_dict(), indent="#   "),
                  file=sys.stderr)
    if args.backend != "python":
        from repro.exec import ExecutionOptions

        _, cstats, _ = result._compiled(
            ExecutionOptions(backend=args.backend, threads=args.threads)
        )
        if cstats.fallback_reason:
            print(f"# exec backend: python "
                  f"(fallback: {cstats.fallback_reason})", file=sys.stderr)
        else:
            key = cstats.artifact_key or ""
            print(f"# exec backend: c ({cstats.artifact_cache}, "
                  f"compile {cstats.compile_seconds:.2f}s, "
                  f"artifact {key[:16]}…)", file=sys.stderr)
        if args.stats:
            print("# exec stats:", file=sys.stderr)
            for k, v in cstats.as_dict().items():
                print(f"#   {k}: {v}", file=sys.stderr)
    if args.emit == "schedule":
        out = result.schedule.pretty() + "\n"
    elif args.emit == "schedule-json":
        import json

        out = json.dumps(result.schedule.to_dict(), indent=1) + "\n"
    elif args.emit == "py":
        out = result.code.python_source
    else:
        out = generate_c(result.tiled)
    if args.output:
        Path(args.output).write_text(out)
        print(f"# wrote {args.output}", file=sys.stderr)
    else:
        print(out)
    return 0


def _cmd_verify(args) -> int:
    """Exit 0 iff the schedule is provably legal.

    Anything else — violations, an unreadable/mismatched schedule export,
    a crash inside the checker — exits nonzero, so CI can gate on it.
    """
    from repro.core.transform import Schedule
    from repro.core.verify import verify_schedule
    from repro.deps import DependenceGraph, compute_dependences

    program = _load_program(args)
    result = None
    if args.schedule:
        import json

        try:
            data = json.loads(Path(args.schedule).read_text())
            schedule = Schedule.from_dict(program, data)
        except (OSError, ValueError, KeyError) as e:
            print(f"error: cannot load schedule {args.schedule!r}: {e}",
                  file=sys.stderr)
            return 2
    else:
        result = optimize(program, _pipeline_options_noemit(args))
        program = result.program  # post-ISS program actually scheduled
        schedule = result.schedule
    deps = compute_dependences(program)
    if getattr(args, "parallel_reductions", "off") != "off":
        # The schedule was computed against the relaxed legality set; a
        # reduction's self-dependences are discharged at emission (partial
        # sums / reduction clauses), so legality is checked against the
        # same relaxed set — the execution leg below covers the rest.
        from repro.core.reductions import detect_reductions, relax_reduction_deps

        deps, relaxed = relax_reduction_deps(deps, detect_reductions(program))
        if relaxed:
            print(f"# relaxed {len(relaxed)} reduction self-dependences "
                  f"before legality checking", file=sys.stderr)
    ddg = DependenceGraph(program, deps)
    report = verify_schedule(schedule, ddg)
    print(report)
    rc = 0 if report.legal else 1
    if args.backend != "python" and report.legal:
        rc = max(rc, _verify_backend(args, result, program))
    return rc


def _verify_backend(args, result, program) -> int:
    """Execution bit-compat leg of ``repro verify --backend c|auto``."""
    from repro.exec import ExecutionOptions
    from repro.runtime.validate import backend_compat_check

    if result is None:
        print("# backend check skipped: --schedule input carries no tiled "
              "schedule to execute", file=sys.stderr)
        return 0
    params = _exec_params(args, program)
    # Parallelized reductions reassociate floating-point accumulation, so
    # bitwise identity with the Python kernel is unattainable by design;
    # the contract drops to tolerance comparison (docs/API.md).
    tol: dict = {}
    if result.tiled.reduction_levels():
        tol = {"rtol": 1e-9, "atol": 1e-11}
    check = backend_compat_check(
        result.tiled, params, ExecutionOptions(backend=args.backend), **tol
    )
    if not check.checked:
        print(f"backend {args.backend}: skipped "
              f"({check.fallback_reason})")
        return 0
    if check.ok:
        if check.mode == "tolerance":
            print(f"backend {check.backend}: agrees with python at {params} "
                  f"under tolerance (parallel reductions; "
                  f"abs diff {check.max_abs_diff:.3e})")
        else:
            print(f"backend {check.backend}: bit-compatible with python at "
                  f"{params} (max {check.max_ulps} ulps)")
        return 0
    print(f"backend {check.backend}: MISMATCH [{check.mode}] on "
          f"{check.mismatched_arrays} at {params} "
          f"(max {check.max_ulps} ulps, abs diff {check.max_abs_diff:.3e})")
    return 1


def _exec_params(args, program) -> dict:
    """Concrete parameter values for execution checks: the workload's
    small validation sizes when available, else a small default honoring
    ``--param-min``."""
    name = getattr(args, "workload", None) or getattr(args, "source", None)
    if name:
        from repro.workloads import WORKLOADS

        w = WORKLOADS.get(name)
        if w is not None and w.small_sizes:
            return dict(w.small_sizes)
    floor = getattr(args, "param_min", 2)
    return {p: max(floor, 8) for p in program.params}


def _pipeline_options_noemit(args) -> PipelineOptions:
    return PipelineOptions(
        algorithm=args.algorithm,
        iss=getattr(args, "iss", False),
        diamond=getattr(args, "diamond", False),
        scheduler=getattr(args, "scheduler", "exact"),
        rar=getattr(args, "rar", False),
        parallel_reductions=getattr(args, "parallel_reductions", "off"),
    )


def _cmd_deps(args) -> int:
    from contextlib import nullcontext

    from repro.deps import compute_dependences
    from repro.polyhedra.cache import cache_disabled

    program = _load_program(args)
    guard = cache_disabled() if getattr(args, "no_deps_cache", False) else nullcontext()
    with guard:
        deps = compute_dependences(program)
    print(f"{len(deps)} dependences:")
    for d in deps:
        vec = d.distance_vector()
        extra = f" distance {vec}" if vec else " (non-uniform)"
        print(f"  {d}{extra}")
    return 0


def _cmd_suite(args) -> int:
    """Run the workload matrix in parallel; exit nonzero on any RunFailure."""
    import os

    from repro.reporting import format_suite_report
    from repro.suite import SuiteManifest, build_matrix, run_suite
    from repro.suite.runner import DEFAULT_RETRIES, DEFAULT_TIMEOUT

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    timeout = args.timeout if args.timeout is not None else DEFAULT_TIMEOUT
    retries = args.retries if args.retries is not None else DEFAULT_RETRIES
    progress = None if args.quiet else (
        lambda msg: print(f"# {msg}", file=sys.stderr, flush=True)
    )

    if args.resume:
        manifest = SuiteManifest.load(Path(args.resume))
    else:
        specs = build_matrix(
            category=args.category,
            variants=[v.strip() for v in args.variants.split(",") if v.strip()],
            filters=args.filter,
            backend=args.backend,
        )
        if not specs:
            raise SystemExit(
                "error: the matrix is empty (filters matched nothing); "
                "run `python -m repro list` to see registered workloads"
            )
        manifest = SuiteManifest.create(
            Path(args.out), specs,
            {"jobs": jobs, "timeout": timeout, "retries": retries},
        )
    print(f"# manifest: {manifest.path}", file=sys.stderr)

    result = run_suite(
        manifest,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        resume=bool(args.resume),
        progress=progress,
    )
    print(format_suite_report(result.records, result.wall_seconds))
    return 0 if result.ok else 1


def _cmd_serve(args) -> int:
    """Run the scheduling daemon until SIGTERM/SIGINT, then drain."""
    import os

    from repro.server import Daemon, DaemonConfig, SocketInUse
    from repro.server.pool import DEFAULT_RECYCLE, DEFAULT_TIMEOUT as SERVE_TIMEOUT

    if args.socket is None and args.port is None:
        raise SystemExit("error: serve needs --socket PATH or --port N")
    cache_dir = args.cache_dir or None
    skeleton_dir = args.skeleton_dir
    if skeleton_dir is None and cache_dir is not None:
        # default: ride along with the disk cache; --skeleton-dir '' opts out
        skeleton_dir = os.path.join(cache_dir, "skeletons")
    try:
        config = DaemonConfig(
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            jobs=args.jobs if args.jobs is not None else (os.cpu_count() or 1),
            timeout=args.timeout if args.timeout is not None else SERVE_TIMEOUT,
            backlog=args.backlog,
            cache_dir=cache_dir,
            skeleton_dir=skeleton_dir or None,
            loop=args.loop,
            pool_mode=args.pool,
            pool_recycle=(args.recycle if args.recycle is not None
                          else DEFAULT_RECYCLE),
            **({} if args.mem_entries is None
               else {"memory_entries": args.mem_entries}),
        )
    except ValueError as e:
        raise SystemExit(f"error: {e}")
    daemon = Daemon(config)
    daemon.install_signal_handlers()
    from repro import __version__

    print(f"# repro {__version__} serving on "
          f"{args.socket or f'{args.host}:{args.port}'} "
          f"(loop {config.loop}, pool {config.pool_mode}, jobs {config.jobs}, "
          f"cache {config.cache_dir or 'memory-only'}, "
          f"skeletons {config.skeleton_dir or 'off'})",
          file=sys.stderr, flush=True)
    try:
        daemon.serve()
    except SocketInUse as e:
        raise SystemExit(f"error: {e}")
    if args.report:
        print(f"# {daemon.metrics.summary_line()}", file=sys.stderr)
    return 0


def _cmd_route(args) -> int:
    """Run the shard router until SIGTERM/SIGINT."""
    from repro.server import Router, RouterConfig, SocketInUse

    if args.socket is None and args.port is None:
        raise SystemExit("error: route needs --socket PATH or --port N")
    try:
        config = RouterConfig(
            shards=args.shard,
            socket_path=args.socket,
            host=args.host,
            port=args.port,
        )
    except ValueError as e:
        raise SystemExit(f"error: {e}")
    router = Router(config)
    router.install_signal_handlers()
    from repro import __version__

    print(f"# repro {__version__} routing on "
          f"{args.socket or f'{args.host}:{args.port}'} "
          f"across {len(config.shards)} shard(s)",
          file=sys.stderr, flush=True)
    try:
        router.serve()
    except SocketInUse as e:
        raise SystemExit(f"error: {e}")
    if args.report:
        print(f"# {router.metrics.summary_line()}", file=sys.stderr)
    return 0


def _cmd_warm(args) -> int:
    """Pre-populate the cache over the matrix; exit nonzero on failures."""
    from repro.server import warm_cache
    from repro.suite import build_matrix

    if args.socket is None and args.port is None:
        raise SystemExit("error: warm needs --socket PATH or --port N")
    specs = build_matrix(
        category=args.category,
        variants=[v.strip() for v in args.variants.split(",") if v.strip()],
        filters=args.filter,
    )
    if not specs:
        raise SystemExit(
            "error: the matrix is empty (filters matched nothing); "
            "run `python -m repro list` to see registered workloads"
        )
    progress = None if args.quiet else (
        lambda o: print(
            f"# {o['run_id']}: {o.get('cache') or o.get('status')}"
            + (f" ({o['elapsed']:.3f}s)" if o.get("elapsed") is not None else ""),
            file=sys.stderr, flush=True,
        )
    )
    report = warm_cache(
        specs,
        socket_path=args.socket, host=args.host, port=args.port,
        jobs=args.jobs,
        progress=progress,
    )
    print(report.summary_line())
    for failure in report.failed:
        print(f"  failed: {failure['run_id']}: "
              f"{failure.get('message') or failure.get('status')}",
              file=sys.stderr)
    return 0 if not report.failed else 1


def _client_connect(args):
    from repro.server import ServerClient

    if args.socket is None and args.port is None:
        raise SystemExit("error: client needs --socket PATH or --port N")
    try:
        return ServerClient(
            socket_path=args.socket, host=args.host, port=args.port
        )
    except OSError as e:
        raise SystemExit(
            f"error: cannot reach daemon at "
            f"{args.socket or f'{args.host}:{args.port}'}: {e}"
        )


def _client_overrides(args) -> dict:
    """Only the options the user explicitly set — the daemon fills in the
    workload's paper flags underneath, exactly like local ``repro opt``."""
    overrides: dict = {}
    if args.algorithm is not None:
        overrides["algorithm"] = args.algorithm
    if args.tile is not None:
        overrides["tile"] = args.tile != 0
        if args.tile:
            overrides["tile_size"] = args.tile
    if args.iss:
        overrides["iss"] = True
    if args.diamond:
        overrides["diamond"] = True
    if args.bound is not None:
        overrides["coeff_bound"] = args.bound
    if args.fuse is not None:
        overrides["fuse"] = args.fuse
    if args.ilp_backend is not None:
        overrides["ilp_backend"] = args.ilp_backend
    if args.scheduler is not None:
        overrides["scheduler"] = args.scheduler
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if getattr(args, "rar", None):
        overrides["rar"] = True
    if getattr(args, "parallel_reductions", None) is not None:
        overrides["parallel_reductions"] = args.parallel_reductions
    return overrides


def _cmd_client(args) -> int:
    import json

    if args.client_command == "opt":
        request: dict = {}
        name = args.workload or args.source
        if name and not args.workload and Path(name).is_file():
            from repro.frontend.serialize import program_to_dict

            program = parse_program(
                Path(name).read_text(), Path(name).stem,
                params=tuple(args.params), param_min=args.param_min,
            )
            request["program"] = program_to_dict(program)
        elif name:
            request["workload"] = name
        else:
            raise SystemExit("either a source file or --workload is required")

        with _client_connect(args) as client:
            response = client.optimize(
                request.get("workload"),
                program=request.get("program"),
                options=_client_overrides(args),
            )
        status = response.get("status")
        if status == "busy":
            print(f"busy: {response.get('message')}", file=sys.stderr)
            return 3
        if status != "ok":
            print(f"error ({response.get('kind')}): "
                  f"{response.get('message', '').strip()}", file=sys.stderr)
            return 1
        print(f"# cache: {response['cache']}  key: {response['key'][:16]}…  "
              f"elapsed: {response['elapsed']:.3f}s  "
              f"server: {response['server_version']}", file=sys.stderr)
        if args.emit == "summary":
            props = response["result"]["schedule"]
            print(f"{name}: depth {len(props.get('rows', []))}, "
                  f"cache {response['cache']}, {response['elapsed']:.3f}s")
            return 0
        payload = (response["result"] if args.emit == "json"
                   else response["result"]["schedule"])
        out = json.dumps(payload, indent=1) + "\n"
        if args.output:
            Path(args.output).write_text(out)
            print(f"# wrote {args.output}", file=sys.stderr)
        else:
            sys.stdout.write(out)
        return 0

    with _client_connect(args) as client:
        if args.client_command == "stats":
            response = client.stats()
            print(json.dumps(response.get("stats", {}), indent=1))
        elif args.client_command == "ping":
            from repro import __version__

            response = client.ping()
            print(f"ok: server {response['server_version']}, "
                  f"client {__version__}, protocol {response['protocol']}")
        else:  # shutdown
            response = client.shutdown()
            print(f"draining: {response.get('draining', False)}")
    return 0 if response.get("status") == "ok" else 1


def _cmd_list(_args) -> int:
    from repro.workloads import all_workloads

    for w in all_workloads():
        flags = []
        if w.iss:
            flags.append("iss")
        if w.diamond:
            flags.append("diamond")
        tail = f" [{', '.join(flags)}]" if flags else ""
        print(f"{w.name:26s} {w.category:10s}{tail}")
    return 0


_COMMANDS = {
    "opt": _cmd_opt,
    "verify": _cmd_verify,
    "deps": _cmd_deps,
    "list": _cmd_list,
    "suite": _cmd_suite,
    "serve": _cmd_serve,
    "route": _cmd_route,
    "warm": _cmd_warm,
    "client": _cmd_client,
}


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
