"""The two-tier content-addressed schedule cache.

Tier 1 is an in-memory LRU of recently served result payloads; tier 2 is
an on-disk store (``<cache-dir>/<k[:2]>/<key>.json``, written atomically
via tmp + rename) that survives daemon restarts.  Both tiers are keyed by
:func:`cache_key`:

    sha256( canonical JSON of {program: serialized IR,
                               options: resolved PipelineOptions,
                               pipeline: pipeline_fingerprint(scheduler)} )

The program is the *serialized IR*, not the workload name — two names
producing the same program share one entry, and a workload whose factory
changes stops hitting stale entries automatically.  Options are the fully
resolved dict (every field, not just overrides), so any option change is a
different key.  The fingerprint folds in ``PIPELINE_VERSION``, the
IR/result format versions, and the resolved scheduler mode (plus the quick
heuristic's own version for ``quick``/``auto``), so a pipeline that could
emit different schedules — or payloads an old reader cannot parse — never
serves old entries; ``quick`` and ``exact`` runs of the same program never
share an entry.  Content addressing means there is no invalidation protocol at
all: stale entries are simply never looked up again, and ``cache-dir`` can
be deleted wholesale at any time.

Values are the exact ``OptimizationResult.to_json()`` text the worker
produced, stored verbatim — a warm response is byte-identical to the cold
one.  Disk reads are verified (parseable JSON with the expected format
version) and a corrupt or foreign-version file is treated as a miss and
removed, so a crashed writer or a downgrade cannot wedge the daemon.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from typing import Optional

from repro.pipeline import RESULT_FORMAT_VERSION, pipeline_fingerprint

__all__ = ["CacheStats", "ScheduleCache", "cache_key", "canonical_request"]

DEFAULT_MEMORY_ENTRIES = 128

#: ``<key>.tmp.<pid>`` files older than this are orphans of a writer that
#: died between write and rename; younger ones may belong to a live writer
#: in another daemon sharing the directory, so the sweeps skip them
TMP_SWEEP_AGE = 300.0

#: stores between opportunistic re-sweeps: a startup-only sweep lets a
#: long-lived daemon accumulate orphans from workers killed mid-write, so
#: every Nth put re-runs the sweep (an empty glob over the cache tree,
#: microseconds next to the result serialization it rides on)
TMP_SWEEP_EVERY = 64


def canonical_request(program_dict: dict, options_dict: dict) -> str:
    """The canonical text hashed into the cache key (stable across runs)."""
    return json.dumps(
        {
            "program": program_dict,
            "options": options_dict,
            "pipeline": pipeline_fingerprint(
                options_dict.get("scheduler", "exact")
            ),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def cache_key(program_dict: dict, options_dict: dict) -> str:
    """Content address of one scheduling request (hex sha256)."""
    text = canonical_request(program_dict, options_dict)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalid_dropped: int = 0
    tmp_swept: int = 0

    @property
    def lookups(self) -> int:
        return self.hits_memory + self.hits_disk + self.misses

    @property
    def hit_rate(self) -> float:
        looked = self.lookups
        return 0.0 if not looked else (self.hits_memory + self.hits_disk) / looked

    def as_dict(self) -> dict:
        return {
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalid_dropped": self.invalid_dropped,
            "tmp_swept": self.tmp_swept,
            "lookups": self.lookups,
            "hit_rate": round(self.hit_rate, 4),
        }


class ScheduleCache:
    """Memory-LRU over an atomic on-disk store; thread-safe.

    ``cache_dir=None`` runs memory-only (tests, ``--cache-dir ''``);
    ``memory_entries=0`` disables tier 1 (every hit re-reads disk).
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike],
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        sweep_every: int = TMP_SWEEP_EVERY,
    ):
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.memory_entries = max(0, int(memory_entries))
        self.sweep_every = max(1, int(sweep_every))
        self.stats = CacheStats()
        self._mem: OrderedDict[str, str] = OrderedDict()
        self._lock = Lock()
        self._puts = 0
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self.stats.tmp_swept = self._sweep_tmp()

    def _sweep_tmp(self, max_age: float = TMP_SWEEP_AGE) -> int:
        """Remove orphaned atomic-write temporaries left by killed writers.

        A writer killed between ``tmp.write_text`` and ``os.replace``
        leaves ``<key>.tmp.<pid>`` behind forever; nothing ever looks one
        up.  Runs at startup and again every ``sweep_every`` puts (see
        :meth:`put`) so long-lived daemons reclaim the space too.  Files
        younger than ``max_age`` are left alone — they may belong to a
        live writer in another daemon sharing this directory.
        """
        swept = 0
        now = time.time()
        for tmp in self.cache_dir.glob("*/*.tmp.*"):
            try:
                if now - tmp.stat().st_mtime < max_age:
                    continue
                tmp.unlink()
                swept += 1
            except OSError:
                continue  # raced another sweeper, or unreadable: skip
        return swept

    def path_for(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / key[:2] / f"{key}.json"

    # -- lookups -----------------------------------------------------------

    def get(self, key: str) -> tuple[Optional[str], Optional[str]]:
        """Return ``(result_text, tier)``; ``(None, None)`` on a miss.

        ``tier`` is ``"memory"`` or ``"disk"``; a disk hit is promoted
        into the memory tier.
        """
        with self._lock:
            text = self._mem.get(key)
            if text is not None:
                self._mem.move_to_end(key)
                self.stats.hits_memory += 1
                return text, "memory"

        text = self._read_disk(key)
        with self._lock:
            if text is None:
                self.stats.misses += 1
                return None, None
            self.stats.hits_disk += 1
            self._remember(key, text)
            return text, "disk"

    def _read_disk(self, key: str) -> Optional[str]:
        path = self.path_for(key)
        if path is None:
            return None
        try:
            text = path.read_text()
        except OSError:
            return None
        if not self._valid(text):
            # Corrupt (killed writer) or foreign-version: drop, recompute.
            with self._lock:
                self.stats.invalid_dropped += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return text

    @staticmethod
    def _valid(text: str) -> bool:
        try:
            payload = json.loads(text)
        except ValueError:
            return False
        return (
            isinstance(payload, dict)
            and payload.get("version") == RESULT_FORMAT_VERSION
        )

    # -- stores ------------------------------------------------------------

    def put(self, key: str, text: str) -> None:
        """Insert into both tiers; the disk write is atomic (tmp+rename)."""
        path = self.path_for(key)
        due = False
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(text)
            os.replace(tmp, path)
        with self._lock:
            self.stats.stores += 1
            self._remember(key, text)
            if path is not None:
                self._puts += 1
                due = self._puts % self.sweep_every == 0
        if due:
            swept = self._sweep_tmp()
            with self._lock:
                self.stats.tmp_swept += swept

    def _remember(self, key: str, text: str) -> None:
        # caller holds the lock
        if self.memory_entries == 0:
            return
        if key in self._mem:
            self._mem.move_to_end(key)
        else:
            while len(self._mem) >= self.memory_entries:
                self._mem.popitem(last=False)
                self.stats.evictions += 1
        self._mem[key] = text

    # -- introspection -----------------------------------------------------

    def memory_len(self) -> int:
        with self._lock:
            return len(self._mem)

    def disk_len(self) -> int:
        if self.cache_dir is None:
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def snapshot(self) -> dict:
        with self._lock:
            stats = self.stats.as_dict()
        return {
            **stats,
            "memory_entries": self.memory_len(),
            "memory_capacity": self.memory_entries,
            "disk_entries": self.disk_len(),
            "cache_dir": None if self.cache_dir is None else str(self.cache_dir),
        }
