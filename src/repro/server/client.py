"""Blocking client for the scheduling daemon.

One connection, requests answered in order — the shape scripts and CI
want.  Concurrency is "open more clients"; each :class:`ServerClient` is
not thread-safe and costs one socket.

    from repro.server import ServerClient

    with ServerClient(socket_path="/tmp/repro.sock") as client:
        response = client.optimize("heat-2dp")
        assert response["status"] == "ok"
        schedule = response["result"]["schedule"]

Responses are returned verbatim (header + status + payload) so callers can
inspect ``cache`` tags, ``server_version``, and structured errors;
:meth:`ServerClient.optimize_result` additionally rebuilds a full
:class:`~repro.pipeline.OptimizationResult` from an ``ok`` response.
"""

from __future__ import annotations

import json
import socket
from typing import Optional

from repro import __version__
from repro.server import protocol

__all__ = ["ServerClient", "ServerError"]

DEFAULT_CONNECT_TIMEOUT = 10.0


class ServerError(RuntimeError):
    """A non-``ok`` response, raised by the ``*_result`` conveniences.

    The full response dict is on ``.response`` (``status``, ``kind``,
    ``message``, ...).
    """

    def __init__(self, response: dict):
        self.response = response
        status = response.get("status", "?")
        detail = response.get("message") or response.get("kind") or ""
        super().__init__(f"server answered {status}: {detail}".strip())


class ServerClient:
    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        *,
        timeout: Optional[float] = None,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ):
        """``timeout`` bounds each request round-trip (None = wait forever,
        matching the daemon's own worker deadline)."""
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(connect_timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        self._sock.settimeout(timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    # -- plumbing ----------------------------------------------------------

    def request(self, obj: dict) -> dict:
        """Send one request, read its response; raises on a dead server."""
        protocol.write_message(self._wfile, obj)
        response = protocol.read_message(self._rfile)
        if response is None:
            raise ConnectionError("server closed the connection mid-request")
        got = response.get("protocol")
        if got != protocol.PROTOCOL_VERSION:
            raise protocol.ProtocolError(
                f"server speaks protocol v{got}, this client v"
                f"{protocol.PROTOCOL_VERSION} "
                f"(server {response.get('server_version')}, "
                f"client {__version__})"
            )
        return response

    def close(self) -> None:
        for f in (self._rfile, self._wfile, self._sock):
            try:
                f.close()
            except OSError:
                pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request types -----------------------------------------------------

    def ping(self) -> dict:
        return self.request({"type": "ping"})

    def stats(self) -> dict:
        return self.request({"type": "stats"})

    def shutdown(self) -> dict:
        return self.request({"type": "shutdown"})

    def optimize(
        self,
        workload: Optional[str] = None,
        *,
        program: Optional[dict] = None,
        options: Optional[dict] = None,
    ) -> dict:
        """One scheduling request; returns the raw response dict.

        Pass either a registered ``workload`` name or ``program``
        (serialized IR from :func:`repro.frontend.serialize.program_to_dict`);
        ``options`` is a partial dict of PipelineOptions overrides.
        """
        request: dict = {"type": "optimize"}
        if workload is not None:
            request["workload"] = workload
        if program is not None:
            request["program"] = program
        if options:
            request["options"] = options
        return self.request(request)

    def optimize_result(self, *args, **kwargs):
        """Like :meth:`optimize` but rebuilds an ``OptimizationResult``;
        raises :class:`ServerError` on any non-``ok`` response."""
        from repro.pipeline import OptimizationResult

        response = self.optimize(*args, **kwargs)
        if response.get("status") != "ok":
            raise ServerError(response)
        return OptimizationResult.from_json(json.dumps(response["result"]))
