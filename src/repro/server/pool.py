"""The daemon's worker pools: warm pre-forked workers, or spawn-per-miss.

Two implementations share one submission interface (``start`` /
``try_submit`` / ``load`` / ``drain`` / ``stop``), so the daemon picks by
configuration:

* :class:`WarmWorkerPool` (the default, ``pool_mode="warm"``) pre-forks
  ``jobs`` persistent workers at startup — after :func:`preload_pipeline`
  has imported the heavy modules, so every fork starts with the pipeline,
  the workload registry, and the serializers already loaded.  Each worker
  serves jobs off its pipe (:func:`repro.workers.warm_worker_main`) and is
  recycled after ``recycle`` requests (bounding leak accumulation) or
  replaced outright when it crashes or blows its deadline.

* :class:`WorkerPool` (``pool_mode="spawn"``, the original behavior) forks
  one fresh process per cache miss on the shared supervision layer
  (:mod:`repro.workers`), exactly like the suite engine.

Both give the daemon the same fault contract: a crashed or hung worker
settles as a :class:`~repro.workers.WorkerEvent` (``ok``/``error``/
``crash``/``timeout``) like any other — the daemon stays up.

Backpressure is the bounded queue: ``try_submit`` returns ``False`` once
``live + queued`` reaches ``jobs + backlog``, which the daemon turns into
an explicit ``busy`` response instead of unbounded latency.

Each pool's dispatcher thread blocks on the worker pipes *plus* a
self-pipe; ``try_submit`` writes one byte to wake it, so submission latency
is a pipe write, not a poll interval.  Only the dispatcher thread ever
touches worker processes — kills and respawns included — so there is no
cross-thread process management anywhere.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as conn_wait
from typing import Callable, Optional

from repro.workers import (
    WorkerEvent,
    WorkerSupervisor,
    kill_process,
    mp_context,
    warm_worker_main,
)

__all__ = [
    "PoolJob",
    "WarmWorkerPool",
    "WorkerPool",
    "preload_pipeline",
    "run_optimize_job",
]

DEFAULT_TIMEOUT = 900.0

#: warm workers are retired (and replaced by a fresh fork) after this many
#: requests, so slow leaks in scheduling code cannot accumulate forever
DEFAULT_RECYCLE = 64


def preload_pipeline() -> None:
    """Import the heavy modules once in the parent, pre-fork.

    Forked warm workers inherit the loaded pipeline, workload registry,
    and serializers, so their first request pays no import cost.
    """
    import repro.frontend.serialize  # noqa: F401
    import repro.pipeline  # noqa: F401
    import repro.workloads  # noqa: F401


def run_optimize_job(payload: dict) -> str:
    """Child job body: serialized IR + options in, result JSON text out."""
    from repro.frontend.serialize import program_from_dict
    from repro.pipeline import PipelineOptions, optimize

    program = program_from_dict(payload["program"])
    options = PipelineOptions.from_dict(payload["options"])
    return optimize(program, options).to_json()


@dataclass
class PoolJob:
    key: str
    payload: dict
    on_done: Callable[[WorkerEvent], None]
    name: str = "repro-serve-job"


@dataclass
class _PoolState:
    queued: list = field(default_factory=list)
    live: int = 0
    stopping: bool = False   # no new submissions; finish what is queued
    kill: bool = False       # abandon everything now


class WorkerPool:
    """Bounded per-request process pool with completion callbacks.

    ``on_done`` callbacks run on the dispatcher thread and must be quick
    (a cache store plus an event set); anything slow would serialize job
    completions behind it.
    """

    def __init__(
        self,
        jobs: int = 2,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        backlog: Optional[int] = None,
        target: Callable = run_optimize_job,
    ):
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.backlog = 2 * self.jobs if backlog is None else max(0, int(backlog))
        self._sup = WorkerSupervisor(target)
        self._lock = threading.Lock()
        self._state = _PoolState()
        self._drained = threading.Condition(self._lock)
        self._wake_r: Optional[int] = None
        self._wake_w: Optional[int] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._wake_r, self._wake_w = os.pipe()
        self._thread = threading.Thread(
            target=self._dispatch, name="repro-serve-pool", daemon=True
        )
        self._thread.start()

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass  # dispatcher already gone

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting work and wait for queued + live jobs to settle.

        Returns ``False`` if jobs were still running when ``timeout``
        expired; call :meth:`stop` afterwards to kill the stragglers.
        """
        with self._lock:
            self._state.stopping = True
        self._wake()
        with self._lock:
            settled = self._drained.wait_for(
                lambda: not self._state.queued and not self._state.live,
                timeout=timeout,
            )
        if settled and self._thread is not None:
            self._thread.join(timeout=5.0)
        return settled

    def stop(self) -> None:
        """Hard stop: kill live workers, fail queued and in-flight jobs."""
        with self._lock:
            self._state.stopping = True
            self._state.kill = True
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    # -- submission --------------------------------------------------------

    def load(self) -> tuple[int, int]:
        """Point-in-time ``(in_flight, queued)`` for metrics gauges."""
        with self._lock:
            return self._state.live, len(self._state.queued)

    def try_submit(self, job: PoolJob) -> bool:
        """Queue one job; ``False`` means over capacity (caller says busy)."""
        with self._lock:
            if self._state.stopping:
                return False
            if self._state.live + len(self._state.queued) >= self.jobs + self.backlog:
                return False
            self._state.queued.append(job)
        self._wake()
        return True

    # -- dispatcher thread -------------------------------------------------

    def _settle(self, job: PoolJob, ev: WorkerEvent) -> None:
        with self._lock:
            self._state.live -= 1
            self._drained.notify_all()
        try:
            job.on_done(ev)
        except Exception:
            pass  # a broken callback must not kill the pool

    def _dispatch(self) -> None:
        # The wake pipe's raw read fd joins supervisor.poll's wait set
        # directly: on POSIX, multiprocessing.connection.wait registers
        # plain file descriptors with selectors just fine.
        try:
            while True:
                with self._lock:
                    if self._state.kill:
                        break
                    while self._state.queued and self._state.live < self.jobs:
                        job = self._state.queued.pop(0)
                        self._sup.spawn(
                            job, job.payload, timeout=self.timeout, name=job.name
                        )
                        self._state.live += 1
                    if (
                        self._state.stopping
                        and not self._state.queued
                        and not self._state.live
                    ):
                        break

                events, ready = self._sup.poll(extra=[self._wake_r])
                if ready:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                for ev in events:
                    self._settle(ev.key, ev)
        finally:
            # Kill path (or an unexpected dispatcher error): fail whatever
            # is left so no waiter blocks forever, then reap the processes.
            abandoned = [h.key for h in self._sup.live_handles()]
            self._sup.shutdown()
            with self._lock:
                abandoned += self._state.queued
                self._state.queued = []
                self._state.live = 0
                self._drained.notify_all()
            for job in abandoned:
                try:
                    job.on_done(WorkerEvent(job, "error", "pool stopped", 0.0))
                except Exception:
                    pass
            try:
                os.close(self._wake_r)
                os.close(self._wake_w)
            except OSError:
                pass


@dataclass
class _WarmWorker:
    """One persistent child: its pipe, its load history, its current job."""

    proc: object
    conn: object
    jobs_done: int = 0
    job: Optional[PoolJob] = None
    seq: int = 0
    started: float = 0.0
    deadline: float = math.inf


class WarmWorkerPool:
    """Pre-forked persistent workers with recycling; same interface as
    :class:`WorkerPool`.

    ``fn`` is captured at each fork, so swapping it (tests inject scripted
    behavior this way) affects workers forked afterwards — including the
    replacements forked after a crash, timeout, or recycle.

    ``metrics``, when given, receives pool-reuse accounting:
    ``count_pool_spawn()`` per fork, ``count_pool_dispatch(reused=...)``
    per job handed to a worker (``reused`` when that worker has already
    served at least one request), and ``count_pool_recycle()`` per worker
    retired at the ``recycle`` limit.
    """

    def __init__(
        self,
        jobs: int = 2,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        backlog: Optional[int] = None,
        recycle: int = DEFAULT_RECYCLE,
        target: Callable = run_optimize_job,
        metrics=None,
        preload: Optional[Callable] = preload_pipeline,
    ):
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.backlog = 2 * self.jobs if backlog is None else max(0, int(backlog))
        self.recycle = max(1, int(recycle))
        self.fn = target
        self.metrics = metrics
        self.preload = preload
        self._ctx = mp_context()
        self._lock = threading.Lock()
        self._state = _PoolState()
        self._drained = threading.Condition(self._lock)
        self._workers: list[_WarmWorker] = []  # dispatcher thread only
        self._seq = 0
        self._wake_r: Optional[int] = None
        self._wake_w: Optional[int] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self.preload is not None:
            self.preload()
        self._wake_r, self._wake_w = os.pipe()
        self._workers = [self._spawn_worker() for _ in range(self.jobs)]
        self._thread = threading.Thread(
            target=self._dispatch, name="repro-warm-pool", daemon=True
        )
        self._thread.start()

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except (OSError, TypeError):
            pass  # dispatcher already gone (or never started)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting work and wait for queued + live jobs to settle."""
        with self._lock:
            self._state.stopping = True
        self._wake()
        with self._lock:
            settled = self._drained.wait_for(
                lambda: not self._state.queued and not self._state.live,
                timeout=timeout,
            )
        if settled and self._thread is not None:
            self._thread.join(timeout=5.0)
        return settled

    def stop(self) -> None:
        """Hard stop: kill live workers, fail queued and in-flight jobs."""
        with self._lock:
            self._state.stopping = True
            self._state.kill = True
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    # -- submission --------------------------------------------------------

    def load(self) -> tuple[int, int]:
        """Point-in-time ``(in_flight, queued)`` for metrics gauges."""
        with self._lock:
            return self._state.live, len(self._state.queued)

    def try_submit(self, job: PoolJob) -> bool:
        """Queue one job; ``False`` means over capacity (caller says busy)."""
        with self._lock:
            if self._state.stopping:
                return False
            if self._state.live + len(self._state.queued) >= self.jobs + self.backlog:
                return False
            self._state.queued.append(job)
        self._wake()
        return True

    # -- dispatcher thread -------------------------------------------------

    def _spawn_worker(self) -> _WarmWorker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=warm_worker_main,
            args=(self.fn, child_conn),
            name="repro-warm-worker",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if self.metrics is not None:
            self.metrics.count_pool_spawn()
        return _WarmWorker(proc=proc, conn=parent_conn)

    def _retire_worker(self, worker: _WarmWorker, graceful: bool = True) -> None:
        """Stop one child and reap it; the caller replaces it if needed."""
        if graceful and worker.proc.is_alive():
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
            worker.proc.join(1.0)
        if worker.proc.is_alive():
            kill_process(worker.proc)
        else:
            worker.proc.join()
        try:
            worker.conn.close()
        except OSError:
            pass

    def _settle(self, job: PoolJob, ev: WorkerEvent) -> None:
        with self._lock:
            self._state.live -= 1
            self._drained.notify_all()
        try:
            job.on_done(ev)
        except Exception:
            pass  # a broken callback must not kill the pool

    def _assign_locked(self) -> None:
        """Hand queued jobs to idle workers (caller holds the lock)."""
        for worker in self._workers:
            if worker.job is not None or not self._state.queued:
                continue
            job = self._state.queued.pop(0)
            self._seq += 1
            worker.job = job
            worker.seq = self._seq
            worker.started = time.perf_counter()
            worker.deadline = (
                math.inf if self.timeout is None
                else worker.started + self.timeout
            )
            self._state.live += 1
            try:
                worker.conn.send((worker.seq, job.payload))
            except (OSError, ValueError):
                # dead worker discovered at dispatch: fail over in place
                worker.job = None
                self._state.queued.insert(0, job)
                self._state.live -= 1
                self._replace(worker)
                continue
            if self.metrics is not None:
                self.metrics.count_pool_dispatch(reused=worker.jobs_done > 0)

    def _replace(self, worker: _WarmWorker, graceful: bool = False) -> None:
        self._retire_worker(worker, graceful=graceful)
        self._workers.remove(worker)
        self._workers.append(self._spawn_worker())

    def _on_readable(self, worker: _WarmWorker) -> None:
        try:
            msg = worker.conn.recv()
        except (EOFError, OSError):
            # the child died: a crash if it owed us a result, otherwise a
            # silent idle death — either way, replace it
            job, started = worker.job, worker.started
            worker.job = None
            worker.proc.join()
            code = worker.proc.exitcode
            pid = worker.proc.pid
            self._replace(worker)
            if job is not None:
                self._settle(job, WorkerEvent(
                    job, "crash",
                    f"worker died without reporting (exit code {code})",
                    time.perf_counter() - started, pid,
                ))
            return
        seq, status, payload = msg
        if worker.job is None or seq != worker.seq:
            return  # stale reply from a job we already killed
        job, elapsed = worker.job, time.perf_counter() - worker.started
        worker.job = None
        worker.jobs_done += 1
        if worker.jobs_done >= self.recycle:
            if self.metrics is not None:
                self.metrics.count_pool_recycle()
            self._replace(worker, graceful=True)
        self._settle(job, WorkerEvent(job, status, payload, elapsed,
                                      worker.proc.pid))

    def _kill_overdue(self) -> None:
        now = time.perf_counter()
        for worker in list(self._workers):
            if worker.job is None or now < worker.deadline:
                continue
            job, pid = worker.job, worker.proc.pid
            worker.job = None
            self._replace(worker)
            self._settle(job, WorkerEvent(
                job, "timeout",
                f"exceeded {self.timeout:.0f}s deadline",
                now - worker.started, pid,
            ))

    def _dispatch(self) -> None:
        try:
            while True:
                with self._lock:
                    if self._state.kill:
                        break
                    self._assign_locked()
                    if (
                        self._state.stopping
                        and not self._state.queued
                        and not self._state.live
                    ):
                        break
                busy_deadlines = [
                    w.deadline for w in self._workers
                    if w.job is not None and w.deadline is not math.inf
                ]
                wait_for = None
                if busy_deadlines:
                    wait_for = max(
                        0.0, min(busy_deadlines) - time.perf_counter()
                    ) + 0.01
                ready = conn_wait(
                    [w.conn for w in self._workers] + [self._wake_r],
                    timeout=wait_for,
                )
                if self._wake_r in ready:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                ready_set = set(ready)
                for worker in list(self._workers):
                    if worker.conn in ready_set:
                        self._on_readable(worker)
                self._kill_overdue()
        finally:
            # Kill path (or an unexpected dispatcher error): fail whatever
            # is left so no waiter blocks forever, then reap the children.
            abandoned = [w.job for w in self._workers if w.job is not None]
            with self._lock:
                abandoned += self._state.queued
                self._state.queued = []
                self._state.live = 0
                graceful = not self._state.kill
                self._drained.notify_all()
            for worker in self._workers:
                self._retire_worker(worker, graceful=graceful)
            self._workers = []
            for job in abandoned:
                try:
                    job.on_done(WorkerEvent(job, "error", "pool stopped", 0.0))
                except Exception:
                    pass
            try:
                os.close(self._wake_r)
                os.close(self._wake_w)
            except (OSError, TypeError):
                pass
