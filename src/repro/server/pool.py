"""The daemon's worker pool: one fresh process per cache miss.

Same execution model as the suite engine — and the same supervision code
(:mod:`repro.workers`) — but with dynamic submission instead of a fixed
matrix: connection threads :meth:`~WorkerPool.try_submit` jobs, a single
dispatcher thread owns the supervisor, spawns up to ``jobs`` concurrent
processes, and fires each job's completion callback with the settled
:class:`~repro.workers.WorkerEvent` (``ok``/``error``/``crash``/
``timeout``).  A crashed or hung worker settles as an event like any
other — the daemon stays up.

Backpressure is the bounded queue: ``try_submit`` returns ``False`` once
``live + queued`` reaches ``jobs + backlog``, which the daemon turns into
an explicit ``busy`` response instead of unbounded latency.

The dispatcher blocks in ``supervisor.poll`` on the worker pipes *plus* a
self-pipe; ``try_submit`` writes one byte to wake it, so submission latency
is a pipe write, not a poll interval.  Only the dispatcher thread ever
touches the supervisor — worker kills included — so there is no cross-
thread process management anywhere.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.workers import WorkerEvent, WorkerSupervisor

__all__ = ["PoolJob", "WorkerPool", "run_optimize_job"]

DEFAULT_TIMEOUT = 900.0


def run_optimize_job(payload: dict) -> str:
    """Child job body: serialized IR + options in, result JSON text out."""
    from repro.frontend.serialize import program_from_dict
    from repro.pipeline import PipelineOptions, optimize

    program = program_from_dict(payload["program"])
    options = PipelineOptions.from_dict(payload["options"])
    return optimize(program, options).to_json()


@dataclass
class PoolJob:
    key: str
    payload: dict
    on_done: Callable[[WorkerEvent], None]
    name: str = "repro-serve-job"


@dataclass
class _PoolState:
    queued: list = field(default_factory=list)
    live: int = 0
    stopping: bool = False   # no new submissions; finish what is queued
    kill: bool = False       # abandon everything now


class WorkerPool:
    """Bounded per-request process pool with completion callbacks.

    ``on_done`` callbacks run on the dispatcher thread and must be quick
    (a cache store plus an event set); anything slow would serialize job
    completions behind it.
    """

    def __init__(
        self,
        jobs: int = 2,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        backlog: Optional[int] = None,
        target: Callable = run_optimize_job,
    ):
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.backlog = 2 * self.jobs if backlog is None else max(0, int(backlog))
        self._sup = WorkerSupervisor(target)
        self._lock = threading.Lock()
        self._state = _PoolState()
        self._drained = threading.Condition(self._lock)
        self._wake_r: Optional[int] = None
        self._wake_w: Optional[int] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._wake_r, self._wake_w = os.pipe()
        self._thread = threading.Thread(
            target=self._dispatch, name="repro-serve-pool", daemon=True
        )
        self._thread.start()

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass  # dispatcher already gone

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting work and wait for queued + live jobs to settle.

        Returns ``False`` if jobs were still running when ``timeout``
        expired; call :meth:`stop` afterwards to kill the stragglers.
        """
        with self._lock:
            self._state.stopping = True
        self._wake()
        with self._lock:
            settled = self._drained.wait_for(
                lambda: not self._state.queued and not self._state.live,
                timeout=timeout,
            )
        if settled and self._thread is not None:
            self._thread.join(timeout=5.0)
        return settled

    def stop(self) -> None:
        """Hard stop: kill live workers, fail queued and in-flight jobs."""
        with self._lock:
            self._state.stopping = True
            self._state.kill = True
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    # -- submission --------------------------------------------------------

    def load(self) -> tuple[int, int]:
        """Point-in-time ``(in_flight, queued)`` for metrics gauges."""
        with self._lock:
            return self._state.live, len(self._state.queued)

    def try_submit(self, job: PoolJob) -> bool:
        """Queue one job; ``False`` means over capacity (caller says busy)."""
        with self._lock:
            if self._state.stopping:
                return False
            if self._state.live + len(self._state.queued) >= self.jobs + self.backlog:
                return False
            self._state.queued.append(job)
        self._wake()
        return True

    # -- dispatcher thread -------------------------------------------------

    def _settle(self, job: PoolJob, ev: WorkerEvent) -> None:
        with self._lock:
            self._state.live -= 1
            self._drained.notify_all()
        try:
            job.on_done(ev)
        except Exception:
            pass  # a broken callback must not kill the pool

    def _dispatch(self) -> None:
        # The wake pipe's raw read fd joins supervisor.poll's wait set
        # directly: on POSIX, multiprocessing.connection.wait registers
        # plain file descriptors with selectors just fine.
        try:
            while True:
                with self._lock:
                    if self._state.kill:
                        break
                    while self._state.queued and self._state.live < self.jobs:
                        job = self._state.queued.pop(0)
                        self._sup.spawn(
                            job, job.payload, timeout=self.timeout, name=job.name
                        )
                        self._state.live += 1
                    if (
                        self._state.stopping
                        and not self._state.queued
                        and not self._state.live
                    ):
                        break

                events, ready = self._sup.poll(extra=[self._wake_r])
                if ready:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                for ev in events:
                    self._settle(ev.key, ev)
        finally:
            # Kill path (or an unexpected dispatcher error): fail whatever
            # is left so no waiter blocks forever, then reap the processes.
            abandoned = [h.key for h in self._sup.live_handles()]
            self._sup.shutdown()
            with self._lock:
                abandoned += self._state.queued
                self._state.queued = []
                self._state.live = 0
                self._drained.notify_all()
            for job in abandoned:
                try:
                    job.on_done(WorkerEvent(job, "error", "pool stopped", 0.0))
                except Exception:
                    pass
            try:
                os.close(self._wake_r)
                os.close(self._wake_w)
            except OSError:
                pass
