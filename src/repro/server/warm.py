"""``repro warm``: pre-populate the schedule cache over a run matrix.

A fleet is only fast once its cache is warm.  :func:`warm_cache` takes the
same workload × variant matrix the suite engine runs
(:func:`repro.suite.matrix.build_matrix`) and pushes every cell through a
daemon — or through the shard router, which lands each request on the
shard that owns its key — so the first real client finds every answer
already cached.

Each spec becomes one ordinary ``optimize`` request
(:meth:`~repro.suite.matrix.RunSpec.client_request`), so warming computes
exactly the entries real requests will look up: same resolution, same
options dict, same cache key.  ``jobs`` client connections drive the
daemon concurrently; ``busy`` responses — the daemon's admission control
doing its job while every worker is busy computing — are retried with a
backoff instead of treated as failures.  The report says what happened per
spec (``miss`` = newly computed, ``hit-*``/``coalesced`` = already warm,
``error``/``busy`` = gave up), so a CI job can gate on ``report.failed``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.server.client import ServerClient

__all__ = ["WarmReport", "warm_cache"]

DEFAULT_BUSY_BACKOFF = 0.2
DEFAULT_BUSY_RETRIES = 100


@dataclass
class WarmReport:
    """What one warming pass did, per spec and in aggregate."""

    outcomes: list[dict] = field(default_factory=list)
    elapsed: float = 0.0

    def count(self, cache_tag: str) -> int:
        return sum(1 for o in self.outcomes if o.get("cache") == cache_tag)

    @property
    def computed(self) -> int:
        return self.count("miss") + self.count("coalesced")

    @property
    def already_warm(self) -> int:
        return self.count("hit-memory") + self.count("hit-disk")

    @property
    def failed(self) -> list[dict]:
        return [o for o in self.outcomes if o.get("status") != "ok"]

    def as_dict(self) -> dict:
        return {
            "specs": len(self.outcomes),
            "computed": self.computed,
            "already_warm": self.already_warm,
            "failed": len(self.failed),
            "elapsed": round(self.elapsed, 3),
            "outcomes": self.outcomes,
        }

    def summary_line(self) -> str:
        return (
            f"warmed {len(self.outcomes)} spec(s) in {self.elapsed:.1f}s: "
            f"{self.computed} computed, {self.already_warm} already warm, "
            f"{len(self.failed)} failed"
        )


def _warm_one(
    client: ServerClient,
    spec_request: dict,
    busy_backoff: float,
    busy_retries: int,
) -> dict:
    """Push one spec through the daemon, riding out ``busy`` responses."""
    delay = busy_backoff
    for _ in range(busy_retries + 1):
        response = client.request(spec_request)
        if response.get("status") != "busy":
            return response
        time.sleep(delay)
        delay = min(2.0, delay * 1.5)
    return response


def warm_cache(
    specs: Sequence,
    *,
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    jobs: int = 4,
    busy_backoff: float = DEFAULT_BUSY_BACKOFF,
    busy_retries: int = DEFAULT_BUSY_RETRIES,
    progress: Optional[Callable[[dict], None]] = None,
) -> WarmReport:
    """Warm every spec's cache entry through the given endpoint.

    ``specs`` are :class:`~repro.suite.matrix.RunSpec` instances (or any
    object with ``run_id`` and ``client_request()``).  ``jobs`` bounds the
    client connections driving the daemon; keep it at or below the fleet's
    total worker count plus backlog, or the extra clients just collect
    ``busy`` retries.  ``progress``, when given, is called with each
    outcome dict as it lands (CLI progress lines).
    """
    jobs = max(1, min(int(jobs), len(specs) or 1))
    pending = list(enumerate(specs))
    pending_lock = threading.Lock()
    outcomes: dict[int, dict] = {}
    t0 = time.perf_counter()

    def drive() -> None:
        try:
            client = ServerClient(
                socket_path=socket_path, host=host, port=port
            )
        except OSError as e:
            with pending_lock:
                while pending:
                    idx, spec = pending.pop()
                    outcomes[idx] = {
                        "run_id": spec.run_id,
                        "status": "error",
                        "message": f"cannot connect: {e}",
                    }
            return
        with client:
            while True:
                with pending_lock:
                    if not pending:
                        return
                    idx, spec = pending.pop(0)
                try:
                    response = _warm_one(
                        client, spec.client_request(),
                        busy_backoff, busy_retries,
                    )
                    outcome = {
                        "run_id": spec.run_id,
                        "status": response.get("status"),
                        "cache": response.get("cache"),
                        "key": response.get("key"),
                        "elapsed": response.get("elapsed"),
                    }
                    if response.get("status") != "ok":
                        outcome["message"] = response.get("message")
                        outcome["kind"] = response.get("kind")
                except (OSError, ConnectionError, ValueError) as e:
                    outcome = {
                        "run_id": spec.run_id,
                        "status": "error",
                        "message": str(e),
                    }
                with pending_lock:
                    outcomes[idx] = outcome
                if progress is not None:
                    progress(outcome)

    threads = [
        threading.Thread(target=drive, name=f"repro-warm-{i}", daemon=True)
        for i in range(jobs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    report = WarmReport(
        outcomes=[outcomes[i] for i in sorted(outcomes)],
        elapsed=time.perf_counter() - t0,
    )
    return report
