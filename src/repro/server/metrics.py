"""Serving metrics: request counters, gauges, latency percentiles.

A single :class:`ServerMetrics` instance is shared by every connection
thread and the pool dispatcher, so everything is guarded by one lock —
contention is irrelevant next to seconds-long scheduling requests.

Latencies are recorded per stage into bounded reservoirs (the most recent
``window`` observations): ``lookup`` is resolve + cache probe, ``compute``
is worker wall time on a miss, ``total`` is request arrival to response
ready.  Percentiles are computed on demand from a sorted copy — a few
thousand floats, microseconds — rather than maintained incrementally.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Optional

__all__ = ["LatencyWindow", "ServerMetrics"]

DEFAULT_WINDOW = 4096

PERCENTILES = (0.5, 0.9, 0.99)


class LatencyWindow:
    """The most recent ``window`` observations of one latency stage."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0  # lifetime, not just the window

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1

    def percentile(self, q: float) -> Optional[float]:
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def as_dict(self) -> dict:
        out: dict = {"count": self.count}
        for q in PERCENTILES:
            value = self.percentile(q)
            key = f"p{int(q * 100)}"
            out[key] = None if value is None else round(value, 6)
        if self._samples:
            out["max"] = round(max(self._samples), 6)
        else:
            out["max"] = None
        return out


class ServerMetrics:
    """Counters + latency windows; ``snapshot()`` is the ``stats`` payload."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self._lock = threading.Lock()
        self.started = time.time()
        self.requests = 0            # every parsed request, any type
        self.optimize_requests = 0
        self.ok = 0
        self.hits_memory = 0
        self.hits_disk = 0
        self.coalesced = 0           # waited on another request's computation
        self.misses = 0              # actually computed by a worker
        self.busy = 0                # admission control rejections
        self.errors: dict[str, int] = {}
        # scheduler arbitration on computed (miss) responses:
        # path -> count, e.g. {"quick": 3, "fallback": 1, "exact": 2}
        self.scheduler_paths: dict[str, int] = {}
        # fallback reason -> count, e.g. {"untilable-band": 1}
        self.fallback_reasons: dict[str, int] = {}
        # structural warm-start outcomes on computed (miss) responses,
        # from the result's SchedulerStats.structural_path: a skeleton
        # record replayed every solve (hit), no record existed (miss), or
        # a record existed but some level solved cold (fallback).
        # Requests served with the store disabled count nowhere.
        self.structural_hits = 0
        self.structural_misses = 0
        self.structural_fallbacks = 0
        # computed responses whose schedule carries at least one
        # reduction-parallel row (parallel_reductions relaxation paid off);
        # cache hits reuse a previously counted computation
        self.reduction_parallel = 0
        # resolved execution backend -> optimize requests, e.g.
        # {"python": 40, "c": 2}; requests predating the knob count as
        # "python" (the resolved-options default)
        self.backends: dict[str, int] = {}
        # warm worker pool accounting (spawn-per-miss pools leave these 0)
        self.pool_spawns = 0       # workers forked (initial + replacements)
        self.pool_dispatches = 0   # jobs handed to a worker
        self.pool_reuses = 0       # ... to a worker that had served before
        self.pool_recycles = 0     # workers retired at the recycle limit
        # router-side: shard endpoint -> forwarded optimize requests
        self.shard_routes: dict[str, int] = {}
        self._latency = {
            "lookup": LatencyWindow(window),
            "compute": LatencyWindow(window),
            "total": LatencyWindow(window),
        }

    # -- recording ---------------------------------------------------------

    def count_request(self, rtype: str) -> None:
        with self._lock:
            self.requests += 1
            if rtype == "optimize":
                self.optimize_requests += 1

    def count_outcome(self, cache: Optional[str]) -> None:
        """One served optimize response: ``cache`` is the response tag."""
        with self._lock:
            self.ok += 1
            if cache == "hit-memory":
                self.hits_memory += 1
            elif cache == "hit-disk":
                self.hits_disk += 1
            elif cache == "coalesced":
                self.coalesced += 1
            elif cache == "miss":
                self.misses += 1

    def count_scheduler(self, path: Optional[str], reason: Optional[str] = None) -> None:
        """One computed response's scheduler arbitration outcome.

        ``path`` is ``scheduler_path`` from the result's SchedulerStats
        (``"quick"``, ``"fallback"``, or ``"exact"``); ``reason`` is the
        fallback reason when the quick heuristic bowed out.  Cache hits are
        not recorded — they reuse a previously counted computation.
        """
        if path is None:
            return
        with self._lock:
            self.scheduler_paths[path] = self.scheduler_paths.get(path, 0) + 1
            if reason is not None:
                self.fallback_reasons[reason] = (
                    self.fallback_reasons.get(reason, 0) + 1
                )

    def count_structural(self, path: Optional[str]) -> None:
        """One computed response's skeleton-store outcome.

        ``path`` is ``structural_path`` from the result's SchedulerStats;
        ``None`` (store disabled, or a record predating the field) is not
        counted.  Like :meth:`count_scheduler`, exact-cache hits are never
        recorded — they reuse a previously counted computation.
        """
        if path is None:
            return
        with self._lock:
            if path == "hit":
                self.structural_hits += 1
            elif path == "fallback":
                self.structural_fallbacks += 1
            else:
                self.structural_misses += 1

    def count_reduction_parallel(self) -> None:
        """One computed response whose schedule has reduction-parallel rows."""
        with self._lock:
            self.reduction_parallel += 1

    def count_backend(self, backend: str) -> None:
        """One resolved optimize request's execution backend."""
        with self._lock:
            self.backends[backend] = self.backends.get(backend, 0) + 1

    def count_pool_spawn(self) -> None:
        with self._lock:
            self.pool_spawns += 1

    def count_pool_dispatch(self, reused: bool) -> None:
        """One job handed to a warm worker; ``reused`` when that worker
        had already served at least one request (the pre-fork payoff)."""
        with self._lock:
            self.pool_dispatches += 1
            if reused:
                self.pool_reuses += 1

    def count_pool_recycle(self) -> None:
        with self._lock:
            self.pool_recycles += 1

    def count_shard_route(self, shard: str) -> None:
        """One optimize request forwarded to ``shard`` (router only)."""
        with self._lock:
            self.shard_routes[shard] = self.shard_routes.get(shard, 0) + 1

    def count_busy(self) -> None:
        with self._lock:
            self.busy += 1

    def count_error(self, kind: str) -> None:
        with self._lock:
            self.errors[kind] = self.errors.get(kind, 0) + 1

    def observe(self, stage: str, seconds: float) -> None:
        with self._lock:
            self._latency[stage].record(seconds)

    # -- reporting ---------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        served = self.hits_memory + self.hits_disk + self.coalesced + self.misses
        if not served:
            return 0.0
        return (self.hits_memory + self.hits_disk + self.coalesced) / served

    def snapshot(self, **gauges) -> dict:
        """Everything, as one JSON-shaped dict.

        ``gauges`` lets the daemon splice in point-in-time values it owns
        (``queue_depth``, ``in_flight``, ``connections``).
        """
        with self._lock:
            return {
                "uptime_seconds": round(time.time() - self.started, 3),
                "requests": self.requests,
                "optimize_requests": self.optimize_requests,
                "ok": self.ok,
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "coalesced": self.coalesced,
                "misses": self.misses,
                "busy": self.busy,
                "errors": dict(self.errors),
                "scheduler_paths": dict(self.scheduler_paths),
                "fallback_reasons": dict(self.fallback_reasons),
                "structural_hits": self.structural_hits,
                "structural_misses": self.structural_misses,
                "structural_fallbacks": self.structural_fallbacks,
                "reduction_parallel": self.reduction_parallel,
                "backends": dict(self.backends),
                "pool": {
                    "spawns": self.pool_spawns,
                    "dispatches": self.pool_dispatches,
                    "reuses": self.pool_reuses,
                    "recycles": self.pool_recycles,
                },
                "shard_routes": dict(self.shard_routes),
                "hit_rate": round(self.hit_rate, 4),
                "latency": {
                    name: window.as_dict()
                    for name, window in self._latency.items()
                },
                **gauges,
            }

    def summary_line(self) -> str:
        """The one-liner ``repro serve --report`` prints on exit."""
        snap = self.snapshot()
        p50 = snap["latency"]["total"]["p50"]
        return (
            f"served {snap['optimize_requests']} optimize request(s): "
            f"{snap['hits_memory']}+{snap['hits_disk']} cache hits "
            f"(mem+disk), {snap['coalesced']} coalesced, "
            f"{snap['misses']} computed, {snap['busy']} busy, "
            f"scheduler {json.dumps(snap['scheduler_paths'])}, "
            f"fallbacks {json.dumps(snap['fallback_reasons'])}, "
            f"structural {snap['structural_hits']}/{snap['structural_misses']}"
            f"/{snap['structural_fallbacks']} (hit/miss/fb), "
            f"{snap['reduction_parallel']} reduction-parallel, "
            f"errors {json.dumps(snap['errors'])}, "
            f"hit rate {snap['hit_rate']:.2f}, "
            f"p50 total {('%.3fs' % p50) if p50 is not None else 'n/a'}"
        )
