"""Scheduling-as-a-service: a persistent daemon around ``optimize()``.

``repro serve`` runs the pipeline as a long-lived service so repeated
scheduling requests — the common case for real users, per the paper's
compile-time argument (Table 3) and the follow-up latency work
(arXiv:1803.10726) — amortize to a cache lookup instead of a full pipeline
run.  The pieces:

* :mod:`repro.server.protocol` — JSON-lines request/response framing over a
  Unix or TCP socket, with a version header on every response;
* :mod:`repro.server.cache`    — the two-tier content-addressed schedule
  cache (in-memory LRU over an atomic on-disk store), keyed by
  ``sha256(canonical IR + options + pipeline version)``;
* :mod:`repro.server.pool`     — the worker pools: pre-forked persistent
  warm workers (the default) or spawn-per-miss on the shared supervision
  layer (:mod:`repro.workers`), both with a bounded queue;
* :mod:`repro.server.daemon`   — the socket server (an asyncio loop by
  default, the original thread-per-connection loop as a fallback):
  single-flight request coalescing, admission control with explicit busy
  responses, graceful drain on SIGTERM;
* :mod:`repro.server.resolve`  — request → (program, options, key)
  resolution, memoized for workload-name requests on the warm path;
* :mod:`repro.server.shard`    — consistent-hash cache sharding across N
  daemons behind a thin router (``repro route``);
* :mod:`repro.server.warm`     — ``repro warm``: pre-populate the cache
  over the suite engine's workload × variant matrix;
* :mod:`repro.server.metrics`  — hit rates, queue depth, in-flight count,
  pool reuse and shard routing counters, per-stage latency percentiles,
  exposed via ``stats`` requests;
* :mod:`repro.server.client`   — the blocking client used by
  ``repro client`` and scripts.

Like :mod:`repro.suite`, everything crossing the wire is the public JSON
surface: serialized IR from :mod:`repro.frontend.serialize` in, full
``OptimizationResult.to_json()`` payloads out.
"""

from repro.server.cache import ScheduleCache, cache_key
from repro.server.client import ServerClient
from repro.server.daemon import Daemon, DaemonConfig, SocketInUse
from repro.server.metrics import ServerMetrics
from repro.server.pool import WarmWorkerPool, WorkerPool
from repro.server.protocol import PROTOCOL_VERSION, ProtocolError
from repro.server.shard import Router, RouterConfig, ShardRing
from repro.server.warm import WarmReport, warm_cache

__all__ = [
    "Daemon",
    "DaemonConfig",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Router",
    "RouterConfig",
    "ScheduleCache",
    "ServerClient",
    "ServerMetrics",
    "ShardRing",
    "SocketInUse",
    "WarmReport",
    "WarmWorkerPool",
    "WorkerPool",
    "cache_key",
    "warm_cache",
]
