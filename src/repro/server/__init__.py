"""Scheduling-as-a-service: a persistent daemon around ``optimize()``.

``repro serve`` runs the pipeline as a long-lived service so repeated
scheduling requests — the common case for real users, per the paper's
compile-time argument (Table 3) and the follow-up latency work
(arXiv:1803.10726) — amortize to a cache lookup instead of a full pipeline
run.  The pieces:

* :mod:`repro.server.protocol` — JSON-lines request/response framing over a
  Unix or TCP socket, with a version header on every response;
* :mod:`repro.server.cache`    — the two-tier content-addressed schedule
  cache (in-memory LRU over an atomic on-disk store), keyed by
  ``sha256(canonical IR + options + pipeline version)``;
* :mod:`repro.server.pool`     — a per-request worker-process pool on the
  shared supervision layer (:mod:`repro.workers`), with a bounded queue;
* :mod:`repro.server.daemon`   — the socket server: single-flight request
  coalescing, admission control with explicit busy responses, graceful
  drain on SIGTERM;
* :mod:`repro.server.metrics`  — hit rates, queue depth, in-flight count,
  per-stage latency percentiles, exposed via ``stats`` requests;
* :mod:`repro.server.client`   — the blocking client used by
  ``repro client`` and scripts.

Like :mod:`repro.suite`, everything crossing the wire is the public JSON
surface: serialized IR from :mod:`repro.frontend.serialize` in, full
``OptimizationResult.to_json()`` payloads out.
"""

from repro.server.cache import ScheduleCache, cache_key
from repro.server.client import ServerClient
from repro.server.daemon import Daemon, DaemonConfig
from repro.server.metrics import ServerMetrics
from repro.server.pool import WorkerPool
from repro.server.protocol import PROTOCOL_VERSION, ProtocolError

__all__ = [
    "Daemon",
    "DaemonConfig",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ScheduleCache",
    "ServerClient",
    "ServerMetrics",
    "WorkerPool",
    "cache_key",
]
