"""Cache sharding: a consistent-hash ring and the thin request router.

``repro route`` runs a :class:`Router` in front of N ordinary daemons
("shards"), partitioning the content-addressed cache by key: every
``optimize`` request resolves to its cache key (the same
:func:`~repro.server.cache.cache_key` the daemon itself would compute) and
is forwarded to the one shard that owns that key on the
:class:`ShardRing`.  Each key therefore has exactly one home — one shard's
memory LRU warms for it, one disk store holds it, and single-flight
coalescing keeps working fleet-wide because concurrent requests for a key
all land on the same daemon.

The ring is the textbook consistent-hash construction: each shard endpoint
is hashed onto the circle at :data:`VNODES` points (virtual nodes smooth
the load split), a key is owned by the first point clockwise of its hash,
and adding or removing one shard remaps only ~1/N of the keyspace — a
grown fleet keeps most of its warm cache.

The router is deliberately thin: it resolves + hashes (memoized for
workload-name requests), picks the shard, forwards the client's request
line, and relays the shard's response line back *verbatim* — responses
through the router are byte-identical to talking to the shard directly.
It computes no schedules, caches no results, and holds no state beyond
idle shard connections (reused across requests, reopened once on a broken
pipe).  ``ping`` is answered locally; ``stats`` aggregates the fleet;
``shutdown`` fans out to every shard before the router itself drains.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import signal
import threading
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.server import protocol
from repro.server.daemon import STREAM_LIMIT
from repro.server.metrics import ServerMetrics
from repro.server.resolve import ResolveMemo

__all__ = ["Router", "RouterConfig", "ShardRing", "parse_endpoint"]

#: virtual nodes per shard endpoint; 64 keeps the max/mean load ratio of a
#: few-shard fleet within a few percent without a noticeable ring
VNODES = 64


def parse_endpoint(endpoint: str) -> tuple[str, ...]:
    """``"host:port"`` → ``("tcp", host, port)``; anything else is a Unix
    socket path → ``("unix", path)``."""
    host, sep, port = endpoint.rpartition(":")
    if sep and port.isdigit() and "/" not in host:
        return ("tcp", host or "127.0.0.1", int(port))
    return ("unix", endpoint)


def _ring_hash(text: str) -> int:
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


class ShardRing:
    """Consistent-hash ring over shard endpoint strings.

    Deterministic across processes and runs: placement depends only on the
    endpoint strings, so a router restart (or a second router in front of
    the same fleet) routes identically.
    """

    def __init__(self, endpoints: Sequence[str], vnodes: int = VNODES):
        if not endpoints:
            raise ValueError("a shard ring needs at least one endpoint")
        if len(set(endpoints)) != len(endpoints):
            raise ValueError(f"duplicate shard endpoints: {list(endpoints)}")
        self.endpoints = list(endpoints)
        self.vnodes = vnodes
        points = []
        for endpoint in self.endpoints:
            for i in range(vnodes):
                points.append((_ring_hash(f"{endpoint}#{i}"), endpoint))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [e for _, e in points]

    def owner(self, key: str) -> str:
        """The endpoint owning ``key`` (first ring point clockwise)."""
        idx = bisect.bisect_right(self._hashes, _ring_hash(key))
        return self._owners[idx % len(self._owners)]

    def spread(self, keys: Sequence[str]) -> dict[str, int]:
        """Key count per endpoint — for tests and ``stats`` curiosity."""
        out = {e: 0 for e in self.endpoints}
        for key in keys:
            out[self.owner(key)] += 1
        return out


@dataclass
class RouterConfig:
    shards: Sequence[str] = ()          # daemon endpoints (unix paths or host:port)
    socket_path: Optional[str] = None   # where the router itself listens
    host: str = "127.0.0.1"
    port: Optional[int] = None
    connect_timeout: float = 10.0
    vnodes: int = VNODES

    def __post_init__(self) -> None:
        if (self.socket_path is None) == (self.port is None):
            raise ValueError("configure exactly one of socket_path or port")
        if not self.shards:
            raise ValueError("a router needs at least one shard endpoint")


class _ShardLink:
    """Idle-connection pool for one shard (all use is on the event loop)."""

    def __init__(self, endpoint: str, connect_timeout: float):
        self.endpoint = endpoint
        self.connect_timeout = connect_timeout
        self.idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def _open(self):
        kind = parse_endpoint(self.endpoint)
        if kind[0] == "unix":
            opener = asyncio.open_unix_connection(kind[1], limit=STREAM_LIMIT)
        else:
            opener = asyncio.open_connection(kind[1], kind[2], limit=STREAM_LIMIT)
        return await asyncio.wait_for(opener, self.connect_timeout)

    async def roundtrip(self, line: bytes) -> bytes:
        """Send one request line, return the shard's response line verbatim.

        A pooled connection may have died since it was parked (daemon
        restart, idle timeout); one retry on a fresh connection covers
        that, and a second failure is the shard's problem, not the pool's.
        """
        for attempt in (0, 1):
            fresh = not self.idle
            reader, writer = self.idle.pop() if self.idle else await self._open()
            try:
                writer.write(line)
                await writer.drain()
                response = await reader.readline()
                if not response:
                    raise ConnectionError("shard closed the connection")
            except (OSError, ConnectionError, asyncio.IncompleteReadError):
                with contextlib.suppress(Exception):
                    writer.close()
                if fresh or attempt:
                    raise
                continue  # stale pooled connection: retry on a fresh one
            self.idle.append((reader, writer))
            return response
        raise ConnectionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        idle, self.idle = self.idle, []
        for _, writer in idle:
            with contextlib.suppress(Exception):
                writer.close()


class Router:
    """The thin routing tier in front of a sharded daemon fleet."""

    def __init__(self, config: RouterConfig):
        self.config = config
        self.ring = ShardRing(config.shards, vnodes=config.vnodes)
        self.metrics = ServerMetrics()
        self._memo = ResolveMemo()
        self._links = {
            endpoint: _ShardLink(endpoint, config.connect_timeout)
            for endpoint in self.ring.endpoints
        }
        self._stop = threading.Event()
        self._conn_tasks: set = set()
        self._open_conns: set = set()
        self.bound_address: Optional[object] = None

    # -- lifecycle ---------------------------------------------------------

    def install_signal_handlers(self) -> None:
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda signum, frame: self._stop.set())

    def shutdown(self) -> None:
        self._stop.set()

    def serve(self) -> None:
        """Bind, route until asked to stop.  Blocks."""
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        if self.config.socket_path is not None:
            from repro.server.daemon import claim_unix_path

            claim_unix_path(self.config.socket_path)
            server = await asyncio.start_unix_server(
                self._serve_connection,
                path=self.config.socket_path, limit=STREAM_LIMIT,
            )
            self.bound_address = self.config.socket_path
        else:
            server = await asyncio.start_server(
                self._serve_connection,
                host=self.config.host, port=self.config.port,
                limit=STREAM_LIMIT,
            )
            self.bound_address = server.sockets[0].getsockname()
        try:
            while not self._stop.is_set():
                await asyncio.sleep(0.05)
        finally:
            server.close()
            await server.wait_closed()
            for writer in list(self._open_conns):
                with contextlib.suppress(Exception):
                    writer.close()
            tasks = [t for t in self._conn_tasks if not t.done()]
            if tasks:
                await asyncio.wait(tasks, timeout=5.0)
            for link in self._links.values():
                link.close()
            if self.config.socket_path is not None:
                import os

                with contextlib.suppress(OSError):
                    os.unlink(self.config.socket_path)

    async def _serve_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._open_conns.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    request = protocol.parse_line(line)
                except protocol.ProtocolError as e:
                    self.metrics.count_error("bad-request")
                    writer.write(protocol.encode_message(
                        protocol.error_response(None, "bad-request", str(e))
                    ))
                    await writer.drain()
                    continue
                if request is None:
                    continue
                writer.write(await self._route(line, request))
                await writer.drain()
                if request.get("type") == "shutdown":
                    return
        except (OSError, ValueError, ConnectionError):
            pass
        finally:
            self._open_conns.discard(writer)
            self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    # -- request routing ---------------------------------------------------

    async def _route(self, line: bytes, request: dict) -> bytes:
        try:
            protocol.validate_request(request)
        except protocol.ProtocolError as e:
            self.metrics.count_error("bad-request")
            return protocol.encode_message(
                protocol.error_response(request, "bad-request", str(e))
            )
        rtype = request["type"]
        self.metrics.count_request(rtype)
        if rtype == "ping":
            return protocol.encode_message(
                {**protocol.response_header(request), "status": "ok"}
            )
        if rtype == "stats":
            return protocol.encode_message(await self._stats(request))
        if rtype == "shutdown":
            return protocol.encode_message(await self._shutdown_fleet(request))
        return await self._route_optimize(line, request)

    async def _route_optimize(self, line: bytes, request: dict) -> bytes:
        try:
            _, _, key = self._memo.resolve(request)
        except protocol.ProtocolError as e:
            self.metrics.count_error("bad-request")
            return protocol.encode_message(
                protocol.error_response(request, "bad-request", str(e))
            )
        endpoint = self.ring.owner(key)
        self.metrics.count_shard_route(endpoint)
        try:
            return await self._links[endpoint].roundtrip(line)
        except (OSError, ConnectionError, asyncio.TimeoutError) as e:
            self.metrics.count_error("shard-unreachable")
            return protocol.encode_message(protocol.error_response(
                request, "error",
                f"shard {endpoint!r} unreachable: {e}",
            ))

    async def _stats(self, request: dict) -> dict:
        shards: dict[str, dict] = {}
        for endpoint, link in self._links.items():
            probe = protocol.encode_message({"type": "stats"})
            try:
                reply = protocol.parse_line(await link.roundtrip(probe))
                shards[endpoint] = reply.get("stats", {})
            except (OSError, ConnectionError, ValueError, asyncio.TimeoutError) as e:
                shards[endpoint] = {"error": str(e)}
        return {
            **protocol.response_header(request),
            "status": "ok",
            "stats": {
                "router": self.metrics.snapshot(
                    shards=list(self.ring.endpoints),
                ),
                "shards": shards,
            },
        }

    async def _shutdown_fleet(self, request: dict) -> dict:
        """Forward shutdown to every shard, then drain the router itself."""
        results: dict[str, str] = {}
        for endpoint, link in self._links.items():
            probe = protocol.encode_message({"type": "shutdown"})
            try:
                reply = protocol.parse_line(await link.roundtrip(probe))
                results[endpoint] = reply.get("status", "?")
            except (OSError, ConnectionError, ValueError, asyncio.TimeoutError) as e:
                results[endpoint] = f"error: {e}"
        self.shutdown()
        return {
            **protocol.response_header(request),
            "status": "ok",
            "draining": True,
            "shards": results,
        }
