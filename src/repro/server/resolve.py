"""Resolving optimize requests — shared by the daemon and the shard router.

:func:`resolve_optimize` turns one validated ``optimize`` request into
``(serialized program, resolved options dict)``: a registered workload name
picks up its paper flags (``iss``/``diamond``) underneath the caller's
overrides, exactly like ``repro opt``; a ``program`` request deserializes
the caller's IR.  Anything the caller got wrong — unknown workload,
malformed IR, bad option values — raises
:class:`~repro.server.protocol.ProtocolError`, which maps to a
``bad-request`` response.

:class:`ResolveMemo` caches successful workload-name resolutions *and*
their cache keys.  The workload registry is fixed for the life of a
process and workload factories are deterministic, so re-running
``w.program()`` + serialization + sha256 per request is pure waste — on
the warm serving path it is the dominant cost.  Memoized entries are
shared read-only (they are serialized into cache keys and pool-job
payloads, never mutated), and ``program`` requests are never memoized:
their IR arrives inline and must be hashed each time anyway.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from threading import Lock
from typing import Optional

from repro.server import protocol
from repro.server.cache import cache_key

__all__ = ["ResolveMemo", "resolve_optimize"]

DEFAULT_MEMO_ENTRIES = 512


def resolve_optimize(request: dict) -> tuple[dict, dict]:
    """Request → (serialized program, resolved options dict).

    Raises :class:`~repro.server.protocol.ProtocolError` for anything the
    caller got wrong: unknown workload, malformed IR, bad option values.
    """
    from repro.frontend.serialize import program_from_dict, program_to_dict
    from repro.pipeline import PipelineOptions

    overrides = dict(request.get("options") or {})
    unknown = set(overrides) - set(PipelineOptions.__dataclass_fields__)
    if unknown:
        raise protocol.ProtocolError(
            f"unknown PipelineOptions fields: {sorted(unknown)}"
        )
    try:
        if "workload" in request:
            from repro.workloads import get_workload

            try:
                w = get_workload(request["workload"])
            except KeyError as e:
                raise protocol.ProtocolError(str(e)) from None
            base = {"iss": w.iss, "diamond": w.diamond}
            base.update(overrides)
            algorithm = base.pop("algorithm", "plutoplus")
            options = PipelineOptions(algorithm=algorithm, **base)
            program = w.program()
        else:
            program = program_from_dict(request["program"])
            options = PipelineOptions(**overrides)
    except protocol.ProtocolError:
        raise
    except (TypeError, ValueError, KeyError) as e:
        raise protocol.ProtocolError(
            f"cannot resolve optimize request: {e}"
        ) from None
    return program_to_dict(program), options.as_dict()


class ResolveMemo:
    """Bounded LRU of ``(program_dict, options_dict, key)`` resolutions.

    Thread-safe; only workload-name requests are memoized, and only
    successes — errors stay on the slow path so their messages reflect the
    live registry.
    """

    def __init__(self, entries: int = DEFAULT_MEMO_ENTRIES):
        self.entries = max(0, int(entries))
        self._memo: OrderedDict[str, tuple[dict, dict, str]] = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _memo_key(request: dict) -> Optional[str]:
        if "workload" not in request:
            return None
        options = request.get("options")
        if not options:
            # the common case — a bare workload request — skips the dump;
            # no collision with the dumped form, which always starts "{"
            return request["workload"]
        return json.dumps(
            {"workload": request["workload"], "options": options},
            sort_keys=True, separators=(",", ":"),
        )

    def resolve(self, request: dict) -> tuple[dict, dict, str]:
        """Like :func:`resolve_optimize`, plus the cache key, memoized."""
        mkey = self._memo_key(request) if self.entries else None
        if mkey is not None:
            with self._lock:
                hit = self._memo.get(mkey)
                if hit is not None:
                    self._memo.move_to_end(mkey)
                    self.hits += 1
                    return hit
        program_dict, options_dict = resolve_optimize(request)
        key = cache_key(program_dict, options_dict)
        if mkey is not None:
            with self._lock:
                self.misses += 1
                if mkey not in self._memo:
                    while len(self._memo) >= self.entries:
                        self._memo.popitem(last=False)
                self._memo[mkey] = (program_dict, options_dict, key)
        return program_dict, options_dict, key
