"""The scheduling daemon: socket server, single-flight, graceful drain.

Two serving loops share one request pipeline:

* ``loop="async"`` (the default) runs a single asyncio event loop that
  multiplexes every client connection — hundreds of concurrent sockets
  cost one thread, and the warm path (memoized request resolution, memory
  cache hit, pre-serialized response splice) never leaves the loop.
* ``loop="threads"`` is the original thread-per-connection accept loop,
  kept for comparison benchmarks and as a fallback; it serves each
  connection from a reader thread and prunes the thread when the
  connection closes.

Seconds-long scheduling work never runs on either loop — it runs in the
worker pool's processes (pre-forked warm workers by default,
spawn-per-miss with ``pool_mode="spawn"``) — so the GIL is irrelevant to
miss latency.

Request path for ``optimize``:

1. resolve the request to ``(serialized program, resolved options)`` —
   a registered workload name picks up its paper flags (``iss``/
   ``diamond``) underneath the caller's overrides, exactly like
   ``repro opt``; the async loop memoizes workload-name resolutions
   (registry and factories are fixed per process) so warm requests skip
   program rebuild + hashing entirely;
2. probe the two-tier cache; a hit answers immediately (``hit-memory`` /
   ``hit-disk``);
3. on a miss, *single-flight* the key: the first requester submits one
   pool job, concurrent identical requests wait on the same in-flight
   entry and are answered from it (``coalesced``);
4. if the pool is saturated (bounded queue full), the request is rejected
   with an explicit ``busy`` response — clients retry, the daemon never
   builds unbounded latency;
5. the pool completion callback stores the result in both cache tiers and
   wakes every waiter — threads block on an event, async waiters are woken
   via ``call_soon_threadsafe``.  Worker crashes and timeouts become
   structured ``error`` responses for exactly the requests that needed
   that key; the daemon itself never dies with a worker.

``SIGTERM``/``SIGINT`` trigger a graceful drain: stop accepting, finish
in-flight work, answer late requests with ``shutting-down``, close
connections, leave the on-disk cache ready for the next start.

Binding a Unix socket never clobbers a live daemon: the path is
probe-connected first, and only a genuinely stale socket (connection
refused) is unlinked — a live one raises :class:`SocketInUse`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket
import stat
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.server import protocol
from repro.server.cache import DEFAULT_MEMORY_ENTRIES, ScheduleCache, cache_key
from repro.server.metrics import ServerMetrics
from repro.server.pool import (
    DEFAULT_RECYCLE,
    DEFAULT_TIMEOUT,
    PoolJob,
    WarmWorkerPool,
    WorkerPool,
)
from repro.server.resolve import ResolveMemo, resolve_optimize
from repro.workers import WorkerEvent

__all__ = ["Daemon", "DaemonConfig", "SocketInUse", "claim_unix_path"]

#: optimize() waiters give the pool this much slack past the worker
#: deadline before declaring the daemon itself wedged
_WAIT_GRACE = 30.0

#: asyncio stream limit: request/response lines carry whole serialized
#: programs and results, far past the 64 KiB default
STREAM_LIMIT = 64 * 1024 * 1024


class SocketInUse(RuntimeError):
    """The Unix socket path belongs to a live daemon (or isn't ours)."""


def claim_unix_path(path: str) -> None:
    """Make ``path`` safe to bind, without orphaning a live daemon.

    A leftover socket from a dead daemon (probe-connect refused) is
    unlinked; a socket something is still accepting on — or a path that
    is not a socket at all — raises :class:`SocketInUse` instead of the
    old silent ``os.unlink``.
    """
    try:
        mode = os.stat(path).st_mode
    except FileNotFoundError:
        return
    except OSError as e:
        raise SocketInUse(f"cannot stat socket path {path!r}: {e}") from None
    if not stat.S_ISSOCK(mode):
        raise SocketInUse(
            f"refusing to serve on {path!r}: the path exists and is not a "
            f"socket"
        )
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(1.0)
    try:
        probe.connect(path)
    except (ConnectionRefusedError, socket.timeout):
        with contextlib.suppress(OSError):
            os.unlink(path)  # stale socket from a dead daemon
    except FileNotFoundError:
        pass  # unlinked between stat and connect: nothing to do
    except OSError as e:
        raise SocketInUse(
            f"refusing to serve on {path!r}: probe failed ({e})"
        ) from None
    else:
        raise SocketInUse(
            f"another daemon is already serving on {path!r}; shut it down "
            f"first (repro client shutdown --socket {path}) or pick a "
            f"different --socket"
        )
    finally:
        probe.close()


@dataclass
class DaemonConfig:
    socket_path: Optional[str] = None   # Unix socket (preferred)
    host: str = "127.0.0.1"             # TCP fallback
    port: Optional[int] = None
    jobs: int = 2
    timeout: float = DEFAULT_TIMEOUT    # per-request worker deadline
    backlog: Optional[int] = None       # queued misses beyond `jobs` (default 2x)
    cache_dir: Optional[str] = ".repro-cache"
    memory_entries: int = DEFAULT_MEMORY_ENTRIES
    #: structural skeleton store (repro.core.skeleton) consulted by the
    #: pipeline inside pool workers on exact-cache misses; exported to the
    #: workers via REPRO_SKELETON_CACHE before the pool starts.  None
    #: disables the layer.
    skeleton_dir: Optional[str] = None
    drain_seconds: float = 60.0         # SIGTERM: wait this long for workers
    loop: str = "async"                 # "async" | "threads" (legacy)
    pool_mode: str = "warm"             # "warm" | "spawn" (legacy)
    pool_recycle: int = DEFAULT_RECYCLE  # warm pool: requests per worker

    def __post_init__(self) -> None:
        if (self.socket_path is None) == (self.port is None):
            raise ValueError("configure exactly one of socket_path or port")
        if self.loop not in ("async", "threads"):
            raise ValueError(f"loop must be 'async' or 'threads', got {self.loop!r}")
        if self.pool_mode not in ("warm", "spawn"):
            raise ValueError(
                f"pool_mode must be 'warm' or 'spawn', got {self.pool_mode!r}"
            )


class _Flight:
    """One in-flight computation; thread waiters block on the event,
    async waiters park a future that ``settle()`` completes thread-safely."""

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[dict] = None
        self.result_text: Optional[str] = None
        self.compute_seconds: float = 0.0
        self._waiters: list[tuple[asyncio.AbstractEventLoop, asyncio.Future]] = []
        self._lock = threading.Lock()

    def settle(self) -> None:
        with self._lock:
            self.event.set()
            waiters, self._waiters = self._waiters, []
        for loop, future in waiters:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._finish_future, future)

    @staticmethod
    def _finish_future(future: asyncio.Future) -> None:
        if not future.done():
            future.set_result(True)

    async def wait_async(self, timeout: float) -> bool:
        loop = asyncio.get_running_loop()
        with self._lock:
            if self.event.is_set():
                return True
            future: asyncio.Future = loop.create_future()
            self._waiters.append((loop, future))
        try:
            await asyncio.wait_for(future, timeout)
            return True
        except asyncio.TimeoutError:
            return False


class Daemon:
    def __init__(self, config: DaemonConfig):
        self.config = config
        self.cache = ScheduleCache(
            config.cache_dir or None, memory_entries=config.memory_entries
        )
        self.metrics = ServerMetrics()
        if config.pool_mode == "warm":
            self.pool = WarmWorkerPool(
                config.jobs, timeout=config.timeout, backlog=config.backlog,
                recycle=config.pool_recycle, metrics=self.metrics,
            )
        else:
            self.pool = WorkerPool(
                config.jobs, timeout=config.timeout, backlog=config.backlog
            )
        self._memo = ResolveMemo()
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._conn_threads: set[threading.Thread] = set()
        self._open_conns: set = set()  # sockets (threads) or writers (async)
        self._conns_lock = threading.Lock()
        self._conn_tasks: set = set()
        self._busy_requests = 0
        self.bound_address: Optional[object] = None

    # -- lifecycle ---------------------------------------------------------

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main thread only)."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda signum, frame: self._stop.set())

    def serve(self) -> None:
        """Bind, accept until asked to stop, then drain.  Blocks."""
        self._export_skeleton_env()
        if self.config.loop == "async":
            asyncio.run(self._serve_async())
        else:
            self._serve_threads()

    def shutdown(self) -> None:
        """Ask the daemon to drain and stop (thread-safe, returns fast)."""
        self._stop.set()

    def _export_skeleton_env(self) -> None:
        """Publish ``skeleton_dir`` to the pool workers (must run before
        ``pool.start()``: warm workers fork once at startup and inherit
        the environment; spawn-per-miss workers inherit it at each
        spawn)."""
        if self.config.skeleton_dir:
            os.environ["REPRO_SKELETON_CACHE"] = self.config.skeleton_dir

    def _drain_pool(self) -> None:
        drained = self.pool.drain(timeout=self.config.drain_seconds)
        if not drained:
            self.pool.stop()  # stragglers: kill, fail their flights

    # -- the async loop ----------------------------------------------------

    async def _serve_async(self) -> None:
        if self.config.socket_path is not None:
            claim_unix_path(self.config.socket_path)
        self.pool.start()
        loop = asyncio.get_running_loop()
        if self.config.socket_path is not None:
            server = await asyncio.start_unix_server(
                self._serve_async_connection,
                path=self.config.socket_path, limit=STREAM_LIMIT,
            )
            self.bound_address = self.config.socket_path
        else:
            server = await asyncio.start_server(
                self._serve_async_connection,
                host=self.config.host, port=self.config.port,
                limit=STREAM_LIMIT,
            )
            self.bound_address = server.sockets[0].getsockname()
        try:
            while not self._stop.is_set():
                await asyncio.sleep(0.05)
        finally:
            server.close()
            await server.wait_closed()
            # Workers settle their flights inside drain (which runs off
            # the loop, so waiters write their responses meanwhile) ...
            await loop.run_in_executor(None, self._drain_pool)
            deadline = loop.time() + 5.0
            while self._busy_requests and loop.time() < deadline:
                await asyncio.sleep(0.01)
            # ... now cut the readers loose.
            with self._conns_lock:
                writers = list(self._open_conns)
            for writer in writers:
                with contextlib.suppress(Exception):
                    writer.close()
            tasks = [t for t in self._conn_tasks if not t.done()]
            if tasks:
                await asyncio.wait(tasks, timeout=5.0)
            if self.config.socket_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(self.config.socket_path)

    async def _serve_async_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        with self._conns_lock:
            self._open_conns.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return  # orderly EOF
                try:
                    request = protocol.parse_line(line)
                except protocol.ProtocolError as e:
                    self.metrics.count_error("bad-request")
                    writer.write(protocol.encode_message(
                        protocol.error_response(None, "bad-request", str(e))
                    ))
                    await writer.drain()
                    continue
                if request is None:
                    continue  # blank line
                self._busy_requests += 1
                try:
                    response = await self._handle_async(request)
                finally:
                    self._busy_requests -= 1
                writer.write(response)
                await writer.drain()
                if request.get("type") == "shutdown":
                    return
        except (OSError, ValueError, ConnectionError):
            pass  # client went away mid-message; nothing to answer
        finally:
            with self._conns_lock:
                self._open_conns.discard(writer)
            self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _handle_async(self, request: dict) -> bytes:
        t_arrival = time.perf_counter()
        try:
            protocol.validate_request(request)
        except protocol.ProtocolError as e:
            self.metrics.count_error("bad-request")
            return protocol.encode_message(
                protocol.error_response(request, "bad-request", str(e))
            )
        rtype = request["type"]
        self.metrics.count_request(rtype)
        if rtype != "optimize":
            return protocol.encode_message(self._handle_control(request, rtype))

        try:
            program_dict, options_dict, key = self._memo.resolve(request)
        except protocol.ProtocolError as e:
            self.metrics.count_error("bad-request")
            return protocol.encode_message(
                protocol.error_response(request, "bad-request", str(e))
            )
        self.metrics.count_backend(options_dict.get("backend", "python"))

        text, tier = self.cache.get(key)
        self.metrics.observe("lookup", time.perf_counter() - t_arrival)
        if text is not None:
            return self._ok_bytes(request, key, f"hit-{tier}", text, t_arrival)

        if self._stop.is_set():
            self.metrics.count_error("shutting-down")
            return protocol.encode_message(protocol.error_response(
                request, "shutting-down", "daemon is draining; not accepting work"
            ))

        flight, owner = self._join_flight(key, program_dict, options_dict)
        if flight is None:
            self.metrics.count_busy()
            return protocol.encode_message(self._busy_response(request))

        if not await flight.wait_async(self.config.timeout + _WAIT_GRACE):
            self.metrics.count_error("wedged")
            return protocol.encode_message(protocol.error_response(
                request, "error", "internal: flight never settled"
            ))
        if flight.result_text is None:
            return protocol.encode_message(
                {**protocol.response_header(request), **flight.response}
            )
        if owner:
            self._count_owner_scheduler(flight.result_text)
        cache_tag = "miss" if owner else "coalesced"
        return self._ok_bytes(request, key, cache_tag, flight.result_text,
                              t_arrival)

    def _ok_bytes(
        self, request: dict, key: str, cache_tag: str, result_text: str,
        t_arrival: float,
    ) -> bytes:
        elapsed = time.perf_counter() - t_arrival
        self.metrics.count_outcome(cache_tag)
        self.metrics.observe("total", elapsed)
        head = {
            **protocol.response_header(request),
            "status": "ok",
            "cache": cache_tag,
            "key": key,
            "elapsed": round(elapsed, 6),
        }
        return protocol.encode_response_with_result(head, result_text)

    # -- the legacy thread-per-connection loop -----------------------------

    def _bind(self) -> socket.socket:
        if self.config.socket_path is not None:
            path = self.config.socket_path
            claim_unix_path(path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            self.bound_address = path
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            self.bound_address = listener.getsockname()
        listener.listen(64)
        listener.settimeout(0.2)  # poll the stop event between accepts
        return listener

    def _serve_threads(self) -> None:
        self._listener = self._bind()
        self.pool.start()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    name="repro-serve-conn", daemon=True,
                )
                with self._conns_lock:
                    self._open_conns.add(conn)
                    self._conn_threads.add(thread)
                thread.start()
        finally:
            self._shutdown_threads()

    def _shutdown_threads(self) -> None:
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        if self.config.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)
        self._drain_pool()
        # In-flight responses are out (flights settle before the pool
        # reports drained); now cut the readers loose.
        with self._conns_lock:
            conns = list(self._open_conns)
            threads = list(self._conn_threads)
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        for thread in threads:
            thread.join(timeout=5.0)

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            rfile = conn.makefile("rb")
            wfile = conn.makefile("wb")
            while True:
                try:
                    request = protocol.read_message(rfile)
                except protocol.ProtocolError as e:
                    self.metrics.count_error("bad-request")
                    protocol.write_message(
                        wfile, protocol.error_response(None, "bad-request", str(e))
                    )
                    continue
                if request is None:
                    return  # orderly EOF
                response = self._handle(request)
                protocol.write_message(wfile, response)
                if request.get("type") == "shutdown":
                    return
        except (OSError, ValueError):
            pass  # client went away mid-message; nothing to answer
        finally:
            with contextlib.suppress(OSError):
                conn.close()
            with self._conns_lock:
                self._open_conns.discard(conn)
                # finished threads used to accumulate for the daemon's
                # lifetime; prune on connection close instead
                self._conn_threads.discard(threading.current_thread())

    def _handle(self, request: dict) -> dict:
        t_arrival = time.perf_counter()
        try:
            protocol.validate_request(request)
        except protocol.ProtocolError as e:
            self.metrics.count_error("bad-request")
            return protocol.error_response(request, "bad-request", str(e))
        rtype = request["type"]
        self.metrics.count_request(rtype)
        if rtype != "optimize":
            return self._handle_control(request, rtype)
        return self._handle_optimize(request, t_arrival)

    # -- shared handling ---------------------------------------------------

    def _handle_control(self, request: dict, rtype: str) -> dict:
        if rtype == "ping":
            return {**protocol.response_header(request), "status": "ok"}
        if rtype == "stats":
            return {
                **protocol.response_header(request),
                "status": "ok",
                "stats": self.stats(),
            }
        # shutdown
        self.shutdown()
        return {
            **protocol.response_header(request),
            "status": "ok",
            "draining": True,
        }

    def _busy_response(self, request: dict) -> dict:
        in_flight, queued = self.pool.load()
        return {
            **protocol.response_header(request),
            "status": "busy",
            "message": (
                f"queue full ({in_flight} in flight, {queued} queued); "
                f"retry later"
            ),
            "in_flight": in_flight,
            "queued": queued,
        }

    def _count_owner_scheduler(self, result_text: str) -> None:
        # One computation, counted once: which scheduler path won, why the
        # quick heuristic bowed out (if it did), and how the structural
        # skeleton store fared (hit / miss / fallback; None when disabled).
        data = json.loads(result_text)
        sched_stats = data.get("scheduler_stats") or {}
        self.metrics.count_scheduler(
            sched_stats.get("scheduler_path"),
            sched_stats.get("fallback_reason"),
        )
        self.metrics.count_structural(sched_stats.get("structural_path"))
        # "reduction" appears on tiled rows only when relaxation actually
        # bought a parallel dimension (the serialization rule), so its
        # presence is exactly the "reduction-parallel schedule" signal.
        tiled = data.get("tiled") or {}
        if any(r.get("reduction") for r in tiled.get("rows", ())):
            self.metrics.count_reduction_parallel()

    # -- the optimize path (threads loop) ----------------------------------

    def _resolve(self, request: dict) -> tuple[dict, dict]:
        """Request → (serialized program, resolved options dict).

        The seed resolution path, unmemoized — the async loop resolves
        through :class:`~repro.server.resolve.ResolveMemo` instead.
        """
        return resolve_optimize(request)

    def _handle_optimize(self, request: dict, t_arrival: float) -> dict:
        try:
            program_dict, options_dict = self._resolve(request)
        except protocol.ProtocolError as e:
            self.metrics.count_error("bad-request")
            return protocol.error_response(request, "bad-request", str(e))
        self.metrics.count_backend(options_dict.get("backend", "python"))

        key = cache_key(program_dict, options_dict)
        text, tier = self.cache.get(key)
        self.metrics.observe("lookup", time.perf_counter() - t_arrival)
        if text is not None:
            return self._ok_response(
                request, key, f"hit-{tier}", json.loads(text), t_arrival
            )

        if self._stop.is_set():
            self.metrics.count_error("shutting-down")
            return protocol.error_response(
                request, "shutting-down", "daemon is draining; not accepting work"
            )

        flight, owner = self._join_flight(key, program_dict, options_dict)
        if flight is None:
            self.metrics.count_busy()
            return self._busy_response(request)

        # Workers are deadline-killed, and a dying pool fails its flights,
        # so this wait terminates; the grace margin is pure paranoia.
        if not flight.event.wait(timeout=self.config.timeout + _WAIT_GRACE):
            self.metrics.count_error("wedged")
            return protocol.error_response(
                request, "error", "internal: flight never settled"
            )
        if flight.result_text is None:
            return {**protocol.response_header(request), **flight.response}
        cache_tag = "miss" if owner else "coalesced"
        payload = json.loads(flight.result_text)
        if owner:
            self._count_owner_scheduler(flight.result_text)
        return self._ok_response(request, key, cache_tag, payload, t_arrival)

    def _join_flight(
        self, key: str, program_dict: dict, options_dict: dict
    ) -> tuple[Optional[_Flight], bool]:
        """Single-flight entry: returns ``(flight, is_owner)``.

        ``(None, False)`` means admission control rejected the request.
        """
        with self._flights_lock:
            flight = self._flights.get(key)
            if flight is not None:
                return flight, False
            flight = _Flight()
            job = PoolJob(
                key=key,
                payload={"program": program_dict, "options": options_dict},
                on_done=lambda ev, k=key: self._complete(k, ev),
                name=f"repro-serve-{key[:12]}",
            )
            if not self.pool.try_submit(job):
                return None, False
            self._flights[key] = flight
            return flight, True

    def _complete(self, key: str, ev: WorkerEvent) -> None:
        """Pool callback (dispatcher thread): settle the flight."""
        with self._flights_lock:
            flight = self._flights.pop(key, None)
        if flight is None:  # pool stop raced a completed flight
            return
        if ev.kind == "ok":
            self.cache.put(key, ev.payload)
            flight.result_text = ev.payload
            flight.compute_seconds = ev.elapsed
            self.metrics.observe("compute", ev.elapsed)
        else:
            message = ev.payload if isinstance(ev.payload, str) else str(ev.payload)
            flight.response = {
                "status": "error",
                "kind": ev.kind,
                "message": message,
                "key": key,
            }
            self.metrics.count_error(ev.kind)
        flight.settle()

    def _ok_response(
        self, request: dict, key: str, cache_tag: str, payload: dict,
        t_arrival: float,
    ) -> dict:
        elapsed = time.perf_counter() - t_arrival
        self.metrics.count_outcome(cache_tag)
        self.metrics.observe("total", elapsed)
        return {
            **protocol.response_header(request),
            "status": "ok",
            "cache": cache_tag,
            "key": key,
            "elapsed": round(elapsed, 6),
            "result": payload,
        }

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        in_flight, queued = self.pool.load()
        with self._conns_lock:
            connections = len(self._open_conns)
        return {
            "server": self.metrics.snapshot(
                in_flight=in_flight,
                queue_depth=queued,
                connections=connections,
                jobs=self.pool.jobs,
                backlog=self.pool.backlog,
                loop=self.config.loop,
                pool_mode=self.config.pool_mode,
                skeleton_dir=self.config.skeleton_dir,
            ),
            "cache": self.cache.snapshot(),
        }
