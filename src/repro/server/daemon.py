"""The scheduling daemon: socket server, single-flight, graceful drain.

Thread model: the main thread runs the accept loop; each client connection
gets a reader thread that handles its requests in order; the pool's
dispatcher thread supervises worker processes.  Seconds-long scheduling
work never runs on any of these threads — it runs in per-request worker
processes — so the GIL is irrelevant here.

Request path for ``optimize``:

1. resolve the request to ``(serialized program, resolved options)`` —
   a registered workload name picks up its paper flags (``iss``/
   ``diamond``) underneath the caller's overrides, exactly like
   ``repro opt``;
2. probe the two-tier cache; a hit answers immediately (``hit-memory`` /
   ``hit-disk``);
3. on a miss, *single-flight* the key: the first requester submits one
   pool job, concurrent identical requests wait on the same in-flight
   entry and are answered from it (``coalesced``);
4. if the pool is saturated (bounded queue full), the request is rejected
   with an explicit ``busy`` response — clients retry, the daemon never
   builds unbounded latency;
5. the pool completion callback stores the result in both cache tiers and
   wakes every waiter.  Worker crashes and timeouts become structured
   ``error`` responses for exactly the requests that needed that key; the
   daemon itself never dies with a worker.

``SIGTERM``/``SIGINT`` trigger a graceful drain: stop accepting, finish
in-flight work, answer late requests with ``shutting-down``, close
connections, leave the on-disk cache ready for the next start.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.server import protocol
from repro.server.cache import DEFAULT_MEMORY_ENTRIES, ScheduleCache, cache_key
from repro.server.metrics import ServerMetrics
from repro.server.pool import DEFAULT_TIMEOUT, PoolJob, WorkerPool
from repro.workers import WorkerEvent

__all__ = ["Daemon", "DaemonConfig"]

#: optimize() waiters give the pool this much slack past the worker
#: deadline before declaring the daemon itself wedged
_WAIT_GRACE = 30.0


@dataclass
class DaemonConfig:
    socket_path: Optional[str] = None   # Unix socket (preferred)
    host: str = "127.0.0.1"             # TCP fallback
    port: Optional[int] = None
    jobs: int = 2
    timeout: float = DEFAULT_TIMEOUT    # per-request worker deadline
    backlog: Optional[int] = None       # queued misses beyond `jobs` (default 2x)
    cache_dir: Optional[str] = ".repro-cache"
    memory_entries: int = DEFAULT_MEMORY_ENTRIES
    drain_seconds: float = 60.0         # SIGTERM: wait this long for workers

    def __post_init__(self) -> None:
        if (self.socket_path is None) == (self.port is None):
            raise ValueError("configure exactly one of socket_path or port")


class _Flight:
    """One in-flight computation; waiters block on the event."""

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[dict] = None
        self.result_text: Optional[str] = None
        self.compute_seconds: float = 0.0


class Daemon:
    def __init__(self, config: DaemonConfig):
        self.config = config
        self.cache = ScheduleCache(
            config.cache_dir or None, memory_entries=config.memory_entries
        )
        self.pool = WorkerPool(
            config.jobs, timeout=config.timeout, backlog=config.backlog
        )
        self.metrics = ServerMetrics()
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._conn_threads: list[threading.Thread] = []
        self._open_conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self.bound_address: Optional[object] = None

    # -- lifecycle ---------------------------------------------------------

    def _bind(self) -> socket.socket:
        if self.config.socket_path is not None:
            path = self.config.socket_path
            with contextlib.suppress(OSError):
                os.unlink(path)  # stale socket from a dead daemon
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            self.bound_address = path
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            self.bound_address = listener.getsockname()
        listener.listen(64)
        listener.settimeout(0.2)  # poll the stop event between accepts
        return listener

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main thread only)."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda signum, frame: self._stop.set())

    def serve(self) -> None:
        """Bind, accept until asked to stop, then drain.  Blocks."""
        self.pool.start()
        self._listener = self._bind()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    name="repro-serve-conn", daemon=True,
                )
                with self._conns_lock:
                    self._open_conns.add(conn)
                    self._conn_threads.append(thread)
                thread.start()
        finally:
            self._shutdown()

    def shutdown(self) -> None:
        """Ask the daemon to drain and stop (thread-safe, returns fast)."""
        self._stop.set()

    def _shutdown(self) -> None:
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        if self.config.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)
        drained = self.pool.drain(timeout=self.config.drain_seconds)
        if not drained:
            self.pool.stop()  # stragglers: kill, fail their flights
        # In-flight responses are out (flights settle before the pool
        # reports drained); now cut the readers loose.
        with self._conns_lock:
            conns = list(self._open_conns)
            threads = list(self._conn_threads)
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        for thread in threads:
            thread.join(timeout=5.0)

    # -- connection handling -----------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            rfile = conn.makefile("rb")
            wfile = conn.makefile("wb")
            while True:
                try:
                    request = protocol.read_message(rfile)
                except protocol.ProtocolError as e:
                    self.metrics.count_error("bad-request")
                    protocol.write_message(
                        wfile, protocol.error_response(None, "bad-request", str(e))
                    )
                    continue
                if request is None:
                    return  # orderly EOF
                response = self._handle(request)
                protocol.write_message(wfile, response)
                if request.get("type") == "shutdown":
                    return
        except (OSError, ValueError):
            pass  # client went away mid-message; nothing to answer
        finally:
            with contextlib.suppress(OSError):
                conn.close()
            with self._conns_lock:
                self._open_conns.discard(conn)

    def _handle(self, request: dict) -> dict:
        t_arrival = time.perf_counter()
        try:
            protocol.validate_request(request)
        except protocol.ProtocolError as e:
            self.metrics.count_error("bad-request")
            return protocol.error_response(request, "bad-request", str(e))
        rtype = request["type"]
        self.metrics.count_request(rtype)

        if rtype == "ping":
            return {**protocol.response_header(request), "status": "ok"}
        if rtype == "stats":
            return {
                **protocol.response_header(request),
                "status": "ok",
                "stats": self.stats(),
            }
        if rtype == "shutdown":
            self.shutdown()
            return {
                **protocol.response_header(request),
                "status": "ok",
                "draining": True,
            }
        return self._handle_optimize(request, t_arrival)

    # -- the optimize path -------------------------------------------------

    def _resolve(self, request: dict) -> tuple[dict, dict]:
        """Request → (serialized program, resolved options dict).

        Raises :class:`protocol.ProtocolError` for anything the caller got
        wrong: unknown workload, malformed IR, bad option values.
        """
        from repro.frontend.serialize import program_from_dict, program_to_dict
        from repro.pipeline import PipelineOptions

        overrides = dict(request.get("options") or {})
        unknown = set(overrides) - set(PipelineOptions.__dataclass_fields__)
        if unknown:
            raise protocol.ProtocolError(
                f"unknown PipelineOptions fields: {sorted(unknown)}"
            )
        try:
            if "workload" in request:
                from repro.workloads import get_workload

                try:
                    w = get_workload(request["workload"])
                except KeyError as e:
                    raise protocol.ProtocolError(str(e)) from None
                base = {"iss": w.iss, "diamond": w.diamond}
                base.update(overrides)
                algorithm = base.pop("algorithm", "plutoplus")
                options = PipelineOptions(algorithm=algorithm, **base)
                program = w.program()
            else:
                program = program_from_dict(request["program"])
                options = PipelineOptions(**overrides)
        except protocol.ProtocolError:
            raise
        except (TypeError, ValueError, KeyError) as e:
            raise protocol.ProtocolError(
                f"cannot resolve optimize request: {e}"
            ) from None
        return program_to_dict(program), options.as_dict()

    def _handle_optimize(self, request: dict, t_arrival: float) -> dict:
        import json

        try:
            program_dict, options_dict = self._resolve(request)
        except protocol.ProtocolError as e:
            self.metrics.count_error("bad-request")
            return protocol.error_response(request, "bad-request", str(e))

        key = cache_key(program_dict, options_dict)
        text, tier = self.cache.get(key)
        self.metrics.observe("lookup", time.perf_counter() - t_arrival)
        if text is not None:
            return self._ok_response(
                request, key, f"hit-{tier}", json.loads(text), t_arrival
            )

        if self._stop.is_set():
            self.metrics.count_error("shutting-down")
            return protocol.error_response(
                request, "shutting-down", "daemon is draining; not accepting work"
            )

        flight, owner = self._join_flight(key, program_dict, options_dict)
        if flight is None:
            self.metrics.count_busy()
            in_flight, queued = self.pool.load()
            return {
                **protocol.response_header(request),
                "status": "busy",
                "message": (
                    f"queue full ({in_flight} in flight, {queued} queued); "
                    f"retry later"
                ),
                "in_flight": in_flight,
                "queued": queued,
            }

        # Workers are deadline-killed, and a dying pool fails its flights,
        # so this wait terminates; the grace margin is pure paranoia.
        if not flight.event.wait(timeout=self.config.timeout + _WAIT_GRACE):
            self.metrics.count_error("wedged")
            return protocol.error_response(
                request, "error", "internal: flight never settled"
            )
        if flight.result_text is None:
            return {**protocol.response_header(request), **flight.response}
        cache_tag = "miss" if owner else "coalesced"
        payload = json.loads(flight.result_text)
        if owner:
            # One computation, counted once: which scheduler path won and,
            # when the quick heuristic bowed out, why.
            sched_stats = payload.get("scheduler_stats") or {}
            self.metrics.count_scheduler(
                sched_stats.get("scheduler_path"),
                sched_stats.get("fallback_reason"),
            )
        return self._ok_response(request, key, cache_tag, payload, t_arrival)

    def _join_flight(
        self, key: str, program_dict: dict, options_dict: dict
    ) -> tuple[Optional[_Flight], bool]:
        """Single-flight entry: returns ``(flight, is_owner)``.

        ``(None, False)`` means admission control rejected the request.
        """
        with self._flights_lock:
            flight = self._flights.get(key)
            if flight is not None:
                return flight, False
            flight = _Flight()
            job = PoolJob(
                key=key,
                payload={"program": program_dict, "options": options_dict},
                on_done=lambda ev, k=key: self._complete(k, ev),
                name=f"repro-serve-{key[:12]}",
            )
            if not self.pool.try_submit(job):
                return None, False
            self._flights[key] = flight
            return flight, True

    def _complete(self, key: str, ev: WorkerEvent) -> None:
        """Pool callback (dispatcher thread): settle the flight."""
        with self._flights_lock:
            flight = self._flights.pop(key, None)
        if flight is None:  # pool stop raced a completed flight
            return
        if ev.kind == "ok":
            self.cache.put(key, ev.payload)
            flight.result_text = ev.payload
            flight.compute_seconds = ev.elapsed
            self.metrics.observe("compute", ev.elapsed)
        else:
            message = ev.payload if isinstance(ev.payload, str) else str(ev.payload)
            flight.response = {
                "status": "error",
                "kind": ev.kind,
                "message": message,
                "key": key,
            }
            self.metrics.count_error(ev.kind)
        flight.event.set()

    def _ok_response(
        self, request: dict, key: str, cache_tag: str, payload: dict,
        t_arrival: float,
    ) -> dict:
        elapsed = time.perf_counter() - t_arrival
        self.metrics.count_outcome(cache_tag)
        self.metrics.observe("total", elapsed)
        return {
            **protocol.response_header(request),
            "status": "ok",
            "cache": cache_tag,
            "key": key,
            "elapsed": round(elapsed, 6),
            "result": payload,
        }

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        in_flight, queued = self.pool.load()
        with self._conns_lock:
            connections = len(self._open_conns)
        return {
            "server": self.metrics.snapshot(
                in_flight=in_flight,
                queue_depth=queued,
                connections=connections,
                jobs=self.pool.jobs,
                backlog=self.pool.backlog,
            ),
            "cache": self.cache.snapshot(),
        }
