"""The daemon's wire protocol: JSON lines over a stream socket.

One request per line, one response line per request, in order.  Both sides
are plain JSON objects; binary-safe framing is simply ``\\n`` because
``json.dumps`` never emits a raw newline.  The protocol is deliberately
dumb — no pipelining, no multiplexing — because scheduling requests are
seconds-long and coalesced server-side; concurrency comes from opening
more connections.

Requests (``type`` selects the handler)::

    {"type": "optimize", "workload": "heat-2dp", "options": {...}}
    {"type": "optimize", "program": {<serialized IR>}, "options": {...}}
    {"type": "stats"}     {"type": "ping"}     {"type": "shutdown"}

``options`` is a *partial* :class:`~repro.pipeline.PipelineOptions` dict —
only the overrides; for named workloads the daemon fills in the workload's
paper flags (``iss``/``diamond``) underneath, exactly like ``repro opt``.
An optional ``id`` is echoed verbatim in the response.

Every response carries ``protocol`` (this module's version) and
``server_version`` (the package version) so client/daemon skew is
diagnosable, plus a ``status``: ``ok``, ``busy`` (admission control
rejected the request; retry later), or ``error`` (``kind`` one of
``bad-request``, ``error``, ``crash``, ``timeout``, ``shutting-down``).
For ``optimize`` the ``ok`` response embeds the full
``OptimizationResult.to_json()`` payload under ``result`` and says where
the answer came from under ``cache`` (``hit-memory``, ``hit-disk``,
``coalesced``, or ``miss``).
"""

from __future__ import annotations

import json
from typing import Optional

from repro import __version__

__all__ = [
    "PROTOCOL_VERSION",
    "REQUEST_TYPES",
    "ProtocolError",
    "encode_message",
    "encode_response_with_result",
    "error_response",
    "parse_line",
    "read_message",
    "response_header",
    "validate_request",
    "write_message",
]

#: bumped whenever the request/response shapes change incompatibly
PROTOCOL_VERSION = 1

REQUEST_TYPES = ("optimize", "stats", "ping", "shutdown")


class ProtocolError(ValueError):
    """A malformed request line or response; maps to ``bad-request``."""


def encode_message(obj: dict) -> bytes:
    """One framed message: a single JSON line."""
    return json.dumps(obj).encode("utf-8") + b"\n"


def encode_response_with_result(head: dict, result_text: str) -> bytes:
    """Frame an ``ok`` response, splicing pre-serialized ``result`` text.

    The cache stores ``OptimizationResult.to_json()`` output verbatim;
    splicing it into the response line avoids a parse + re-dump of a
    multi-kilobyte payload per warm request — the dominant cost of the
    warm serving path — and produces the exact bytes
    ``encode_message({**head, "result": json.loads(result_text)})`` would
    (both sides are default-separator ``json.dumps`` output).
    """
    head_json = json.dumps(head)
    return (
        head_json[:-1].encode("utf-8")
        + b', "result": '
        + result_text.encode("utf-8")
        + b"}\n"
    )


def write_message(wfile, obj: dict) -> None:
    """Send one message: a single JSON line, flushed."""
    wfile.write(encode_message(obj))
    wfile.flush()


def parse_line(line: bytes) -> Optional[dict]:
    """One framed line → message dict; ``None`` for a blank line,
    :class:`ProtocolError` on garbage."""
    if not line.strip():
        return None
    try:
        # decode first: json.loads on bytes pays a detect_encoding pass
        # per call, measurable at saturation (UnicodeDecodeError is a
        # ValueError, so garbage still maps to ProtocolError below)
        if isinstance(line, (bytes, bytearray)):
            line = line.decode("utf-8")
        obj = json.loads(line)
    except ValueError as e:
        raise ProtocolError(f"request is not valid JSON: {e}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def read_message(rfile) -> Optional[dict]:
    """Read one message; ``None`` on orderly EOF, :class:`ProtocolError`
    on garbage.  Blank lines are tolerated (and skipped) so hand-driven
    ``nc`` sessions work."""
    while True:
        line = rfile.readline()
        if not line:
            return None
        obj = parse_line(line)
        if obj is not None:
            return obj


def response_header(request: Optional[dict] = None) -> dict:
    """The fields every response starts with (version skew diagnosis)."""
    header = {"protocol": PROTOCOL_VERSION, "server_version": __version__}
    if request is not None and "id" in request:
        header["id"] = request["id"]
    return header


def error_response(request: Optional[dict], kind: str, message: str) -> dict:
    return {
        **response_header(request),
        "status": "error",
        "kind": kind,
        "message": message,
    }


def validate_request(obj: dict) -> dict:
    """Shape-check one parsed request; raises :class:`ProtocolError`."""
    rtype = obj.get("type")
    if rtype not in REQUEST_TYPES:
        raise ProtocolError(
            f"unknown request type {rtype!r}; expected one of {REQUEST_TYPES}"
        )
    if rtype == "optimize":
        has_workload = isinstance(obj.get("workload"), str)
        has_program = isinstance(obj.get("program"), dict)
        if has_workload == has_program:
            raise ProtocolError(
                "optimize requests need exactly one of 'workload' (a "
                "registered name) or 'program' (serialized IR)"
            )
        options = obj.get("options")
        if options is not None and not isinstance(options, dict):
            raise ProtocolError("'options' must be an object of overrides")
    return obj
