"""Helpers for modeling stencils on periodic domains.

A periodic access ``A[t][(i+1) % N]`` is not affine, but it is exactly a
union of two guarded affine accesses (Section 2.4 / Fig. 4a-b):

* interior: ``A[t][i+1]``      on ``i <= N-2``;
* wraparound: ``A[t][i+1-N]``  on ``i == N-1``  (i.e. ``A[t][0]``).

The wraparound arcs are the long dependences that make plain time tiling
invalid and that index-set splitting + Pluto+'s reversals resolve.

Double-buffered time (``A[(t+1)%2][..]``) is modeled with a time-expanded
logical array ``A[t][..]`` — the dependence structure (and therefore every
scheduling decision) is identical; only the memory footprint of the
*validation* runs grows, which is why validation sizes keep ``T`` small.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.frontend.ir import Access
from repro.polyhedra import AffExpr, AffineMap, BasicSet, Constraint, Space

__all__ = ["periodic_reads", "plain_access"]


def plain_access(space: Space, array: str, exprs: Sequence) -> Access:
    """An unguarded access; each entry of ``exprs`` is an AffExpr or terms."""
    out = []
    for e in exprs:
        out.append(e if isinstance(e, AffExpr) else AffExpr.from_terms(space, *e))
    return Access(array, AffineMap(space, out))


def periodic_reads(
    space: Space,
    array: str,
    time_expr: AffExpr,
    shifts: Mapping[str, int],
    extents: Mapping[str, str],
) -> list[Access]:
    """Guarded accesses for ``array[time][dim0 + s0][dim1 + s1]...``.

    ``shifts`` maps each space dimension to its offset in ``{-1, 0, +1}``;
    ``extents`` maps each dimension to the parameter naming its periodic
    extent (the domain is assumed ``0 .. extent-1``).  Returns one access per
    interior/wrap combination of the non-zero shifts.
    """
    dims = list(shifts.keys())
    nonzero = [d for d in dims if shifts[d] != 0]
    out: list[Access] = []
    for mask in range(1 << len(nonzero)):
        wrapped = {d: bool((mask >> k) & 1) for k, d in enumerate(nonzero)}
        guard = BasicSet(space)
        exprs = [time_expr]
        ok = True
        for d in dims:
            s = shifts[d]
            dv = AffExpr.var(space, d)
            n = AffExpr.var(space, extents[d])
            if s == 0:
                exprs.append(dv)
                continue
            if wrapped[d]:
                # wrap: for s=+1, i == N-1, index i+1-N; for s=-1, i == 0,
                # index i-1+N.
                if s > 0:
                    guard.add(Constraint(dv - (n - 1), equality=True))
                    exprs.append(dv + s - n)
                else:
                    guard.add(Constraint(dv, equality=True))
                    exprs.append(dv + s + n)
            else:
                if s > 0:
                    guard.add(Constraint((n - 2) - dv))   # i <= N-2
                else:
                    guard.add(Constraint(dv - 1))         # i >= 1
                exprs.append(dv + s)
        if not ok:
            continue
        out.append(
            Access(array, AffineMap(space, exprs), guard if nonzero else None)
        )
    return out
