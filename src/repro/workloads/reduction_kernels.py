"""Reduction-bound kernels: workloads whose only parallelism is a reduction.

These kernels accumulate into a scalar (or a low-rank cell), so under the
exact dependence model every loop carries the accumulator self-dependence
and the scheduler finds *no* parallel hyperplane.  They exist to exercise
``parallel_reductions``: with relaxation enabled, the accumulation
dimension becomes parallel and the emitters discharge it with privatized
partial sums / ``reduction(..)`` clauses.  ``benchmarks/reductions.py``
gates execution speedup and tolerance-correctness on them.
"""

from __future__ import annotations

from repro.frontend import parse_program
from repro.workloads.base import PerfSpec, Workload, register

__all__ = ["dot", "l2norm", "tensor_contract", "REDUCTION_KERNELS"]


def dot():
    """Dot product: ``s += A[i] * B[i]`` — the canonical scalar reduction.

    The single statement's self-dependence on ``s`` is carried by ``i``;
    only relaxation can parallelize it.
    """
    src = """
    for (i = 0; i < N; i++)
        s = s + A[i] * B[i];
    """
    return parse_program(src, "dot", params=("N",))


def l2norm():
    """Sum of squares: same shape as dot, one input stream."""
    src = """
    for (i = 0; i < N; i++)
        s = s + A[i] * A[i];
    """
    return parse_program(src, "l2norm", params=("N",))


def tensor_contract():
    """Full contraction of a matrix against two vectors:
    ``s += u[i] * A[i][j] * v[j]`` — a two-dimensional reduction where both
    loops carry the accumulator, so relaxation unlocks the outer dimension.
    """
    src = """
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            s = s + u[i] * A[i][j] * v[j];
    """
    return parse_program(src, "tensor-contract", params=("N",))


REDUCTION_KERNELS = [
    register(
        Workload(
            name="dot",
            category="reduction",
            factory=dot,
            sizes={"N": 4000000},
            small_sizes={"N": 9},
            perf=PerfSpec(
                flops_per_point=2.0,
                bytes_per_point=16.0,
                space_params=("N",),
            ),
        )
    ),
    register(
        Workload(
            name="l2norm",
            category="reduction",
            factory=l2norm,
            sizes={"N": 4000000},
            small_sizes={"N": 9},
            perf=PerfSpec(
                flops_per_point=2.0,
                bytes_per_point=8.0,
                space_params=("N",),
            ),
        )
    ),
    register(
        Workload(
            name="tensor-contract",
            category="reduction",
            factory=tensor_contract,
            sizes={"N": 2000},
            small_sizes={"N": 7},
            perf=PerfSpec(
                flops_per_point=4.0,
                bytes_per_point=8.0,
                space_params=("N", "N"),
            ),
        )
    ),
]
