"""Heat equations with periodic boundary conditions (Pochoir suite; Table 2).

Jacobi-style heat updates on 1-d, 2-d, and 3-d periodic grids.  Problem
sizes follow Table 2 of the paper; the validation sizes are tiny.  These are
the benchmarks where Pluto+ composes ISS + reversal + shift + diamond tiling
(Fig. 4) while classic Pluto can only parallelize the space loops.
"""

from __future__ import annotations

from repro.frontend import Access, ProgramBuilder
from repro.polyhedra import AffExpr, AffineMap
from repro.workloads.base import PerfSpec, Workload, register
from repro.workloads.periodic_util import periodic_reads

__all__ = ["heat_1dp", "heat_2dp", "heat_3dp", "PERIODIC_HEAT"]


def heat_1dp():
    b = ProgramBuilder("heat-1dp", params=("T", "N"), param_min=4)
    with b.loop("t", 0, "T-1"):
        with b.loop("i", 0, "N-1"):
            sp = b.program.space_for(["t", "i"])
            t = AffExpr.var(sp, "t")
            i = AffExpr.var(sp, "i")
            reads = []
            for s in (-1, 0, 1):
                reads += periodic_reads(sp, "A", t, {"i": s}, {"i": "N"})
            b.stmt(
                "A[t+1][i] = 0.125 * A[t][i+1] + 0.75 * A[t][i] + 0.125 * A[t][i-1]",
                body_py=(
                    "A[t+1, i] = 0.125 * A[t, (i+1) % N] + 0.75 * A[t, i] "
                    "+ 0.125 * A[t, (i-1) % N]"
                ),
                writes=[Access("A", AffineMap(sp, [t + 1, i]))],
                reads=reads,
            )
    return b.build()


def heat_2dp():
    b = ProgramBuilder("heat-2dp", params=("T", "N"), param_min=4)
    with b.loop("t", 0, "T-1"):
        with b.loop("i", 0, "N-1"):
            with b.loop("j", 0, "N-1"):
                sp = b.program.space_for(["t", "i", "j"])
                t = AffExpr.var(sp, "t")
                i = AffExpr.var(sp, "i")
                j = AffExpr.var(sp, "j")
                reads = []
                for si, sj in ((0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)):
                    reads += periodic_reads(
                        sp, "A", t, {"i": si, "j": sj}, {"i": "N", "j": "N"}
                    )
                b.stmt(
                    "A[t+1][i][j] = 0.125*(A[t][i+1][j] + A[t][i-1][j] + "
                    "A[t][i][j+1] + A[t][i][j-1]) + 0.5*A[t][i][j]",
                    body_py=(
                        "A[t+1, i, j] = 0.125*(A[t, (i+1) % N, j] + A[t, (i-1) % N, j] "
                        "+ A[t, i, (j+1) % N] + A[t, i, (j-1) % N]) + 0.5*A[t, i, j]"
                    ),
                    writes=[Access("A", AffineMap(sp, [t + 1, i, j]))],
                    reads=reads,
                )
    return b.build()


def heat_3dp():
    b = ProgramBuilder("heat-3dp", params=("T", "N"), param_min=4)
    with b.loop("t", 0, "T-1"):
        with b.loop("i", 0, "N-1"):
            with b.loop("j", 0, "N-1"):
                with b.loop("k", 0, "N-1"):
                    sp = b.program.space_for(["t", "i", "j", "k"])
                    t = AffExpr.var(sp, "t")
                    i = AffExpr.var(sp, "i")
                    j = AffExpr.var(sp, "j")
                    k = AffExpr.var(sp, "k")
                    reads = []
                    for si, sj, sk in (
                        (0, 0, 0),
                        (1, 0, 0), (-1, 0, 0),
                        (0, 1, 0), (0, -1, 0),
                        (0, 0, 1), (0, 0, -1),
                    ):
                        reads += periodic_reads(
                            sp, "A", t,
                            {"i": si, "j": sj, "k": sk},
                            {"i": "N", "j": "N", "k": "N"},
                        )
                    b.stmt(
                        "A[t+1][i][j][k] = 0.1*(A[t][i+1][j][k] + A[t][i-1][j][k] "
                        "+ A[t][i][j+1][k] + A[t][i][j-1][k] + A[t][i][j][k+1] "
                        "+ A[t][i][j][k-1]) + 0.4*A[t][i][j][k]",
                        body_py=(
                            "A[t+1, i, j, k] = 0.1*(A[t, (i+1) % N, j, k] + A[t, (i-1) % N, j, k] "
                            "+ A[t, i, (j+1) % N, k] + A[t, i, (j-1) % N, k] "
                            "+ A[t, i, j, (k+1) % N] + A[t, i, j, (k-1) % N]) + 0.4*A[t, i, j, k]"
                        ),
                        writes=[Access("A", AffineMap(sp, [t + 1, i, j, k]))],
                        reads=reads,
                    )
    return b.build()


PERIODIC_HEAT = [
    register(
        Workload(
            name="heat-1dp",
            category="periodic",
            factory=heat_1dp,
            sizes={"N": 1_600_000, "T": 1000},            # Table 2
            small_sizes={"N": 12, "T": 6},
            iss=True,
            diamond=True,
            perf=PerfSpec(
                flops_per_point=4,
                # read + write + write-allocate, inflated ~1.6x: a single-
                # array 1-d sweep offers one stream per thread and sustains
                # well below the multi-stream STREAM rate.
                bytes_per_point=38,
                time_param="T",
                space_params=("N",),
                vector_efficiency=0.12,    # 1-d: bound by load/store slots
            ),
        )
    ),
    register(
        Workload(
            name="heat-2dp",
            category="periodic",
            factory=heat_2dp,
            sizes={"N": 16000, "T": 500},                  # 16000^2 x 500
            small_sizes={"N": 8, "T": 4},
            iss=True,
            diamond=True,
            perf=PerfSpec(
                flops_per_point=7,
                bytes_per_point=24,
                time_param="T",
                space_params=("N", "N"),
                vector_efficiency=0.85,    # 2-d: near-ideal SIMD sweep
            ),
        )
    ),
    register(
        Workload(
            name="heat-3dp",
            category="periodic",
            factory=heat_3dp,
            sizes={"N": 300, "T": 200},                    # 300^3 x 200
            small_sizes={"N": 6, "T": 3},
            iss=True,
            diamond=True,
            perf=PerfSpec(
                flops_per_point=9,
                bytes_per_point=24,
                time_param="T",
                space_params=("N", "N", "N"),
                vector_efficiency=0.125,   # 3-d stencils vectorize poorly (Sec. 4.2)
            ),
        )
    ),
]
