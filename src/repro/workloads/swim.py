"""171.swim (SPECFP2000): shallow-water equations on a periodic 2-d grid.

Structurally faithful polyhedral model of the C translation the paper feeds
to pet — the three calc sweeps inlined into one time loop over a periodic
grid (Sadourny's scheme [33]): calc1 computes the fluxes/vorticity
(forward-shifted periodic reads), calc2 the new fields (backward-shifted
periodic reads), calc3 the time smoothing and copy-back — three separate grid sweeps
per time step, thirteen statements over ``(t, i, j)`` — the Pluto+ ILP for this model crosses the
large-model threshold and runs on the HiGHS backend, mirroring the paper's
swim-only switch to GLPK (219 variables there).
"""

from __future__ import annotations

from repro.frontend import Access, ProgramBuilder
from repro.polyhedra import AffExpr, AffineMap
from repro.workloads.base import PerfSpec, Workload, register
from repro.workloads.periodic_util import periodic_reads

__all__ = ["swim_model", "SWIM"]


def swim_model():
    b = ProgramBuilder("swim", params=("T", "N"), param_min=4)
    ext = {"i": "N", "j": "N"}
    with b.loop("t", 0, "T-1"):
        sp = b.program.space_for(["t", "i", "j"])
        t = AffExpr.var(sp, "t")
        i = AffExpr.var(sp, "i")
        j = AffExpr.var(sp, "j")

        def wr(arr, time):
            return [Access(arr, AffineMap(sp, [time, i, j]))]

        def rd(arr, time, si=0, sj=0):
            return periodic_reads(sp, arr, time, {"i": si, "j": sj}, ext)

        ip = "(i+1) % N"
        jp = "(j+1) % N"
        im = "(i-1) % N"
        jm = "(j-1) % N"

        # ---- calc1: fluxes, vorticity, height (its own grid sweep) ----
        with b.loop("i", 0, "N-1"):
            with b.loop("j", 0, "N-1"):
                b.stmt(
                    "CU[i][j] = .5*(P[i+1][j]+P[i][j])*U[i][j]",
                    name="S_cu",
                    body_py=f"CU[t, i, j] = 0.5*(P[t, {ip}, j] + P[t, i, j]) * U[t, i, j]",
                    writes=wr("CU", t),
                    reads=rd("P", t, 1, 0) + rd("P", t) + rd("U", t),
                )
                b.stmt(
                    "CV[i][j] = .5*(P[i][j+1]+P[i][j])*V[i][j]",
                    name="S_cv",
                    body_py=f"CV[t, i, j] = 0.5*(P[t, i, {jp}] + P[t, i, j]) * V[t, i, j]",
                    writes=wr("CV", t),
                    reads=rd("P", t, 0, 1) + rd("P", t) + rd("V", t),
                )
                b.stmt(
                    "Z[i][j] = (fsdx*(V[i+1][j]-V[i][j]) - fsdy*(U[i][j+1]-U[i][j])) / Ptot",
                    name="S_z",
                    body_py=(
                        f"Z[t, i, j] = (0.0002*(V[t, {ip}, j] - V[t, i, j]) "
                        f"- 0.0002*(U[t, i, {jp}] - U[t, i, j])) "
                        f"/ (P[t, i, j] + P[t, {ip}, j] + P[t, i, {jp}] + P[t, {ip}, {jp}] + 1.0)"
                    ),
                    writes=wr("Z", t),
                    reads=(
                        rd("V", t, 1, 0) + rd("V", t) + rd("U", t, 0, 1) + rd("U", t)
                        + rd("P", t) + rd("P", t, 1, 0) + rd("P", t, 0, 1) + rd("P", t, 1, 1)
                    ),
                )
                b.stmt(
                    "H[i][j] = P[i][j] + .25*(U[i+1][j]*U[i+1][j] + ... )",
                    name="S_h",
                    body_py=(
                        f"H[t, i, j] = P[t, i, j] + 0.25*(U[t, {ip}, j]*U[t, {ip}, j] "
                        f"+ U[t, i, j]*U[t, i, j] + V[t, i, {jp}]*V[t, i, {jp}] "
                        f"+ V[t, i, j]*V[t, i, j])"
                    ),
                    writes=wr("H", t),
                    reads=(
                        rd("P", t) + rd("U", t, 1, 0) + rd("U", t)
                        + rd("V", t, 0, 1) + rd("V", t)
                    ),
                )

        # ---- calc2: new fields, after ALL of calc1 (separate sweep) ----
        with b.loop("i", 0, "N-1"):
            with b.loop("j", 0, "N-1"):
                b.stmt(
                    "UNEW[i][j] = UOLD[i][j] + tdts8*(Z[i][j-1]+Z[i][j])*(CV..) - tdtsdx*(H[i][j]-H[i-1][j])",
                    name="S_unew",
                    body_py=(
                        f"UNEW[t+1, i, j] = UOLD[t, i, j] "
                        f"+ 0.05*(Z[t, i, {jm}] + Z[t, i, j]) * (CV[t, i, j] + CV[t, {im}, j]) "
                        f"- 0.1*(H[t, i, j] - H[t, {im}, j])"
                    ),
                    writes=wr("UNEW", t + 1),
                    reads=(
                        rd("UOLD", t) + rd("Z", t, 0, -1) + rd("Z", t)
                        + rd("CV", t) + rd("CV", t, -1, 0)
                        + rd("H", t) + rd("H", t, -1, 0)
                    ),
                )
                b.stmt(
                    "VNEW[i][j] = VOLD[i][j] - tdts8*(Z[i-1][j]+Z[i][j])*(CU..) - tdtsdy*(H[i][j]-H[i][j-1])",
                    name="S_vnew",
                    body_py=(
                        f"VNEW[t+1, i, j] = VOLD[t, i, j] "
                        f"- 0.05*(Z[t, {im}, j] + Z[t, i, j]) * (CU[t, i, j] + CU[t, i, {jm}]) "
                        f"- 0.1*(H[t, i, j] - H[t, i, {jm}])"
                    ),
                    writes=wr("VNEW", t + 1),
                    reads=(
                        rd("VOLD", t) + rd("Z", t, -1, 0) + rd("Z", t)
                        + rd("CU", t) + rd("CU", t, 0, -1)
                        + rd("H", t) + rd("H", t, 0, -1)
                    ),
                )
                b.stmt(
                    "PNEW[i][j] = POLD[i][j] - tdtsdx*(CU[i][j]-CU[i-1][j]) - tdtsdy*(CV[i][j]-CV[i][j-1])",
                    name="S_pnew",
                    body_py=(
                        f"PNEW[t+1, i, j] = POLD[t, i, j] "
                        f"- 0.1*(CU[t, i, j] - CU[t, {im}, j]) "
                        f"- 0.1*(CV[t, i, j] - CV[t, i, {jm}])"
                    ),
                    writes=wr("PNEW", t + 1),
                    reads=(
                        rd("POLD", t) + rd("CU", t) + rd("CU", t, -1, 0)
                        + rd("CV", t) + rd("CV", t, 0, -1)
                    ),
                )

        # ---- calc3: time smoothing and copy-back (separate sweep) ----
        with b.loop("i", 0, "N-1"):
            with b.loop("j", 0, "N-1"):
                b.stmt(
                    "UOLD[i][j] = U[i][j] + alpha*(UNEW[i][j] - 2*U[i][j] + UOLD[i][j])",
                    name="S_uold",
                    body_py=(
                        "UOLD[t+1, i, j] = U[t, i, j] + 0.001*(UNEW[t+1, i, j] "
                        "- 2.0*U[t, i, j] + UOLD[t, i, j])"
                    ),
                    writes=wr("UOLD", t + 1),
                    reads=rd("U", t) + rd("UNEW", t + 1) + rd("UOLD", t),
                )
                b.stmt(
                    "VOLD[i][j] = V[i][j] + alpha*(VNEW[i][j] - 2*V[i][j] + VOLD[i][j])",
                    name="S_vold",
                    body_py=(
                        "VOLD[t+1, i, j] = V[t, i, j] + 0.001*(VNEW[t+1, i, j] "
                        "- 2.0*V[t, i, j] + VOLD[t, i, j])"
                    ),
                    writes=wr("VOLD", t + 1),
                    reads=rd("V", t) + rd("VNEW", t + 1) + rd("VOLD", t),
                )
                b.stmt(
                    "POLD[i][j] = P[i][j] + alpha*(PNEW[i][j] - 2*P[i][j] + POLD[i][j])",
                    name="S_pold",
                    body_py=(
                        "POLD[t+1, i, j] = P[t, i, j] + 0.001*(PNEW[t+1, i, j] "
                        "- 2.0*P[t, i, j] + POLD[t, i, j])"
                    ),
                    writes=wr("POLD", t + 1),
                    reads=rd("P", t) + rd("PNEW", t + 1) + rd("POLD", t),
                )
                b.stmt(
                    "U[i][j] = UNEW[i][j]",
                    name="S_u",
                    body_py="U[t+1, i, j] = UNEW[t+1, i, j]",
                    writes=wr("U", t + 1),
                    reads=rd("UNEW", t + 1),
                )
                b.stmt(
                    "V[i][j] = VNEW[i][j]",
                    name="S_v",
                    body_py="V[t+1, i, j] = VNEW[t+1, i, j]",
                    writes=wr("V", t + 1),
                    reads=rd("VNEW", t + 1),
                )
                b.stmt(
                    "P[i][j] = PNEW[i][j]",
                    name="S_p",
                    body_py="P[t+1, i, j] = PNEW[t+1, i, j]",
                    writes=wr("P", t + 1),
                    reads=rd("PNEW", t + 1),
                )
    return b.build()


SWIM = register(
    Workload(
        name="swim",
        category="periodic",
        factory=swim_model,
        sizes={"N": 1335, "T": 800},                      # Table 2: 1335^2 x 800
        small_sizes={"N": 5, "T": 3},
        iss=True,
        diamond=True,
        perf=PerfSpec(
            flops_per_point=65,
            bytes_per_point=14 * 8 * 2,   # ~14 double fields streamed per sweep
            time_param="T",
            space_params=("N", "N"),
            vector_efficiency=0.48,   # wavefront (pipelined) tiling variant
        ),
        notes="C translation with calc1/calc2/calc3 inlined (Section 4.2)",
    )
)
