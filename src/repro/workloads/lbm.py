"""Lattice Boltzmann Method benchmarks (Table 2; Fig. 6 d-h).

The *compiler's view* of an LBM time step is a periodic stencil: every site
update reads neighbor distributions (pull scheme) and writes the site's own.
The polyhedral models here use a single time-expanded logical array with one
read per distinct *dependence direction*; per-site flop and byte counts of
the real d2q9/d3q27 updates live in the :class:`PerfSpec` (the physics
itself is implemented in :mod:`repro.apps.lbm_d2q9` / ``lbm_d3q27``).

Dependence-cone reductions (sound, see DESIGN.md): for d3q27 the 12 edge
directions ``(1, ±1, ±1, 0)…`` are omitted because each is a convex
combination of corner and face directions already present — any schedule
legal (and bounded) for those is legal for the edges.

The four d2q9 applications (lid-driven cavity, its MRT variant, flow past
cylinder, Poiseuille flow) share one dependence structure; they differ in
boundary handling and per-site work, which only the performance
characteristics observe — hence one model parameterized by a
:class:`PerfSpec` each, exactly how the paper's numbers differ per variant.
"""

from __future__ import annotations

from repro.frontend import Access, ProgramBuilder
from repro.polyhedra import AffExpr, AffineMap
from repro.workloads.base import PerfSpec, Workload, register
from repro.workloads.periodic_util import periodic_reads

__all__ = ["lbm_d2q9_model", "lbm_d3q27_model", "LBM_WORKLOADS"]

# d2q9: rest + 4 axis + 4 diagonal directions.
_D2Q9_SHIFTS = [
    (0, 0),
    (1, 0), (-1, 0), (0, 1), (0, -1),
    (1, 1), (1, -1), (-1, 1), (-1, -1),
]

# d3q27 reduced to its dependence-cone generators: rest + 6 faces + 8 corners.
_D3Q27_SHIFTS = (
    [(0, 0, 0)]
    + [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)]
    + [(si, sj, sk) for si in (1, -1) for sj in (1, -1) for sk in (1, -1)]
)


def lbm_d2q9_model(name: str = "lbm-d2q9"):
    """One stream-collide update per site on a periodic 2-d grid."""
    b = ProgramBuilder(name, params=("T", "NX", "NY"), param_min=4)
    with b.loop("t", 0, "T-1"):
        with b.loop("i", 0, "NX-1"):
            with b.loop("j", 0, "NY-1"):
                sp = b.program.space_for(["t", "i", "j"])
                t = AffExpr.var(sp, "t")
                i = AffExpr.var(sp, "i")
                j = AffExpr.var(sp, "j")
                reads = []
                for si, sj in _D2Q9_SHIFTS:
                    reads += periodic_reads(
                        sp, "F", t, {"i": si, "j": sj}, {"i": "NX", "j": "NY"}
                    )
                b.stmt(
                    "F[t+1][i][j] = collide(F[t][i..][j..])",
                    body_py=(
                        "F[t+1, i, j] = 0.2*F[t, i, j] + 0.1*("
                        "F[t, (i+1) % NX, j] + F[t, (i-1) % NX, j] + "
                        "F[t, i, (j+1) % NY] + F[t, i, (j-1) % NY]) + 0.1*("
                        "F[t, (i+1) % NX, (j+1) % NY] + F[t, (i+1) % NX, (j-1) % NY] + "
                        "F[t, (i-1) % NX, (j+1) % NY] + F[t, (i-1) % NX, (j-1) % NY])"
                    ),
                    writes=[Access("F", AffineMap(sp, [t + 1, i, j]))],
                    reads=reads,
                )
    return b.build()


def lbm_d3q27_model(name: str = "lbm-ldc-d3q27"):
    """One stream-collide update per site on a periodic 3-d grid."""
    b = ProgramBuilder(name, params=("T", "N"), param_min=4)
    with b.loop("t", 0, "T-1"):
        with b.loop("i", 0, "N-1"):
            with b.loop("j", 0, "N-1"):
                with b.loop("k", 0, "N-1"):
                    sp = b.program.space_for(["t", "i", "j", "k"])
                    t = AffExpr.var(sp, "t")
                    i = AffExpr.var(sp, "i")
                    j = AffExpr.var(sp, "j")
                    k = AffExpr.var(sp, "k")
                    reads = []
                    for si, sj, sk in _D3Q27_SHIFTS:
                        reads += periodic_reads(
                            sp, "F", t,
                            {"i": si, "j": sj, "k": sk},
                            {"i": "N", "j": "N", "k": "N"},
                        )
                    b.stmt(
                        "F[t+1][i][j][k] = collide(F[t][i..][j..][k..])",
                        body_py=(
                            "F[t+1, i, j, k] = 0.3*F[t, i, j, k] + 0.05*("
                            "F[t, (i+1) % N, j, k] + F[t, (i-1) % N, j, k] + "
                            "F[t, i, (j+1) % N, k] + F[t, i, (j-1) % N, k] + "
                            "F[t, i, j, (k+1) % N] + F[t, i, j, (k-1) % N]) + 0.05*("
                            "F[t, (i+1) % N, (j+1) % N, (k+1) % N] + "
                            "F[t, (i+1) % N, (j+1) % N, (k-1) % N] + "
                            "F[t, (i+1) % N, (j-1) % N, (k+1) % N] + "
                            "F[t, (i+1) % N, (j-1) % N, (k-1) % N] + "
                            "F[t, (i-1) % N, (j+1) % N, (k+1) % N] + "
                            "F[t, (i-1) % N, (j+1) % N, (k-1) % N] + "
                            "F[t, (i-1) % N, (j-1) % N, (k+1) % N] + "
                            "F[t, (i-1) % N, (j-1) % N, (k-1) % N])"
                        ),
                        writes=[Access("F", AffineMap(sp, [t + 1, i, j, k]))],
                        reads=reads,
                    )
    return b.build()


# Per-variant work characteristics for the real LBM updates: a d2q9 BGK
# site update is ~200 flops over 19 distribution loads + 9 stores; the MRT
# collision roughly doubles the arithmetic (higher operational intensity,
# Section 4); d3q27 scales the distribution count.
# Per-site sweep traffic of real implementations: pull + push of every
# distribution plus write-allocate fills (and, for fpc, the obstacle mask and
# bounce-back re-reads; for d3q27, heavily strided AoS access wastes most of
# each cache line).
_D2Q9_BYTES = 256
_D3Q27_BYTES = 1700

LBM_WORKLOADS = [
    register(
        Workload(
            name="lbm-ldc-d2q9",
            category="periodic",
            factory=lambda: lbm_d2q9_model("lbm-ldc-d2q9"),
            sizes={"NX": 1024, "NY": 1024, "T": 50000},
            small_sizes={"NX": 6, "NY": 6, "T": 3},
            iss=True,
            diamond=True,
            perf=PerfSpec(
                flops_per_point=200,
                bytes_per_point=_D2Q9_BYTES,
                time_param="T",
                space_params=("NX", "NY"),
                vector_efficiency=0.45,
                mlups=True,
            ),
            notes="lid-driven cavity flow [8]",
        )
    ),
    register(
        Workload(
            name="lbm-ldc-d2q9-mrt",
            category="periodic",
            factory=lambda: lbm_d2q9_model("lbm-ldc-d2q9-mrt"),
            sizes={"NX": 1024, "NY": 1024, "T": 20000},
            small_sizes={"NX": 6, "NY": 6, "T": 3},
            iss=True,
            diamond=True,
            perf=PerfSpec(
                flops_per_point=400,       # multiple relaxation times [11]
                bytes_per_point=_D2Q9_BYTES,
                time_param="T",
                space_params=("NX", "NY"),
                vector_efficiency=0.90,    # dense matrix collision: good SIMD
                mlups=True,
            ),
            notes="lid-driven cavity, MRT collision (higher operational intensity)",
        )
    ),
    register(
        Workload(
            name="lbm-fpc-d2q9",
            category="periodic",
            factory=lambda: lbm_d2q9_model("lbm-fpc-d2q9"),
            sizes={"NX": 1024, "NY": 256, "T": 40000},
            small_sizes={"NX": 6, "NY": 5, "T": 3},
            iss=True,
            diamond=True,
            perf=PerfSpec(
                flops_per_point=230,       # obstacle handling adds work
                bytes_per_point=416,       # + obstacle mask, bounce-back rereads
                time_param="T",
                space_params=("NX", "NY"),
                vector_efficiency=0.33,    # branchy boundary handling
                mlups=True,
            ),
            notes="flow past cylinder",
        )
    ),
    register(
        Workload(
            name="lbm-poi-d2q9",
            category="periodic",
            factory=lambda: lbm_d2q9_model("lbm-poi-d2q9"),
            sizes={"NX": 1024, "NY": 256, "T": 40000},
            small_sizes={"NX": 6, "NY": 5, "T": 3},
            iss=True,
            diamond=True,
            perf=PerfSpec(
                flops_per_point=210,
                bytes_per_point=213,       # pressure-bc variant streams less
                time_param="T",
                space_params=("NX", "NY"),
                vector_efficiency=0.56,
                mlups=True,
            ),
            notes="Poiseuille flow [43]",
        )
    ),
    register(
        Workload(
            name="lbm-ldc-d3q27",
            category="periodic",
            factory=lambda: lbm_d3q27_model(),
            sizes={"N": 256, "T": 300},
            small_sizes={"N": 5, "T": 3},
            iss=True,
            diamond=True,
            perf=PerfSpec(
                flops_per_point=600,
                bytes_per_point=_D3Q27_BYTES,
                time_param="T",
                space_params=("N", "N", "N"),
                vector_efficiency=0.14,    # 3-d LBM vectorizes poorly (Sec. 4.2)
                mlups=True,
            ),
            notes="3-d lid-driven cavity; NUMA effects dominate at high core counts",
        )
    ),
]
