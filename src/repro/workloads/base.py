"""Workload descriptors and the registry used by tests and benchmarks.

A :class:`Workload` bundles a polyhedral program factory with the pipeline
flags the paper uses for it (``--iss --partlbtile`` for the periodic suite),
its evaluation problem sizes (Table 2 / Polybench standard datasets), small
sizes for execution-based validation, and the per-point operation counts the
performance model needs (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.frontend.ir import Program
from repro.pipeline import PipelineOptions

__all__ = ["PerfSpec", "Workload", "register", "get_workload", "all_workloads", "WORKLOADS"]


@dataclass(frozen=True)
class PerfSpec:
    """Per-point work/traffic characteristics for the machine model.

    ``flops_per_point``  — floating point operations per grid-point update;
    ``bytes_per_point``  — main-memory traffic per point for one untiled
    sweep (reads + writes, accounting for streaming reuse within a sweep);
    ``time_param``       — parameter naming the time-step count (time-
    iterated codes only);
    ``space_params``     — parameters whose product is the grid size;
    ``vector_efficiency``— fraction of SIMD peak reachable in the innermost
    loop (3-d stencils vectorize poorly, Section 4.2).
    """

    flops_per_point: float
    bytes_per_point: float
    time_param: Optional[str] = None
    space_params: tuple[str, ...] = ()
    vector_efficiency: float = 1.0
    mlups: bool = False  # report MLUPS (LBM convention) instead of seconds


@dataclass
class Workload:
    name: str
    category: str                      # "polybench" | "periodic" | "motivation"
    factory: Callable[[], Program]
    sizes: dict[str, int] = field(default_factory=dict)
    small_sizes: dict[str, int] = field(default_factory=dict)
    iss: bool = False
    diamond: bool = False
    perf: Optional[PerfSpec] = None
    notes: str = ""

    def program(self) -> Program:
        return self.factory()

    def pipeline_options(self, algorithm: str, **overrides) -> PipelineOptions:
        opts = dict(
            algorithm=algorithm,
            iss=self.iss,
            diamond=self.diamond,
        )
        opts.update(overrides)
        return PipelineOptions(**opts)


WORKLOADS: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in WORKLOADS:
        raise ValueError(f"duplicate workload {workload.name!r}")
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    # Import side effects populate the registry on first use.
    import repro.workloads  # noqa: F401

    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None


def all_workloads(category: Optional[str] = None) -> list[Workload]:
    import repro.workloads  # noqa: F401

    items = list(WORKLOADS.values())
    if category is not None:
        items = [w for w in items if w.category == category]
    return items
