"""The paper's Section 2 motivating examples (Figs. 1-4)."""

from __future__ import annotations

from repro.frontend import parse_program
from repro.workloads.base import Workload, register
from repro.workloads.periodic import heat_1dp

__all__ = ["fig1_skew", "fig2_symmetric_consumer", "fig3_symmetric_deps", "MOTIVATION"]


def fig1_skew():
    """Fig. 1: single RAW with distance (1, 1); Pluto+ finds the
    communication-free mapping T(i,j) = (i - j, j) (Section 2.2)."""
    src = """
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            A[i+1][j+1] = 2.0 * A[i][j];
    """
    return parse_program(src, "fig1-skew", params=("N",))


def fig2_symmetric_consumer():
    """Fig. 2: consumer reads producer reflected; fusing with an outer
    parallel loop needs a reversal (Section 2.1)."""
    src = """
    for (i = 0; i < N; i++)
        b[i] = 2.0 * a[i];
    for (i = 0; i < N; i++)
        c[i] = 3.0 * b[N-1-i];
    """
    return parse_program(src, "fig2-symmetric-consumer", params=("N",))


def fig3_symmetric_deps():
    """Fig. 3: dependences symmetric about the j mid-line (Section 2.3)."""
    src = """
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            a[i+1][j] = 2.0 * a[i][N-j-1];
    """
    return parse_program(src, "fig3-symmetric-deps", params=("N",))


MOTIVATION = [
    register(
        Workload(
            name="fig1-skew",
            category="motivation",
            factory=fig1_skew,
            sizes={"N": 2000},
            small_sizes={"N": 8},
        )
    ),
    register(
        Workload(
            name="fig2-symmetric-consumer",
            category="motivation",
            factory=fig2_symmetric_consumer,
            sizes={"N": 100000},
            small_sizes={"N": 9},
        )
    ),
    register(
        Workload(
            name="fig3-symmetric-deps",
            category="motivation",
            factory=fig3_symmetric_deps,
            sizes={"N": 2000},
            small_sizes={"N": 8},
            iss=True,
        )
    ),
    register(
        Workload(
            name="fig4-periodic-stencil",
            category="motivation",
            factory=heat_1dp,
            sizes={"N": 100000, "T": 1000},
            small_sizes={"N": 12, "T": 5},
            iss=True,
            diamond=True,
        )
    ),
]
