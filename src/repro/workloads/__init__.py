"""Benchmark workloads: Polybench/C 3.2, periodic stencils, LBM, swim.

Importing this package populates the registry (:data:`WORKLOADS`).
"""

from repro.workloads.base import (
    PerfSpec,
    Workload,
    WORKLOADS,
    all_workloads,
    get_workload,
    register,
)

# Registration side effects.
from repro.workloads.polybench import (  # noqa: F401
    POLYBENCH_LA,
    POLYBENCH_MEDLEY,
    POLYBENCH_STENCILS,
)
from repro.workloads.periodic import PERIODIC_HEAT  # noqa: F401
from repro.workloads.lbm import LBM_WORKLOADS  # noqa: F401
from repro.workloads.swim import SWIM  # noqa: F401
from repro.workloads.motivation import MOTIVATION  # noqa: F401
from repro.workloads.reduction_kernels import REDUCTION_KERNELS  # noqa: F401

__all__ = [
    "PerfSpec",
    "Workload",
    "WORKLOADS",
    "all_workloads",
    "get_workload",
    "register",
]
