"""Polybench/C 3.2 linear-algebra kernels and solvers (Table 3 rows).

Kernels are transcribed from the Polybench 3.2 sources into the C-like
affine surface language of :mod:`repro.frontend.parser`.  One systematic
deviation: scalar temporaries (``x`` in cholesky, ``nrm`` in gramschmidt,
``w`` in ludcmp) are expanded to loop-indexed arrays.  The paper's toolchain
reaches the same effect through ISL's value-based (``--lastwriter``)
dependences; with this repository's memory-based analysis the expansion is
done in the source encoding instead (see DESIGN.md, substitutions).

Sizes are the Polybench "standard" dataset, as used in the paper.
"""

from __future__ import annotations

from repro.frontend import parse_program
from repro.workloads.base import Workload, register

__all__ = ["POLYBENCH_LA"]


def _gemm():
    src = """
    for (i = 0; i < NI; i++)
        for (j = 0; j < NJ; j++) {
            C[i][j] = C[i][j] * beta;
            for (k = 0; k < NK; k++)
                C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
        }
    """
    return parse_program(src, "gemm", params=("NI", "NJ", "NK"))


def _two_mm():
    src = """
    for (i = 0; i < NI; i++)
        for (j = 0; j < NJ; j++) {
            tmp[i][j] = 0;
            for (k = 0; k < NK; k++)
                tmp[i][j] = tmp[i][j] + alpha * A[i][k] * B[k][j];
        }
    for (i = 0; i < NI; i++)
        for (j = 0; j < NL; j++) {
            D[i][j] = D[i][j] * beta;
            for (k = 0; k < NJ; k++)
                D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
        }
    """
    return parse_program(src, "2mm", params=("NI", "NJ", "NK", "NL"))


def _three_mm():
    src = """
    for (i = 0; i < NI; i++)
        for (j = 0; j < NJ; j++) {
            E[i][j] = 0;
            for (k = 0; k < NK; k++)
                E[i][j] = E[i][j] + A[i][k] * B[k][j];
        }
    for (i = 0; i < NJ; i++)
        for (j = 0; j < NL; j++) {
            F[i][j] = 0;
            for (k = 0; k < NM; k++)
                F[i][j] = F[i][j] + C[i][k] * D[k][j];
        }
    for (i = 0; i < NI; i++)
        for (j = 0; j < NL; j++) {
            G[i][j] = 0;
            for (k = 0; k < NJ; k++)
                G[i][j] = G[i][j] + E[i][k] * F[k][j];
        }
    """
    return parse_program(src, "3mm", params=("NI", "NJ", "NK", "NL", "NM"))


def _atax():
    src = """
    for (i = 0; i < NY; i++)
        y[i] = 0;
    for (i = 0; i < NX; i++) {
        tmp[i] = 0;
        for (j = 0; j < NY; j++)
            tmp[i] = tmp[i] + A[i][j] * x[j];
        for (j = 0; j < NY; j++)
            y[j] = y[j] + A[i][j] * tmp[i];
    }
    """
    return parse_program(src, "atax", params=("NX", "NY"))


def _bicg():
    src = """
    for (i = 0; i < NY; i++)
        s[i] = 0;
    for (i = 0; i < NX; i++) {
        q[i] = 0;
        for (j = 0; j < NY; j++) {
            s[j] = s[j] + r[i] * A[i][j];
            q[i] = q[i] + A[i][j] * p[j];
        }
    }
    """
    return parse_program(src, "bicg", params=("NX", "NY"))


def _cholesky():
    # scalar x expanded to x1[i], x2[i][j]
    src = """
    for (i = 0; i < N; i++) {
        x1[i] = A[i][i];
        for (j = 0; j <= i - 1; j++)
            x1[i] = x1[i] - A[i][j] * A[i][j];
        p[i] = 1.0 / sqrt(x1[i]);
        for (j = i + 1; j < N; j++) {
            x2[i][j] = A[i][j];
            for (k = 0; k <= i - 1; k++)
                x2[i][j] = x2[i][j] - A[j][k] * A[i][k];
            A[j][i] = x2[i][j] * p[i];
        }
    }
    """
    return parse_program(src, "cholesky", params=("N",))


def _doitgen():
    src = """
    for (r = 0; r < NR; r++)
        for (q = 0; q < NQ; q++) {
            for (p = 0; p < NP; p++) {
                sum[r][q][p] = 0;
                for (s = 0; s < NP; s++)
                    sum[r][q][p] = sum[r][q][p] + A[r][q][s] * C4[s][p];
            }
            for (p = 0; p < NP; p++)
                A[r][q][p] = sum[r][q][p];
        }
    """
    return parse_program(src, "doitgen", params=("NR", "NQ", "NP"))


def _gemver():
    src = """
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            x[i] = x[i] + beta * A[j][i] * y[j];
    for (i = 0; i < N; i++)
        x[i] = x[i] + z[i];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            w[i] = w[i] + alpha * A[i][j] * x[j];
    """
    return parse_program(src, "gemver", params=("N",))


def _gesummv():
    src = """
    for (i = 0; i < N; i++) {
        tmp[i] = 0;
        y[i] = 0;
        for (j = 0; j < N; j++) {
            tmp[i] = A[i][j] * x[j] + tmp[i];
            y[i] = B[i][j] * x[j] + y[i];
        }
        y[i] = alpha * tmp[i] + beta * y[i];
    }
    """
    return parse_program(src, "gesummv", params=("N",))


def _mvt():
    src = """
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            x1[i] = x1[i] + A[i][j] * y1[j];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            x2[i] = x2[i] + A[j][i] * y2[j];
    """
    return parse_program(src, "mvt", params=("N",))


def _symm():
    # acc expanded to acc[i][j]
    src = """
    for (i = 0; i < NI; i++)
        for (j = 0; j < NJ; j++) {
            acc[i][j] = 0;
            for (k = 0; k <= j - 2; k++)
                acc[i][j] = acc[i][j] + B[k][j] * A[k][i];
            C[i][j] = beta * C[i][j] + alpha * A[i][i] * B[i][j] + alpha * acc[i][j];
        }
    """
    return parse_program(src, "symm", params=("NI", "NJ"))


def _syr2k():
    src = """
    for (i = 0; i < NI; i++)
        for (j = 0; j < NI; j++)
            C[i][j] = C[i][j] * beta;
    for (i = 0; i < NI; i++)
        for (j = 0; j < NI; j++)
            for (k = 0; k < NJ; k++)
                C[i][j] = C[i][j] + alpha * A[i][k] * B[j][k] + alpha * B[i][k] * A[j][k];
    """
    return parse_program(src, "syr2k", params=("NI", "NJ"))


def _syrk():
    src = """
    for (i = 0; i < NI; i++)
        for (j = 0; j < NI; j++)
            C[i][j] = C[i][j] * beta;
    for (i = 0; i < NI; i++)
        for (j = 0; j < NI; j++)
            for (k = 0; k < NJ; k++)
                C[i][j] = C[i][j] + alpha * A[i][k] * A[j][k];
    """
    return parse_program(src, "syrk", params=("NI", "NJ"))


def _trisolv():
    src = """
    for (i = 0; i < N; i++) {
        x[i] = c[i];
        for (j = 0; j <= i - 1; j++)
            x[i] = x[i] - A[i][j] * x[j];
        x[i] = x[i] / A[i][i];
    }
    """
    return parse_program(src, "trisolv", params=("N",))


def _durbin():
    src = """
    y[0][0] = r[0];
    beta[0] = 1;
    alpha[0] = r[0];
    for (k = 1; k < N; k++) {
        beta[k] = beta[k-1] - alpha[k-1] * alpha[k-1] * beta[k-1];
        sum[0][k] = r[k];
        for (i = 0; i <= k - 1; i++)
            sum[i+1][k] = sum[i][k] + r[k-i-1] * y[i][k-1];
        alpha[k] = -sum[k][k] * beta[k];
        for (i = 0; i <= k - 1; i++)
            y[i][k] = y[i][k-1] + alpha[k] * y[k-i-1][k-1];
        y[k][k] = alpha[k];
    }
    for (i = 0; i < N; i++)
        out[i] = y[i][N-1];
    """
    return parse_program(src, "durbin", params=("N",))


def _dynprog():
    src = """
    for (iter = 0; iter < TSTEPS; iter++) {
        for (i = 0; i <= LEN - 1; i++)
            for (j = 0; j <= LEN - 1; j++)
                c[iter][i][j] = 0;
        for (i = 0; i <= LEN - 1; i++)
            for (j = i + 1; j <= LEN - 1; j++) {
                sum_c[iter][i][j][i] = 0;
                for (k = i + 1; k <= j - 1; k++)
                    sum_c[iter][i][j][k] = sum_c[iter][i][j][k-1] + c[iter][i][k] + c[iter][k][j];
                c[iter][i][j] = sum_c[iter][i][j][j-1] + W[i][j];
            }
        out_l[iter+1] = out_l[iter] + c[iter][0][LEN - 1];
    }
    """
    return parse_program(src, "dynprog", params=("TSTEPS", "LEN"), param_min=3)


def _gramschmidt():
    # nrm expanded to nrm[k]
    src = """
    for (k = 0; k < NJ; k++) {
        nrm[k] = 0;
        for (i = 0; i < NI; i++)
            nrm[k] = nrm[k] + A[i][k] * A[i][k];
        R[k][k] = sqrt(nrm[k]);
        for (i = 0; i < NI; i++)
            Q[i][k] = A[i][k] / R[k][k];
        for (j = k + 1; j < NJ; j++) {
            R[k][j] = 0;
            for (i = 0; i < NI; i++)
                R[k][j] = R[k][j] + Q[i][k] * A[i][j];
            for (i = 0; i < NI; i++)
                A[i][j] = A[i][j] - Q[i][k] * R[k][j];
        }
    }
    """
    return parse_program(src, "gramschmidt", params=("NI", "NJ"))


def _lu():
    src = """
    for (k = 0; k < N; k++) {
        for (j = k + 1; j < N; j++)
            A[k][j] = A[k][j] / A[k][k];
        for (i = k + 1; i < N; i++)
            for (j = k + 1; j < N; j++)
                A[i][j] = A[i][j] - A[i][k] * A[k][j];
    }
    """
    return parse_program(src, "lu", params=("N",))


def _ludcmp():
    # w expanded to w1/w2/w3/w4 staging arrays; note the reversed accesses
    # (N-1-i) in the back-substitution — the pattern Table 3 exercises.
    src = """
    b[0] = 1.0;
    for (i = 0; i < N; i++) {
        for (j = i + 1; j <= N; j++) {
            w1[i][j] = A[j][i];
            for (k = 0; k <= i - 1; k++)
                w1[i][j] = w1[i][j] - A[j][k] * A[k][i];
            A[j][i] = w1[i][j] / A[i][i];
        }
        for (j = i + 1; j <= N; j++) {
            w2[i][j] = A[i+1][j];
            for (k = 0; k <= i; k++)
                w2[i][j] = w2[i][j] - A[i+1][k] * A[k][j];
            A[i+1][j] = w2[i][j];
        }
    }
    y[0] = b[0];
    for (i = 1; i <= N; i++) {
        w3[i] = b[i];
        for (j = 0; j <= i - 1; j++)
            w3[i] = w3[i] - A[i][j] * y[j];
        y[i] = w3[i];
    }
    x[N] = y[N] / A[N][N];
    for (i = 0; i <= N - 1; i++) {
        w4[i] = y[N - 1 - i];
        for (j = N - i; j <= N; j++)
            w4[i] = w4[i] - A[N - 1 - i][j] * x[j];
        x[N - 1 - i] = w4[i] / A[N - 1 - i][N - 1 - i];
    }
    """
    return parse_program(src, "ludcmp", params=("N",))


_LA_SPECS = [
    ("gemm", _gemm, {"NI": 1024, "NJ": 1024, "NK": 1024}, {"NI": 6, "NJ": 5, "NK": 4}),
    ("2mm", _two_mm, {"NI": 1024, "NJ": 1024, "NK": 1024, "NL": 1024}, {"NI": 5, "NJ": 4, "NK": 3, "NL": 4}),
    ("3mm", _three_mm, {"NI": 1024, "NJ": 1024, "NK": 1024, "NL": 1024, "NM": 1024}, {"NI": 4, "NJ": 4, "NK": 3, "NL": 3, "NM": 3}),
    ("atax", _atax, {"NX": 4000, "NY": 4000}, {"NX": 6, "NY": 5}),
    ("bicg", _bicg, {"NX": 4000, "NY": 4000}, {"NX": 6, "NY": 5}),
    ("cholesky", _cholesky, {"N": 1024}, {"N": 6}),
    ("doitgen", _doitgen, {"NR": 128, "NQ": 128, "NP": 128}, {"NR": 4, "NQ": 4, "NP": 4}),
    ("gemver", _gemver, {"N": 4000}, {"N": 6}),
    ("gesummv", _gesummv, {"N": 4000}, {"N": 6}),
    ("mvt", _mvt, {"N": 4000}, {"N": 6}),
    ("symm", _symm, {"NI": 1024, "NJ": 1024}, {"NI": 6, "NJ": 6}),
    ("syr2k", _syr2k, {"NI": 1024, "NJ": 1024}, {"NI": 5, "NJ": 5}),
    ("syrk", _syrk, {"NI": 1024, "NJ": 1024}, {"NI": 5, "NJ": 5}),
    ("trisolv", _trisolv, {"N": 4000}, {"N": 7}),
    ("durbin", _durbin, {"N": 4000}, {"N": 6}),
    ("dynprog", _dynprog, {"TSTEPS": 10000, "LEN": 50}, {"TSTEPS": 3, "LEN": 6}),
    ("gramschmidt", _gramschmidt, {"NI": 512, "NJ": 512}, {"NI": 5, "NJ": 5}),
    ("lu", _lu, {"N": 1024}, {"N": 7}),
    ("ludcmp", _ludcmp, {"N": 1024}, {"N": 6}),
]

POLYBENCH_LA = []
for _name, _factory, _sizes, _small in _LA_SPECS:
    POLYBENCH_LA.append(
        register(
            Workload(
                name=_name,
                category="polybench",
                factory=_factory,
                sizes=_sizes,
                small_sizes=_small,
            )
        )
    )
