"""Polybench/C 3.2 stencil kernels (non-periodic; Table 3 upper half).

``fdtd-apml`` is transcribed in a structurally faithful reduced form: the
same loop structure (a 3-d body sweep with trailing 2-d boundary updates)
and dependence pattern, with the very long floating-point expressions of the
original shortened.  Dependence structure — not expression length — is what
the scheduler and the compile-time study observe.
"""

from __future__ import annotations

from repro.frontend import parse_program
from repro.workloads.base import Workload, register

__all__ = ["POLYBENCH_STENCILS"]


def _jacobi_1d():
    src = """
    for (t = 0; t < TSTEPS; t++) {
        for (i = 2; i < N - 1; i++)
            B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]);
        for (j = 2; j < N - 1; j++)
            A[j] = B[j];
    }
    """
    return parse_program(src, "jacobi-1d-imper", params=("TSTEPS", "N"), param_min=5)


def _jacobi_2d():
    src = """
    for (t = 0; t < TSTEPS; t++) {
        for (i = 1; i < N - 1; i++)
            for (j = 1; j < N - 1; j++)
                B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
        for (i = 1; i < N - 1; i++)
            for (j = 1; j < N - 1; j++)
                A[i][j] = B[i][j];
    }
    """
    return parse_program(src, "jacobi-2d-imper", params=("TSTEPS", "N"), param_min=4)


def _seidel_2d():
    src = """
    for (t = 0; t <= TSTEPS - 1; t++)
        for (i = 1; i <= N - 2; i++)
            for (j = 1; j <= N - 2; j++)
                A[i][j] = (A[i-1][j-1] + A[i-1][j] + A[i-1][j+1]
                         + A[i][j-1] + A[i][j] + A[i][j+1]
                         + A[i+1][j-1] + A[i+1][j] + A[i+1][j+1]) / 9.0;
    """
    return parse_program(src, "seidel-2d", params=("TSTEPS", "N"), param_min=4)


def _fdtd_2d():
    src = """
    for (t = 0; t < TMAX; t++) {
        for (j = 0; j < NY; j++)
            ey[0][j] = fict[t];
        for (i = 1; i < NX; i++)
            for (j = 0; j < NY; j++)
                ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
        for (i = 0; i < NX; i++)
            for (j = 1; j < NY; j++)
                ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
        for (i = 0; i < NX - 1; i++)
            for (j = 0; j < NY - 1; j++)
                hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
    }
    """
    return parse_program(src, "fdtd-2d", params=("TMAX", "NX", "NY"), param_min=3)


def _fdtd_apml():
    src = """
    for (iz = 0; iz < CZ; iz++)
        for (iy = 0; iy < CYM; iy++) {
            for (ix = 0; ix < CXM; ix++) {
                clf[iz][iy] = Ex[iz][iy][ix] - Ex[iz][iy+1][ix] + Ey[iz][iy][ix+1] - Ey[iz][iy][ix];
                tmp[iz][iy] = cymh[iy] / cyph[iy] * Bza[iz][iy][ix] - ch / cyph[iy] * clf[iz][iy];
                Hz[iz][iy][ix] = cxmh[ix] / cxph[ix] * Hz[iz][iy][ix]
                               + mui * czp[iz] / cxph[ix] * tmp[iz][iy]
                               - mui * czm[iz] / cxph[ix] * Bza[iz][iy][ix];
                Bza[iz][iy][ix] = tmp[iz][iy];
            }
            clf[iz][iy] = Ex[iz][iy][CXM] - Ex[iz][iy+1][CXM] + Ry[iz][iy] - Ey[iz][iy][CXM];
            tmp[iz][iy] = cymh[iy] / cyph[iy] * Bza[iz][iy][CXM] - ch / cyph[iy] * clf[iz][iy];
            Hz[iz][iy][CXM] = cxmh[CXM] / cxph[CXM] * Hz[iz][iy][CXM]
                            + mui * czp[iz] / cxph[CXM] * tmp[iz][iy]
                            - mui * czm[iz] / cxph[CXM] * Bza[iz][iy][CXM];
            Bza[iz][iy][CXM] = tmp[iz][iy];
            for (ix = 0; ix < CXM; ix++) {
                clf[iz][iy] = Ex[iz][CYM][ix] - Ax[iz][ix] + Ey[iz][CYM][ix+1] - Ey[iz][CYM][ix];
                tmp[iz][iy] = cymh[CYM] / cyph[iy] * Bza[iz][iy][ix] - ch / cyph[iy] * clf[iz][iy];
                Hz[iz][CYM][ix] = cxmh[ix] / cxph[ix] * Hz[iz][CYM][ix]
                                + mui * czp[iz] / cxph[ix] * tmp[iz][iy]
                                - mui * czm[iz] / cxph[ix] * Bza[iz][CYM][ix];
                Bza[iz][CYM][ix] = tmp[iz][iy];
            }
            clf[iz][iy] = Ex[iz][CYM][CXM] - Ax[iz][CXM] + Ry[iz][CYM] - Ey[iz][CYM][CXM];
            tmp[iz][iy] = cymh[CYM] / cyph[CYM] * Bza[iz][CYM][CXM] - ch / cyph[CYM] * clf[iz][iy];
            Hz[iz][CYM][CXM] = cxmh[CXM] / cxph[CXM] * Hz[iz][CYM][CXM]
                             + mui * czp[iz] / cxph[CXM] * tmp[iz][iy]
                             - mui * czm[iz] / cxph[CXM] * Bza[iz][CYM][CXM];
            Bza[iz][CYM][CXM] = tmp[iz][iy];
        }
    """
    return parse_program(src, "fdtd-apml", params=("CZ", "CYM", "CXM"), param_min=2)


_STENCIL_SPECS = [
    ("jacobi-1d-imper", _jacobi_1d, {"TSTEPS": 100, "N": 10000}, {"TSTEPS": 4, "N": 12}),
    ("jacobi-2d-imper", _jacobi_2d, {"TSTEPS": 20, "N": 1000}, {"TSTEPS": 3, "N": 8}),
    ("seidel-2d", _seidel_2d, {"TSTEPS": 20, "N": 1000}, {"TSTEPS": 3, "N": 8}),
    ("fdtd-2d", _fdtd_2d, {"TMAX": 50, "NX": 1000, "NY": 1000}, {"TMAX": 3, "NX": 6, "NY": 6}),
    ("fdtd-apml", _fdtd_apml, {"CZ": 256, "CYM": 256, "CXM": 256}, {"CZ": 3, "CYM": 4, "CXM": 4}),
]

POLYBENCH_STENCILS = []
for _name, _factory, _sizes, _small in _STENCIL_SPECS:
    POLYBENCH_STENCILS.append(
        register(
            Workload(
                name=_name,
                category="polybench",
                factory=_factory,
                sizes=_sizes,
                small_sizes=_small,
            )
        )
    )
