"""Reference numpy implementations of Polybench kernels.

These execute the same mathematics as the polyhedral models in this package
and are used by the test suite to validate the *model specifications*: the
model run in original program order must agree with the straightforward
numpy computation.  (The transformation machinery is validated separately by
original-vs-transformed comparison.)

Array/parameter conventions match :func:`repro.runtime.infer_shapes` on the
corresponding model.
"""

from __future__ import annotations

import numpy as np

__all__ = ["REFERENCE_KERNELS"]


def gemm(arrays, params):
    a, b, c = arrays["A"], arrays["B"], arrays["C"]
    alpha, beta = arrays["alpha"][()], arrays["beta"][()]
    c *= beta
    c += alpha * (a @ b)


def two_mm(arrays, params):
    alpha, beta = arrays["alpha"][()], arrays["beta"][()]
    arrays["tmp"][:] = alpha * (arrays["A"] @ arrays["B"])
    arrays["D"] *= beta
    arrays["D"] += arrays["tmp"] @ arrays["C"]


def three_mm(arrays, params):
    arrays["E"][:] = arrays["A"] @ arrays["B"]
    arrays["F"][:] = arrays["C"] @ arrays["D"]
    arrays["G"][:] = arrays["E"] @ arrays["F"]


def atax(arrays, params):
    a, x = arrays["A"], arrays["x"]
    arrays["tmp"][:] = a @ x
    arrays["y"][:] = a.T @ arrays["tmp"]


def bicg(arrays, params):
    a = arrays["A"]
    arrays["s"][:] = a.T @ arrays["r"]
    arrays["q"][:] = a @ arrays["p"]


def mvt(arrays, params):
    a = arrays["A"]
    arrays["x1"] += a @ arrays["y1"]
    arrays["x2"] += a.T @ arrays["y2"]


def gesummv(arrays, params):
    alpha, beta = arrays["alpha"][()], arrays["beta"][()]
    arrays["tmp"][:] = arrays["A"] @ arrays["x"]
    arrays["y"][:] = alpha * arrays["tmp"] + beta * (arrays["B"] @ arrays["x"])


def gemver(arrays, params):
    a = arrays["A"]
    alpha, beta = arrays["alpha"][()], arrays["beta"][()]
    a += np.outer(arrays["u1"], arrays["v1"]) + np.outer(arrays["u2"], arrays["v2"])
    arrays["x"] += beta * (a.T @ arrays["y"])
    arrays["x"] += arrays["z"]
    arrays["w"] += alpha * (a @ arrays["x"])


def trisolv(arrays, params):
    a, c = arrays["A"], arrays["c"]
    n = params["N"]
    x = arrays["x"]
    for i in range(n):
        x[i] = (c[i] - a[i, :i] @ x[:i]) / a[i, i]


def lu(arrays, params):
    a = arrays["A"]
    n = params["N"]
    for k in range(n):
        a[k, k + 1 :] /= a[k, k]
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])


def floyd_warshall(arrays, params):
    path = arrays["path"]
    n = params["N"]
    for k in range(n):
        path[:] = np.minimum(path, path[:, k : k + 1] + path[k : k + 1, :])


def covariance(arrays, params):
    data = arrays["data"]
    float_n = arrays["float_n"][()]
    m = params["M"]
    arrays["mean"][:] = data.sum(axis=0) / float_n
    data -= arrays["mean"][None, :]
    arrays["symmat"][:m, :m] = data.T @ data


def doitgen(arrays, params):
    a, c4, s = arrays["A"], arrays["C4"], arrays["sum"]
    nr, nq = params["NR"], params["NQ"]
    for r in range(nr):
        for q in range(nq):
            s[r, q, :] = a[r, q, :] @ c4
            a[r, q, :] = s[r, q, :]


def jacobi_1d(arrays, params):
    a, b = arrays["A"], arrays["B"]
    n = params["N"]
    for _ in range(params["TSTEPS"]):
        b[2 : n - 1] = 0.33333 * (a[1 : n - 2] + a[2 : n - 1] + a[3:n])
        a[2 : n - 1] = b[2 : n - 1]


def jacobi_2d(arrays, params):
    a, b = arrays["A"], arrays["B"]
    n = params["N"]
    for _ in range(params["TSTEPS"]):
        b[1 : n - 1, 1 : n - 1] = 0.2 * (
            a[1 : n - 1, 1 : n - 1] + a[1 : n - 1, 0 : n - 2]
            + a[1 : n - 1, 2:n] + a[2:n, 1 : n - 1] + a[0 : n - 2, 1 : n - 1]
        )
        a[1 : n - 1, 1 : n - 1] = b[1 : n - 1, 1 : n - 1]


def seidel_2d(arrays, params):
    a = arrays["A"]
    n = params["N"]
    for _ in range(params["TSTEPS"]):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                a[i, j] = (
                    a[i - 1, j - 1] + a[i - 1, j] + a[i - 1, j + 1]
                    + a[i, j - 1] + a[i, j] + a[i, j + 1]
                    + a[i + 1, j - 1] + a[i + 1, j] + a[i + 1, j + 1]
                ) / 9.0


def syrk(arrays, params):
    a, c = arrays["A"], arrays["C"]
    alpha, beta = arrays["alpha"][()], arrays["beta"][()]
    c *= beta
    c += alpha * (a @ a.T)


def syr2k(arrays, params):
    a, b, c = arrays["A"], arrays["B"], arrays["C"]
    alpha, beta = arrays["alpha"][()], arrays["beta"][()]
    c *= beta
    c += alpha * (a @ b.T) + alpha * (b @ a.T)


def cholesky(arrays, params):
    a, p, x1, x2 = arrays["A"], arrays["p"], arrays["x1"], arrays["x2"]
    n = params["N"]
    for i in range(n):
        x1[i] = a[i, i] - a[i, :i] @ a[i, :i]
        p[i] = 1.0 / np.sqrt(x1[i])
        for j in range(i + 1, n):
            x2[i, j] = a[i, j] - a[j, :i] @ a[i, :i]
            a[j, i] = x2[i, j] * p[i]


def gramschmidt(arrays, params):
    a, q, r, nrm = arrays["A"], arrays["Q"], arrays["R"], arrays["nrm"]
    nj = params["NJ"]
    for k in range(nj):
        nrm[k] = a[:, k] @ a[:, k]
        r[k, k] = np.sqrt(nrm[k])
        q[:, k] = a[:, k] / r[k, k]
        for j in range(k + 1, nj):
            r[k, j] = q[:, k] @ a[:, j]
            a[:, j] -= q[:, k] * r[k, j]


def symm(arrays, params):
    a, b, c, acc = arrays["A"], arrays["B"], arrays["C"], arrays["acc"]
    alpha, beta = arrays["alpha"][()], arrays["beta"][()]
    ni, nj = params["NI"], params["NJ"]
    for i in range(ni):
        for j in range(nj):
            acc[i, j] = b[: max(j - 1, 0), j] @ a[: max(j - 1, 0), i]
            c[i, j] = beta * c[i, j] + alpha * a[i, i] * b[i, j] + alpha * acc[i, j]


def durbin(arrays, params):
    y, beta, alpha, r, ssum, out = (
        arrays["y"], arrays["beta"], arrays["alpha"], arrays["r"],
        arrays["sum"], arrays["out"],
    )
    n = params["N"]
    y[0, 0] = r[0]
    beta[0] = 1.0
    alpha[0] = r[0]
    for k in range(1, n):
        beta[k] = beta[k - 1] - alpha[k - 1] * alpha[k - 1] * beta[k - 1]
        ssum[0, k] = r[k]
        for i in range(k):
            ssum[i + 1, k] = ssum[i, k] + r[k - i - 1] * y[i, k - 1]
        alpha[k] = -ssum[k, k] * beta[k]
        for i in range(k):
            y[i, k] = y[i, k - 1] + alpha[k] * y[k - i - 1, k - 1]
        y[k, k] = alpha[k]
    out[:] = y[:, n - 1]


def dynprog(arrays, params):
    c, sum_c, w, out_l = arrays["c"], arrays["sum_c"], arrays["W"], arrays["out_l"]
    tsteps, length = params["TSTEPS"], params["LEN"]
    for it in range(tsteps):
        c[it, :length, :length] = 0.0
        for i in range(length):
            for j in range(i + 1, length):
                sum_c[it, i, j, i] = 0.0
                for k in range(i + 1, j):
                    sum_c[it, i, j, k] = sum_c[it, i, j, k - 1] + c[it, i, k] + c[it, k, j]
                c[it, i, j] = (sum_c[it, i, j, j - 1] if j - 1 > i else 0.0) + w[i, j]
        out_l[it + 1] = out_l[it] + c[it, 0, length - 1]


def correlation(arrays, params):
    data = arrays["data"]
    float_n = arrays["float_n"][()]
    eps = arrays["eps"][()]
    m = params["M"]
    mean = arrays["mean"]
    stddev = arrays["stddev"]
    symmat = arrays["symmat"]
    mean[:m] = data[:, :m].sum(axis=0) / float_n
    stddev[:m] = np.sqrt(((data[:, :m] - mean[None, :m]) ** 2).sum(axis=0) / float_n) + eps
    data[:, :m] = (data[:, :m] - mean[None, :m]) / (np.sqrt(float_n) * stddev[None, :m])
    for j1 in range(m - 1):
        symmat[j1, j1] = 1.0
        for j2 in range(j1 + 1, m):
            symmat[j1, j2] = data[:, j1] @ data[:, j2]
            symmat[j2, j1] = symmat[j1, j2]
    symmat[m - 1, m - 1] = 1.0


def fdtd_2d(arrays, params):
    ex, ey, hz, fict = arrays["ex"], arrays["ey"], arrays["hz"], arrays["fict"]
    tmax, nx, ny = params["TMAX"], params["NX"], params["NY"]
    for t in range(tmax):
        ey[0, :ny] = fict[t]
        ey[1:nx, :ny] -= 0.5 * (hz[1:nx, :ny] - hz[: nx - 1, :ny])
        ex[:nx, 1:ny] -= 0.5 * (hz[:nx, 1:ny] - hz[:nx, : ny - 1])
        hz[: nx - 1, : ny - 1] -= 0.7 * (
            ex[: nx - 1, 1:ny] - ex[: nx - 1, : ny - 1]
            + ey[1:nx, : ny - 1] - ey[: nx - 1, : ny - 1]
        )


#: model name -> reference callable
REFERENCE_KERNELS = {
    "gemm": gemm,
    "2mm": two_mm,
    "3mm": three_mm,
    "atax": atax,
    "bicg": bicg,
    "mvt": mvt,
    "gesummv": gesummv,
    "gemver": gemver,
    "trisolv": trisolv,
    "lu": lu,
    "floyd-warshall": floyd_warshall,
    "covariance": covariance,
    "doitgen": doitgen,
    "jacobi-1d-imper": jacobi_1d,
    "jacobi-2d-imper": jacobi_2d,
    "seidel-2d": seidel_2d,
    "syrk": syrk,
    "syr2k": syr2k,
    "cholesky": cholesky,
    "gramschmidt": gramschmidt,
    "symm": symm,
    "durbin": durbin,
    "dynprog": dynprog,
    "correlation": correlation,
    "fdtd-2d": fdtd_2d,
}
