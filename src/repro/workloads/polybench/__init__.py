"""Polybench/C 3.2 — the 27 kernels evaluated in the paper (Table 3).

``trmm``, ``adi`` and ``reg-detect`` are excluded, as in the paper,
following Yuki's analysis [42] that they are not representative of the
intended computations.
"""

from repro.workloads.polybench.linear_algebra import POLYBENCH_LA
from repro.workloads.polybench.medley import POLYBENCH_MEDLEY
from repro.workloads.polybench.stencils import POLYBENCH_STENCILS

__all__ = ["POLYBENCH_LA", "POLYBENCH_MEDLEY", "POLYBENCH_STENCILS"]
