"""Polybench/C 3.2 datamining and medley kernels (Table 3 rows)."""

from __future__ import annotations

from repro.frontend import parse_program
from repro.workloads.base import Workload, register

__all__ = ["POLYBENCH_MEDLEY"]


def _correlation():
    src = """
    for (j = 0; j < M; j++) {
        mean[j] = 0.0;
        for (i = 0; i < N; i++)
            mean[j] = mean[j] + data[i][j];
        mean[j] = mean[j] / float_n;
    }
    for (j = 0; j < M; j++) {
        stddev[j] = 0.0;
        for (i = 0; i < N; i++)
            stddev[j] = stddev[j] + (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
        stddev[j] = sqrt(stddev[j] / float_n) + eps;
    }
    for (i = 0; i < N; i++)
        for (j = 0; j < M; j++)
            data[i][j] = (data[i][j] - mean[j]) / (sqrt(float_n) * stddev[j]);
    for (j1 = 0; j1 < M - 1; j1++) {
        symmat[j1][j1] = 1.0;
        for (j2 = j1 + 1; j2 < M; j2++) {
            symmat[j1][j2] = 0.0;
            for (i = 0; i < N; i++)
                symmat[j1][j2] = symmat[j1][j2] + data[i][j1] * data[i][j2];
            symmat[j2][j1] = symmat[j1][j2];
        }
    }
    symmat[M-1][M-1] = 1.0;
    """
    return parse_program(src, "correlation", params=("M", "N"), param_min=3)


def _covariance():
    src = """
    for (j = 0; j < M; j++) {
        mean[j] = 0.0;
        for (i = 0; i < N; i++)
            mean[j] = mean[j] + data[i][j];
        mean[j] = mean[j] / float_n;
    }
    for (i = 0; i < N; i++)
        for (j = 0; j < M; j++)
            data[i][j] = data[i][j] - mean[j];
    for (j1 = 0; j1 < M; j1++)
        for (j2 = j1; j2 < M; j2++) {
            symmat[j1][j2] = 0.0;
            for (i = 0; i < N; i++)
                symmat[j1][j2] = symmat[j1][j2] + data[i][j1] * data[i][j2];
            symmat[j2][j1] = symmat[j1][j2];
        }
    """
    return parse_program(src, "covariance", params=("M", "N"), param_min=3)


def _floyd_warshall():
    src = """
    for (k = 0; k < N; k++)
        for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
                path[i][j] = min(path[i][j], path[i][k] + path[k][j]);
    """
    return parse_program(src, "floyd-warshall", params=("N",))


_MEDLEY_SPECS = [
    ("correlation", _correlation, {"M": 1000, "N": 1000}, {"M": 6, "N": 5}),
    ("covariance", _covariance, {"M": 1000, "N": 1000}, {"M": 6, "N": 5}),
    ("floyd-warshall", _floyd_warshall, {"N": 1024}, {"N": 7}),
]

POLYBENCH_MEDLEY = []
for _name, _factory, _sizes, _small in _MEDLEY_SPECS:
    POLYBENCH_MEDLEY.append(
        register(
            Workload(
                name=_name,
                category="polybench",
                factory=_factory,
                sizes=_sizes,
                small_sizes=_small,
            )
        )
    )
