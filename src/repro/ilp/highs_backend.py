"""MILP backend on scipy's HiGHS (:func:`scipy.optimize.milp`).

This plays the role GLPK plays in the paper: a fast floating-point MILP
solver used for the large scheduling ILPs (the paper switched to GLPK above
roughly one hundred variables; swim's Pluto+ model had 219).  The interface
matches :func:`repro.ilp.branch_bound.solve_ilp` so the lexmin driver can
switch backends transparently.

All scheduler models have pure-integer data and modest magnitudes, so the
floating-point optimum is rounded to the nearest integer vector and verified
exactly against the model before being returned.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Optional, Sequence

import numpy as np
from scipy import optimize, sparse

from repro.ilp.branch_bound import ILPResult, ILPStatus
from repro.ilp.model import ILPModel, LinearConstraint, SolveStats

__all__ = ["solve_ilp_highs"]


def solve_ilp_highs(
    model: ILPModel,
    objective: Mapping[str, int | Fraction],
    extra: Sequence[LinearConstraint] = (),
    node_limit: int = 20000,
) -> ILPResult:
    """Minimize ``objective . x`` using HiGHS.  Mirrors ``solve_ilp``."""
    names = model.var_names()
    index = {n: i for i, n in enumerate(names)}
    n = len(names)

    c = np.zeros(n)
    for name, coef in objective.items():
        c[index[name]] = float(coef)

    lb = np.full(n, -np.inf)
    ub = np.full(n, np.inf)
    integrality = np.zeros(n)
    for i, name in enumerate(names):
        var = model.variables[name]
        if var.lower is not None:
            lb[i] = var.lower
        if var.upper is not None:
            ub[i] = var.upper
        integrality[i] = 1 if var.integer else 0

    constraints = list(model.constraints) + list(extra)
    rows, cols, data = [], [], []
    c_lb = np.zeros(len(constraints))
    c_ub = np.zeros(len(constraints))
    for r, con in enumerate(constraints):
        for name, coef in con.coeffs.items():
            rows.append(r)
            cols.append(index[name])
            data.append(float(coef))
        # expr + const >= 0  =>  expr >= -const;  equality pins both sides.
        c_lb[r] = -float(con.const)
        c_ub[r] = -float(con.const) if con.equality else np.inf

    a = None
    if constraints:
        a = sparse.csc_matrix((data, (rows, cols)), shape=(len(constraints), n))
        lincon = optimize.LinearConstraint(a, c_lb, c_ub)
        res = optimize.milp(
            c,
            constraints=[lincon],
            bounds=optimize.Bounds(lb, ub),
            integrality=integrality,
            options={"node_limit": node_limit},
        )
    else:
        res = optimize.milp(
            c,
            bounds=optimize.Bounds(lb, ub),
            integrality=integrality,
            options={"node_limit": node_limit},
        )

    stats = SolveStats(lp_solves=1)
    if res.status == 2:  # infeasible
        return ILPResult(ILPStatus.INFEASIBLE, stats=stats)
    if res.status == 3:  # unbounded
        return ILPResult(ILPStatus.UNBOUNDED, stats=stats)
    if res.status == 1:
        # Iteration/node limit: must NOT be conflated with infeasibility.
        # One retry with a raised ceiling; a second failure is surfaced.
        if node_limit < 10_000_000:
            retry = solve_ilp_highs(model, objective, extra, node_limit * 100)
            retry.stats.merge(stats)
            return retry
        raise RuntimeError(
            f"HiGHS hit its work limit on a {model.num_variables}-variable model"
        )
    if res.status == 4 or not res.success or res.x is None:
        # HiGHS reports "unbounded or infeasible" without deciding which
        # (presolve shortcut).  Disambiguate with a zero-objective
        # feasibility solve: feasible + undecided => unbounded.
        if any(objective.values()):
            probe = solve_ilp_highs(model, {}, extra, node_limit)
            stats.merge(probe.stats)
            if probe.is_optimal:
                return ILPResult(ILPStatus.UNBOUNDED, stats=stats)
        return ILPResult(ILPStatus.INFEASIBLE, stats=stats)

    x = np.where(integrality > 0, np.round(res.x), res.x)
    assignment: dict[str, Fraction] = {}
    for i, name in enumerate(names):
        if integrality[i]:
            assignment[name] = Fraction(int(x[i]))
        else:
            assignment[name] = Fraction(float(x[i])).limit_denominator(10**9)

    # Verify the rounded vector in one vectorized pass (integer-rounded
    # values against integer constraint data, so 1e-6 slack is conservative).
    if np.any(x < lb - 1e-6) or np.any(x > ub + 1e-6):
        return ILPResult(ILPStatus.INFEASIBLE, stats=stats)
    if a is not None:
        vals = a @ x
        if np.any(vals < c_lb - 1e-6) or np.any(vals > c_ub + 1e-6):
            return ILPResult(ILPStatus.INFEASIBLE, stats=stats)

    obj_val = sum(
        (Fraction(coef) * assignment[name] for name, coef in objective.items()),
        Fraction(0),
    )
    return ILPResult(ILPStatus.OPTIMAL, obj_val, assignment, stats)
