"""Lexicographic minimization driver (Feautrier's ``lexmin``, paper eq. (4)).

Given an :class:`~repro.ilp.model.ILPModel` with an ``objective_order`` —
``(u, w, ..., c_sum, c_i, d_i, c_0, delta, delta_l, ...)`` in the Pluto+
formulation, eq. (8) — the driver minimizes each variable in turn, pinning
the optimum before moving to the next.  This is the standard reduction of
``lexmin`` to a sequence of single-objective ILPs.

Two backends are available, mirroring the paper's PIP/GLPK split:

* ``"exact"`` — integer-scaled simplex + branch-and-bound
  (:mod:`repro.ilp.simplex` / :mod:`repro.ilp.branch_bound`);
* ``"highs"`` — scipy/HiGHS (:mod:`repro.ilp.highs_backend`);
* ``"auto"`` — exact below :data:`AUTO_THRESHOLD` variables *and*
  :data:`AUTO_CONSTRAINT_THRESHOLD` constraints, HiGHS beyond (the paper
  switched to GLPK for models with 100+ variables, e.g. swim's 219).

The exact backend is **warm-started**: one :class:`IncrementalLP` tableau is
built (one phase 1) and persists across the whole objective sequence — after
objective ``k`` is pinned via :meth:`IncrementalLP.fix`, objective ``k+1``
re-optimizes from the previous optimal basis, and branch-and-bound cuts are
applied warm on snapshots.  Two solve-avoidance shortcuts run first:

* the driver holds a feasible assignment satisfying all fixings; when the
  next objective variable already sits at its lower bound there, its minimum
  is known and no solve is issued (most ``delta``/coefficient variables
  resolve this way);
* otherwise a *feasible-assignment probe* sets **all** remaining objective
  variables to their lower bounds at once and checks the model; if feasible,
  every remaining minimum is known and the sequence finishes with no further
  solves.

``REPRO_EXACT_LEGACY=1`` disables both the warm start and the probe (and the
Fraction reference tableau takes over underneath), reproducing the seed
solver for baseline measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Mapping, Optional, Sequence

from repro.ilp.branch_bound import ILPResult, ILPStatus, solve_ilp, solve_ilp_warm
from repro.ilp.highs_backend import solve_ilp_highs
from repro.ilp.model import ILPModel, LinearConstraint, SolveStats, legacy_exact_mode
from repro.ilp.simplex import IncrementalLP

__all__ = [
    "LexminResult",
    "lexmin",
    "pick_backend",
    "AUTO_THRESHOLD",
    "AUTO_CONSTRAINT_THRESHOLD",
]

AUTO_THRESHOLD = 80
#: beyond this many constraints the pure-Python exact simplex is too slow
AUTO_CONSTRAINT_THRESHOLD = 60

Backend = Callable[..., ILPResult]

_BACKENDS: dict[str, Backend] = {
    "exact": solve_ilp,
    "highs": solve_ilp_highs,
}


@dataclass
class LexminResult:
    status: str
    assignment: dict[str, Fraction] = field(default_factory=dict)
    values: list[Fraction] = field(default_factory=list)  # per objective var
    stats: SolveStats = field(default_factory=SolveStats)
    solves: int = 0
    backend: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status == ILPStatus.OPTIMAL

    def value_of(self, name: str) -> Fraction:
        return self.assignment[name]


def pick_backend(
    model: ILPModel,
    backend: str,
    auto_threshold: int = AUTO_THRESHOLD,
    auto_constraint_threshold: int = AUTO_CONSTRAINT_THRESHOLD,
):
    """Resolve a backend name to (callable, resolved-name).

    ``"auto"`` mirrors the paper's solver split (PIP for ordinary models,
    GLPK for large ones, e.g. swim's 219 variables): the exact backend is
    used for small models, HiGHS beyond ``auto_threshold`` variables **or**
    ``auto_constraint_threshold`` constraints — the exact simplex cost grows
    with the row count as much as with the column count, so both axes gate
    the switch.
    """
    if backend == "auto":
        small = (
            model.num_variables <= auto_threshold
            and model.num_constraints <= auto_constraint_threshold
        )
        backend = "exact" if small else "highs"
    try:
        return _BACKENDS[backend], backend
    except KeyError:
        raise ValueError(f"unknown ILP backend {backend!r}") from None


def _probe_lower_bounds(
    model: ILPModel,
    current: Mapping[str, Fraction],
    remaining: Sequence[str],
) -> Optional[dict[str, Fraction]]:
    """The feasible-assignment probe: set every remaining objective variable
    to its lower bound at once and keep everything else from ``current``.

    If that assignment satisfies the model, each remaining variable is at its
    global minimum given the fixings (the probe witnesses feasibility of all
    the lower bounds simultaneously), so the lexmin tail is decided without
    issuing another solve.  Returns the witness, or ``None``.
    """
    probe = dict(current)
    changed = False
    for name in remaining:
        var = model.variables[name]
        if var.lower is None:
            return None
        lo = Fraction(var.lower)
        if probe[name] != lo:
            probe[name] = lo
            changed = True
    if not changed:
        return None  # the per-variable shortcut already covers this
    return probe if model.check(probe) else None


def lexmin(
    model: ILPModel,
    backend: str = "auto",
    auto_threshold: int = AUTO_THRESHOLD,
    node_limit: int = 20000,
    warm_start: bool = True,
) -> LexminResult:
    """Lexicographically minimize ``model.objective_order`` over the model.

    Returns the optimal assignment (covering *all* model variables) or an
    infeasible/unbounded status.  Variables outside the objective order take
    whatever value the final solve produced.  ``warm_start=False`` forces the
    seed's cold-start sequence on the exact backend (used by the equivalence
    tests and the solver baseline bench).
    """
    if not model.objective_order:
        raise ValueError("model has no objective order set")
    solve, backend_name = pick_backend(model, backend, auto_threshold)
    if backend_name == "exact" and warm_start and not legacy_exact_mode():
        return _lexmin_exact_warm(model, node_limit)
    return _lexmin_cold(model, solve, backend_name, node_limit)


def _lexmin_cold(
    model: ILPModel, solve: Backend, backend_name: str, node_limit: int
) -> LexminResult:
    """One cold solve per objective (any backend); still applies the
    at-lower-bound shortcut and, unless in legacy mode, the probe."""
    stats = SolveStats()
    use_probe = not legacy_exact_mode()
    fixings: list[LinearConstraint] = []
    values: list[Fraction] = []
    current: Optional[dict[str, Fraction]] = None
    solves = 0

    order = model.objective_order
    k = 0
    while k < len(order):
        name = order[k]
        var = model.variables[name]
        if (
            current is not None
            and var.lower is not None
            and current[name] == var.lower
        ):
            # Already at its lower bound in a feasible assignment: optimal.
            value = Fraction(var.lower)
            stats.shortcut_hits += 1
        else:
            if use_probe and current is not None:
                probe = _probe_lower_bounds(model, current, order[k:])
                if probe is not None:
                    stats.probe_hits += 1
                    current = probe
                    values.extend(
                        Fraction(model.variables[n].lower) for n in order[k:]
                    )
                    break
            result = solve(model, {name: 1}, extra=tuple(fixings), node_limit=node_limit)
            solves += 1
            stats.merge(result.stats)
            if not result.is_optimal:
                return LexminResult(
                    result.status, stats=stats, solves=solves, backend=backend_name
                )
            value = result.objective
            current = result.assignment
        values.append(value)
        fixings.append(
            LinearConstraint({name: 1}, -value, equality=True, label=f"fix:{name}")
        )
        k += 1

    assert current is not None
    # Re-pin the recorded values (the last solve may predate later implicit
    # lower-bound fixings, but those were taken *from* ``current`` so it is
    # consistent by construction).
    for name, value in zip(order, values):
        current[name] = value
    return LexminResult(
        ILPStatus.OPTIMAL,
        dict(current),
        values,
        stats,
        solves,
        backend_name,
    )


def _lexmin_exact_warm(model: ILPModel, node_limit: int) -> LexminResult:
    """The exact backend's fast path: one persistent tableau, warm phase 2
    per objective, warm branch-and-bound when a relaxation is fractional."""
    stats = SolveStats()
    inc = IncrementalLP(model)
    stats.lp_solves += 1  # the shared phase 1
    stats.simplex_pivots += inc.pivots
    if not inc.is_feasible:
        return LexminResult(
            ILPStatus.INFEASIBLE, stats=stats, solves=1, backend="exact"
        )

    values: list[Fraction] = []
    current: Optional[dict[str, Fraction]] = None
    solves = 0
    order = model.objective_order
    k = 0
    while k < len(order):
        name = order[k]
        var = model.variables[name]
        if (
            current is not None
            and var.lower is not None
            and current[name] == var.lower
        ):
            value = Fraction(var.lower)
            stats.shortcut_hits += 1
        else:
            if current is not None:
                probe = _probe_lower_bounds(model, current, order[k:])
                if probe is not None:
                    stats.probe_hits += 1
                    current = probe
                    values.extend(
                        Fraction(model.variables[n].lower) for n in order[k:]
                    )
                    break
            result, at_root = solve_ilp_warm(inc, model, {name: 1}, node_limit)
            solves += 1
            stats.merge(result.stats)
            if at_root:
                stats.warm_starts += 1
            if not result.is_optimal:
                return LexminResult(
                    result.status, stats=stats, solves=solves, backend="exact"
                )
            value = result.objective
            current = result.assignment
        before = inc.pivots
        if not inc.fix(name, value):  # pragma: no cover - value is feasible
            return LexminResult(
                ILPStatus.INFEASIBLE, stats=stats, solves=solves, backend="exact"
            )
        stats.simplex_pivots += inc.pivots - before
        values.append(value)
        k += 1

    assert current is not None
    for name, value in zip(order, values):
        current[name] = value
    return LexminResult(
        ILPStatus.OPTIMAL,
        dict(current),
        values,
        stats,
        solves,
        backend="exact",
    )
