"""Lexicographic minimization driver (Feautrier's ``lexmin``, paper eq. (4)).

Given an :class:`~repro.ilp.model.ILPModel` with an ``objective_order`` —
``(u, w, ..., c_sum, c_i, d_i, c_0, delta, delta_l, ...)`` in the Pluto+
formulation, eq. (8) — the driver minimizes each variable in turn, pinning
the optimum before moving to the next.  This is the standard reduction of
``lexmin`` to a sequence of single-objective ILPs.

Two backends are available, mirroring the paper's PIP/GLPK split:

* ``"exact"`` — rational simplex + branch-and-bound (:mod:`repro.ilp.branch_bound`);
* ``"highs"`` — scipy/HiGHS (:mod:`repro.ilp.highs_backend`);
* ``"auto"`` — exact below ``auto_threshold`` variables, HiGHS above (the
  paper switched to GLPK for models with 100+ variables, e.g. swim's 219).

A cheap but important shortcut: after each step the driver holds a feasible
assignment satisfying all fixings; when the next objective variable already
sits at its lower bound in that assignment, its minimum is known and no solve
is issued.  Most ``delta``/coefficient variables resolve this way, which keeps
the sequential scheme fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Mapping, Optional, Sequence

from repro.ilp.branch_bound import ILPResult, ILPStatus, solve_ilp
from repro.ilp.highs_backend import solve_ilp_highs
from repro.ilp.model import ILPModel, LinearConstraint, SolveStats

__all__ = ["LexminResult", "lexmin", "AUTO_THRESHOLD"]

AUTO_THRESHOLD = 80
#: beyond this many constraints the pure-Python exact simplex is too slow
AUTO_CONSTRAINT_THRESHOLD = 60

Backend = Callable[..., ILPResult]

_BACKENDS: dict[str, Backend] = {
    "exact": solve_ilp,
    "highs": solve_ilp_highs,
}


@dataclass
class LexminResult:
    status: str
    assignment: dict[str, Fraction] = field(default_factory=dict)
    values: list[Fraction] = field(default_factory=list)  # per objective var
    stats: SolveStats = field(default_factory=SolveStats)
    solves: int = 0
    backend: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status == ILPStatus.OPTIMAL

    def value_of(self, name: str) -> Fraction:
        return self.assignment[name]


def pick_backend(model: ILPModel, backend: str, auto_threshold: int = AUTO_THRESHOLD):
    """Resolve a backend name to (callable, resolved-name).

    ``"auto"`` mirrors the paper's solver split (PIP for ordinary models,
    GLPK for large ones, e.g. swim's 219 variables): the exact backend is
    used for small models, HiGHS beyond ``auto_threshold`` variables or
    :data:`AUTO_CONSTRAINT_THRESHOLD` constraints.
    """
    if backend == "auto":
        small = (
            model.num_variables <= auto_threshold
            and model.num_constraints <= AUTO_CONSTRAINT_THRESHOLD
        )
        backend = "exact" if small else "highs"
    try:
        return _BACKENDS[backend], backend
    except KeyError:
        raise ValueError(f"unknown ILP backend {backend!r}") from None


def lexmin(
    model: ILPModel,
    backend: str = "auto",
    auto_threshold: int = AUTO_THRESHOLD,
    node_limit: int = 20000,
) -> LexminResult:
    """Lexicographically minimize ``model.objective_order`` over the model.

    Returns the optimal assignment (covering *all* model variables) or an
    infeasible/unbounded status.  Variables outside the objective order take
    whatever value the final solve produced.
    """
    if not model.objective_order:
        raise ValueError("model has no objective order set")
    solve, backend_name = pick_backend(model, backend, auto_threshold)

    stats = SolveStats()
    fixings: list[LinearConstraint] = []
    values: list[Fraction] = []
    current: Optional[dict[str, Fraction]] = None
    solves = 0

    for name in model.objective_order:
        var = model.variables[name]
        if (
            current is not None
            and var.lower is not None
            and current[name] == var.lower
        ):
            # Already at its lower bound in a feasible assignment: optimal.
            value = Fraction(var.lower)
        else:
            result = solve(model, {name: 1}, extra=tuple(fixings), node_limit=node_limit)
            solves += 1
            stats.merge(result.stats)
            if not result.is_optimal:
                return LexminResult(
                    result.status, stats=stats, solves=solves, backend=backend_name
                )
            value = result.objective
            current = result.assignment
        values.append(value)
        fixings.append(
            LinearConstraint({name: 1}, -value, equality=True, label=f"fix:{name}")
        )

    assert current is not None
    # Re-pin the recorded values (the last solve may predate later implicit
    # lower-bound fixings, but those were taken *from* ``current`` so it is
    # consistent by construction).
    for name, value in zip(model.objective_order, values):
        current[name] = value
    return LexminResult(
        ILPStatus.OPTIMAL,
        dict(current),
        values,
        stats,
        solves,
        backend_name,
    )
