"""Exact two-phase primal simplex over integer-scaled rows.

This is the reproduction's stand-in for PIP's exact LP core.  Every tableau
row is kept as a sparse integer vector with one shared positive denominator
(``row / den``), gcd-normalized after each pivot, so arithmetic stays exact
without paying :class:`fractions.Fraction` overhead on every entry.  Pivot
selection is Dantzig's rule (most negative reduced cost) with an automatic
fallback to Bland's rule after a run of degenerate pivots, which preserves
the termination guarantee while pivoting far less on scheduler models.

Two entry points:

* :func:`solve_lp` — one-shot solve of an :class:`~repro.ilp.model.ILPModel`
  relaxation (integrality flags ignored), used by branch-and-bound;
* :class:`IncrementalLP` — a persistent standard-form tableau supporting
  ``minimize`` / ``fix`` cycles, which is what lets the lexmin driver
  warm-start each objective from the previous optimal basis instead of
  re-running phase 1 from scratch.

The seed's dense ``Fraction`` tableau is retained as a reference engine
(``engine="fraction"``, or globally via ``REPRO_EXACT_LEGACY=1``): the
property tests pin the integer-scaled pivoting against it, and the solver
baseline bench uses it to measure the speedup over the seed solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Mapping, Optional, Sequence

from repro.ilp.model import ILPModel, LinearConstraint, legacy_exact_mode

__all__ = ["LPResult", "LPStatus", "solve_lp", "IncrementalLP"]

_ZERO = Fraction(0)
_ONE = Fraction(1)

#: consecutive degenerate pivots before Dantzig's rule yields to Bland's
STALL_LIMIT = 24


class LPStatus:
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass
class LPResult:
    status: str
    objective: Optional[Fraction] = None
    assignment: dict[str, Fraction] = field(default_factory=dict)
    pivots: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status == LPStatus.OPTIMAL


# ---------------------------------------------------------------------------
# Integer-scaled sparse tableau
# ---------------------------------------------------------------------------


class _IntTableau:
    """Sparse tableau whose row ``i`` represents ``rows[i] / dens[i]``.

    ``rows[i]`` maps column index to an integer numerator (zeros absent),
    ``rhs[i]`` is the integer right-hand-side numerator, and ``dens[i] > 0``
    is the row's shared denominator.  The basis invariant is the usual one:
    the column of ``basis[i]`` is a unit vector with its 1 in row ``i``.
    """

    def __init__(
        self,
        rows: list[dict[int, int]],
        rhs: list[int],
        dens: list[int],
        basis: list[int],
    ):
        self.rows = rows
        self.rhs = rhs
        self.dens = dens
        self.basis = basis
        self.pivots = 0
        # Reduced-cost row carried through pivots while ``run`` is active
        # (``obj / obj_den``): pricing is then O(nnz) per iteration instead
        # of an O(m * nnz) recomputation.
        self.obj: Optional[dict[int, int]] = None
        self.obj_den = 1

    def _normalize(self, i: int) -> None:
        g = self.dens[i]
        for v in self.rows[i].values():
            g = gcd(g, abs(v))
            if g == 1:
                return
        g = gcd(g, abs(self.rhs[i]))
        if g > 1:
            self.rows[i] = {j: v // g for j, v in self.rows[i].items()}
            self.rhs[i] //= g
            self.dens[i] //= g

    def pivot(self, r: int, c: int) -> None:
        rows, rhs, dens = self.rows, self.rhs, self.dens
        prow = rows[r]
        p = prow[c]
        prhs = rhs[r]
        for i in range(len(rows)):
            if i == r:
                continue
            f = rows[i].get(c)
            if not f:
                continue
            row = rows[i]
            new = {j: a * p for j, a in row.items()}
            for j, b in prow.items():
                v = new.get(j, 0) - f * b
                if v:
                    new[j] = v
                else:
                    new.pop(j, None)
            nrhs = rhs[i] * p - f * prhs
            nden = dens[i] * p
            if nden < 0:
                nden = -nden
                nrhs = -nrhs
                new = {j: -v for j, v in new.items()}
            rows[i], rhs[i], dens[i] = new, nrhs, nden
            self._normalize(i)
        if self.obj is not None:
            f = self.obj.get(c)
            if f:
                obj = self.obj
                new = {j: a * p for j, a in obj.items()}
                for j, b in prow.items():
                    v = new.get(j, 0) - f * b
                    if v:
                        new[j] = v
                    else:
                        new.pop(j, None)
                nden = self.obj_den * p
                if nden < 0:
                    nden = -nden
                    new = {j: -v for j, v in new.items()}
                g = nden
                for v in new.values():
                    g = gcd(g, abs(v))
                    if g == 1:
                        break
                if g > 1:
                    new = {j: v // g for j, v in new.items()}
                    nden //= g
                self.obj, self.obj_den = new, nden
        # The pivot row itself becomes ``prow / p`` (its old denominator
        # cancels); keep the stored denominator positive.
        if p < 0:
            rows[r] = {j: -v for j, v in prow.items()}
            rhs[r] = -prhs
            dens[r] = -p
        else:
            dens[r] = p
        self.basis[r] = c
        self._normalize(r)
        self.pivots += 1

    def reduced_costs(self, cost: Mapping[int, Fraction]) -> dict[int, Fraction]:
        """``c_j - c_B . B^-1 A_j`` over the columns where it is nonzero."""
        red: dict[int, Fraction] = {j: v for j, v in cost.items() if v}
        for i, b in enumerate(self.basis):
            cb = cost.get(b)
            if not cb:
                continue
            di = self.dens[i]
            for j, a in self.rows[i].items():
                v = red.get(j, _ZERO) - cb * Fraction(a, di)
                if v:
                    red[j] = v
                else:
                    red.pop(j, None)
        return red

    def objective_value(self, cost: Mapping[int, Fraction]) -> Fraction:
        total = _ZERO
        for i, b in enumerate(self.basis):
            cb = cost.get(b)
            if cb:
                total += cb * Fraction(self.rhs[i], self.dens[i])
        return total

    def solution_value(self, col: int) -> Fraction:
        for i, b in enumerate(self.basis):
            if b == col:
                return Fraction(self.rhs[i], self.dens[i])
        return _ZERO

    def run(
        self, cost: Mapping[int, Fraction], blocked: Optional[set[int]] = None
    ) -> str:
        """Minimize ``cost . x``; Dantzig's rule, Bland's on stalling.

        Reduced costs are computed once up front, then carried as an extra
        tableau row (``self.obj``) updated by each pivot — all entries share
        ``obj_den > 0``, so sign tests and Dantzig comparisons stay on plain
        integers.
        """
        red = self.reduced_costs(cost)
        den = 1
        for v in red.values():
            den = _lcm(den, v.denominator)
        self.obj = {j: int(v * den) for j, v in red.items()}
        self.obj_den = den
        try:
            return self._run_priced(blocked)
        finally:
            self.obj = None
            self.obj_den = 1

    def _run_priced(self, blocked: Optional[set[int]]) -> str:
        stall = 0
        bland = False
        while True:
            obj = self.obj
            assert obj is not None
            entering = -1
            if bland:
                for j, v in obj.items():
                    if v < 0 and (blocked is None or j not in blocked):
                        if entering < 0 or j < entering:
                            entering = j
            else:
                best: Optional[int] = None
                for j, v in obj.items():
                    if v < 0 and (blocked is None or j not in blocked):
                        if best is None or v < best or (v == best and j < entering):
                            best = v
                            entering = j
            if entering < 0:
                return LPStatus.OPTIMAL
            # Ratio test (row denominators cancel); Bland tie-break on the
            # smallest basic column index.
            leaving = -1
            best_ratio: Optional[Fraction] = None
            for i, row in enumerate(self.rows):
                a = row.get(entering, 0)
                if a > 0:
                    ratio = Fraction(self.rhs[i], a)
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and self.basis[i] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving < 0:
                return LPStatus.UNBOUNDED
            self.pivot(leaving, entering)
            if best_ratio == 0:
                stall += 1
                if stall >= STALL_LIMIT:
                    bland = True
            else:
                stall = 0
                bland = False


# ---------------------------------------------------------------------------
# Standard form (sparse, integer)
# ---------------------------------------------------------------------------


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)


class _StandardForm:
    """Map model variables to non-negative standard-form columns.

    * lower-bounded ``x >= l``: substitute ``x = l + y``;
    * upper-only ``x <= u``: substitute ``x = u - y``;
    * free: split ``x = y+ - y-``.

    An upper bound on a lower-bounded variable adds the row ``u - x >= 0``.
    """

    def __init__(self, model: ILPModel):
        self.col_names: list[str] = []
        self.var_map: dict[str, tuple] = {}
        self.bound_rows: list[LinearConstraint] = []
        for var in model.variables.values():
            if var.lower is not None:
                col = self._col(var.name)
                self.var_map[var.name] = ("shift", col, Fraction(var.lower))
                if var.upper is not None:
                    self.bound_rows.append(
                        LinearConstraint({var.name: -1}, var.upper, label="ub")
                    )
            elif var.upper is not None:
                col = self._col(var.name + "~neg")
                self.var_map[var.name] = ("neg", col, Fraction(var.upper))
            else:
                cp = self._col(var.name + "~p")
                cm = self._col(var.name + "~m")
                self.var_map[var.name] = ("split", cp, cm)
        self.structural = len(self.col_names)

    def _col(self, name: str) -> int:
        self.col_names.append(name)
        return len(self.col_names) - 1

    def row_for(
        self, coeffs: Mapping[str, int | Fraction], const: int | Fraction
    ) -> tuple[dict[int, int], int, int]:
        """Translate ``expr + const (>=|==) 0`` to ``(row, rhs, den)`` ints."""
        row: dict[int, Fraction] = {}

        def bump(col: int, v: Fraction) -> None:
            nv = row.get(col, _ZERO) + v
            if nv:
                row[col] = nv
            else:
                row.pop(col, None)

        rhs = -Fraction(const)  # expr + const >= 0  =>  expr >= -const
        for name, coef in coeffs.items():
            coef = Fraction(coef)
            kind = self.var_map[name]
            if kind[0] == "shift":
                bump(kind[1], coef)
                rhs -= coef * kind[2]
            elif kind[0] == "neg":
                bump(kind[1], -coef)
                rhs -= coef * kind[2]
            else:
                bump(kind[1], coef)
                bump(kind[2], -coef)
        den = rhs.denominator
        for v in row.values():
            den = _lcm(den, v.denominator)
        introw = {j: int(v * den) for j, v in row.items()}
        return introw, int(rhs * den), den

    def cost_for(self, objective: Mapping[str, int | Fraction]) -> dict[int, Fraction]:
        cost: dict[int, Fraction] = {}
        for name, coef in objective.items():
            coef = Fraction(coef)
            if not coef:
                continue
            kind = self.var_map[name]
            if kind[0] == "shift":
                cost[kind[1]] = cost.get(kind[1], _ZERO) + coef
            elif kind[0] == "neg":
                cost[kind[1]] = cost.get(kind[1], _ZERO) - coef
            else:
                cost[kind[1]] = cost.get(kind[1], _ZERO) + coef
                cost[kind[2]] = cost.get(kind[2], _ZERO) - coef
        return cost

    def recover(self, value_of) -> dict[str, Fraction]:
        out: dict[str, Fraction] = {}
        for name, kind in self.var_map.items():
            if kind[0] == "shift":
                out[name] = value_of(kind[1]) + kind[2]
            elif kind[0] == "neg":
                out[name] = kind[2] - value_of(kind[1])
            else:
                out[name] = value_of(kind[1]) - value_of(kind[2])
        return out


# ---------------------------------------------------------------------------
# Incremental solver (warm-startable)
# ---------------------------------------------------------------------------


class IncrementalLP:
    """A standard-form tableau that persists across a lexmin sequence.

    Construction runs phase 1 once; :meth:`minimize` then runs phase 2 for
    any objective from the current basis, and :meth:`fix` appends an
    equality pinning a model variable to a value, re-using the basis (a
    single-row phase 1 only when the current basic solution violates the new
    row, which never happens when fixing the optimum just computed).
    """

    def __init__(self, model: ILPModel, extra: Sequence[LinearConstraint] = ()):
        self.model = model
        self.sf = _StandardForm(model)
        sf = self.sf
        raw: list[tuple[dict[int, int], int, int, bool]] = []
        for con in list(model.constraints) + list(extra) + sf.bound_rows:
            row, rhs, den = sf.row_for(con.coeffs, con.const)
            raw.append((row, rhs, den, con.equality))

        # One surplus column per inequality row, then normalize signs so every
        # rhs is non-negative; rows whose surplus survives with +1 coefficient
        # seed the basis, the rest get artificials.
        ncols = sf.structural
        rows: list[dict[int, int]] = []
        rhs: list[int] = []
        dens: list[int] = []
        basis: list[int] = []
        art_cols: list[int] = []
        pending_basis: list[Optional[int]] = []
        for row, b, den, equality in raw:
            if not equality:
                sc = ncols
                ncols += 1
                row = dict(row)
                row[sc] = -den  # expr - s = rhs (surplus form)
            else:
                sc = None
            if b < 0:
                row = {j: -v for j, v in row.items()}
                b = -b
                slack_sign = 1
            else:
                slack_sign = -1
            rows.append(row)
            rhs.append(b)
            dens.append(den)
            pending_basis.append(sc if (sc is not None and slack_sign == 1) else None)
        for i, sc in enumerate(pending_basis):
            if sc is not None:
                basis.append(sc)
            else:
                art = ncols
                ncols += 1
                rows[i][art] = dens[i]
                art_cols.append(art)
                basis.append(art)
        self.ncols = ncols
        self.blocked: set[int] = set()
        self.tab = _IntTableau(rows, rhs, dens, basis)
        self.status = LPStatus.OPTIMAL

        if art_cols:
            phase1 = {c: _ONE for c in art_cols}
            status = self.tab.run(phase1)
            if status != LPStatus.OPTIMAL or self.tab.objective_value(phase1) != 0:
                self.status = LPStatus.INFEASIBLE
                return
            self._drive_out(set(art_cols))
            self.blocked = set(art_cols)

    @property
    def pivots(self) -> int:
        return self.tab.pivots

    @property
    def is_feasible(self) -> bool:
        return self.status == LPStatus.OPTIMAL

    def _drive_out(self, arts: set[int]) -> None:
        """Pivot basic artificials (all at value zero) out where possible; a
        row with no eligible nonzero is redundant and keeps its artificial
        harmlessly at zero."""
        tab = self.tab
        for i, b in enumerate(tab.basis):
            if b in arts:
                entering = next(
                    (
                        j
                        for j in sorted(tab.rows[i])
                        if j not in arts and j not in self.blocked and tab.rows[i][j]
                    ),
                    None,
                )
                if entering is not None:
                    tab.pivot(i, entering)

    def minimize(self, objective: Mapping[str, int | Fraction]) -> LPResult:
        """Phase-2 run from the current basis.  Leaves the optimal basis in
        place so a subsequent ``fix``/``minimize`` warm-starts from it."""
        if not self.is_feasible:
            return LPResult(LPStatus.INFEASIBLE, pivots=self.tab.pivots)
        for name in objective:
            if name not in self.model.variables:
                raise KeyError(f"objective references unknown variable {name!r}")
        cost = self.sf.cost_for(objective)
        before = self.tab.pivots
        status = self.tab.run(cost, blocked=self.blocked or None)
        spent = self.tab.pivots - before
        if status == LPStatus.UNBOUNDED:
            return LPResult(LPStatus.UNBOUNDED, pivots=spent)
        assignment = self.assignment()
        obj_val = sum(
            (Fraction(c) * assignment[n] for n, c in objective.items()), _ZERO
        )
        return LPResult(LPStatus.OPTIMAL, obj_val, assignment, spent)

    def assignment(self) -> dict[str, Fraction]:
        values: dict[int, Fraction] = {}
        for i, b in enumerate(self.tab.basis):
            values[b] = Fraction(self.tab.rhs[i], self.tab.dens[i])
        return self.sf.recover(lambda c: values.get(c, _ZERO))

    def fix(self, name: str, value: int | Fraction) -> bool:
        """Append ``name == value`` and restore feasibility in place.

        Returns False (and flips the solver infeasible) if the fix cannot be
        satisfied — callers fixing a just-computed optimum never see that.
        """
        return self.add_constraint(
            LinearConstraint({name: 1}, -Fraction(value), equality=True)
        )

    def add_constraint(self, con: LinearConstraint) -> bool:
        """Append one row warm: the current basis is kept, and feasibility is
        restored with a single-artificial phase 1 only when the current basic
        solution violates the new row (branch-and-bound cuts, fixes after an
        integer fallback).  Returns False if the row is unsatisfiable."""
        if not self.is_feasible:
            return False
        tab = self.tab
        introw, irhs, _den = self.sf.row_for(con.coeffs, con.const)
        # Express the new row in the current basis: basic columns are unit
        # vectors, so one sweep over the rows eliminates them all.
        work: dict[int, Fraction] = {j: Fraction(v) for j, v in introw.items()}
        r = Fraction(irhs)
        for i, b in enumerate(tab.basis):
            f = work.get(b)
            if not f:
                continue
            di = tab.dens[i]
            for j, a in tab.rows[i].items():
                nv = work.get(j, _ZERO) - f * Fraction(a, di)
                if nv:
                    work[j] = nv
                else:
                    work.pop(j, None)
            r -= f * Fraction(tab.rhs[i], di)

        surplus: Optional[int] = None
        if not con.equality:
            # expr - s = rhs with s >= 0; at the current point s = -r, so the
            # row is violated exactly when r > 0.
            surplus = self.ncols
            self.ncols += 1
        violated = r > 0 if not con.equality else r != 0
        if not con.equality and r <= 0:
            # Satisfied: negate so the surplus enters the basis at value -r.
            r = -r
            work = {j: -v for j, v in work.items()}
            s_sign = 1
        else:
            s_sign = -1
        if con.equality and r < 0:
            r = -r
            work = {j: -v for j, v in work.items()}
        den = r.denominator
        for v in work.values():
            den = _lcm(den, v.denominator)
        new_row = {j: int(v * den) for j, v in work.items()}
        if surplus is not None:
            new_row[surplus] = s_sign * den
        if violated or con.equality:
            art = self.ncols
            self.ncols += 1
            new_row[art] = den
            basic_col = art
        else:
            art = None
            basic_col = surplus
        tab.rows.append(new_row)
        tab.rhs.append(int(r * den))
        tab.dens.append(den)
        tab.basis.append(basic_col)
        tab._normalize(len(tab.rows) - 1)
        if art is not None and violated:
            status = tab.run({art: _ONE}, blocked=self.blocked or None)
            if status != LPStatus.OPTIMAL or tab.solution_value(art) != 0:
                self.status = LPStatus.INFEASIBLE
                return False
        if art is not None:
            self.blocked.add(art)
            self._drive_out({art})
        return True

    def snapshot(self) -> tuple:
        """Capture the tableau for branch-and-bound backtracking (the pivot
        counter is deliberately not captured: it keeps counting work)."""
        tab = self.tab
        return (
            [dict(r) for r in tab.rows],
            list(tab.rhs),
            list(tab.dens),
            list(tab.basis),
            set(self.blocked),
            self.ncols,
            self.status,
        )

    def restore(self, snap: tuple) -> None:
        rows, rhs, dens, basis, blocked, ncols, status = snap
        tab = self.tab
        tab.rows = [dict(r) for r in rows]
        tab.rhs = list(rhs)
        tab.dens = list(dens)
        tab.basis = list(basis)
        self.blocked = set(blocked)
        self.ncols = ncols
        self.status = status


# ---------------------------------------------------------------------------
# Reference engine: the seed's dense Fraction tableau
# ---------------------------------------------------------------------------


class _FractionTableau:
    """Dense simplex tableau ``[A | b]`` over :class:`Fraction` (seed
    implementation, Bland's rule throughout; kept as the reference the
    integer-scaled engine is property-tested against)."""

    def __init__(self, rows: list[list[Fraction]], basis: list[int], ncols: int):
        self.rows = rows          # m rows, each of length ncols + 1 (rhs last)
        self.basis = basis        # basis[i] = column basic in row i
        self.ncols = ncols
        self.pivots = 0

    def pivot(self, r: int, c: int) -> None:
        rows = self.rows
        prow = rows[r]
        pv = prow[c]
        inv = _ONE / pv
        rows[r] = prow = [x * inv for x in prow]
        for i, row in enumerate(rows):
            if i == r:
                continue
            f = row[c]
            if f != 0:
                rows[i] = [a - f * b for a, b in zip(row, prow)]
        self.basis[r] = c
        self.pivots += 1

    def reduced_costs(self, cost: list[Fraction]) -> list[Fraction]:
        red = list(cost)
        for i, b in enumerate(self.basis):
            ci = cost[b]
            if ci == 0:
                continue
            row = self.rows[i]
            for j in range(self.ncols):
                if row[j] != 0:
                    red[j] -= ci * row[j]
        return red

    def objective_value(self, cost: list[Fraction]) -> Fraction:
        total = _ZERO
        for i, b in enumerate(self.basis):
            if cost[b] != 0:
                total += cost[b] * self.rows[i][self.ncols]
        return total

    def run(self, cost: list[Fraction], allowed_cols: Optional[set[int]] = None) -> str:
        n = self.ncols
        while True:
            red = self.reduced_costs(cost)
            entering = -1
            for j in range(n):
                if allowed_cols is not None and j not in allowed_cols:
                    continue
                if red[j] < 0:
                    entering = j
                    break
            if entering < 0:
                return LPStatus.OPTIMAL
            leaving = -1
            best_ratio: Optional[Fraction] = None
            for i, row in enumerate(self.rows):
                a = row[entering]
                if a > 0:
                    ratio = row[n] / a
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and self.basis[i] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving < 0:
                return LPStatus.UNBOUNDED
            self.pivot(leaving, entering)


def _solve_lp_fraction(
    model: ILPModel,
    objective: Mapping[str, int | Fraction],
    extra: Sequence[LinearConstraint] = (),
) -> LPResult:
    """The seed solver: dense Fraction tableau built from scratch."""
    sf = _StandardForm(model)
    raw = []
    for con in list(model.constraints) + list(extra) + sf.bound_rows:
        row, rhs, den = sf.row_for(con.coeffs, con.const)
        raw.append((row, rhs, den, con.equality))

    structural = sf.structural
    n_slacks = sum(1 for _, _, _, eq in raw if not eq)
    ncols = structural + n_slacks
    rows: list[list[Fraction]] = []
    slack_at = structural
    row_slack_col: list[Optional[int]] = []
    for row, rhs, den, equality in raw:
        full = [_ZERO] * ncols + [Fraction(rhs, den)]
        for j, v in row.items():
            full[j] = Fraction(v, den)
        if not equality:
            full[slack_at] = Fraction(-1)
            row_slack_col.append(slack_at)
            slack_at += 1
        else:
            row_slack_col.append(None)
        if full[ncols] < 0:
            full = [-x for x in full]
        rows.append(full)

    m = len(rows)
    basis = [-1] * m
    art_cols: list[int] = []
    total_cols = ncols
    for i in range(m):
        sc = row_slack_col[i]
        if sc is not None and rows[i][sc] == 1:
            basis[i] = sc
    for i in range(m):
        if basis[i] >= 0:
            continue
        for row in rows:
            row.insert(total_cols, _ZERO)
        rows[i][total_cols] = _ONE
        art_cols.append(total_cols)
        basis[i] = total_cols
        total_cols += 1

    tab = _FractionTableau(rows, basis, total_cols)
    allowed: Optional[set[int]] = None
    if art_cols:
        phase1_cost = [_ZERO] * total_cols
        for c in art_cols:
            phase1_cost[c] = _ONE
        status = tab.run(phase1_cost)
        if status != LPStatus.OPTIMAL or tab.objective_value(phase1_cost) != 0:
            return LPResult(LPStatus.INFEASIBLE, pivots=tab.pivots)
        art_set = set(art_cols)
        for i in range(m):
            if tab.basis[i] in art_set:
                row = tab.rows[i]
                entering = next((j for j in range(ncols) if row[j] != 0), None)
                if entering is not None:
                    tab.pivot(i, entering)
        allowed = set(range(total_cols)) - art_set

    cost = [_ZERO] * total_cols
    col_cost = sf.cost_for(objective)
    for j, coef in col_cost.items():
        cost[j] = coef
    status = tab.run(cost, allowed_cols=allowed)
    if status == LPStatus.UNBOUNDED:
        return LPResult(LPStatus.UNBOUNDED, pivots=tab.pivots)

    solution = [_ZERO] * total_cols
    for i in range(m):
        solution[tab.basis[i]] = tab.rows[i][tab.ncols]
    assignment = sf.recover(lambda c: solution[c])
    obj_val = sum((Fraction(c) * assignment[n] for n, c in objective.items()), _ZERO)
    return LPResult(LPStatus.OPTIMAL, obj_val, assignment, tab.pivots)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def solve_lp(
    model: ILPModel,
    objective: Mapping[str, int | Fraction],
    extra: Sequence[LinearConstraint] = (),
    engine: Optional[str] = None,
) -> LPResult:
    """Minimize ``objective . x`` subject to the model's constraints and bounds.

    Integer flags are ignored (LP relaxation).  ``engine`` selects the
    integer-scaled tableau (``"int"``, default) or the seed's dense Fraction
    tableau (``"fraction"``); ``REPRO_EXACT_LEGACY=1`` flips the default to
    the latter for baseline measurements.
    """
    for name in objective:
        if name not in model.variables:
            raise KeyError(f"objective references unknown variable {name!r}")
    if engine is None:
        engine = "fraction" if legacy_exact_mode() else "int"
    if engine == "fraction":
        return _solve_lp_fraction(model, objective, extra)
    if engine != "int":
        raise ValueError(f"unknown simplex engine {engine!r}")
    inc = IncrementalLP(model, extra)
    if not inc.is_feasible:
        return LPResult(LPStatus.INFEASIBLE, pivots=inc.pivots)
    result = inc.minimize(objective)
    result.pivots = inc.pivots
    return result
