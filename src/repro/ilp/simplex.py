"""Exact two-phase primal simplex over rational arithmetic.

This is the reproduction's stand-in for PIP's exact LP core: every pivot is
performed with :class:`fractions.Fraction`, so results are exact and the
branch-and-bound layer above (:mod:`repro.ilp.branch_bound`) never has to
reason about floating-point tolerances.  Bland's rule is used throughout,
which guarantees termination (no cycling).

The entry point is :func:`solve_lp`, which takes an
:class:`~repro.ilp.model.ILPModel` (bounds and constraints), an objective as a
``{var: coeff}`` mapping, and optional extra constraints (used by
branch-and-bound for branching cuts).  Integrality flags on the model are
ignored here — this is the relaxation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Optional, Sequence

from repro.ilp.model import ILPModel, LinearConstraint

__all__ = ["LPResult", "LPStatus", "solve_lp"]

_ZERO = Fraction(0)
_ONE = Fraction(1)


class LPStatus:
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass
class LPResult:
    status: str
    objective: Optional[Fraction] = None
    assignment: dict[str, Fraction] = field(default_factory=dict)
    pivots: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status == LPStatus.OPTIMAL


class _Tableau:
    """Dense simplex tableau ``[A | b]`` with an explicit basis."""

    def __init__(self, rows: list[list[Fraction]], basis: list[int], ncols: int):
        self.rows = rows          # m rows, each of length ncols + 1 (rhs last)
        self.basis = basis        # basis[i] = column basic in row i
        self.ncols = ncols
        self.pivots = 0

    def pivot(self, r: int, c: int) -> None:
        rows = self.rows
        prow = rows[r]
        pv = prow[c]
        inv = _ONE / pv
        rows[r] = prow = [x * inv for x in prow]
        for i, row in enumerate(rows):
            if i == r:
                continue
            f = row[c]
            if f != 0:
                rows[i] = [a - f * b for a, b in zip(row, prow)]
        self.basis[r] = c
        self.pivots += 1

    def reduced_costs(self, cost: list[Fraction]) -> list[Fraction]:
        """``c_j - c_B . B^-1 A_j`` for every column (rhs column excluded)."""
        red = list(cost)
        for i, b in enumerate(self.basis):
            ci = cost[b]
            if ci == 0:
                continue
            row = self.rows[i]
            for j in range(self.ncols):
                if row[j] != 0:
                    red[j] -= ci * row[j]
        return red

    def objective_value(self, cost: list[Fraction]) -> Fraction:
        total = _ZERO
        for i, b in enumerate(self.basis):
            if cost[b] != 0:
                total += cost[b] * self.rows[i][self.ncols]
        return total

    def run(self, cost: list[Fraction], allowed_cols: Optional[set[int]] = None) -> str:
        """Minimize ``cost . x`` with Bland's rule.  Returns a status string."""
        n = self.ncols
        while True:
            red = self.reduced_costs(cost)
            entering = -1
            for j in range(n):
                if allowed_cols is not None and j not in allowed_cols:
                    continue
                if red[j] < 0:
                    entering = j
                    break
            if entering < 0:
                return LPStatus.OPTIMAL
            # Ratio test; Bland tie-break on smallest basis column index.
            leaving = -1
            best_ratio: Optional[Fraction] = None
            for i, row in enumerate(self.rows):
                a = row[entering]
                if a > 0:
                    ratio = row[n] / a
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and self.basis[i] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving < 0:
                return LPStatus.UNBOUNDED
            self.pivot(leaving, entering)


def _standard_form(model: ILPModel, extra: Sequence[LinearConstraint]):
    """Translate the model to ``A y = b`` with ``y >= 0`` and ``b >= 0``.

    Variable handling:

    * lower-bounded ``x >= l``: substitute ``x = l + y``, ``y >= 0``;
      an upper bound adds the row ``u - x >= 0``;
    * upper-only ``x <= u``: substitute ``x = u - y``, ``y >= 0``;
    * free: split ``x = y+ - y-``.

    Returns ``(col_names, rows, row_slack_col, ncols, recover)`` where
    ``row_slack_col[i]`` is the slack/surplus column of row ``i`` (or ``None``
    for an equality row) and ``recover`` maps a standard-form solution vector
    back to an assignment over the model's variables.
    """
    col_names: list[str] = []
    var_map: dict[str, tuple] = {}
    bound_rows: list[tuple[dict[str, int], int, bool]] = []

    for var in model.variables.values():
        if var.lower is not None:
            col = len(col_names)
            col_names.append(var.name)
            var_map[var.name] = ("shift", col, Fraction(var.lower))
            if var.upper is not None:
                bound_rows.append(({var.name: -1}, var.upper, False))
        elif var.upper is not None:
            col = len(col_names)
            col_names.append(var.name + "~neg")
            var_map[var.name] = ("neg", col, Fraction(var.upper))
        else:
            cp = len(col_names)
            col_names.append(var.name + "~p")
            cm = len(col_names)
            col_names.append(var.name + "~m")
            var_map[var.name] = ("split", cp, cm)

    structural = len(col_names)
    raw: list[tuple[list[Fraction], Fraction, bool]] = []

    def _append(coeffs: Mapping[str, int | Fraction], const, equality: bool) -> None:
        row = [_ZERO] * structural
        rhs = -Fraction(const)  # expr + const >= 0  =>  expr >= -const
        for name, coef in coeffs.items():
            coef = Fraction(coef)
            kind = var_map[name]
            if kind[0] == "shift":
                row[kind[1]] += coef
                rhs -= coef * kind[2]
            elif kind[0] == "neg":
                row[kind[1]] -= coef
                rhs -= coef * kind[2]
            else:
                row[kind[1]] += coef
                row[kind[2]] -= coef
        raw.append((row, rhs, equality))

    for con in list(model.constraints) + list(extra):
        _append(con.coeffs, con.const, con.equality)
    for coeffs, const, equality in bound_rows:
        _append(coeffs, const, equality)

    # Attach one slack/surplus column per inequality row, then normalize signs
    # so every rhs is non-negative.
    m = len(raw)
    row_slack_col: list[Optional[int]] = [None] * m
    n_slacks = 0
    for i, (_, _, equality) in enumerate(raw):
        if not equality:
            row_slack_col[i] = structural + n_slacks
            n_slacks += 1
    ncols = structural + n_slacks

    rows: list[list[Fraction]] = []
    for i, (row, rhs, _equality) in enumerate(raw):
        full = row + [_ZERO] * n_slacks + [rhs]
        sc = row_slack_col[i]
        if sc is not None:
            full[sc] = Fraction(-1)  # expr - s = rhs (surplus form)
        if full[ncols] < 0:
            full = [-x for x in full]
        rows.append(full)

    def recover(solution: list[Fraction]) -> dict[str, Fraction]:
        out: dict[str, Fraction] = {}
        for name, kind in var_map.items():
            if kind[0] == "shift":
                out[name] = solution[kind[1]] + kind[2]
            elif kind[0] == "neg":
                out[name] = kind[2] - solution[kind[1]]
            else:
                out[name] = solution[kind[1]] - solution[kind[2]]
        return out

    return col_names, rows, row_slack_col, ncols, recover


def solve_lp(
    model: ILPModel,
    objective: Mapping[str, int | Fraction],
    extra: Sequence[LinearConstraint] = (),
) -> LPResult:
    """Minimize ``objective . x`` subject to the model's constraints and bounds.

    Integer flags are ignored (LP relaxation).  Returns an :class:`LPResult`
    whose ``assignment`` covers every model variable when optimal.
    """
    for name in objective:
        if name not in model.variables:
            raise KeyError(f"objective references unknown variable {name!r}")

    col_names, rows, row_slack_col, ncols, recover = _standard_form(model, extra)
    m = len(rows)

    # Initial basis: a row's own slack column when it survived sign
    # normalization with coefficient +1, otherwise a fresh artificial column.
    basis = [-1] * m
    art_cols: list[int] = []
    total_cols = ncols
    for i in range(m):
        sc = row_slack_col[i]
        if sc is not None and rows[i][sc] == 1:
            basis[i] = sc

    for i in range(m):
        if basis[i] >= 0:
            continue
        for row in rows:
            row.insert(total_cols, _ZERO)
        rows[i][total_cols] = _ONE
        art_cols.append(total_cols)
        basis[i] = total_cols
        total_cols += 1

    tab = _Tableau(rows, basis, total_cols)

    allowed: Optional[set[int]] = None
    if art_cols:
        phase1_cost = [_ZERO] * total_cols
        for c in art_cols:
            phase1_cost[c] = _ONE
        status = tab.run(phase1_cost)
        if status != LPStatus.OPTIMAL or tab.objective_value(phase1_cost) != 0:
            return LPResult(LPStatus.INFEASIBLE, pivots=tab.pivots)
        # Drive lingering artificials out of the basis (degenerate rows); a
        # row with no non-artificial nonzero is redundant and may keep its
        # artificial at value zero harmlessly.
        art_set = set(art_cols)
        for i in range(m):
            if tab.basis[i] in art_set:
                row = tab.rows[i]
                entering = next((j for j in range(ncols) if row[j] != 0), None)
                if entering is not None:
                    tab.pivot(i, entering)
        allowed = set(range(total_cols)) - art_set

    cost = [_ZERO] * total_cols
    for j, name in enumerate(col_names):
        base = name.split("~")[0]
        if base in objective:
            coef = Fraction(objective[base])
            cost[j] = -coef if name.endswith(("~m", "~neg")) else coef
    status = tab.run(cost, allowed_cols=allowed)
    if status == LPStatus.UNBOUNDED:
        return LPResult(LPStatus.UNBOUNDED, pivots=tab.pivots)

    solution = [_ZERO] * total_cols
    for i in range(m):
        solution[tab.basis[i]] = tab.rows[i][tab.ncols]
    assignment = recover(solution)
    obj_val = sum((Fraction(c) * assignment[n] for n, c in objective.items()), _ZERO)
    return LPResult(LPStatus.OPTIMAL, obj_val, assignment, tab.pivots)
