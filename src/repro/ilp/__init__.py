"""Integer linear programming with a lexicographic objective.

The exact backend (rational simplex + branch-and-bound) plays the role PIP
plays in the paper; the HiGHS backend plays GLPK's role for large models.
"""

from repro.ilp.branch_bound import (
    BranchAndBoundError,
    ILPResult,
    ILPStatus,
    solve_ilp,
)
from repro.ilp.highs_backend import solve_ilp_highs
from repro.ilp.lexmin import AUTO_THRESHOLD, LexminResult, lexmin, pick_backend
from repro.ilp.model import ILPModel, LinearConstraint, SolveStats, Variable
from repro.ilp.simplex import LPResult, LPStatus, solve_lp

__all__ = [
    "AUTO_THRESHOLD",
    "BranchAndBoundError",
    "ILPModel",
    "ILPResult",
    "ILPStatus",
    "LexminResult",
    "LinearConstraint",
    "LPResult",
    "LPStatus",
    "SolveStats",
    "Variable",
    "lexmin",
    "pick_backend",
    "solve_ilp",
    "solve_ilp_highs",
    "solve_lp",
]
