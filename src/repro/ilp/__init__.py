"""Integer linear programming with a lexicographic objective.

The exact backend (rational simplex + branch-and-bound) plays the role PIP
plays in the paper; the HiGHS backend plays GLPK's role for large models.
"""

from repro.ilp.branch_bound import (
    BranchAndBoundError,
    ILPResult,
    ILPStatus,
    solve_ilp,
    solve_ilp_warm,
)
from repro.ilp.highs_backend import solve_ilp_highs
from repro.ilp.lexmin import (
    AUTO_CONSTRAINT_THRESHOLD,
    AUTO_THRESHOLD,
    LexminResult,
    lexmin,
    pick_backend,
)
from repro.ilp.model import (
    ILPModel,
    LinearConstraint,
    SolveStats,
    Variable,
    legacy_exact_mode,
)
from repro.ilp.simplex import IncrementalLP, LPResult, LPStatus, solve_lp

__all__ = [
    "AUTO_CONSTRAINT_THRESHOLD",
    "AUTO_THRESHOLD",
    "BranchAndBoundError",
    "ILPModel",
    "ILPResult",
    "ILPStatus",
    "IncrementalLP",
    "LexminResult",
    "LinearConstraint",
    "LPResult",
    "LPStatus",
    "SolveStats",
    "Variable",
    "legacy_exact_mode",
    "lexmin",
    "pick_backend",
    "solve_ilp",
    "solve_ilp_highs",
    "solve_lp",
]
