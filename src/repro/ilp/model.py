"""ILP model container shared by the exact and HiGHS solver backends.

The scheduler builds one :class:`ILPModel` per hyperplane search.  A model is
a list of named variables (with bounds and integrality), linear constraints in
``expr >= 0`` / ``expr == 0`` form, and a lexicographic objective: a list of
variables to be minimized in decreasing priority (Feautrier's ``lexmin``,
paper eq. (4)/(8)).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Optional, Sequence

__all__ = [
    "Variable",
    "LinearConstraint",
    "ILPModel",
    "SolveStats",
    "INF",
    "legacy_exact_mode",
]

INF = float("inf")


def legacy_exact_mode() -> bool:
    """Whether ``REPRO_EXACT_LEGACY=1`` asks for seed-equivalent solving.

    Selects the dense Fraction tableau, disables lexmin warm starts and the
    scheduler's model-skeleton reuse/row normalization — the configuration
    :mod:`benchmarks.solver_baseline` measures the fast path against.
    """
    return os.environ.get("REPRO_EXACT_LEGACY", "") not in ("", "0")


@dataclass(frozen=True)
class Variable:
    """A decision variable.

    ``lower``/``upper`` may be ``None`` for an unbounded side.  All scheduler
    variables are integer; the ``integer`` flag exists so the LP relaxation
    machinery can be tested independently.
    """

    name: str
    lower: Optional[int] = 0
    upper: Optional[int] = None
    integer: bool = True

    def __post_init__(self) -> None:
        if (
            self.lower is not None
            and self.upper is not None
            and self.lower > self.upper
        ):
            raise ValueError(f"variable {self.name}: lower > upper")


@dataclass(frozen=True)
class LinearConstraint:
    """``sum(coeffs[v] * v) + const  (>= | ==)  0``."""

    coeffs: Mapping[str, int | Fraction]
    const: int | Fraction = 0
    equality: bool = False
    label: str = ""

    def evaluate(self, assignment: Mapping[str, int | Fraction]) -> Fraction:
        total = Fraction(self.const)
        for name, coef in self.coeffs.items():
            total += Fraction(coef) * Fraction(assignment[name])
        return total

    def is_satisfied(self, assignment: Mapping[str, int | Fraction]) -> bool:
        value = self.evaluate(assignment)
        return value == 0 if self.equality else value >= 0


class ILPModel:
    """A mutable ILP model with a lexicographic minimization objective."""

    def __init__(self) -> None:
        self.variables: dict[str, Variable] = {}
        self.constraints: list[LinearConstraint] = []
        self.objective_order: list[str] = []

    # -- construction ------------------------------------------------------

    def add_variable(
        self,
        name: str,
        lower: Optional[int] = 0,
        upper: Optional[int] = None,
        integer: bool = True,
    ) -> Variable:
        if name in self.variables:
            raise ValueError(f"duplicate variable {name!r}")
        var = Variable(name, lower, upper, integer)
        self.variables[name] = var
        return var

    def add_constraint(
        self,
        coeffs: Mapping[str, int | Fraction],
        const: int | Fraction = 0,
        equality: bool = False,
        label: str = "",
    ) -> LinearConstraint:
        for name in coeffs:
            if name not in self.variables:
                raise KeyError(f"constraint references unknown variable {name!r}")
        con = LinearConstraint(dict(coeffs), const, equality, label)
        self.constraints.append(con)
        return con

    def set_objective_order(self, names: Sequence[str]) -> None:
        """Set the ``lexmin`` priority order; every name must be a variable."""
        missing = [n for n in names if n not in self.variables]
        if missing:
            raise KeyError(f"objective references unknown variables {missing}")
        self.objective_order = list(names)

    def clone(self) -> "ILPModel":
        """Shallow copy (variables/constraints are immutable, so sharing them
        is safe); used by the scheduler to extend a cached band skeleton with
        per-level rows without rebuilding the Farkas system."""
        out = ILPModel()
        out.variables = dict(self.variables)
        out.constraints = list(self.constraints)
        out.objective_order = list(self.objective_order)
        return out

    # -- inspection ----------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def var_names(self) -> list[str]:
        return list(self.variables)

    def check(self, assignment: Mapping[str, int | Fraction]) -> bool:
        """Whether ``assignment`` satisfies every constraint and bound."""
        for var in self.variables.values():
            value = Fraction(assignment[var.name])
            if var.lower is not None and value < var.lower:
                return False
            if var.upper is not None and value > var.upper:
                return False
            if var.integer and value.denominator != 1:
                return False
        return all(c.is_satisfied(assignment) for c in self.constraints)

    def __repr__(self) -> str:
        return (
            f"ILPModel({self.num_variables} vars, {self.num_constraints} "
            f"constraints, lexmin over {len(self.objective_order)})"
        )


@dataclass
class SolveStats:
    """Counters reported by the solver stack (``--stats``, ablation benches).

    ``simplex_pivots``/``bb_nodes``/``lp_solves`` come from the backends;
    ``warm_starts``/``shortcut_hits``/``probe_hits`` from the lexmin driver
    (objectives resolved from a warm tableau, the at-lower-bound shortcut,
    and the all-remaining-at-lower-bounds feasibility probe); ``dedup_rows``/
    ``models_reused`` from the scheduler's model construction;
    ``structural_warm_start`` counts whole per-level solves answered by
    replaying a cross-request skeleton record (``repro.core.skeleton``)
    without building or solving a model at all; and ``solve_seconds`` is
    wall time spent inside ILP solves.
    """

    simplex_pivots: int = 0
    bb_nodes: int = 0
    lp_solves: int = 0
    warm_starts: int = 0
    shortcut_hits: int = 0
    probe_hits: int = 0
    dedup_rows: int = 0
    models_reused: int = 0
    structural_warm_start: int = 0
    solve_seconds: float = 0.0

    def merge(self, other: "SolveStats") -> None:
        self.simplex_pivots += other.simplex_pivots
        self.bb_nodes += other.bb_nodes
        self.lp_solves += other.lp_solves
        self.warm_starts += other.warm_starts
        self.shortcut_hits += other.shortcut_hits
        self.probe_hits += other.probe_hits
        self.dedup_rows += other.dedup_rows
        self.models_reused += other.models_reused
        self.structural_warm_start += other.structural_warm_start
        self.solve_seconds += other.solve_seconds

    @classmethod
    def from_dict(cls, data: dict) -> "SolveStats":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})

    def as_dict(self) -> dict[str, float]:
        return {
            "simplex_pivots": self.simplex_pivots,
            "bb_nodes": self.bb_nodes,
            "lp_solves": self.lp_solves,
            "warm_starts": self.warm_starts,
            "shortcut_hits": self.shortcut_hits,
            "probe_hits": self.probe_hits,
            "dedup_rows": self.dedup_rows,
            "models_reused": self.models_reused,
            "structural_warm_start": self.structural_warm_start,
            "solve_seconds": self.solve_seconds,
        }
