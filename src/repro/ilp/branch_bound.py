"""Branch-and-bound integer programming on top of the exact simplex.

Together with :mod:`repro.ilp.simplex` this forms the exact (PIP-role) ILP
backend.  The scheduler's relaxations are usually integral or nearly so —
most Pluto/Pluto+ models have totally-unimodular-looking structure — so the
tree stays tiny in practice, but the implementation is a complete
best-first/DFS hybrid with integral-bound pruning and a node-limit safeguard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Optional, Sequence

from repro.ilp.model import ILPModel, LinearConstraint, SolveStats
from repro.ilp.simplex import IncrementalLP, LPStatus, solve_lp

__all__ = [
    "ILPResult",
    "ILPStatus",
    "solve_ilp",
    "solve_ilp_warm",
    "BranchAndBoundError",
]


class ILPStatus:
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


class BranchAndBoundError(RuntimeError):
    """Raised when the node limit is exhausted without proving optimality."""


@dataclass
class ILPResult:
    status: str
    objective: Optional[Fraction] = None
    assignment: dict[str, Fraction] = field(default_factory=dict)
    stats: SolveStats = field(default_factory=SolveStats)

    @property
    def is_optimal(self) -> bool:
        return self.status == ILPStatus.OPTIMAL


def _first_fractional(
    model: ILPModel, assignment: Mapping[str, Fraction]
) -> Optional[str]:
    """Pick the branching variable: fractional binaries first.

    The Pluto+ models hang big-M (radix) rows off 0/1 decision variables;
    fixing a fractional binary immediately deactivates one side of the
    disjunction, so branching there first closes the tree far faster than
    branching in declaration order.
    """
    fallback: Optional[str] = None
    for name, var in model.variables.items():
        if not var.integer or assignment[name].denominator == 1:
            continue
        if var.lower == 0 and var.upper == 1:
            return name
        if fallback is None:
            fallback = name
    return fallback


def solve_ilp(
    model: ILPModel,
    objective: Mapping[str, int | Fraction],
    extra: Sequence[LinearConstraint] = (),
    node_limit: int = 20000,
) -> ILPResult:
    """Minimize ``objective . x`` with the model's integrality constraints.

    ``extra`` constraints are appended to the model's own (used by the lexmin
    driver to fix previously optimized objective components).  Raises
    :class:`BranchAndBoundError` if ``node_limit`` subproblems are explored
    without closing the tree.
    """
    stats = SolveStats()
    integral_objective = all(
        Fraction(coef).denominator == 1 for coef in objective.values()
    )
    incumbent: Optional[ILPResult] = None
    # A stack of constraint lists (DFS keeps memory small and, with integral
    # bound pruning, closes these models quickly).
    stack: list[tuple[LinearConstraint, ...]] = [tuple(extra)]
    nodes = 0

    while stack:
        cuts = stack.pop()
        nodes += 1
        if nodes > node_limit:
            raise BranchAndBoundError(
                f"branch-and-bound node limit ({node_limit}) exceeded"
            )
        lp = solve_lp(model, objective, cuts)
        stats.lp_solves += 1
        stats.simplex_pivots += lp.pivots
        if lp.status == LPStatus.INFEASIBLE:
            continue
        if lp.status == LPStatus.UNBOUNDED:
            # The relaxation is unbounded.  With integer variables this means
            # the ILP is unbounded or infeasible; for the scheduler's bounded
            # models this never happens, so report unboundedness directly.
            return ILPResult(ILPStatus.UNBOUNDED, stats=stats)

        # Integral-bound pruning: all objective data is integer, so any
        # integer solution in this subtree has value >= ceil(lp bound).
        if incumbent is not None and incumbent.objective is not None:
            bound = math.ceil(lp.objective) if integral_objective else lp.objective
            if bound >= incumbent.objective:
                continue

        frac_var = _first_fractional(model, lp.assignment)
        if frac_var is None:
            if incumbent is None or lp.objective < incumbent.objective:
                incumbent = ILPResult(
                    ILPStatus.OPTIMAL, lp.objective, dict(lp.assignment)
                )
            continue

        value = lp.assignment[frac_var]
        floor_v = value.numerator // value.denominator
        down = LinearConstraint({frac_var: -1}, floor_v, label="bb-down")
        up = LinearConstraint({frac_var: 1}, -(floor_v + 1), label="bb-up")
        # Explore the "down" branch first (smaller values first matches the
        # lexmin flavor of the callers).
        stack.append(cuts + (up,))
        stack.append(cuts + (down,))

    stats.bb_nodes = nodes
    if incumbent is None:
        return ILPResult(ILPStatus.INFEASIBLE, stats=stats)
    incumbent.stats = stats
    return incumbent


def solve_ilp_warm(
    inc: IncrementalLP,
    model: ILPModel,
    objective: Mapping[str, int | Fraction],
    node_limit: int = 20000,
) -> tuple[ILPResult, bool]:
    """Branch-and-bound on a live :class:`IncrementalLP` tableau.

    The root relaxation runs warm from whatever basis ``inc`` currently
    holds, and every branching cut is appended warm (single-artificial
    repair) on a snapshot of its parent — no subproblem ever rebuilds the
    tableau or re-runs full phase 1.  Returns ``(result, at_root)`` where
    ``at_root`` says the root relaxation was already integral; in that case
    the optimal basis is left in place (so a following ``fix`` is free),
    otherwise the tableau is restored to its pre-call state.
    """
    stats = SolveStats()
    root = inc.snapshot()
    integral_objective = all(
        Fraction(coef).denominator == 1 for coef in objective.values()
    )
    incumbent: Optional[ILPResult] = None
    # (parent snapshot, cut to apply); the root node has no cut.
    stack: list[tuple[tuple, Optional[LinearConstraint]]] = [(root, None)]
    nodes = 0
    at_root = False

    while stack:
        snap, cut = stack.pop()
        nodes += 1
        if nodes > node_limit:
            inc.restore(root)
            raise BranchAndBoundError(
                f"branch-and-bound node limit ({node_limit}) exceeded"
            )
        if cut is not None:
            inc.restore(snap)
            before = inc.pivots
            ok = inc.add_constraint(cut)
            stats.simplex_pivots += inc.pivots - before
            if not ok:
                continue
        lp = inc.minimize(objective)
        stats.lp_solves += 1
        stats.simplex_pivots += lp.pivots
        if lp.status == LPStatus.INFEASIBLE:
            continue
        if lp.status == LPStatus.UNBOUNDED:
            inc.restore(root)
            stats.bb_nodes = nodes
            return ILPResult(ILPStatus.UNBOUNDED, stats=stats), False

        if incumbent is not None and incumbent.objective is not None:
            bound = math.ceil(lp.objective) if integral_objective else lp.objective
            if bound >= incumbent.objective:
                continue

        frac_var = _first_fractional(model, lp.assignment)
        if frac_var is None:
            if incumbent is None or lp.objective < incumbent.objective:
                incumbent = ILPResult(
                    ILPStatus.OPTIMAL, lp.objective, dict(lp.assignment)
                )
                at_root = cut is None and nodes == 1
            continue

        value = lp.assignment[frac_var]
        floor_v = value.numerator // value.denominator
        here = inc.snapshot()
        stack.append(
            (here, LinearConstraint({frac_var: 1}, -(floor_v + 1), label="bb-up"))
        )
        stack.append(
            (here, LinearConstraint({frac_var: -1}, floor_v, label="bb-down"))
        )

    stats.bb_nodes = nodes
    if incumbent is None:
        inc.restore(root)
        return ILPResult(ILPStatus.INFEASIBLE, stats=stats), False
    if not at_root:
        inc.restore(root)
    incumbent.stats = stats
    return incumbent, at_root
