"""Parallel suite-execution engine.

``repro suite`` fans the registered workload matrix (workload ×
:class:`~repro.pipeline.PipelineOptions` variants) out over a pool of
worker processes, with a per-run timeout, bounded retry on crash/hang, and
an on-disk manifest (``runs/<suite-id>/manifest.json`` plus one JSON record
per run).  A failed run degrades to a structured :class:`RunFailure`
record; it never aborts the suite.

The engine only exists because the public API is picklable: run inputs are
``(workload name, options dict)`` pairs and run outputs are JSON records
derived from :class:`~repro.pipeline.OptimizationResult`, so everything
crosses process boundaries unchanged.  See ``docs/INTERNALS.md``.
"""

from repro.suite.failures import RunFailure
from repro.suite.manifest import MANIFEST_VERSION, SuiteManifest
from repro.suite.matrix import VARIANTS, RunSpec, build_matrix
from repro.suite.runner import SuiteResult, run_suite

__all__ = [
    "MANIFEST_VERSION",
    "RunFailure",
    "RunSpec",
    "SuiteManifest",
    "SuiteResult",
    "VARIANTS",
    "build_matrix",
    "run_suite",
]
