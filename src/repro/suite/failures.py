"""Structured failure records for suite runs.

A run that crashes, hangs, or raises does not abort the suite — it becomes
a :class:`RunFailure` in the manifest, with enough context (kind, message,
attempt count, elapsed wall time) to triage without re-running.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FAILURE_KINDS", "RunFailure"]

#: ``crash``   — the worker process died without reporting (signal, exit);
#: ``timeout`` — the run exceeded the per-run deadline and was killed;
#: ``error``   — the pipeline raised; the traceback is in ``message``.
FAILURE_KINDS = ("crash", "timeout", "error")


@dataclass(kw_only=True)
class RunFailure:
    run_id: str
    workload: str
    variant: str
    kind: str
    message: str = ""
    attempts: int = 1
    elapsed: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "workload": self.workload,
            "variant": self.variant,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunFailure":
        return cls(**data)

    def __str__(self) -> str:
        head = self.message.strip().splitlines()
        detail = f": {head[-1]}" if head else ""
        return (
            f"{self.run_id}: {self.kind} after {self.attempts} attempt(s), "
            f"{self.elapsed:.1f}s{detail}"
        )
