"""The run matrix: workloads × option variants.

A :class:`RunSpec` is one cell of the paper's evaluation tables — a
registered workload paired with a fully-resolved
:class:`~repro.pipeline.PipelineOptions`.  Specs are plain data (workload
*name* plus an options dict), so they cross process boundaries and land in
manifests verbatim; the worker re-resolves the workload from the registry
on its side.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Iterable, Optional, Sequence

from repro.pipeline import PipelineOptions

__all__ = ["VARIANTS", "RunSpec", "build_matrix"]

#: Named option variants, applied on top of each workload's paper flags
#: (``--iss --partlbtile`` for the periodic suite).  The default suite runs
#: ``plutoplus`` only; ``repro suite --variants plutoplus,pluto`` reproduces
#: the paper's side-by-side columns.
VARIANTS: dict[str, dict] = {
    "plutoplus": {"algorithm": "plutoplus"},
    "pluto": {"algorithm": "pluto"},
    "notile": {"algorithm": "plutoplus", "tile": False},
    "l2tile": {"algorithm": "plutoplus", "l2tile": True},
    "quick": {"algorithm": "plutoplus", "scheduler": "quick"},
    "auto": {"algorithm": "plutoplus", "scheduler": "auto"},
    # RAR reuse as a locality objective (exact scheduler only; legality
    # and thus the result's correctness story are unchanged).
    "rar": {"algorithm": "plutoplus", "rar": True},
    # Relax commutative-associative reductions and discharge them with
    # reduction clauses / privatized partial sums at emission.
    "redpar": {"algorithm": "plutoplus", "parallel_reductions": "omp"},
}


@dataclass(kw_only=True)
class RunSpec:
    """One suite run: a workload under one options variant."""

    run_id: str
    workload: str
    variant: str
    options: PipelineOptions

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "workload": self.workload,
            "variant": self.variant,
            "options": self.options.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        return cls(
            run_id=data["run_id"],
            workload=data["workload"],
            variant=data["variant"],
            options=PipelineOptions.from_dict(data["options"]),
        )

    def client_request(self) -> dict:
        """This spec as one daemon ``optimize`` request (``repro warm``).

        The options dict is the fully-resolved spec options, so the daemon
        computes the same cache key a direct request for this cell would —
        warming populates exactly the entries real lookups hit.
        """
        return {
            "type": "optimize",
            "workload": self.workload,
            "options": self.options.as_dict(),
        }


def _matches(name: str, run_id: str, patterns: Sequence[str]) -> bool:
    return any(fnmatch(name, p) or fnmatch(run_id, p) for p in patterns)


def build_matrix(
    category: Optional[str] = "periodic",
    variants: Iterable[str] = ("plutoplus",),
    filters: Sequence[str] = (),
    backend: str = "python",
) -> list[RunSpec]:
    """Expand the registered workloads into run specs.

    ``category`` selects a workload category (``None``/``"all"`` for every
    registered workload); ``variants`` names entries of :data:`VARIANTS`;
    ``filters`` are fnmatch globs matched against the workload name or the
    ``workload--variant`` run id (any match keeps the spec); ``backend``
    stamps every spec's options (the default "python" leaves spec dicts —
    and thus cache keys — exactly as before the knob existed).
    """
    from repro.workloads import all_workloads

    if category in (None, "all"):
        workloads = all_workloads()
    else:
        workloads = all_workloads(category)
        if not workloads:
            raise ValueError(f"no workloads in category {category!r}")

    specs: list[RunSpec] = []
    for vname in variants:
        try:
            overrides = VARIANTS[vname]
        except KeyError:
            raise ValueError(
                f"unknown variant {vname!r}; known: {sorted(VARIANTS)}"
            ) from None
        for w in workloads:
            run_id = f"{w.name}--{vname}"
            if filters and not _matches(w.name, run_id, filters):
                continue
            algorithm = overrides.get("algorithm", "plutoplus")
            extra = {k: v for k, v in overrides.items() if k != "algorithm"}
            if backend != "python":
                extra["backend"] = backend
            specs.append(
                RunSpec(
                    run_id=run_id,
                    workload=w.name,
                    variant=vname,
                    options=w.pipeline_options(algorithm, **extra),
                )
            )
    return specs
