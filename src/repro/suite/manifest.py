"""On-disk suite manifests: ``<root>/<suite-id>/manifest.json`` + records.

Layout::

    runs/suite-20260806-121314-1234/
        manifest.json          # matrix, config, per-run status index
        heat-1dp--plutoplus.json   # one record per completed run

``manifest.json`` schema (``MANIFEST_VERSION`` 1)::

    {
      "version": 1,
      "suite_id": "...",
      "created": "2026-08-06T12:13:14",
      "config": {"jobs": ..., "timeout": ..., "retries": ...},
      "specs": [RunSpec.to_dict(), ...],
      "runs": {
        "<run_id>": {"status": "ok"|"failure", "file": "<run_id>.json",
                      "attempts": N, "elapsed": S}
      }
    }

Per-run records carry ``status`` plus, for ``ok``, the schedule export
(:meth:`Schedule.to_dict`), schedule properties, the per-stage timing
breakdown, and SolveStats/DepStats; for ``failure``, the structured
:class:`~repro.suite.failures.RunFailure`.  The manifest is rewritten
atomically (tmp + rename) after every run, so a killed suite resumes from
exactly what finished.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

from repro.suite.matrix import RunSpec

__all__ = ["MANIFEST_VERSION", "SuiteManifest"]

MANIFEST_VERSION = 1


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class SuiteManifest:
    """One suite directory: the status index plus per-run record files."""

    def __init__(self, suite_dir: Path, data: dict):
        self.suite_dir = Path(suite_dir)
        self.data = data

    # -- creation / loading ------------------------------------------------

    @classmethod
    def create(
        cls,
        root: Path,
        specs: list[RunSpec],
        config: dict,
        suite_id: Optional[str] = None,
    ) -> "SuiteManifest":
        suite_id = suite_id or time.strftime(
            f"suite-%Y%m%d-%H%M%S-{os.getpid()}"
        )
        suite_dir = Path(root) / suite_id
        suite_dir.mkdir(parents=True, exist_ok=False)
        data = {
            "version": MANIFEST_VERSION,
            "suite_id": suite_id,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "config": dict(config),
            "specs": [s.to_dict() for s in specs],
            "runs": {},
        }
        manifest = cls(suite_dir, data)
        manifest.flush()
        return manifest

    @classmethod
    def load(cls, suite_dir: Path) -> "SuiteManifest":
        suite_dir = Path(suite_dir)
        data = json.loads((suite_dir / "manifest.json").read_text())
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {version} unsupported "
                f"(this build reads v{MANIFEST_VERSION})"
            )
        return cls(suite_dir, data)

    # -- accessors ---------------------------------------------------------

    @property
    def path(self) -> Path:
        return self.suite_dir / "manifest.json"

    @property
    def specs(self) -> list[RunSpec]:
        return [RunSpec.from_dict(d) for d in self.data["specs"]]

    def record_path(self, run_id: str) -> Path:
        return self.suite_dir / f"{run_id}.json"

    def load_record(self, run_id: str) -> dict:
        return json.loads(self.record_path(run_id).read_text())

    def completed_ok(self) -> set[str]:
        """Run ids recorded as ok whose record file still exists.

        ``--resume`` skips exactly these; failures are re-attempted."""
        return {
            run_id
            for run_id, entry in self.data["runs"].items()
            if entry.get("status") == "ok"
            and self.record_path(run_id).is_file()
        }

    def failures(self) -> list[dict]:
        out = []
        for run_id, entry in self.data["runs"].items():
            if entry.get("status") == "failure":
                rec = self.load_record(run_id)
                out.append(rec["failure"])
        return out

    # -- mutation ----------------------------------------------------------

    def write_record(self, record: dict) -> None:
        """Persist one run record and index it; atomic at every step."""
        run_id = record["run_id"]
        _atomic_write(
            self.record_path(run_id), json.dumps(record, indent=1)
        )
        self.data["runs"][run_id] = {
            "status": record["status"],
            "file": f"{run_id}.json",
            "attempts": record["attempts"],
            "elapsed": record["elapsed"],
        }
        self.flush()

    def flush(self) -> None:
        _atomic_write(self.path, json.dumps(self.data, indent=1))
