"""The parallel suite engine: bounded worker slots, timeouts, retries.

Each run executes ``optimize(workload, options)`` in its own worker
process and reports a JSON-shaped record back over a pipe.  The parent is
a single-threaded event loop over the shared worker-supervision layer
(:mod:`repro.workers`, also used by the serving daemon's pool):

* a worker that *reports* is recorded (``ok`` or ``error``);
* a worker that *dies silently* (signal, hard exit) is a ``crash``;
* a worker that *outlives its deadline* is killed and is a ``timeout``;

crashes and timeouts are retried on a fresh worker up to ``retries``
times; every terminal outcome — success or :class:`RunFailure` — is
persisted to the manifest immediately, so the suite degrades gracefully
and ``--resume`` picks up from exactly what finished.

Workers are forked where available (Linux): the child inherits the loaded
workload registry and warm polyhedral caches, which is both faster than a
cold import and what lets tests inject hostile workloads.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.suite.failures import RunFailure
from repro.suite.manifest import SuiteManifest
from repro.suite.matrix import RunSpec
from repro.workers import WorkerEvent, WorkerSupervisor

__all__ = ["SuiteResult", "run_suite"]

DEFAULT_TIMEOUT = 900.0
DEFAULT_RETRIES = 1


# -- worker side -------------------------------------------------------------

def _exec_stats_record(spec: RunSpec, result) -> Optional[dict]:
    """Compile + smoke-run the kernel on the requested native backend.

    Only for non-default backends: the run uses the workload's small
    validation sizes, so the manifest records real compile/execute numbers
    (or the fallback reason) without meaningfully extending suite time.
    """
    if spec.options.backend == "python":
        return None
    from repro.exec import ExecStats, ExecutionOptions
    from repro.runtime.arrays import random_arrays
    from repro.workloads import get_workload

    w = get_workload(spec.workload)
    params = dict(w.small_sizes) or {p: 8 for p in result.program.params}
    stats = ExecStats()
    try:
        result.run(
            random_arrays(result.program, params),
            params,
            exec_options=ExecutionOptions(backend=spec.options.backend),
            stats=stats,
        )
    except Exception as e:  # the schedule itself is fine; record and go on
        stats.fallback_reason = f"exec smoke-run failed: {e}"
    return stats.as_dict()


def _ok_record(spec: RunSpec, result) -> dict:
    schedule = result.schedule
    exec_stats = _exec_stats_record(spec, result)
    record = {
        "run_id": spec.run_id,
        "workload": spec.workload,
        "variant": spec.variant,
        "options": spec.options.as_dict(),
        "status": "ok",
        "schedule": schedule.to_dict(),
        "schedule_properties": {
            "depth": schedule.depth,
            "bands": [str(b) for b in schedule.bands],
            "max_band_width": max((b.width for b in schedule.bands), default=0),
            "parallel_levels": [
                i for i, r in enumerate(schedule.rows)
                if r.kind == "loop" and r.parallel
            ],
            "concurrent_start": any(b.concurrent_start for b in schedule.bands),
            "tiled_levels": len(result.tiled.tile_levels()),
            "used_iss": result.used_iss,
            "used_diamond": result.used_diamond,
            "scheduler_path": (
                None if result.scheduler_stats is None
                else result.scheduler_stats.scheduler_path
            ),
            "fallback_reason": (
                None if result.scheduler_stats is None
                else result.scheduler_stats.fallback_reason
            ),
            # Resolved PR-10 knobs, stamped only when active so historical
            # manifests (and their diffs) stay byte-identical at defaults.
            **(
                {"rar": True}
                if spec.options.rar
                else {}
            ),
            **(
                {
                    "parallel_reductions": spec.options.parallel_reductions,
                    "reduction_levels": result.tiled.reduction_levels(),
                }
                if spec.options.parallel_reductions != "off"
                else {}
            ),
        },
        "timing": result.timing.as_dict(),
        "scheduler_stats": (
            None if result.scheduler_stats is None
            else result.scheduler_stats.as_dict()
        ),
        "dep_stats": (
            None if result.dep_stats is None else result.dep_stats.as_dict()
        ),
    }
    if exec_stats is not None:
        record["exec_stats"] = exec_stats
    return record


def _run_one(spec_dict: dict) -> dict:
    """Child process job body (under :func:`repro.workers.worker_main`)."""
    from repro.pipeline import optimize

    spec = RunSpec.from_dict(spec_dict)
    result = optimize(spec.workload, spec.options)
    return _ok_record(spec, result)


# -- parent side -------------------------------------------------------------

@dataclass
class _Attempt:
    """Supervisor key for one run attempt (carries the retry bookkeeping)."""

    spec: RunSpec
    attempt: int
    elapsed_before: float      # wall time burned by earlier attempts


@dataclass
class SuiteResult:
    """What a suite execution produced (also all persisted on disk)."""

    manifest: SuiteManifest
    records: list[dict] = field(default_factory=list)
    failures: list[RunFailure] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def run_suite(
    manifest: SuiteManifest,
    *,
    jobs: int = 1,
    timeout: float = DEFAULT_TIMEOUT,
    retries: int = DEFAULT_RETRIES,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> SuiteResult:
    """Execute the manifest's matrix; never raises for a failing run.

    ``retries`` bounds *re*-attempts after a crash or timeout (so a run is
    tried at most ``1 + retries`` times; pipeline exceptions are
    deterministic and are not retried).  With ``resume``, runs already
    recorded ``ok`` in the manifest are skipped.
    """
    say = progress or (lambda msg: None)
    t_start = time.perf_counter()
    out = SuiteResult(manifest)

    done = manifest.completed_ok() if resume else set()
    pending: deque[_Attempt] = deque()
    for spec in manifest.specs:
        if spec.run_id in done:
            out.skipped.append(spec.run_id)
            out.records.append(manifest.load_record(spec.run_id))
        else:
            pending.append(_Attempt(spec, 1, 0.0))
    if out.skipped:
        say(f"resume: skipping {len(out.skipped)} completed run(s)")

    jobs = max(1, int(jobs))
    sup = WorkerSupervisor(_run_one)

    def spawn(attempt: _Attempt) -> None:
        handle = sup.spawn(
            attempt,
            attempt.spec.to_dict(),
            timeout=timeout,
            name=f"repro-suite-{attempt.spec.run_id}",
        )
        say(f"start {attempt.spec.run_id} "
            f"(attempt {attempt.attempt}, pid {handle.proc.pid})")

    def settle(run: _Attempt, ev: WorkerEvent) -> None:
        """A crash/timeout/error outcome: retry or record a RunFailure."""
        elapsed = run.elapsed_before + ev.elapsed
        retryable = ev.kind in ("crash", "timeout") and run.attempt <= retries
        if retryable:
            say(f"retry {run.spec.run_id} after {ev.kind} "
                f"(attempt {run.attempt} of {1 + retries})")
            pending.append(_Attempt(run.spec, run.attempt + 1, elapsed))
            return
        failure = RunFailure(
            run_id=run.spec.run_id,
            workload=run.spec.workload,
            variant=run.spec.variant,
            kind=ev.kind,
            message=ev.payload,
            attempts=run.attempt,
            elapsed=elapsed,
        )
        record = {
            "run_id": run.spec.run_id,
            "workload": run.spec.workload,
            "variant": run.spec.variant,
            "options": run.spec.options.as_dict(),
            "status": "failure",
            "attempts": run.attempt,
            "elapsed": elapsed,
            "failure": failure.to_dict(),
        }
        manifest.write_record(record)
        out.failures.append(failure)
        out.records.append(record)
        say(f"FAIL {failure}")

    def finish_ok(run: _Attempt, ev: WorkerEvent) -> None:
        elapsed = run.elapsed_before + ev.elapsed
        record = ev.payload
        record["attempts"] = run.attempt
        record["elapsed"] = elapsed
        record["worker_pid"] = ev.pid
        manifest.write_record(record)
        out.records.append(record)
        say(f"ok {run.spec.run_id} in {elapsed:.1f}s")

    try:
        while pending or sup.live_count:
            while pending and sup.live_count < jobs:
                spawn(pending.popleft())

            events, _ = sup.poll()
            for ev in events:
                if ev.kind == "ok":
                    finish_ok(ev.key, ev)
                else:
                    settle(ev.key, ev)
    finally:
        sup.shutdown()  # interrupted: leave no orphans

    out.wall_seconds = time.perf_counter() - t_start
    return out
