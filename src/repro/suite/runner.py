"""The parallel suite engine: bounded worker slots, timeouts, retries.

Each run executes ``optimize(workload, options)`` in its own worker
process and reports a JSON-shaped record back over a pipe.  The parent is
a single-threaded event loop over ``multiprocessing.connection.wait``:

* a worker that *reports* is recorded (``ok`` or ``error``);
* a worker that *dies silently* (signal, hard exit) is a ``crash``;
* a worker that *outlives its deadline* is killed and is a ``timeout``;

crashes and timeouts are retried on a fresh worker up to ``retries``
times; every terminal outcome — success or :class:`RunFailure` — is
persisted to the manifest immediately, so the suite degrades gracefully
and ``--resume`` picks up from exactly what finished.

Workers are forked where available (Linux): the child inherits the loaded
workload registry and warm polyhedral caches, which is both faster than a
cold import and what lets tests inject hostile workloads.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as conn_wait
from typing import Callable, Optional

from repro.suite.failures import RunFailure
from repro.suite.manifest import SuiteManifest
from repro.suite.matrix import RunSpec

__all__ = ["SuiteResult", "run_suite"]

DEFAULT_TIMEOUT = 900.0
DEFAULT_RETRIES = 1


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# -- worker side -------------------------------------------------------------

def _ok_record(spec: RunSpec, result) -> dict:
    schedule = result.schedule
    return {
        "run_id": spec.run_id,
        "workload": spec.workload,
        "variant": spec.variant,
        "options": spec.options.as_dict(),
        "status": "ok",
        "schedule": schedule.to_dict(),
        "schedule_properties": {
            "depth": schedule.depth,
            "bands": [str(b) for b in schedule.bands],
            "max_band_width": max((b.width for b in schedule.bands), default=0),
            "parallel_levels": [
                i for i, r in enumerate(schedule.rows)
                if r.kind == "loop" and r.parallel
            ],
            "concurrent_start": any(b.concurrent_start for b in schedule.bands),
            "tiled_levels": len(result.tiled.tile_levels()),
            "used_iss": result.used_iss,
            "used_diamond": result.used_diamond,
        },
        "timing": result.timing.as_dict(),
        "scheduler_stats": (
            None if result.scheduler_stats is None
            else result.scheduler_stats.as_dict()
        ),
        "dep_stats": (
            None if result.dep_stats is None else result.dep_stats.as_dict()
        ),
    }


def _worker_entry(spec_dict: dict, conn) -> None:
    """Child process body: run one spec, report exactly one message."""
    try:
        from repro.pipeline import optimize

        spec = RunSpec.from_dict(spec_dict)
        result = optimize(spec.workload, spec.options)
        conn.send(("ok", _ok_record(spec, result)))
    except BaseException:
        # A raising pipeline is a structured outcome, not a crash.
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass  # parent gone or pipe broken: dying reads as a crash
    finally:
        conn.close()


# -- parent side -------------------------------------------------------------

@dataclass
class _Live:
    spec: RunSpec
    attempt: int
    elapsed_before: float      # wall time burned by earlier attempts
    proc: object
    conn: object
    started: float

    def deadline(self, timeout: float) -> float:
        return self.started + timeout


@dataclass
class SuiteResult:
    """What a suite execution produced (also all persisted on disk)."""

    manifest: SuiteManifest
    records: list[dict] = field(default_factory=list)
    failures: list[RunFailure] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def _kill(proc) -> None:
    proc.terminate()
    proc.join(2.0)
    if proc.is_alive():
        proc.kill()
        proc.join()


def run_suite(
    manifest: SuiteManifest,
    *,
    jobs: int = 1,
    timeout: float = DEFAULT_TIMEOUT,
    retries: int = DEFAULT_RETRIES,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> SuiteResult:
    """Execute the manifest's matrix; never raises for a failing run.

    ``retries`` bounds *re*-attempts after a crash or timeout (so a run is
    tried at most ``1 + retries`` times; pipeline exceptions are
    deterministic and are not retried).  With ``resume``, runs already
    recorded ``ok`` in the manifest are skipped.
    """
    say = progress or (lambda msg: None)
    ctx = _mp_context()
    t_start = time.perf_counter()
    out = SuiteResult(manifest)

    done = manifest.completed_ok() if resume else set()
    pending: deque[tuple[RunSpec, int, float]] = deque()
    for spec in manifest.specs:
        if spec.run_id in done:
            out.skipped.append(spec.run_id)
            out.records.append(manifest.load_record(spec.run_id))
        else:
            pending.append((spec, 1, 0.0))
    if out.skipped:
        say(f"resume: skipping {len(out.skipped)} completed run(s)")

    jobs = max(1, int(jobs))
    live: dict[object, _Live] = {}

    def spawn(spec: RunSpec, attempt: int, elapsed_before: float) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_entry,
            args=(spec.to_dict(), child_conn),
            name=f"repro-suite-{spec.run_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only the read end
        live[parent_conn] = _Live(
            spec, attempt, elapsed_before, proc, parent_conn, time.perf_counter()
        )
        say(f"start {spec.run_id} (attempt {attempt}, pid {proc.pid})")

    def settle(run: _Live, kind: str, message: str) -> None:
        """A crash/timeout/error outcome: retry or record a RunFailure."""
        elapsed = run.elapsed_before + (time.perf_counter() - run.started)
        retryable = kind in ("crash", "timeout") and run.attempt <= retries
        if retryable:
            say(f"retry {run.spec.run_id} after {kind} "
                f"(attempt {run.attempt} of {1 + retries})")
            pending.append((run.spec, run.attempt + 1, elapsed))
            return
        failure = RunFailure(
            run_id=run.spec.run_id,
            workload=run.spec.workload,
            variant=run.spec.variant,
            kind=kind,
            message=message,
            attempts=run.attempt,
            elapsed=elapsed,
        )
        record = {
            "run_id": run.spec.run_id,
            "workload": run.spec.workload,
            "variant": run.spec.variant,
            "options": run.spec.options.as_dict(),
            "status": "failure",
            "attempts": run.attempt,
            "elapsed": elapsed,
            "failure": failure.to_dict(),
        }
        manifest.write_record(record)
        out.failures.append(failure)
        out.records.append(record)
        say(f"FAIL {failure}")

    def finish_ok(run: _Live, record: dict) -> None:
        elapsed = run.elapsed_before + (time.perf_counter() - run.started)
        record["attempts"] = run.attempt
        record["elapsed"] = elapsed
        record["worker_pid"] = run.proc.pid
        manifest.write_record(record)
        out.records.append(record)
        say(f"ok {run.spec.run_id} in {elapsed:.1f}s")

    try:
        while pending or live:
            while pending and len(live) < jobs:
                spawn(*pending.popleft())

            now = time.perf_counter()
            next_deadline = min(r.deadline(timeout) for r in live.values())
            ready = conn_wait(
                list(live), timeout=max(0.0, next_deadline - now) + 0.01
            )

            for conn in ready:
                run = live.pop(conn)
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    run.proc.join()
                    code = run.proc.exitcode
                    settle(run, "crash",
                           f"worker died without reporting (exit code {code})")
                else:
                    run.proc.join()
                    if status == "ok":
                        finish_ok(run, payload)
                    else:
                        settle(run, "error", payload)
                finally:
                    conn.close()

            now = time.perf_counter()
            overdue = [r for r in live.values() if now >= r.deadline(timeout)]
            for run in overdue:
                del live[run.conn]
                _kill(run.proc)
                run.conn.close()
                settle(run, "timeout", f"exceeded {timeout:.0f}s deadline")
    finally:
        for run in live.values():  # interrupted: leave no orphans
            _kill(run.proc)
            run.conn.close()

    out.wall_seconds = time.perf_counter() - t_start
    return out
