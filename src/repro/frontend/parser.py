"""A front-end parser for affine loop nests in C-like syntax (pet's role).

Supported language::

    for (i = 0; i <= N - 1; i++) {
        for (j = 0; j < N; j++) {          // '<' bound is normalized
            if (j <= i - 1) {
                S1: A[i][j] = A[i][j] / A[j][j];
            }
            B[i][j] = A[i][j] + 0.5;       // auto-named statements
        }
    }

* loops must have unit increment (``i++``);
* conditions and bounds must be affine in outer iterators and parameters;
* statement bodies are single assignments (``=``, ``+=``, ``-=``, ``*=``);
* ``//`` and ``/* */`` comments are stripped.

Anything outside this fragment (periodic wraparound selects, pointer code)
is built with :class:`~repro.frontend.builder.ProgramBuilder` directly.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.frontend.builder import ProgramBuilder
from repro.frontend.ir import Program

__all__ = ["parse_program", "ParseError"]


class ParseError(ValueError):
    pass


_COMMENTS = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)
_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<num>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_]\w*)"
    r"|(?P<op>\+\+|--|\+=|-=|\*=|/=|<=|>=|==|!=|&&|\|\||[-+*/%<>=!?:;,(){}\[\]])"
    r")"
)


def _tokenize(src: str) -> list[str]:
    src = _COMMENTS.sub(" ", src)
    tokens: list[str] = []
    pos = 0
    while pos < len(src):
        m = _TOKEN.match(src, pos)
        if not m or m.end() == pos:
            rest = src[pos:].strip()
            if not rest:
                break
            raise ParseError(f"cannot tokenize near {rest[:40]!r}")
        pos = m.end()
        tokens.append(m.group(0).strip())
    return tokens


class _CParser:
    def __init__(self, tokens: list[str], builder: ProgramBuilder):
        self.toks = tokens
        self.pos = 0
        self.b = builder

    # -- token helpers ----------------------------------------------------

    def peek(self) -> str | None:
        return self.toks[self.pos] if self.pos < len(self.toks) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ParseError(f"expected {tok!r}, got {got!r} at token {self.pos}")

    def _collect_until(self, closers: set[str]) -> str:
        """Join tokens (with spaces) until one of ``closers`` at depth 0."""
        depth = 0
        parts: list[str] = []
        while True:
            tok = self.peek()
            if tok is None:
                raise ParseError(f"expected one of {closers} before end of input")
            if depth == 0 and tok in closers:
                return " ".join(parts)
            if tok in "([{":
                depth += 1
            elif tok in ")]}":
                depth -= 1
                if depth < 0:
                    return " ".join(parts)
            parts.append(self.next())

    # -- grammar -------------------------------------------------------------

    def parse_block_items(self) -> None:
        while True:
            tok = self.peek()
            if tok is None or tok == "}":
                return
            self.parse_item()

    def parse_item(self) -> None:
        tok = self.peek()
        if tok == "for":
            self.parse_for()
        elif tok == "if":
            self.parse_if()
        elif tok == "{":
            self.next()
            self.parse_block_items()
            self.expect("}")
        else:
            self.parse_statement()

    def parse_for(self) -> None:
        self.expect("for")
        self.expect("(")
        it = self.next()
        self.expect("=")
        lb = self._collect_until({";"})
        self.expect(";")
        it2 = self.next()
        if it2 != it:
            raise ParseError(f"loop condition on {it2!r}, expected {it!r}")
        rel = self.next()
        ub = self._collect_until({";"})
        self.expect(";")
        if rel == "<":
            ub = f"({ub}) - 1"
        elif rel != "<=":
            raise ParseError(f"unsupported loop relation {rel!r}")
        it3 = self.next()
        inc = self.next()
        if it3 != it or inc != "++":
            raise ParseError(f"only unit-increment loops supported ({it}{inc})")
        self.expect(")")
        with self.b.loop(it, lb, ub):
            self.parse_body()

    def parse_if(self) -> None:
        self.expect("if")
        self.expect("(")
        cond = self._collect_until({")"})
        self.expect(")")
        with self.b.guard(cond):
            self.parse_body()

    def parse_body(self) -> None:
        if self.peek() == "{":
            self.next()
            self.parse_block_items()
            self.expect("}")
        else:
            self.parse_item()

    def parse_statement(self) -> None:
        name = None
        if (
            self.pos + 1 < len(self.toks)
            and re.fullmatch(r"[A-Za-z_]\w*", self.toks[self.pos])
            and self.toks[self.pos + 1] == ":"
        ):
            name = self.next()
            self.next()  # ':'
        body = self._collect_until({";"})
        self.expect(";")
        if not body:
            return
        self.b.stmt(_respace(body), name=name)


def _respace(body: str) -> str:
    """Tighten token-joined text back into readable C (cosmetic only)."""
    out = body
    out = re.sub(r"\s*\[\s*", "[", out)
    out = re.sub(r"\s*\]", "]", out)
    out = re.sub(r"\s*\(\s*", "(", out)
    out = re.sub(r"\s*\)", ")", out)
    out = re.sub(r"\s*,\s*", ", ", out)
    return out


def parse_program(
    source: str,
    name: str,
    params: Sequence[str] = (),
    param_min=2,
) -> Program:
    """Parse C-like loop-nest ``source`` into a polyhedral :class:`Program`."""
    builder = ProgramBuilder(name, params, param_min)
    parser = _CParser(_tokenize(source), builder)
    parser.parse_block_items()
    if parser.peek() is not None:
        raise ParseError(f"unexpected token {parser.peek()!r} at top level")
    return builder.build()
