"""Statement body handling: access extraction and C-to-Python conversion.

Statement bodies are written in a C-like surface syntax (``A[i][j+1] = 0.5 *
(A[i][j] + B[j][i]);``).  This module extracts the affine array accesses a
statement performs (feeding dependence analysis) and rewrites the body into
executable Python over numpy arrays (feeding the validation runtime):

* ``A[e1][e2]``       ->  ``A[e1, e2]``
* scalar data ``x``   ->  ``x[()]``   (0-d numpy arrays, so writes stick)
* known math calls (``sqrt``, ``pow``, ``exp``, ...) pass through; the
  runtime provides them in the execution namespace.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.frontend.exprs import AffineSyntaxError, parse_affine
from repro.polyhedra import AffineMap, Space

__all__ = [
    "extract_accesses",
    "to_python",
    "split_assignment",
    "KNOWN_FUNCTIONS",
    "BodySyntaxError",
]


class BodySyntaxError(ValueError):
    pass


#: names treated as pure functions, not data
KNOWN_FUNCTIONS = {
    "sqrt", "pow", "exp", "log", "sin", "cos", "tan", "fabs", "abs",
    "floor", "ceil", "fmin", "fmax", "min", "max",
}

_ARRAY_REF = re.compile(r"([A-Za-z_]\w*)((?:\s*\[[^\[\]]+\])+)")
_NAME = re.compile(r"[A-Za-z_]\w*")
_SUBSCRIPT = re.compile(r"\[([^\[\]]+)\]")


def split_assignment(body: str) -> tuple[str, str, str]:
    """Split ``lhs op= rhs`` into ``(lhs, op, rhs)`` where op is '' or '+'/'-'/'*'.

    The body may end with a semicolon.  ``==`` never appears at statement
    level in this surface language.
    """
    text = body.strip().rstrip(";").strip()
    m = re.search(r"(\+|\-|\*|/)?=(?!=)", text)
    if not m:
        raise BodySyntaxError(f"no assignment in statement body {body!r}")
    lhs = text[: m.start()].strip()
    rhs = text[m.end():].strip()
    op = m.group(1) or ""
    return lhs, op, rhs


def _array_refs(text: str) -> list[tuple[str, list[str]]]:
    """All ``name[sub]...[sub]`` references with their subscript strings."""
    out = []
    for m in _ARRAY_REF.finditer(text):
        subs = _SUBSCRIPT.findall(m.group(2))
        out.append((m.group(1), subs))
    return out


def _scalar_names(text: str, space: Space, arrays_seen: set[str]) -> set[str]:
    """Names that are data scalars: not iterators/params/functions/arrays."""
    reserved = set(space.names) | KNOWN_FUNCTIONS | arrays_seen
    names = set(_NAME.findall(text))
    # strip names that are immediately followed by '[' (array refs) — they
    # are collected by _array_refs — and names followed by '(' (calls).
    out = set()
    for name in names:
        if name in reserved:
            continue
        pattern = re.compile(rf"\b{re.escape(name)}\b\s*([\[\(])?")
        is_data = False
        for m in pattern.finditer(text):
            if m.group(1) is None:
                is_data = True
            elif m.group(1) == "[":
                is_data = False  # array ref, handled elsewhere
                break
        if is_data:
            out.add(name)
    return out


def extract_accesses(
    body: str, space: Space
) -> tuple[list[tuple[str, AffineMap]], list[tuple[str, AffineMap]]]:
    """Extract (writes, reads) as ``(array, index-map)`` pairs from a body.

    Scalars appear as 0-dimensional accesses.  Compound assignments add the
    LHS to the reads as well.
    """
    lhs, op, rhs = split_assignment(body)

    def refs_of(text: str) -> list[tuple[str, AffineMap]]:
        refs = []
        arrays = set()
        for name, subs in _array_refs(text):
            if name in KNOWN_FUNCTIONS:
                continue
            arrays.add(name)
            try:
                exprs = [parse_affine(space, s) for s in subs]
            except AffineSyntaxError as exc:
                raise BodySyntaxError(
                    f"non-affine subscript in {name}{subs}: {exc}"
                ) from exc
            refs.append((name, AffineMap(space, exprs)))
        for name in _scalar_names(text, space, arrays):
            refs.append((name, AffineMap(space, [])))
        return refs

    writes = refs_of(lhs)
    if len(writes) != 1:
        raise BodySyntaxError(
            f"statement must write exactly one location, got {len(writes)} in {body!r}"
        )
    reads = refs_of(rhs)
    # Subscript expressions of the LHS may themselves read arrays — not
    # supported in this affine surface language (subscripts are pure index
    # expressions), so nothing further to collect.
    if op:  # compound assignment also reads the written location
        reads = writes + reads
    return writes, reads


def to_python(body: str, space: Space, arrays: Sequence[str]) -> str:
    """Rewrite a C-like body into executable Python over numpy arrays."""
    lhs, op, rhs = split_assignment(body)
    array_set = set(arrays)

    def conv(text: str) -> str:
        def repl(m: re.Match) -> str:
            name = m.group(1)
            subs = _SUBSCRIPT.findall(m.group(2))
            if name in KNOWN_FUNCTIONS:
                return m.group(0)
            return f"{name}[{', '.join(subs)}]"

        out = _ARRAY_REF.sub(repl, text)
        # scalar data -> 0-d numpy indexing
        for name in _scalar_names(text, space, array_set):
            out = re.sub(rf"\b{re.escape(name)}\b(?!\s*[\[\(])", f"{name}[()]", out)
        return out

    py_op = f"{op}=" if op else "="
    out_lhs, out_rhs = conv(lhs), conv(rhs)
    m = _NAME.fullmatch(lhs.strip())
    if m and m.group(0) not in space.names and m.group(0) not in KNOWN_FUNCTIONS:
        # A *written* scalar must go through 0-d indexing — a bare-name
        # assignment would rebind the kernel's local and the store would
        # never reach the caller's array.  Read-only scalars stay bare
        # (0-d ndarray arithmetic reads fine, and historical bodies —
        # hence cache keys — must not change spelling).
        name = m.group(0)
        out_lhs = f"{name}[()]"
        out_rhs = re.sub(
            rf"\b{re.escape(name)}\b(?!\s*[\[\(])", f"{name}[()]", out_rhs
        )
    return f"{out_lhs} {py_op} {out_rhs}"
