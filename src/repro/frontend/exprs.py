"""Parsing of textual affine expressions like ``"N - 1 - i"`` or ``"2*i + j"``.

Used by the loop-nest builder (bounds, access subscripts) and the C-like
front-end parser.  The grammar is deliberately tiny — sums of products of an
integer constant and at most one name — because anything richer is not affine
and the polyhedral model cannot represent it.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.polyhedra import AffExpr, Space

__all__ = ["parse_affine", "AffineSyntaxError"]


class AffineSyntaxError(ValueError):
    """Raised when a subscript/bound is not an affine expression."""


_TOKEN = re.compile(r"\s*(?:(\d+)|([A-Za-z_]\w*)|([+\-*/()]))")


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m or m.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                return
            raise AffineSyntaxError(f"unexpected input {rest!r} in {text!r}")
        pos = m.end()
        if m.group(1):
            yield ("num", m.group(1))
        elif m.group(2):
            yield ("name", m.group(2))
        else:
            yield ("op", m.group(3))
    return


class _Parser:
    """Recursive descent: expr := term (('+'|'-') term)* ;
    term := factor ('*' factor)* ; factor := num | name | '-'factor | '(' expr ')'.

    Products are checked for affinity (at most one name per product, and
    divisions only by exact integer constants of constant subexpressions).
    """

    def __init__(self, space: Space, text: str):
        self.space = space
        self.text = text
        self.tokens = list(_tokenize(text))
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def advance(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise AffineSyntaxError(f"unexpected end of expression in {self.text!r}")
        self.pos += 1
        return tok

    def parse(self) -> AffExpr:
        e = self.expr()
        if self.peek() is not None:
            raise AffineSyntaxError(f"trailing tokens in {self.text!r}")
        return e

    def expr(self) -> AffExpr:
        e = self.term()
        while True:
            tok = self.peek()
            if tok and tok == ("op", "+"):
                self.advance()
                e = e + self.term()
            elif tok and tok == ("op", "-"):
                self.advance()
                e = e - self.term()
            else:
                return e

    def term(self) -> AffExpr:
        e = self.factor()
        while True:
            tok = self.peek()
            if tok and tok == ("op", "*"):
                self.advance()
                rhs = self.factor()
                e = _affine_product(e, rhs, self.text)
            elif tok and tok == ("op", "/"):
                self.advance()
                rhs = self.factor()
                e = _affine_quotient(e, rhs, self.text)
            else:
                return e

    def factor(self) -> AffExpr:
        kind, value = self.advance()
        if kind == "num":
            return AffExpr.const(self.space, int(value))
        if kind == "name":
            try:
                return AffExpr.var(self.space, value)
            except KeyError:
                raise AffineSyntaxError(
                    f"unknown name {value!r} in {self.text!r} "
                    f"(space is {self.space})"
                ) from None
        if (kind, value) == ("op", "-"):
            return -self.factor()
        if (kind, value) == ("op", "+"):
            return self.factor()
        if (kind, value) == ("op", "("):
            e = self.expr()
            tok = self.advance()
            if tok != ("op", ")"):
                raise AffineSyntaxError(f"missing ')' in {self.text!r}")
            return e
        raise AffineSyntaxError(f"unexpected token {value!r} in {self.text!r}")


def _affine_product(a: AffExpr, b: AffExpr, text: str) -> AffExpr:
    if a.is_constant():
        return b * a.const_term
    if b.is_constant():
        return a * b.const_term
    raise AffineSyntaxError(f"non-affine product in {text!r}")


def _affine_quotient(a: AffExpr, b: AffExpr, text: str) -> AffExpr:
    if not b.is_constant() or b.const_term == 0:
        raise AffineSyntaxError(f"non-affine division in {text!r}")
    k = b.const_term
    if any(c % k for c in a.coeffs):
        raise AffineSyntaxError(
            f"inexact division by {k} in {text!r} (not an affine expression)"
        )
    return AffExpr(a.space, [c // k for c in a.coeffs])


def parse_affine(space: Space, text) -> AffExpr:
    """Parse ``text`` into an :class:`AffExpr` over ``space``.

    Integers and :class:`AffExpr` values pass through (after a space check),
    which lets APIs accept ``0``, ``"N-1"``, or prebuilt expressions
    interchangeably.
    """
    if isinstance(text, AffExpr):
        if text.space != space:
            return text.rebase(space)
        return text
    if isinstance(text, int):
        return AffExpr.const(space, text)
    return _Parser(space, str(text)).parse()
