"""Front end: polyhedral IR, loop-nest builder, and C-like parser (pet's role)."""

from repro.frontend.body import (
    BodySyntaxError,
    extract_accesses,
    split_assignment,
    to_python,
)
from repro.frontend.builder import ProgramBuilder, parse_condition
from repro.frontend.exprs import AffineSyntaxError, parse_affine
from repro.frontend.ir import Access, Program, Statement
from repro.frontend.parser import ParseError, parse_program
from repro.frontend.serialize import program_from_dict, program_to_dict

__all__ = [
    "Access",
    "AffineSyntaxError",
    "BodySyntaxError",
    "ParseError",
    "Program",
    "ProgramBuilder",
    "Statement",
    "extract_accesses",
    "parse_affine",
    "parse_condition",
    "parse_program",
    "program_from_dict",
    "program_to_dict",
    "split_assignment",
    "to_python",
]
