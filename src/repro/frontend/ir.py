"""Polyhedral intermediate representation: programs, statements, accesses.

This is what the pet front end produces in the paper's toolchain: per
statement an index set (domain), affine access functions for every read and
write, the original schedule in 2d+1 interleaving form, and an executable
body used by the validation runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from repro.polyhedra import AffExpr, AffineMap, BasicSet, Space

__all__ = ["Access", "Statement", "Program", "SchedDim"]

# One level of the original 2d+1 schedule: either a scalar position or an
# iterator expression.
SchedDim = Union[int, AffExpr]


@dataclass
class Access:
    """An affine array access ``array[map(i)]``, optionally guarded.

    ``guard`` restricts the statement instances that perform this access —
    used to model wraparound (periodic) accesses such as
    ``A[i+1 == N ? 0 : i+1]``, which becomes two guarded accesses:
    ``A[i+1]`` on ``i <= N-2`` and ``A[0]`` on ``i == N-1``.  Exactly the
    long-dependence pattern of Section 2.4.
    """

    array: str
    map: AffineMap
    guard: Optional[BasicSet] = None

    @property
    def arity(self) -> int:
        return self.map.n_out

    def __str__(self) -> str:
        g = f" if {self.guard}" if self.guard is not None else ""
        return f"{self.array}{self.map}{g}"


@dataclass
class Statement:
    """A statement with its index set, accesses, and original schedule."""

    name: str
    domain: BasicSet
    reads: list[Access] = field(default_factory=list)
    writes: list[Access] = field(default_factory=list)
    body: str = ""                 # executable Python (numpy) statement
    text: str = ""                 # C-like display text
    sched: list[SchedDim] = field(default_factory=list)  # 2d+1 interleaving

    @property
    def space(self) -> Space:
        return self.domain.space

    @property
    def iters(self) -> tuple[str, ...]:
        return self.space.dims

    @property
    def dim(self) -> int:
        return len(self.space.dims)

    def read_arrays(self) -> set[str]:
        return {a.array for a in self.reads}

    def write_arrays(self) -> set[str]:
        return {a.array for a in self.writes}

    def __str__(self) -> str:
        return f"{self.name}: {self.text or self.body} over {self.domain}"


class Program:
    """A static control program: parameters, statements, and a context.

    ``context`` constrains the parameters (e.g. ``N >= 2``); it participates
    in every emptiness/satisfaction query so that dependences that only exist
    for degenerate sizes do not pollute scheduling.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[str] = (),
        param_min: Mapping[str, int] | int = 2,
    ):
        self.name = name
        self.params = tuple(params)
        self.statements: list[Statement] = []
        if isinstance(param_min, int):
            self.param_min = {p: param_min for p in self.params}
        else:
            self.param_min = {p: param_min.get(p, 2) for p in self.params}

    # -- construction ----------------------------------------------------------

    def space_for(self, iters: Sequence[str]) -> Space:
        return Space(tuple(iters), self.params)

    def add_statement(self, stmt: Statement) -> Statement:
        if any(s.name == stmt.name for s in self.statements):
            raise ValueError(f"duplicate statement name {stmt.name!r}")
        self.statements.append(stmt)
        return stmt

    # -- queries ------------------------------------------------------------------

    def statement(self, name: str) -> Statement:
        for s in self.statements:
            if s.name == name:
                return s
        raise KeyError(f"no statement named {name!r}")

    def arrays(self) -> set[str]:
        out: set[str] = set()
        for s in self.statements:
            out |= s.read_arrays() | s.write_arrays()
        return out

    def context_constraints(self, space: Space) -> list:
        """Parameter context (``p >= param_min[p]``) rebased into ``space``."""
        from repro.polyhedra import ineq

        return [
            ineq(space, {p: 1}, -self.param_min[p])
            for p in self.params
            if p in space.params
        ]

    def max_depth(self) -> int:
        return max((s.dim for s in self.statements), default=0)

    def __iter__(self):
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __eq__(self, other) -> bool:
        """Structural equality (used by serialization round-trip checks)."""
        return (
            isinstance(other, Program)
            and self.name == other.name
            and self.params == other.params
            and self.param_min == other.param_min
            and self.statements == other.statements
        )

    # Name-based hash: consistent with __eq__ (equal programs share a name)
    # while keeping Program usable in identity-flavored dicts.
    def __hash__(self) -> int:
        return hash(self.name)

    def __str__(self) -> str:
        lines = [f"program {self.name}({', '.join(self.params)}):"]
        lines += [f"  {s}" for s in self.statements]
        return "\n".join(lines)
