"""Loop-nest program builder with context-manager loops.

The builder mirrors writing the C code by hand and records exact original
schedules in 2d+1 interleaving form, so dependence analysis can reconstruct
the sequential execution order precisely::

    b = ProgramBuilder("gemm", params=("NI", "NJ", "NK"))
    with b.loop("i", 0, "NI-1"):
        with b.loop("j", 0, "NJ-1"):
            b.stmt("C[i][j] = C[i][j] * beta")
            with b.loop("k", 0, "NK-1"):
                b.stmt("C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j]")
    prog = b.build()

Accesses are extracted automatically from the C-like body.  For accesses the
affine surface language cannot express (periodic wraparound), pass explicit
``reads=``/``writes=`` lists of :class:`~repro.frontend.ir.Access` and a
``body_py=`` executable body.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Sequence

from repro.frontend.body import extract_accesses, to_python
from repro.frontend.exprs import parse_affine
from repro.frontend.ir import Access, Program, Statement
from repro.polyhedra import AffExpr, BasicSet, Constraint, Space

__all__ = ["ProgramBuilder", "parse_condition"]


def parse_condition(space: Space, text: str) -> list[Constraint]:
    """Parse a conjunction of affine relations: ``"i >= 1 && j <= i - 1"``.

    Supported operators: ``<=``, ``<``, ``>=``, ``>``, ``==``.
    """
    out: list[Constraint] = []
    for clause in text.replace("&&", " and ").split(" and "):
        clause = clause.strip()
        if not clause:
            continue
        for op in ("<=", ">=", "==", "<", ">"):
            if op in clause:
                lhs_text, rhs_text = clause.split(op, 1)
                lhs = parse_affine(space, lhs_text)
                rhs = parse_affine(space, rhs_text)
                if op == "<=":
                    out.append(Constraint(rhs - lhs))
                elif op == ">=":
                    out.append(Constraint(lhs - rhs))
                elif op == "<":
                    out.append(Constraint(rhs - lhs - 1))
                elif op == ">":
                    out.append(Constraint(lhs - rhs - 1))
                else:
                    out.append(Constraint(lhs - rhs, equality=True))
                break
        else:
            raise ValueError(f"no relational operator in condition {clause!r}")
    return out


class _Frame:
    """One open loop (or guard) during building."""

    def __init__(self, iter_name: Optional[str], lb: str | int | None, ub, cond: str | None):
        self.iter_name = iter_name
        self.lb = lb
        self.ub = ub
        self.cond = cond
        self.children = 0
        self.position = 0


class ProgramBuilder:
    def __init__(
        self,
        name: str,
        params: Sequence[str] = (),
        param_min=2,
    ):
        self.program = Program(name, params, param_min)
        self._stack: list[_Frame] = [_Frame(None, None, None, None)]  # root
        self._counter = 0

    # -- structure ---------------------------------------------------------

    @contextmanager
    def loop(self, iter_name: str, lb, ub):
        """Open ``for (iter = lb; iter <= ub; iter++)``; bounds are affine text."""
        parent = self._stack[-1]
        frame = _Frame(iter_name, lb, ub, None)
        frame.position = parent.children
        parent.children += 1
        self._stack.append(frame)
        try:
            yield self
        finally:
            self._stack.pop()

    @contextmanager
    def guard(self, cond: str):
        """Open ``if (cond)`` — restricts the domains of enclosed statements.

        Guards are transparent to the 2d+1 schedule (they do not introduce a
        schedule dimension), matching how pet folds conditions into domains.
        """
        frame = _Frame(None, None, None, cond)
        # Share the parent's child counter so sibling ordering continues
        # seamlessly through the guard (guards are schedule-transparent).
        frame.children = self._stack[-1].children
        self._stack.append(frame)
        try:
            yield self
        finally:
            self._stack.pop()
            self._stack[-1].children = frame.children

    # -- statements ---------------------------------------------------------

    def stmt(
        self,
        body: str,
        name: Optional[str] = None,
        body_py: Optional[str] = None,
        reads: Optional[list[Access]] = None,
        writes: Optional[list[Access]] = None,
        extra_reads: Optional[list[Access]] = None,
    ) -> Statement:
        """Add a statement under the currently open loops.

        ``body`` is the C-like text.  When ``reads``/``writes`` are omitted
        they are extracted from the body; ``extra_reads`` appends guarded
        accesses on top of the extracted ones (for periodic boundaries).
        """
        iters = [f.iter_name for f in self._stack if f.iter_name]
        space = self.program.space_for(iters)

        domain = BasicSet(space)
        for frame in self._stack:
            if frame.iter_name:
                it = AffExpr.var(space, frame.iter_name)
                domain.add(Constraint(it - parse_affine(space, frame.lb)))
                domain.add(Constraint(parse_affine(space, frame.ub) - it))
            if frame.cond:
                for con in parse_condition(space, frame.cond):
                    domain.add(con)

        if name is None:
            name = f"S{self._counter}"
        self._counter += 1

        if reads is None or writes is None:
            w_pairs, r_pairs = extract_accesses(body, space)
            auto_writes = [Access(a, m) for a, m in w_pairs]
            auto_reads = [Access(a, m) for a, m in r_pairs]
            if writes is None:
                writes = auto_writes
            if reads is None:
                reads = auto_reads
        if extra_reads:
            reads = list(reads) + list(extra_reads)

        if body_py is None:
            arrays = {a.array for a in reads} | {a.array for a in writes}
            body_py = to_python(body, space, sorted(arrays))

        # 2d+1 schedule: (beta0, i1, beta1, ..., ik, betak)
        sched: list = []
        loop_frames = [f for f in self._stack if f.iter_name]
        for frame in loop_frames:
            sched.append(frame.position)
            sched.append(AffExpr.var(space, frame.iter_name))
        # position among the innermost enclosing ordering scope
        scope = self._stack[-1]
        sched.append(scope.children)
        scope.children += 1

        st = Statement(
            name=name,
            domain=domain,
            reads=list(reads),
            writes=list(writes),
            body=body_py,
            text=body.strip(),
            sched=sched,
        )
        return self.program.add_statement(st)

    def build(self) -> Program:
        if len(self._stack) != 1:
            raise RuntimeError("unclosed loops/guards at build() time")
        return self.program
