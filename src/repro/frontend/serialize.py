"""JSON-shaped (de)serialization of the polyhedral IR.

``OptimizationResult.to_json()`` and the suite runner's on-disk manifests
need the whole IR — programs, statements, accesses, sets, maps — as plain
JSON values.  The format is structural and version-tagged: every composite
carries the coordinate :class:`Space` it lives in, affine expressions are
raw coefficient lists (dims + params + constant, the same layout
:class:`AffExpr` stores), and constraints add an ``equality`` flag.

Round-trip guarantee: ``program_from_dict(program_to_dict(p)) == p`` under
the IR's structural equality.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

from repro.frontend.ir import Access, Program, Statement
from repro.polyhedra import AffExpr, AffineMap, BasicSet, Constraint, Space

__all__ = [
    "IR_FORMAT_VERSION",
    "program_to_dict",
    "program_from_dict",
    "structural_program_dict",
    "structural_program_fingerprint",
    "space_to_dict",
    "space_from_dict",
    "basicset_to_dict",
    "basicset_from_dict",
    "affmap_to_dict",
    "affmap_from_dict",
]

#: bumped whenever the on-disk shape changes incompatibly
IR_FORMAT_VERSION = 1


# -- spaces ------------------------------------------------------------------

def space_to_dict(space: Space) -> dict:
    return {"dims": list(space.dims), "params": list(space.params)}


def space_from_dict(data: Mapping) -> Space:
    return Space(tuple(data["dims"]), tuple(data["params"]))


# -- sets and maps -----------------------------------------------------------

def basicset_to_dict(bset: BasicSet) -> dict:
    return {
        "space": space_to_dict(bset.space),
        "constraints": [
            {"coeffs": list(c.coeffs), "equality": c.equality}
            for c in bset.constraints
        ],
    }


def basicset_from_dict(data: Mapping) -> BasicSet:
    space = space_from_dict(data["space"])
    return BasicSet(
        space,
        [
            Constraint(AffExpr(space, c["coeffs"]), c["equality"])
            for c in data["constraints"]
        ],
    )


def affmap_to_dict(amap: AffineMap) -> dict:
    return {
        "space": space_to_dict(amap.domain),
        "rows": [list(e.coeffs) for e in amap.exprs],
    }


def affmap_from_dict(data: Mapping) -> AffineMap:
    space = space_from_dict(data["space"])
    return AffineMap(space, [AffExpr(space, row) for row in data["rows"]])


# -- statements and programs -------------------------------------------------

def _access_to_dict(acc: Access) -> dict:
    return {
        "array": acc.array,
        "map": affmap_to_dict(acc.map),
        "guard": None if acc.guard is None else basicset_to_dict(acc.guard),
    }


def _access_from_dict(data: Mapping) -> Access:
    return Access(
        array=data["array"],
        map=affmap_from_dict(data["map"]),
        guard=None if data["guard"] is None else basicset_from_dict(data["guard"]),
    )


def _statement_to_dict(stmt: Statement) -> dict:
    sched = [
        {"const": d} if isinstance(d, int) else {"coeffs": list(d.coeffs)}
        for d in stmt.sched
    ]
    return {
        "name": stmt.name,
        "domain": basicset_to_dict(stmt.domain),
        "reads": [_access_to_dict(a) for a in stmt.reads],
        "writes": [_access_to_dict(a) for a in stmt.writes],
        "body": stmt.body,
        "text": stmt.text,
        "sched": sched,
    }


def _statement_from_dict(data: Mapping) -> Statement:
    domain = basicset_from_dict(data["domain"])
    sched = [
        d["const"] if "const" in d else AffExpr(domain.space, d["coeffs"])
        for d in data["sched"]
    ]
    return Statement(
        name=data["name"],
        domain=domain,
        reads=[_access_from_dict(a) for a in data["reads"]],
        writes=[_access_from_dict(a) for a in data["writes"]],
        body=data["body"],
        text=data["text"],
        sched=sched,
    )


def program_to_dict(program: Program) -> dict:
    return {
        "version": IR_FORMAT_VERSION,
        "name": program.name,
        "params": list(program.params),
        "param_min": dict(program.param_min),
        "statements": [_statement_to_dict(s) for s in program.statements],
    }


def structural_program_dict(data: Mapping) -> dict:
    """``program_to_dict`` output modulo parameter *values*.

    The program name and the ``param_min`` values are dropped (parameter
    *names* stay — they shape the coordinate spaces); statements keep
    their domains, accesses, bodies, and original schedules in full.  Two
    programs with equal structural dicts run the identical hyperplane
    search over the same dependence shapes, differing at most in the
    parameter lower bounds that enter the Farkas context rows — which is
    exactly the equivalence the cross-request skeleton store
    (:mod:`repro.core.skeleton`) keys on.
    """
    return {
        "version": data["version"],
        "params": list(data["params"]),
        "param_names": sorted(data["param_min"]),
        "statements": data["statements"],
    }


def structural_program_fingerprint(data: Mapping) -> str:
    """Canonical hash (hex sha256) of :func:`structural_program_dict`.

    Invariant under program renaming and parameter-value rescaling; any
    edit to a statement body, domain, or access changes it.
    """
    text = json.dumps(
        structural_program_dict(data), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def program_from_dict(data: Mapping) -> Program:
    version = data.get("version", IR_FORMAT_VERSION)
    if version != IR_FORMAT_VERSION:
        raise ValueError(
            f"program serialized with format v{version}, "
            f"this build reads v{IR_FORMAT_VERSION}"
        )
    program = Program(data["name"], tuple(data["params"]), dict(data["param_min"]))
    for sd in data["statements"]:
        program.add_statement(_statement_from_dict(sd))
    return program
