"""Transformation validation: run original vs transformed, compare outputs.

The strongest end-to-end check in the repository: for a given program and a
computed transformation, generate code for both the original 2d+1 order and
the transformed order, run both on identical random inputs at small problem
sizes, and require bitwise-tolerant agreement on every array.  This catches
errors anywhere in the stack — dependence analysis, Farkas, the ILP,
satisfaction bookkeeping, tiling, or scanning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.codegen.original import original_schedule
from repro.codegen.python_emit import GeneratedCode, generate_python
from repro.core.tiling import TiledSchedule
from repro.frontend.ir import Program
from repro.runtime.arrays import random_arrays

__all__ = ["ValidationResult", "validate_transformation", "run_schedule"]


@dataclass
class ValidationResult:
    ok: bool
    max_abs_diff: float
    mismatched_arrays: list[str]
    params: dict[str, int]

    def __bool__(self) -> bool:
        return self.ok


def run_schedule(
    tsched: TiledSchedule,
    params: Mapping[str, int],
    arrays: Optional[dict] = None,
    seed: int = 0,
) -> dict:
    """Generate, compile, and run a schedule; returns the (mutated) arrays."""
    code = generate_python(tsched)
    if arrays is None:
        arrays = random_arrays(tsched.program, params, seed=seed)
    code.run(arrays, dict(params))
    return arrays


def validate_transformation(
    program: Program,
    tsched: TiledSchedule,
    params: Mapping[str, int],
    seed: int = 0,
    rtol: float = 1e-9,
    atol: float = 1e-11,
) -> ValidationResult:
    """Compare transformed execution against source order on random inputs."""
    base_inputs = random_arrays(program, params, seed=seed)
    ref = {k: v.copy() for k, v in base_inputs.items()}
    out = {k: v.copy() for k, v in base_inputs.items()}

    original = generate_python(original_schedule(program))
    transformed = generate_python(tsched)
    original.run(ref, dict(params))
    transformed.run(out, dict(params))

    mismatched = []
    max_diff = 0.0
    for name in sorted(ref):
        a, b = ref[name], out[name]
        diff = float(np.max(np.abs(a - b))) if a.size else 0.0
        max_diff = max(max_diff, diff)
        if not np.allclose(a, b, rtol=rtol, atol=atol):
            mismatched.append(name)
    return ValidationResult(
        ok=not mismatched,
        max_abs_diff=max_diff,
        mismatched_arrays=mismatched,
        params=dict(params),
    )
