"""Transformation validation: run original vs transformed, compare outputs.

The strongest end-to-end check in the repository: for a given program and a
computed transformation, generate code for both the original 2d+1 order and
the transformed order, run both on identical random inputs at small problem
sizes, and require bitwise-tolerant agreement on every array.  This catches
errors anywhere in the stack — dependence analysis, Farkas, the ILP,
satisfaction bookkeeping, tiling, or scanning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.codegen.original import original_schedule
from repro.codegen.python_emit import GeneratedCode, generate_python
from repro.core.tiling import TiledSchedule
from repro.frontend.ir import Program
from repro.runtime.arrays import random_arrays

__all__ = [
    "BackendCompatReport",
    "ValidationResult",
    "backend_compat_check",
    "validate_transformation",
    "run_schedule",
]


@dataclass
class ValidationResult:
    ok: bool
    max_abs_diff: float
    mismatched_arrays: list[str]
    params: dict[str, int]

    def __bool__(self) -> bool:
        return self.ok


def run_schedule(
    tsched: TiledSchedule,
    params: Mapping[str, int],
    arrays: Optional[dict] = None,
    seed: int = 0,
    exec_options=None,
    stats=None,
) -> dict:
    """Generate, compile, and run a schedule; returns the (mutated) arrays.

    ``exec_options`` (an :class:`repro.exec.ExecutionOptions`) selects the
    execution backend; the default is the historical Python path.
    """
    if arrays is None:
        arrays = random_arrays(tsched.program, params, seed=seed)
    if exec_options is None or exec_options.backend == "python":
        code = generate_python(tsched)
        code.run(arrays, dict(params))
    else:
        from repro.exec import compile_kernel

        kernel = compile_kernel(tsched, exec_options, stats)
        kernel.run(arrays, dict(params))
    return arrays


def _max_ulp(a: np.ndarray, b: np.ndarray) -> int:
    """Largest ULP distance between two float64 arrays of equal shape.

    Uses the standard order-preserving bit mapping (negative floats fold
    below zero), so the distance is exact for finite values; ``-0.0`` and
    ``+0.0`` compare equal.
    """
    if a.size == 0:
        return 0
    ai = np.ascontiguousarray(a, dtype=np.float64).ravel().view(np.int64)
    bi = np.ascontiguousarray(b, dtype=np.float64).ravel().view(np.int64)
    lo = np.int64(-(2**63))
    am = np.where(ai >= 0, ai, lo - ai)
    bm = np.where(bi >= 0, bi, lo - bi)
    return int(np.max(np.abs(am.astype(np.float64) - bm.astype(np.float64))))


@dataclass
class BackendCompatReport:
    """Did a non-Python backend reproduce the Python kernel bit-for-bit?

    ``checked`` is False when the native path gracefully fell back (no
    compiler, no C body) — nothing was compared, and ``fallback_reason``
    says why.  When checked, ``ok`` requires every array to agree within
    ``max_ulps_allowed`` ULPs (0, the default, is bitwise identity —
    achievable because kernels compile with ``-ffp-contract=off``).
    ``mode`` records which contract was applied: "bitwise"/"ulp" for the
    ULP comparison, "tolerance" when a relative tolerance was requested —
    the contract for parallelized reductions, whose partial-sum
    reassociation makes bitwise identity unattainable (see docs/API.md).
    """

    ok: bool
    checked: bool
    backend: str
    fallback_reason: Optional[str] = None
    max_ulps: int = 0
    max_abs_diff: float = 0.0
    mismatched_arrays: list[str] = field(default_factory=list)
    params: dict[str, int] = field(default_factory=dict)
    mode: str = "bitwise"

    def __bool__(self) -> bool:
        return self.ok


def backend_compat_check(
    tsched: TiledSchedule,
    params: Mapping[str, int],
    exec_options=None,
    seed: int = 0,
    max_ulps: int = 0,
    arrays: Optional[dict] = None,
    rtol: float = 0.0,
    atol: float = 0.0,
) -> BackendCompatReport:
    """Run ``tsched`` on both backends and compare outputs exactly.

    The execution-level analogue of :func:`validate_transformation`: the
    Python kernel is the reference, the backend ``exec_options`` selects is
    the candidate, and agreement is bitwise (``max_ulps=0``) or
    ULP-bounded.  A nonzero ``rtol``/``atol`` switches to the *tolerance*
    contract (``np.allclose``) instead — required when the schedule carries
    parallelized reductions, because ``reduction(..)`` clauses and
    privatized partial sums reassociate floating-point additions and
    bitwise identity no longer holds.  Falls back gracefully — a missing
    compiler yields ``checked=False``, not a failure.
    """
    from repro.exec import ExecStats, ExecutionOptions, compile_kernel

    exec_options = exec_options or ExecutionOptions(backend="c")
    tolerance = bool(rtol or atol)
    mode = "tolerance" if tolerance else ("bitwise" if max_ulps == 0 else "ulp")
    cstats = ExecStats()
    kernel = compile_kernel(tsched, exec_options, cstats)
    if kernel.backend == "python":
        return BackendCompatReport(
            ok=True,
            checked=False,
            backend="python",
            fallback_reason=cstats.fallback_reason,
            params=dict(params),
            mode=mode,
        )
    base = arrays if arrays is not None else random_arrays(
        tsched.program, params, seed=seed
    )
    ref = {k: v.copy() for k, v in base.items()}
    out = {k: v.copy() for k, v in base.items()}
    generate_python(tsched).run(ref, dict(params))
    kernel.run(out, dict(params))

    mismatched: list[str] = []
    worst_ulp = 0
    max_diff = 0.0
    for name in sorted(ref):
        a, b = ref[name], out[name]
        if np.array_equal(a, b):
            continue
        ulps = _max_ulp(a, b)
        worst_ulp = max(worst_ulp, ulps)
        if a.size:
            max_diff = max(max_diff, float(np.max(np.abs(a - b))))
        if tolerance:
            if not np.allclose(a, b, rtol=rtol, atol=atol):
                mismatched.append(name)
        elif ulps > max_ulps:
            mismatched.append(name)
    return BackendCompatReport(
        ok=not mismatched,
        checked=True,
        backend=kernel.backend,
        max_ulps=worst_ulp,
        max_abs_diff=max_diff,
        mismatched_arrays=mismatched,
        params=dict(params),
        mode=mode,
    )


def validate_transformation(
    program: Program,
    tsched: TiledSchedule,
    params: Mapping[str, int],
    seed: int = 0,
    rtol: float = 1e-9,
    atol: float = 1e-11,
) -> ValidationResult:
    """Compare transformed execution against source order on random inputs."""
    base_inputs = random_arrays(program, params, seed=seed)
    ref = {k: v.copy() for k, v in base_inputs.items()}
    out = {k: v.copy() for k, v in base_inputs.items()}

    original = generate_python(original_schedule(program))
    transformed = generate_python(tsched)
    original.run(ref, dict(params))
    transformed.run(out, dict(params))

    mismatched = []
    max_diff = 0.0
    for name in sorted(ref):
        a, b = ref[name], out[name]
        diff = float(np.max(np.abs(a - b))) if a.size else 0.0
        max_diff = max(max_diff, diff)
        if not np.allclose(a, b, rtol=rtol, atol=atol):
            mismatched.append(name)
    return ValidationResult(
        ok=not mismatched,
        max_abs_diff=max_diff,
        mismatched_arrays=mismatched,
        params=dict(params),
    )
