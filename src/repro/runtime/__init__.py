"""Execution runtime: array allocation, kernel execution, validation."""

from repro.runtime.arrays import allocate_arrays, infer_shapes, random_arrays
from repro.runtime.validate import (
    ValidationResult,
    run_schedule,
    validate_transformation,
)

__all__ = [
    "ValidationResult",
    "allocate_arrays",
    "infer_shapes",
    "random_arrays",
    "run_schedule",
    "validate_transformation",
]
